"""Non-stationary traffic: scenario shapes, continuous batching, fleets.

Every serving number in the paper's setting assumes a steady query
stream; production recommendation traffic is anything but.  This
example builds the repo's scenario shapes — diurnal sinusoid, MMPP
burst/calm switching, a flash crowd, embedding-popularity drift — and
shows:

1. what each shape looks like (arrivals per phase, peak rates);
2. continuous batching vs the size-or-timeout batcher under a flash
   crowd at a tight SLA: the fixed batcher pays its formation timeout
   on every dispatch, continuous batching only saturates at the true
   overload core;
3. a heterogeneous fleet riding the same flash crowd: per-phase fleet
   tails show queue-aware routing (JSQ) shielding the spike while
   round-robin lets it blow up the slower replicas.

Run:  python examples/traffic_scenarios.py
"""

from repro import (
    A100_SXM4_80GB,
    H100_NVL,
    PAPER_MODEL,
    RPF_L2P_OPTMT,
    FleetSpec,
    SimScale,
    kernel_workload,
    run_embedding_stage,
)
from repro.core.serving import BatchingPolicy, ContinuousBatching
from repro.fleet import linear_latency_model
from repro.traffic import (
    SCENARIO_PROFILES,
    generate_arrivals,
    scenario_profile,
    simulate_fleet_scenario,
    simulate_scenario_serving,
)

SCHEME = RPF_L2P_OPTMT
DURATION_S = 8.0
MIX = {"med_hot": PAPER_MODEL.num_tables}

print(f"Calibrating A100/H100 batch-latency curves ({SCHEME.name})...")
models = {}
for gpu in (A100_SXM4_80GB, H100_NVL):
    workload = kernel_workload(gpu, PAPER_MODEL, SimScale("traffic", 2))
    emb_us = run_embedding_stage(workload, MIX, SCHEME).total_time_us
    models[gpu.name] = linear_latency_model(
        gpu, emb_us=emb_us, emb_batch=PAPER_MODEL.batch_size,
        model=PAPER_MODEL,
    )
a100 = models[A100_SXM4_80GB.name]
capacity = 2048.0 / (a100(2048) / 1e3)
print(f"  A100 saturation throughput ~{capacity:.0f} QPS "
      f"(exec(2048) = {a100(2048):.1f} ms)")

# ---------------------------------------------------------------------
# (1) the scenario shapes
# ---------------------------------------------------------------------
print("\nScenario shapes at a common base load "
      f"({0.4 * capacity:.0f} QPS, {DURATION_S:.0f}s, seed 0):\n")
for profile in SCENARIO_PROFILES:
    spec = scenario_profile(
        profile, base_qps=0.4 * capacity, duration_s=DURATION_S
    )
    trace = generate_arrivals(spec, seed=0)
    phases = ", ".join(
        f"{name}:{int((trace.phase_ids == i).sum())}"
        for i, name in enumerate(trace.phases)
    )
    print(f"  {profile:8s} {trace.n_arrivals:7d} arrivals "
          f"(mean {trace.mean_qps:7.0f} QPS, peak {spec.peak_rate():7.0f}) "
          f"[{phases}]")

# ---------------------------------------------------------------------
# (2) flash crowd: fixed vs continuous batching at a tight SLA
# ---------------------------------------------------------------------
fixed = BatchingPolicy()
flash = scenario_profile(
    "flash", base_qps=0.95 * capacity / 8.0, duration_s=DURATION_S
)
spike_batch = max(1, int(flash.peak_rate() * fixed.timeout_ms / 1e3))
sla_ms = round(0.8 * (fixed.timeout_ms + a100(spike_batch)), 2)
trace = generate_arrivals(flash, seed=0)
print(f"\nFlash crowd on one A100 (peak {flash.peak_rate():.0f} QPS, "
      f"SLA {sla_ms:g} ms):\n")
print(f"  {'batcher':12s} {'phase':10s} {'p50':>7s} {'p99':>8s} "
      f"{'goodput':>9s} {'SLA hit':>8s}")
for label, policy in (
    ("fixed", fixed),
    ("continuous", ContinuousBatching(max_batch=fixed.max_batch,
                                      sla_ms=sla_ms)),
):
    report = simulate_scenario_serving(
        trace, a100, policy=policy, sla_ms=sla_ms, scheme_name=SCHEME.name,
    )
    for stats in report.phases:
        print(f"  {label:12s} {stats.phase:10s} {stats.p50_ms:6.2f}m "
              f"{stats.p99_ms:7.2f}m {stats.goodput_qps:8.0f}q "
              f"{stats.sla_hit_pct:7.1f}%")
    print(f"  {label:12s} {'ALL':10s} {report.p50_ms:6.2f}m "
          f"{report.p99_ms:7.2f}m {report.goodput_qps:8.0f}q "
          f"{report.sla_hit_pct:7.1f}%\n")

# ---------------------------------------------------------------------
# (3) a mixed fleet riding the flash crowd, by routing policy
# ---------------------------------------------------------------------
fleet = FleetSpec.mixed(
    {A100_SXM4_80GB: 2, H100_NVL: 2}, name="2xA100+2xH100", scheme=SCHEME,
)
# peak load chosen above the A100s' fair-share capacity but inside the
# fleet's: an oblivious router must now overload the slower replicas
fleet_flash = scenario_profile(
    "flash", base_qps=5 * 0.95 * capacity / 8.0, duration_s=DURATION_S
)
print(f"{fleet.describe()} under the flash crowd "
      f"(peak {fleet_flash.peak_rate():.0f} QPS), per-phase fleet p99:\n")
print(f"  {'policy':14s} {'pre':>8s} {'spike':>9s} {'recovery':>9s} "
      f"{'spike goodput':>14s}")
for policy in ("round-robin", "jsq", "least-latency"):
    report = simulate_fleet_scenario(
        fleet, models, fleet_flash, policy=policy, sla_ms=sla_ms, seed=0,
    )
    by = {p.phase: p for p in report.phases}
    print(f"  {policy:14s} {by['pre'].p99_ms:7.2f}m "
          f"{by['spike'].p99_ms:8.2f}m {by['recovery'].p99_ms:8.2f}m "
          f"{by['spike'].goodput_qps:13.0f}q")
print("\nround-robin feeds the slower A100s their fair share of the "
      "spike and their tail explodes; queue-aware JSQ shields the "
      "in-burst p99; speed-aware least-latency routing also banks the "
      "H100 headroom and wins on both tail and goodput.")
