"""Ad-serving scenario: pick the cheapest configuration that meets an SLA.

The paper's motivation: ad ranking runs DLRM inference under a tail
latency budget; every scheme that lowers batch latency either raises
the feasible batch size (throughput) or cuts the number of GPUs needed.

This example sweeps batch sizes per scheme on the end-to-end pipeline
and reports, for a 100 ms SLA, the largest feasible batch and the
implied queries-per-second per GPU.

Run:  python examples/ad_serving_sla.py
"""

from repro import (
    BASE,
    OPTMT,
    PAPER_MODEL,
    RPF_L2P_OPTMT,
    SimScale,
    run_inference,
)
from repro.config.model import DLRMConfig
from repro.core.embedding import kernel_workload

SLA_MS = 100.0
SCALE = SimScale("sla", 4)
BATCHES = (512, 1024, 2048, 4096)


def batch_model(batch_size: int) -> DLRMConfig:
    return DLRMConfig(
        num_tables=PAPER_MODEL.num_tables,
        table=PAPER_MODEL.table,
        batch_size=batch_size,
        pooling_factor=PAPER_MODEL.pooling_factor,
        bottom_mlp_dims=PAPER_MODEL.bottom_mlp_dims,
        top_mlp_dims=PAPER_MODEL.top_mlp_dims,
        dense_features=PAPER_MODEL.dense_features,
    )


print(f"SLA: {SLA_MS:.0f} ms batch latency, dataset=med_hot "
      f"(production-like hotness)\n")
print(f"{'scheme':15s} " + "".join(f"  BS={b:<6d}" for b in BATCHES)
      + "  max QPS/GPU")
for scheme in (BASE, OPTMT, RPF_L2P_OPTMT):
    row = f"{scheme.name:15s} "
    best_qps = 0.0
    for batch in BATCHES:
        model = batch_model(batch)
        workload = kernel_workload(model=model, scale=SCALE)
        result = run_inference(
            "med_hot", scheme, model=model, workload=workload
        )
        latency = result.batch_latency_ms
        ok = latency <= SLA_MS
        row += f" {latency:7.1f}{'*' if ok else ' '} "
        if ok:
            best_qps = max(best_qps, 1000.0 / latency * batch)
    row += f" {best_qps:10.0f}"
    print(row)

print("\n(* = meets the SLA; latencies in ms. The combined scheme either "
      "serves larger batches\nwithin the SLA or the same batch with "
      "headroom — fewer GPUs for the same traffic.)")

# ---------------------------------------------------------------------
# Tail latency under a live Poisson query stream (serving simulator):
# calibrate a batch-latency curve per scheme, then find the max QPS one
# GPU sustains at a p99 SLA.
# ---------------------------------------------------------------------
from repro.core.serving import (  # noqa: E402  (example flow)
    interpolated_latency_model,
    max_sustainable_qps,
)

print(f"\nLive serving: max sustainable QPS per GPU at p99 <= "
      f"{SLA_MS:.0f} ms (Poisson arrivals):\n")
for scheme in (BASE, RPF_L2P_OPTMT):
    points = []
    for batch in BATCHES:
        model = batch_model(batch)
        workload = kernel_workload(model=model, scale=SCALE)
        result = run_inference(
            "med_hot", scheme, model=model, workload=workload
        )
        points.append(result.batch_latency_ms)
    latency_model = interpolated_latency_model(BATCHES, points)
    qps, reports = max_sustainable_qps(
        latency_model, sla_ms=SLA_MS,
        qps_grid=(2000, 8000, 16000, 32000, 64000),
        scheme_name=scheme.name,
    )
    at_qps = next((r for r in reports if r.qps == qps), reports[0])
    print(f"  {scheme.name:15s} {qps:8.0f} QPS  "
          f"(p99 {at_qps.p99_ms:.1f} ms, mean batch "
          f"{at_qps.mean_batch_size:.0f}, GPU util "
          f"{at_qps.gpu_utilization:.0%})")
