"""Access-pattern drift and periodic re-pinning (Section IV-C extension).

Item popularity shifts over time (new ads trend, old ones fade).  A
one-shot L2 pin slowly goes stale; the paper proposes refreshing the
pinned set periodically.  This example serves a drifting high-hot
workload under three policies and plots (textually) the coverage decay.

Run:  python examples/drift_repinning.py
"""

from repro import HOTNESS_PRESETS, SimScale
from repro.core.drift import DriftModel, serve_with_drift
from repro.core.embedding import kernel_workload

workload = kernel_workload(scale=SimScale("drift-demo", 2))
drift = DriftModel(drift_per_batch=0.15, seed=11)
N_BATCHES = 8

print(f"serving {N_BATCHES} batches of a drifting high_hot workload "
      f"({drift.drift_per_batch:.0%} of hot rows churn per batch)\n")

reports = {
    "pin once, never refresh": serve_with_drift(
        workload, HOTNESS_PRESETS["high_hot"],
        n_batches=N_BATCHES, drift=drift,
    ),
    "re-pin every 4 batches": serve_with_drift(
        workload, HOTNESS_PRESETS["high_hot"],
        n_batches=N_BATCHES, drift=drift, repin_every=4,
    ),
    "re-pin every batch": serve_with_drift(
        workload, HOTNESS_PRESETS["high_hot"],
        n_batches=N_BATCHES, drift=drift, repin_every=1,
    ),
}

for label, report in reports.items():
    bars = " ".join(
        f"{s.pin_coverage:.2f}{'*' if s.repinned else ' '}"
        for s in report.steps
    )
    print(f"{label:26s} coverage/batch: {bars}")
    print(f"{'':26s} mean kernel {report.mean_time_us:.0f} us, "
          f"{report.repin_count} re-pins\n")

print("(* = batch where the pinned set was refreshed. Coverage is the "
      "fraction of accesses hitting pinned rows;\nthe paper hides the "
      "re-pin kernel behind CPU pre-processing, so refreshing is "
      "effectively free.)")
