"""Cost-effectiveness: optimized A100 vs stock H100 (paper Section VI-B4).

The paper's punchline for datacenter operators: the proposed software
schemes on an A100 beat *stock* PyTorch on the newer, more expensive
H100 NVL — you can buy the upgrade, or you can apply the optimizations.

Run:  python examples/h100_vs_a100.py
"""

from repro import (
    A100_SXM4_80GB,
    BASE,
    H100_NVL,
    HOTNESS_PRESETS,
    OPTMT,
    RPF_L2P_OPTMT,
    SimScale,
    run_table_kernel,
)
from repro.core.embedding import kernel_workload

DATASETS = ("high_hot", "med_hot", "low_hot", "random")
SCALE = SimScale("xgpu", 4)

workloads = {
    gpu.name: kernel_workload(gpu, scale=SCALE)
    for gpu in (A100_SXM4_80GB, H100_NVL)
}

times = {}
for gpu_name, workload in workloads.items():
    for scheme in (BASE, OPTMT, RPF_L2P_OPTMT):
        for dataset in DATASETS:
            result = run_table_kernel(
                workload, HOTNESS_PRESETS[dataset], scheme
            )
            times[(gpu_name, scheme.name, dataset)] = \
                result.profile.kernel_time_us

print("Per-table embedding kernel time (us):\n")
print(f"{'config':32s}" + "".join(f"{d:>10s}" for d in DATASETS))
for gpu_name in workloads:
    for scheme_name in ("base", "OptMT", "RPF+L2P+OptMT"):
        row = f"{gpu_name:18s} {scheme_name:13s}"
        for dataset in DATASETS:
            row += f"{times[(gpu_name, scheme_name, dataset)]:10.0f}"
        print(row)

a100, h100 = A100_SXM4_80GB.name, H100_NVL.name
uplift = sum(
    times[(a100, 'base', d)] / times[(h100, 'base', d)] for d in DATASETS
) / len(DATASETS)
cross = sum(
    times[(h100, 'base', d)] / times[(a100, 'RPF+L2P+OptMT', d)]
    for d in DATASETS
) / len(DATASETS)

print(f"\nH100 base uplift over A100 base:            {uplift:.2f}x "
      "(paper: ~1.47x)")
print(f"Optimized A100 vs stock H100:               {cross:.2f}x "
      "(paper: optimized A100 ~23% faster)")
print("\nConclusion: software optimization on the cheaper GPU competes "
      "with buying newer hardware,\nand the same schemes stack on the "
      "newer GPU anyway (up to "
      f"{times[(h100, 'base', 'random')] / times[(h100, 'RPF+L2P+OptMT', 'random')]:.2f}x on H100).")
