"""Quickstart: measure one embedding-table kernel under every scheme.

Reproduces the core of the paper in ~a minute: the stock PyTorch
embedding-bag kernel is memory-latency bound on a `random` access
pattern, and OptMT + register prefetching + L2 pinning recover most of
the gap to the cache-friendly `one_item` case.

Run:  python examples/quickstart.py
"""

from repro import (
    BASE,
    HOTNESS_PRESETS,
    OPTMT,
    RPF_L2P_OPTMT,
    RPF_OPTMT,
    Scheme,
    SimScale,
    kernel_workload,
    run_table_kernel,
)

# A 4-SM proportional slice of the A100 keeps this fast; bump num_sms
# (up to 108) for higher fidelity.
workload = kernel_workload(scale=SimScale("quickstart", 4))

print(f"simulating {workload.gpu.name}: "
      f"batch={workload.batch_size}, pooling={workload.pooling_factor}, "
      f"rows={workload.table_rows}\n")

schemes = [BASE, OPTMT, RPF_OPTMT, Scheme(l2_pinning=True, optmt=True),
           RPF_L2P_OPTMT]

header = f"{'dataset':10s}" + "".join(f"{s.name:>16s}" for s in schemes)
print(header)
print("-" * len(header))

base_times = {}
for dataset in ("one_item", "high_hot", "med_hot", "low_hot", "random"):
    spec = HOTNESS_PRESETS[dataset]
    row = f"{dataset:10s}"
    for scheme in schemes:
        result = run_table_kernel(workload, spec, scheme)
        t = result.profile.kernel_time_us
        if scheme is BASE:
            base_times[dataset] = t
            row += f"{t:13.0f}us "
        else:
            row += f"{base_times[dataset] / t:14.2f}x "
    print(row)

print("\nAnatomy of the win (random dataset):")
for scheme in (BASE, RPF_L2P_OPTMT):
    p = run_table_kernel(workload, HOTNESS_PRESETS["random"], scheme).profile
    print(
        f"  {scheme.name:15s} issue-slot util {p.issued_per_scheduler:.2f}, "
        f"long-scoreboard stall {p.long_scoreboard_stall:.1f} cyc/inst, "
        f"HBM {p.avg_hbm_bw_gbps:.0f} GB/s ({p.hbm_bw_util_pct:.0f}% of peak)"
    )

gap_base = base_times["random"] / base_times["one_item"]
comb = run_table_kernel(
    workload, HOTNESS_PRESETS["random"], RPF_L2P_OPTMT
).profile.kernel_time_us
one_comb = run_table_kernel(
    workload, HOTNESS_PRESETS["one_item"], RPF_L2P_OPTMT
).profile.kernel_time_us
print(
    f"\nworst-case gap (random vs one_item): {gap_base:.2f}x stock -> "
    f"{comb / one_comb:.2f}x combined   (paper: 3.2x -> 1.57x)"
)
