"""Heterogeneous fleet serving: routing, capacity, and table sharding.

Production recommendation inference runs on a *fleet*: a router fans a
shared query stream out to replicas of mixed GPU generations.  This
example calibrates per-GPU batch-latency curves from the kernel
simulator, then shows:

1. a mixed A100+H100 fleet sustains more QPS at a p99 SLA than a
   homogeneous all-A100 fleet of the same GPU count;
2. join-shortest-queue routing beats round-robin on fleet p99 at high
   load (oblivious routing overloads the slower A100s first);
3. how many replicas an autoscaler would provision per load level; and
4. fleet-level embedding-table sharding across unequal GPUs.

Run:  python examples/fleet_serving.py
"""

from repro import (
    A100_SXM4_80GB,
    H100_NVL,
    RPF_L2P_OPTMT,
    FleetSpec,
    calibrated_latency_model,
    fleet_max_sustainable_qps,
    place_tables,
    simulate_fleet,
)
from repro.core.serving import BatchingPolicy
from repro.fleet import autoscaler_sweep

SLA_MS = 100.0
SCHEME = RPF_L2P_OPTMT
BATCHING = BatchingPolicy(max_batch=2048, timeout_ms=5.0)

print(f"Calibrating per-GPU batch-latency curves ({SCHEME.name}, "
      "med_hot)...")
models = {
    gpu.name: calibrated_latency_model(gpu, SCHEME, num_sms=2)
    for gpu in (A100_SXM4_80GB, H100_NVL)
}
for name, model in models.items():
    print(f"  {name:16s} batch 512 -> {model(512):6.1f} ms, "
          f"2048 -> {model(2048):6.1f} ms")

fleets = (
    FleetSpec.homogeneous(A100_SXM4_80GB, 4, name="4xA100",
                          scheme=SCHEME, batching=BATCHING),
    FleetSpec.mixed({A100_SXM4_80GB: 2, H100_NVL: 2},
                    name="2xA100+2xH100", scheme=SCHEME, batching=BATCHING),
)

# ---------------------------------------------------------------------
# (1) capacity at the SLA: mixed beats homogeneous at equal GPU count
# ---------------------------------------------------------------------
print(f"\nMax sustainable QPS at p99 <= {SLA_MS:.0f} ms "
      "(join-shortest-queue):\n")
capacity = {}
for fleet in fleets:
    qps, _ = fleet_max_sustainable_qps(
        fleet, models, sla_ms=SLA_MS, policy="jsq",
    )
    capacity[fleet.name] = qps
    print(f"  {fleet.describe():45s} {qps:9.0f} QPS "
          f"({qps / fleet.cost_units:7.0f} QPS per cost unit)")
if capacity["4xA100"] > 0:
    gain = 100.0 * (capacity["2xA100+2xH100"] / capacity["4xA100"] - 1.0)
    print(f"\n  -> same GPU count, {gain:.0f}% more QPS from swapping two "
          "A100s for H100s")

# ---------------------------------------------------------------------
# (2) routing policy face-off at high load on the mixed fleet
# ---------------------------------------------------------------------
mixed = fleets[1]
# fall back to a small probe load if nothing met the SLA on the grid
load = 0.9 * capacity[mixed.name] or 2000.0
print(f"\nMixed fleet at high load ({load:.0f} QPS, 90% of its "
      "capacity), by routing policy:\n")
print(f"  {'policy':14s} {'p50':>8s} {'p95':>8s} {'p99':>10s} "
      f"{'util(A100/H100)':>16s}")
for policy in ("round-robin", "power-of-two", "jsq", "least-latency"):
    report = simulate_fleet(
        mixed, models, qps=load, duration_s=2.0, policy=policy,
    )
    utils = {r.scheme_name: r.gpu_utilization
             for r in report.replica_reports}
    a_util = utils[f"{A100_SXM4_80GB.name}/0"]
    h_util = utils[f"{H100_NVL.name}/0"]
    flag = " <- SLA" if report.meets_sla(SLA_MS) else ""
    print(f"  {policy:14s} {report.p50_ms:7.1f}  {report.p95_ms:7.1f}  "
          f"{report.p99_ms:9.1f}  {a_util:7.0%}/{h_util:<7.0%}{flag}")
print("\n  (round-robin feeds the A100s the same load as the H100s, so "
      "their queues\n   blow up first; queue-aware policies shift load "
      "to the faster replicas)")

# ---------------------------------------------------------------------
# (3) autoscaler view: replicas needed per load level
# ---------------------------------------------------------------------
base = capacity["4xA100"] / 4 or 1000.0
grid = [round(base * f) for f in (0.5, 1.0, 2.0, 3.0)]
sweep = autoscaler_sweep(
    lambda n: FleetSpec.homogeneous(
        A100_SXM4_80GB, n, scheme=SCHEME, batching=BATCHING,
    ),
    models, qps_grid=grid, sla_ms=SLA_MS, max_replicas=8,
)
print(f"\nA100 replicas needed to hold p99 <= {SLA_MS:.0f} ms:\n")
for qps, n in sweep:
    print(f"  {qps:9.0f} QPS -> "
          + (f"{n} replica(s)" if n else ">8 replicas"))

# ---------------------------------------------------------------------
# (4) fleet-level table sharding across unequal GPUs
# ---------------------------------------------------------------------
mix = {"high_hot": 100, "med_hot": 75, "low_hot": 50, "random": 25}
placement = place_tables(
    mix, SCHEME,
    [A100_SXM4_80GB, A100_SXM4_80GB, H100_NVL, H100_NVL],
    num_sms=2,
)
print("\nSharding 250 tables (Mix: 100 hot / 75 med / 50 low / 25 "
      "random) across 2xA100 + 2xH100:\n")
for shard in placement.shards:
    print(f"  {shard.gpu_name:16s} {len(shard.tables):3d} tables, "
          f"{shard.compute_us / 1e3:5.2f} ms")
print(f"\n  imbalance (max/mean time) = {placement.imbalance:.3f} — the "
      "H100s absorb more tables\n  so every GPU finishes together "
      "(count-balanced sharding would leave them idle).")
