"""Multi-tenant model-zoo serving: GPU sharing, HBM arbitration, SLAs.

Production fleets co-locate many recommendation models per device.
This example builds a three-variant model zoo (distinct table sizes,
pooling factors and hotness), then shows:

1. HBM arbitration: a pressured budget waterfilled across the tenants'
   embedding caches on marginal hit rate, floors honoured exactly;
2. MPS-style interference: per-tenant contention factors calibrated
   from each variant's solo SM/HBM demand, and the consolidation
   trade — aggregate goodput up, per-tenant p99 eroded;
3. zoo placement across a heterogeneous A100+H100 fleet and the
   per-tenant fleet reports that come back.

Run:  python examples/multi_tenant_zoo.py
"""

from repro import A100_SXM4_80GB, H100_NVL, arbitrate, example_zoo
from repro.fleet import FleetSpec, place_zoo, tiered_latency_model
from repro.memstore import HostLink
from repro.tenancy import (
    ZooSpec,
    calibrate_zoo,
    simulate_zoo_fleet,
    simulate_zoo_serving,
    zoo_effective_times,
    zoo_hit_curves,
)

SEED = 0
zoo = example_zoo(3, base_qps=4000.0, duration_s=4.0, sla_ms=40.0)
print(f"Model zoo: {zoo.describe()}")
for tenant in zoo.tenants:
    print(f"  {tenant.name:10s} {tenant.model.num_tables:3d} tables x "
          f"{tenant.model.table.rows:,} rows, pooling "
          f"{tenant.model.pooling_factor}, SLA {tenant.sla_ms:g} ms")

# ---------------------------------------------------------------------
# (1) HBM arbitration under pressure
# ---------------------------------------------------------------------
print("\nCalibrating per-tenant kernels and cache curves (2-SM slice)...")
calibrations = calibrate_zoo(
    zoo, (A100_SXM4_80GB, H100_NVL), num_sms=2, seed=SEED,
)
curves = zoo_hit_curves(zoo, num_sms=2, seed=SEED)
budget = sum(c.table_bytes for c in curves.values()) // 20  # 5% of zoo
grant = arbitrate(budget, curves)
print(f"\nWaterfilling {budget / 1e6:.0f} MB of HBM across the zoo "
      "(marginal hit rate per byte):\n")
for name, g in grant.grants.items():
    print(f"  {name:10s} {g.granted_bytes / 1e6:7.1f} MB "
          f"({g.granted_rows:,} rows/table, floor {g.floor_rows:,}) "
          f"-> hit rate {g.hit_rate:.3f}")
print(f"  leftover {grant.leftover_bytes / 1e6:.1f} MB "
      "(budget conserved exactly)")

# ---------------------------------------------------------------------
# (2) consolidation on one A100: goodput up, p99 eroded
# ---------------------------------------------------------------------
gpu_cal = calibrations[A100_SXM4_80GB.name]
link = HostLink.pcie(A100_SXM4_80GB)
models = {
    name: tiered_latency_model(
        gpu_cal[name].latency_ms,
        host_us_per_query=curves[name].host_us_per_query(
            grant.grant(name).granted_rows, link
        ),
    )
    for name in zoo.tenant_names
}
demands = {name: gpu_cal[name].demand for name in zoo.tenant_names}
print("\nOne A100, solo vs consolidated (MPS-style sharing):\n")
print(f"  {'tenant':10s} {'solo p99':>9s} {'zoo p99':>9s} "
      f"{'factor':>7s} {'goodput':>9s} {'SLA %':>6s}")
solo_total = 0.0
solo_p99 = {}
for name in zoo.tenant_names:
    alone = ZooSpec(name=f"solo-{name}",
                    tenants=(zoo.tenant(name),))
    solo = simulate_zoo_serving(
        alone, {name: models[name]},
        demands={name: demands[name]}, seed=SEED,
    )
    solo_total += solo.aggregate_goodput_qps
    solo_p99[name] = solo.tenant(name).p99_ms
consolidated = simulate_zoo_serving(
    zoo, models, demands=demands, seed=SEED,
)
for name in zoo.tenant_names:
    report = consolidated.tenant(name)
    print(f"  {name:10s} {solo_p99[name]:8.2f}  "
          f"{report.p99_ms:8.2f}  {consolidated.contention[name]:6.2f}  "
          f"{report.goodput_qps:8.0f}  {report.sla_hit_pct:5.1f}")
print(f"\n  sum of solo goodput {solo_total:8.0f} QPS on 3 GPUs"
      f"\n  consolidated        {consolidated.aggregate_goodput_qps:8.0f}"
      " QPS on 1 GPU — the consolidation trade in one line")

# ---------------------------------------------------------------------
# (3) zoo placement on a heterogeneous fleet
# ---------------------------------------------------------------------
fleet = FleetSpec.mixed({A100_SXM4_80GB: 1, H100_NVL: 1}, name="a+h")
times = zoo_effective_times(
    zoo, [A100_SXM4_80GB, H100_NVL], num_sms=2, seed=SEED,
)
placement = place_zoo(
    times, zoo.tenant_names,
    [(r.name, r.gpu.name) for r in fleet.replicas],
)
print("\nPacking the zoo onto 1xA100 + 1xH100 by tiered effective "
      "time:\n")
for shard in placement.shards:
    tenants = ", ".join(shard.tenants) or "(idle)"
    print(f"  {shard.replica_name:18s} {tenants:24s} "
          f"{shard.effective_us / 1e3:6.2f} ms/batch")
fleet_models = {
    name: {g: tiered_latency_model(
        calibrations[g][name].latency_ms,
        host_us_per_query=curves[name].host_us_per_query(
            grant.grant(name).granted_rows, link
        ),
    ) for g in calibrations}
    for name in zoo.tenant_names
}
zoo_fleet = simulate_zoo_fleet(
    zoo, fleet, fleet_models,
    assignments=placement.assignments, demands=demands, seed=SEED,
)
print("\nPer-tenant fleet reports (placed replicas only):\n")
for name, report in zoo_fleet.tenant_reports.items():
    print(f"  {name:10s} p99 {report.p99_ms:7.2f} ms, goodput "
          f"{report.goodput_qps:7.0f} QPS, SLA {report.sla_hit_pct:5.1f}%")
print(f"\n  fleet aggregate goodput {zoo_fleet.aggregate_goodput_qps:.0f} "
      f"QPS, attainment {zoo_fleet.sla_attainment_pct:.1f}%")
