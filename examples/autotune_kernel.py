"""The Section VII static profiling framework, end to end.

Given a workload, the framework (i) diagnoses whether the kernel is
memory-latency bound, (ii-iii) sweeps `-maxrregcount` for the OptMT
point, (v) checks the pinning opportunity, (vi) sweeps prefetch buffers
and distances, and (vii) combines what helped — printing its evidence
at every step, like the paper's adoption recipe.

Run:  python examples/autotune_kernel.py [dataset]
"""

import sys

from repro import HOTNESS_PRESETS, SimScale, autotune
from repro.core.embedding import kernel_workload

dataset = sys.argv[1] if len(sys.argv) > 1 else "low_hot"
if dataset not in HOTNESS_PRESETS:
    raise SystemExit(
        f"unknown dataset {dataset!r}; pick one of {list(HOTNESS_PRESETS)}"
    )

workload = kernel_workload(scale=SimScale("autotune", 4))
print(f"auto-tuning the embedding kernel for dataset={dataset} on "
      f"{workload.gpu.name}...\n")

report = autotune(
    HOTNESS_PRESETS[dataset],
    workload=workload,
    warp_targets=(32, 40, 48),
    distances=(1, 2, 4, 6),
    buffers=("register", "shared", "local"),
)

print(report.describe())
print(
    f"\nbaseline  {report.baseline.profile.kernel_time_us:7.1f} us"
    f"\ntuned     {report.final.profile.kernel_time_us:7.1f} us"
    f"   ({report.speedup:.2f}x, scheme {report.scheme.name})"
)
