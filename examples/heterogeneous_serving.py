"""Heterogeneous table mixes (paper Table VII / Figure 17).

Production models mix hot and cold embedding tables.  This example runs
the full 250-table embedding stage for the paper's three mixes and for
a custom mix, showing where each optimization pays off and what the
functional model actually computes for a served batch.

Run:  python examples/heterogeneous_serving.py
"""

import numpy as np

from repro import (
    BASE,
    HOTNESS_PRESETS,
    OPTMT,
    RPF_L2P_OPTMT,
    TABLE_MIXES,
    SimScale,
    run_embedding_stage,
)
from repro.config.model import DLRMConfig, EmbeddingTableConfig
from repro.core.embedding import kernel_workload
from repro.core.schemes import L2P_OPTMT, RPF_OPTMT
from repro.dlrm.inference import make_batch, serve_topk
from repro.dlrm.model import DLRM

workload = kernel_workload(scale=SimScale("hetero", 4))
schemes = (BASE, OPTMT, RPF_OPTMT, L2P_OPTMT, RPF_L2P_OPTMT)

mixes = dict(TABLE_MIXES)
mixes["MixCustom"] = {"one_item": 50, "high_hot": 50, "med_hot": 50,
                      "low_hot": 50, "random": 50}

print("Embedding-stage latency (ms) for heterogeneous mixes "
      "(250 tables each):\n")
print(f"{'mix':10s}" + "".join(f"{s.name:>16s}" for s in schemes))
for name, mix in mixes.items():
    row = f"{name:10s}"
    base_ms = None
    for scheme in schemes:
        stage = run_embedding_stage(workload, mix, scheme)
        ms = stage.total_time_us / 1e3
        if scheme is BASE:
            base_ms = ms
            row += f"{ms:14.1f}ms"
        else:
            row += f"{base_ms / ms:15.2f}x"
    print(row)

print("\nFunctional check — serving a batch through a small DLRM with a "
      "heterogeneous mix:")
config = DLRMConfig(
    num_tables=8,
    table=EmbeddingTableConfig(rows=2000, dim=32),
    batch_size=64,
    pooling_factor=20,
    bottom_mlp_dims=(32, 64, 32),
    dense_features=32,
    top_mlp_dims=(64, 32, 1),
)
model = DLRM(config, seed=0)
batch = make_batch(config, HOTNESS_PRESETS["med_hot"], seed=42)
top, scores = serve_topk(model, batch, k=5)
print(f"  top-5 samples by predicted CTR: {top.tolist()}")
print(f"  CTRs: {np.round(scores, 4).tolist()}")
