"""Generalizability: the paper's schemes on a GNN neighbor-gather kernel.

Section VII argues the techniques apply to any memory-latency-bound
gather kernel, naming graph neural networks.  A GNN layer's neighbor
aggregation is exactly an embedding bag over the CSR adjacency
(variable pooling = degree distribution), so the whole stack — OptMT,
prefetching, pinning, even the auto-tuner — runs on it unchanged.

Run:  python examples/gnn_aggregation.py
"""

from repro import BASE, OPTMT, RPF_L2P_OPTMT, SimScale
from repro.core.embedding import kernel_workload, run_table_kernel
from repro.core.schemes import L2P_OPTMT, RPF_OPTMT
from repro.datasets.analysis import coverage_at
from repro.datasets.graph import barabasi_albert_trace
from repro.datasets.spec import DatasetSpec

# A scale-free graph: hubs give the power-law reuse pinning exploits.
trace = barabasi_albert_trace(
    num_vertices=30_000, attachment=8, batch_vertices=80, seed=3,
)
print(f"graph gather layer: {trace.batch_size} vertices/batch, "
      f"{trace.n_accesses} neighbor gathers, "
      f"mean degree {trace.n_accesses / trace.batch_size:.1f}")
print(f"hub concentration: top-10% vertices receive "
      f"{coverage_at(trace, 10.0):.0f}% of gathers\n")

workload = kernel_workload(
    scale=SimScale("gnn", 4),
    batch_size=trace.batch_size,
    table_rows=trace.table_rows,
)
spec = DatasetSpec("graph_ba", "uniform", 50.0)  # identity for reporting

base_time = None
for scheme in (BASE, OPTMT, RPF_OPTMT, L2P_OPTMT, RPF_L2P_OPTMT):
    result = run_table_kernel(workload, spec, scheme, trace=trace)
    t = result.profile.kernel_time_us
    if base_time is None:
        base_time = t
        print(f"{scheme.name:15s} {t:8.1f} us  "
              f"(issue util {result.profile.issued_per_scheduler:.2f}, "
              f"sb stall {result.profile.long_scoreboard_stall:.1f})")
    else:
        print(f"{scheme.name:15s} {t:8.1f} us  {base_time / t:5.2f}x")

print("\nSame mechanics, different domain: the gather kernel is "
      "latency-bound, WLP + prefetching hide\nthe pointer-chase, and "
      "pinning captures the hub vertices — as the paper predicts for "
      "GNNs.")
