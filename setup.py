"""Legacy setup shim: the execution environment is offline and lacks the
``wheel`` package, so PEP 517 editable installs cannot build; this keeps
``pip install -e .`` working via setuptools' develop path.  All metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
