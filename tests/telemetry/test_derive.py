"""Derived timelines and interference attribution from run records."""

import numpy as np
import pytest

from repro.telemetry.derive import (
    in_flight_timeline,
    interference_attribution,
    max_queue_depth,
    queue_depth_timeline,
    timeline_summary,
)
from repro.telemetry.events import (
    ArrivalBlock,
    BatchBlock,
    FleetRun,
    GroupRun,
    StreamRun,
)


def _stream_run():
    # 4 queries at 0.0/0.1/0.2/0.3; batch of 3 dispatched at 0.2
    # (running 0.2->0.4), batch of 1 at 0.4 (running 0.4->0.5)
    arrivals = ArrivalBlock(
        times=np.array([0.0, 0.1, 0.2, 0.3]),
        phase_ids=np.zeros(4, dtype=np.int64),
        phases=("all",),
    )
    batches = BatchBlock(
        starts=np.array([0.2, 0.4]),
        exec_s=np.array([0.2, 0.1]),
        sizes=np.array([3, 1], dtype=np.int64),
        phases=("all",),
    )
    return StreamRun(
        meta={"kind": "stream", "scenario": "probe"},
        arrivals=arrivals,
        batches=batches,
    )


class TestQueueDepth:
    def test_stepwise_depths(self):
        times, depth = queue_depth_timeline(_stream_run())
        # chronological: arrivals 0.0, 0.1, 0.2 then dispatch -3 at
        # 0.2 (arrival first at the tie), arrival 0.3, dispatch -1
        assert times.tolist() == [0.0, 0.1, 0.2, 0.2, 0.3, 0.4]
        assert depth.tolist() == [1, 2, 3, 0, 1, 0]

    def test_max_queue_depth(self):
        assert max_queue_depth(_stream_run()) == 3

    def test_arrival_at_dispatch_instant_joins_departing_batch(self):
        # the +1 lands before the -n at an exactly shared timestamp
        run = _stream_run()
        _, depth = queue_depth_timeline(run)
        assert depth.min() >= 0

    def test_empty_run(self):
        run = StreamRun(
            meta={"kind": "stream"},
            arrivals=ArrivalBlock(
                times=np.empty(0),
                phase_ids=np.empty(0, dtype=np.int64),
            ),
            batches=BatchBlock(
                starts=np.empty(0), exec_s=np.empty(0),
                sizes=np.empty(0, dtype=np.int64),
            ),
        )
        assert max_queue_depth(run) == 0


class TestInFlight:
    def test_stepwise_flight(self):
        times, flight = in_flight_timeline(_stream_run())
        assert times.tolist() == [0.2, pytest.approx(0.4), 0.4, 0.5]
        # batch of 3 in flight 0.2-0.4, then batch of 1 until 0.5
        assert flight.tolist() == [3, 4, 1, 0]

    def test_fleet_sums_replicas(self):
        arrivals = ArrivalBlock(
            times=np.array([0.0, 0.0]),
            phase_ids=np.zeros(2, dtype=np.int64),
        )
        replica = lambda name: BatchBlock(
            starts=np.array([0.0]),
            exec_s=np.array([1.0]),
            sizes=np.array([1], dtype=np.int64),
            replica=name,
            member_times=np.array([0.0]),
            member_phases=np.zeros(1, dtype=np.int64),
        )
        run = FleetRun(
            meta={"kind": "fleet"},
            arrivals=arrivals,
            replicas=[replica("a"), replica("b")],
        )
        _, flight = in_flight_timeline(run)
        assert flight.max() == 2


class TestInterferenceAttribution:
    def test_zoo_attribution(self):
        run = GroupRun(
            meta={
                "kind": "zoo",
                "zoo": "z",
                "contention": {"a": 1.5, "b": 1.2},
                "loads": {"a": 0.8, "b": 0.4},
            },
            children={},
        )
        attr = interference_attribution(run)
        assert attr["a"]["factor"] == 1.5
        assert attr["a"]["co_runner_load"] == pytest.approx(0.4)
        assert attr["a"]["latency_penalty_pct"] == pytest.approx(50.0)
        assert attr["b"]["co_runner_load"] == pytest.approx(0.8)

    def test_zoo_fleet_attribution_takes_worst_replica(self):
        run = GroupRun(
            meta={
                "kind": "zoo_fleet",
                "contention": {
                    "gpu0": {"a": 1.1, "b": 1.3},
                    "gpu1": {"a": 1.4},
                },
            },
            children={},
        )
        attr = interference_attribution(run)
        assert attr["a"]["factor"] == 1.4
        assert attr["a"]["replica_factors"] == {"gpu0": 1.1, "gpu1": 1.4}
        assert attr["b"]["latency_penalty_pct"] == pytest.approx(30.0)

    def test_non_zoo_run_rejected(self):
        run = GroupRun(meta={"kind": "stream"}, children={})
        with pytest.raises(ValueError, match="needs a zoo run"):
            interference_attribution(run)


class TestTimelineSummary:
    def test_stream_digest(self):
        (row,) = timeline_summary([_stream_run()])
        assert row["kind"] == "stream"
        assert row["name"] == "probe"
        assert row["n_queries"] == 4
        assert row["n_batches"] == 2
        assert row["max_queue_depth"] == 3
        assert row["max_in_flight"] == 4

    def test_group_recurses_into_children(self):
        child = _stream_run()
        child.meta = dict(child.meta, tenant="t0")
        group = GroupRun(meta={"kind": "zoo"}, children={"t0": child})
        (row,) = timeline_summary([group])
        assert row["tenant"] == "t0"
