"""Record -> replay determinism, differential against the live runs.

The three golden scenarios of the regression suite (single-GPU
serving, routed fleet, multi-tenant zoo) are recorded through a
:class:`RecorderSink` and folded back with
:func:`repro.telemetry.replay.replay_reports`; every replayed report
must equal the live one **field for field** (dataclass ``==``, no
tolerance) without invoking any simulator.  The rest of the module
pins the failure modes: schema mismatch, truncation, corruption all
raise :class:`ReplayError` with a readable message.
"""

import dataclasses
import io
import json

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.core.serving import BatchingPolicy, ContinuousBatching, simulate_serving
from repro.fleet import FleetSpec, simulate_fleet
from repro.telemetry.events import SCHEMA_VERSION
from repro.telemetry.replay import (
    ReplayError,
    iter_records,
    load_runs,
    replay_report,
    replay_reports,
)
from repro.telemetry.sinks import RecorderSink, use_sink
from repro.tenancy import ShareDemand, example_zoo, simulate_zoo_serving
from repro.traffic import (
    scenario_profile,
    simulate_fleet_scenario,
    simulate_scenario_serving,
)


def _toy_model(batch: int) -> float:
    return 10.0 + 0.01 * batch


def _fast_toy_model(batch: int) -> float:
    return 6.0 + 0.006 * batch


def _record(fn):
    """Run ``fn`` under a recorder; return (live results, JSONL text)."""
    buf = io.StringIO()
    recorder = RecorderSink(buf)
    with use_sink(recorder):
        live = fn()
    recorder.close()
    return live, buf.getvalue()


def _assert_identical(replayed, live):
    # dataclass equality first (the contract), then per-field on
    # failure for a readable diff
    if replayed != live:
        for f in dataclasses.fields(live):
            assert getattr(replayed, f.name) == getattr(live, f.name), \
                f.name
    assert replayed == live


class TestGoldenServingReplay:
    def test_fixed_and_continuous_replay_identical(self):
        def run():
            fixed = simulate_serving(
                _toy_model, qps=800, duration_s=5.0, seed=42,
                policy=BatchingPolicy(max_batch=256, timeout_ms=5.0),
            )
            continuous = simulate_serving(
                _toy_model, qps=800, duration_s=5.0, seed=42,
                policy=ContinuousBatching(max_batch=256, sla_ms=30.0),
            )
            return fixed, continuous

        (fixed, continuous), text = _record(run)
        replayed = replay_reports(io.StringIO(text))
        assert len(replayed) == 2
        _assert_identical(replayed[0], fixed)
        _assert_identical(replayed[1], continuous)

    def test_flash_scenario_replays_identical(self):
        def run():
            return simulate_scenario_serving(
                scenario_profile("flash", base_qps=2500, duration_s=6.0),
                _toy_model,
                policy=ContinuousBatching(max_batch=256, sla_ms=30.0),
                sla_ms=30.0,
                seed=7,
            )

        live, text = _record(run)
        (replayed,) = replay_reports(io.StringIO(text))
        _assert_identical(replayed, live)
        # per-phase stats are part of the contract too
        assert replayed.phases == live.phases


class TestGoldenFleetReplay:
    def _fleet(self):
        fleet = FleetSpec.mixed(
            {A100_SXM4_80GB: 1, H100_NVL: 1}, name="golden-fleet"
        )
        models = {
            A100_SXM4_80GB.name: _toy_model,
            H100_NVL.name: _fast_toy_model,
        }
        return fleet, models

    def test_poisson_jsq_replays_identical(self):
        fleet, models = self._fleet()
        live, text = _record(lambda: simulate_fleet(
            fleet, models, qps=3000, duration_s=3.0,
            policy="jsq", seed=7,
        ))
        (replayed,) = replay_reports(io.StringIO(text))
        _assert_identical(replayed, live)
        assert replayed.replica_reports == live.replica_reports

    def test_mmpp_least_latency_replays_identical(self):
        fleet, models = self._fleet()
        live, text = _record(lambda: simulate_fleet_scenario(
            fleet, models,
            scenario_profile("mmpp", base_qps=2000, duration_s=5.0),
            policy="least-latency", sla_ms=40.0, seed=7,
        ))
        (replayed,) = replay_reports(io.StringIO(text))
        _assert_identical(replayed, live)


class TestGoldenZooReplay:
    def test_zoo_serving_replays_identical(self):
        zoo = example_zoo(
            3, base_qps=900.0, duration_s=4.0, sla_ms=45.0,
            hbm_floor_fraction=0.01,
        )
        models = {name: _toy_model for name in zoo.tenant_names}
        demands = {
            "med_hot": ShareDemand(0.6, 0.3),
            "high_hot": ShareDemand(0.9, 0.1),
            "low_hot": ShareDemand(0.5, 0.4),
        }
        live, text = _record(lambda: simulate_zoo_serving(
            zoo, models, demands=demands, seed=13,
        ))
        (replayed,) = replay_reports(io.StringIO(text))
        _assert_identical(replayed, live)
        assert set(replayed.tenant_reports) == set(live.tenant_reports)
        for name, report in live.tenant_reports.items():
            _assert_identical(replayed.tenant_reports[name], report)


class TestReplayErrors:
    def _valid_recording(self):
        _, text = _record(lambda: simulate_serving(
            _toy_model, qps=200, duration_s=1.0, seed=0,
            policy=BatchingPolicy(max_batch=64, timeout_ms=5.0),
        ))
        return text

    def test_empty_file(self):
        with pytest.raises(ReplayError, match="empty file"):
            list(iter_records(io.StringIO("")))

    def test_wrong_header(self):
        bad = '{"k": "nope"}\n'
        with pytest.raises(ReplayError, match="not a telemetry recording"):
            list(iter_records(io.StringIO(bad)))

    def test_schema_mismatch(self):
        bad = json.dumps({
            "k": "telemetry", "schema": SCHEMA_VERSION + 1,
        }) + "\n"
        with pytest.raises(ReplayError, match="is not supported"):
            list(iter_records(io.StringIO(bad)))

    def test_truncated_missing_footer(self):
        lines = self._valid_recording().splitlines()[:-1]
        with pytest.raises(ReplayError, match="truncated"):
            load_runs(io.StringIO("\n".join(lines) + "\n"))

    def test_truncated_mid_line(self):
        text = self._valid_recording()
        with pytest.raises(ReplayError, match="not valid JSON"):
            load_runs(io.StringIO(text[: len(text) // 2]))

    def test_footer_count_mismatch(self):
        lines = self._valid_recording().splitlines()
        footer = json.loads(lines[-1])
        footer["records"] += 1
        lines[-1] = json.dumps(footer)
        with pytest.raises(ReplayError, match="footer says"):
            load_runs(io.StringIO("\n".join(lines) + "\n"))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReplayError, match="cannot read"):
            load_runs(str(tmp_path / "ghost.jsonl"))

    def test_unknown_record_kind(self):
        text = (
            '{"k": "telemetry", "schema": %d}\n'
            '{"k": "x"}\n'
            '{"k": "end", "records": 1}\n' % SCHEMA_VERSION
        )
        with pytest.raises(ReplayError, match="unknown record kind"):
            load_runs(io.StringIO(text))

    def test_run_end_without_run_start(self):
        text = (
            '{"k": "telemetry", "schema": %d}\n'
            '{"k": "e", "t": "run_end"}\n'
            '{"k": "end", "records": 1}\n' % SCHEMA_VERSION
        )
        with pytest.raises(ReplayError, match="without run_start"):
            load_runs(io.StringIO(text))

    def test_block_outside_run(self):
        lines = self._valid_recording().splitlines()
        # drop the run_start so the first block floats free
        body = [
            line for line in lines[1:-1]
            if '"t":"run_start"' not in line.replace(" ", "")
        ]
        footer = json.dumps({"k": "end", "records": len(body)})
        text = "\n".join([lines[0], *body, footer]) + "\n"
        with pytest.raises(ReplayError, match="outside any run"):
            load_runs(io.StringIO(text))

    def test_unknown_run_kind_at_fold(self):
        text = (
            '{"k": "telemetry", "schema": %d}\n'
            '{"k": "e", "t": "run_start", "meta": {"kind": "zoo"}}\n'
            '{"k": "e", "t": "run_end"}\n'
            '{"k": "end", "records": 2}\n' % SCHEMA_VERSION
        )
        (run,) = load_runs(io.StringIO(text))
        run.meta["kind"] = "comet"
        with pytest.raises(ReplayError, match="cannot replay run kind"):
            replay_report(run)

    def test_non_structural_events_are_tolerated(self):
        text = (
            '{"k": "telemetry", "schema": %d}\n'
            '{"k": "e", "t": "cache_hit", "count": 3, "label": "s"}\n'
            '{"k": "end", "records": 1}\n' % SCHEMA_VERSION
        )
        assert load_runs(io.StringIO(text)) == []
