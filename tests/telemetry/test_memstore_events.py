"""Memstore + arbiter telemetry: cache events off the real decision points."""

import numpy as np
import pytest

from repro.memstore.policy import make_policy
from repro.memstore.store import EmbeddingStore, HostLink, TierPlan
from repro.telemetry.sinks import StatsSink, use_sink
from repro.tenancy import example_zoo, zoo_hit_curves
from repro.tenancy.arbiter import arbitrate, rearbitrate_on_drift

_LINK = HostLink("pcie", 25.0, 10.0)


def _lru_store(sink=None, **kwargs):
    plan = TierPlan(table_rows=64, resident_rows=4, row_bytes=128,
                    policy="lru")
    return EmbeddingStore(
        plan, _LINK, policy=make_policy("lru", 4), sink=sink, **kwargs
    )


class TestStoreEvents:
    def test_lookup_emits_hit_miss_and_fetch(self):
        stats = StatsSink()
        store = _lru_store(sink=stats, label="t0")
        tier = store.lookup(np.array([0, 1, 2, 3, 0, 1], dtype=np.int64))
        assert stats.cache["hits"] == tier.hits
        assert stats.cache["misses"] == tier.misses
        assert stats.cache["host_rows"] == tier.host_rows_fetched
        assert stats.cache["host_bytes"] == tier.host_bytes
        assert stats.cache["host_us"] == pytest.approx(tier.host_fetch_us)

    def test_eviction_counter_and_event(self):
        stats = StatsSink()
        store = _lru_store(sink=stats)
        # 8 distinct rows through a 4-row cache: must displace
        store.lookup(np.arange(8, dtype=np.int64))
        assert store.policy.evictions > 0
        assert stats.cache["evictions"] == store.policy.evictions

    def test_reset_clears_eviction_counter(self):
        store = _lru_store()
        store.lookup(np.arange(8, dtype=np.int64))
        store.reset()
        assert store.policy.evictions == 0

    def test_warm_emits_resident_count(self):
        stats = StatsSink()
        store = _lru_store(sink=stats)
        resident = store.warm(np.arange(4, dtype=np.int64))
        assert stats.counts.get("warm") == 1
        assert resident == 4

    def test_ambient_sink_used_when_none_given(self):
        stats = StatsSink()
        store = _lru_store()
        with use_sink(stats):
            store.lookup(np.array([0, 0, 1], dtype=np.int64))
        assert stats.counts.get("cache_hit") == 1
        assert stats.counts.get("cache_miss") == 1

    def test_null_sink_costs_no_events(self):
        stats = StatsSink()
        store = _lru_store()  # no sink, ambient default is null
        store.lookup(np.array([0, 1], dtype=np.int64))
        assert stats.counts == {}

    def test_tier_stats_unchanged_by_telemetry(self):
        # same trace with and without a sink: identical accounting
        trace = np.array([0, 1, 2, 3, 4, 0, 1], dtype=np.int64)
        with_sink = _lru_store(sink=StatsSink()).lookup(trace)
        without = _lru_store().lookup(trace)
        assert with_sink == without


class TestArbiterEvents:
    def test_rearbitrate_emits_grant_summary(self):
        zoo = example_zoo(2, hbm_floor_fraction=0.0)
        curves = zoo_hit_curves(zoo, num_sms=2, seed=0)
        budget = sum(c.table_bytes for c in curves.values()) // 20
        stats = StatsSink()
        with use_sink(stats):
            grant = rearbitrate_on_drift(
                zoo, budget, drift_phase=1, drift_per_phase=0.3, seed=0,
            )
        assert stats.counts.get("re_arbitrate") == 1

    def test_initial_arbitration_is_silent(self):
        zoo = example_zoo(2, hbm_floor_fraction=0.0)
        curves = zoo_hit_curves(zoo, num_sms=2, seed=0)
        budget = sum(c.table_bytes for c in curves.values()) // 20
        stats = StatsSink()
        with use_sink(stats):
            arbitrate(budget, curves)
        assert "re_arbitrate" not in stats.counts
