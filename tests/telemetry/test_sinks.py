"""Sinks: no-op default, aggregation, fan-out, JSONL recording."""

import io
import json

import numpy as np

from repro.telemetry.events import (
    SCHEMA_VERSION,
    ArrivalBlock,
    BatchBlock,
    CacheHit,
    CacheMiss,
    HostFetch,
    RunEnd,
    RunStart,
    StreamRun,
)
from repro.telemetry.sinks import (
    NULL_SINK,
    ConsoleSink,
    MultiSink,
    NullSink,
    RecorderSink,
    Sink,
    StatsSink,
    default_sink,
    emit_event,
    emit_run,
    resolve_sink,
    set_default_sink,
    use_sink,
)


def _run(n=6, batch_sizes=(3, 3)):
    times = np.linspace(0.0, 1.0, n)
    arrivals = ArrivalBlock(
        times=times,
        phase_ids=np.zeros(n, dtype=np.int64),
        phases=("all",),
    )
    starts = np.array([0.5, 1.0])
    batches = BatchBlock(
        starts=starts,
        exec_s=np.array([0.004, 0.004]),
        sizes=np.array(batch_sizes, dtype=np.int64),
        phases=("all",),
    )
    return StreamRun(
        meta={"kind": "stream", "scenario": "probe"},
        arrivals=arrivals,
        batches=batches,
    )


class TestDefaultSink:
    def test_null_by_default(self):
        assert default_sink() is NULL_SINK
        assert not NULL_SINK.enabled

    def test_use_sink_restores_previous(self):
        stats = StatsSink()
        with use_sink(stats) as active:
            assert active is stats
            assert resolve_sink(None) is stats
        assert resolve_sink(None) is NULL_SINK

    def test_set_default_none_restores_null(self):
        previous = set_default_sink(StatsSink())
        assert previous is NULL_SINK
        set_default_sink(None)
        assert default_sink() is NULL_SINK

    def test_explicit_sink_wins_over_ambient(self):
        explicit = StatsSink()
        with use_sink(StatsSink()):
            assert resolve_sink(explicit) is explicit

    def test_emit_run_skips_disabled_sink(self):
        emit_run(None, _run())  # ambient null: must be a no-op
        emit_event(NullSink(), CacheHit(count=5))


class TestBaseSink:
    def test_materializes_blocks_into_scalar_events(self):
        seen = []

        class Probe(Sink):
            def emit(self, event):
                seen.append(event.kind)

        _run().emit_to(Probe())
        assert seen.count("arrival") == 6
        assert seen.count("dispatch") == 2
        assert seen.count("complete") == 6
        assert seen[0] == "run_start" and seen[-1] == "run_end"


class TestStatsSink:
    def test_counts_match_materialized_view(self):
        stats = StatsSink()
        naive = []

        class Probe(Sink):
            def emit(self, event):
                naive.append(event.kind)

        run = _run()
        run.emit_to(stats)
        run.emit_to(Probe())
        for kind, count in stats.counts.items():
            assert count == naive.count(kind), kind

    def test_run_summary(self):
        stats = StatsSink()
        _run().emit_to(stats)
        (summary,) = stats.runs
        assert summary["kind"] == "stream"
        assert summary["name"] == "probe"
        assert summary["n_queries"] == 6
        assert summary["n_batches"] == 2
        assert summary["max_queue_depth"] >= 1

    def test_cache_totals(self):
        stats = StatsSink()
        stats.emit(CacheHit(count=10))
        stats.emit(CacheMiss(count=4))
        stats.emit(HostFetch(rows=4, bytes=2048, us=11.0))
        assert stats.cache["hits"] == 10
        assert stats.cache["misses"] == 4
        assert stats.cache["host_bytes"] == 2048

    def test_render_mentions_runs_and_cache(self):
        stats = StatsSink()
        _run().emit_to(stats)
        stats.emit(CacheHit(count=1))
        text = stats.render()
        assert "stream:probe" in text
        assert "cache:" in text


class TestMultiSink:
    def test_fans_out_events_and_blocks(self):
        a, b = StatsSink(), StatsSink()
        _run().emit_to(MultiSink(a, b))
        assert a.counts == b.counts
        assert a.counts["arrival"] == 6


class TestConsoleSink:
    def test_prints_one_line_per_run(self):
        out = io.StringIO()
        console = ConsoleSink(out)
        _run().emit_to(console)
        console.close()
        assert "stream:probe" in out.getvalue()


class TestRecorderSink:
    def test_header_records_footer(self):
        buf = io.StringIO()
        recorder = RecorderSink(buf)
        recorder.emit(RunStart(meta={"kind": "stream"}))
        recorder.emit(RunEnd())
        recorder.close()
        lines = [json.loads(s) for s in buf.getvalue().splitlines()]
        assert lines[0] == {
            "k": "telemetry",
            "schema": SCHEMA_VERSION,
            "format": "repro-telemetry",
        }
        assert lines[-1] == {"k": "end", "records": 2}

    def test_blocks_written_as_columns_not_events(self):
        buf = io.StringIO()
        recorder = RecorderSink(buf)
        _run().emit_to(recorder)
        recorder.close()
        kinds = [
            json.loads(s).get("k") for s in buf.getvalue().splitlines()
        ]
        # 2 scalar events + 2 blocks, not thousands of lines
        assert kinds == ["telemetry", "e", "b", "b", "e", "end"]

    def test_close_is_idempotent(self):
        buf = io.StringIO()
        recorder = RecorderSink(buf)
        recorder.close()
        recorder.close()
        assert buf.getvalue().count('"end"') == 1

    def test_writes_to_path(self, tmp_path):
        path = tmp_path / "rec.jsonl"
        with RecorderSink(str(path)) as recorder:
            recorder.emit(RunStart(meta={}))
        content = path.read_text()
        assert content.startswith('{"k":"telemetry"')
        assert '"end"' in content
