"""Typed events and column blocks: wire round trips are exact."""

import json

import numpy as np
import pytest

from repro.telemetry.events import (
    EVENT_TYPES,
    Arrival,
    ArrivalBlock,
    BatchBlock,
    BatchFormed,
    CacheEvict,
    CacheHit,
    CacheMiss,
    Complete,
    Dispatch,
    Drop,
    FleetRun,
    GroupRun,
    HostFetch,
    PhaseEnd,
    PhaseStart,
    ReArbitrate,
    RunEnd,
    RunStart,
    StreamRun,
    Warm,
    block_from_record,
    decode_column,
    encode_column,
    event_from_record,
)


class TestColumnCodec:
    def test_float64_bits_roundtrip(self):
        rng = np.random.default_rng(0)
        col = rng.standard_normal(1000) * 1e-3
        back = decode_column(json.loads(json.dumps(encode_column(col))))
        assert back.dtype == col.dtype
        # exact bits, not approximate values
        assert np.array_equal(
            back.view(np.uint64), col.view(np.uint64)
        )

    def test_int64_roundtrip(self):
        col = np.array([0, -1, 2**62, -(2**62)], dtype=np.int64)
        back = decode_column(encode_column(col))
        assert back.dtype == np.int64
        assert np.array_equal(back, col)

    def test_empty_column(self):
        back = decode_column(encode_column(np.empty(0)))
        assert len(back) == 0

    def test_special_floats_survive(self):
        col = np.array([np.inf, -np.inf, 0.0, -0.0, 5e-324])
        back = decode_column(encode_column(col))
        assert np.array_equal(
            back.view(np.uint64), col.view(np.uint64)
        )

    def test_decoded_column_is_writable(self):
        back = decode_column(encode_column(np.arange(4.0)))
        back[0] = 9.0  # frombuffer alone would be read-only
        assert back[0] == 9.0


class TestScalarEvents:
    EXAMPLES = [
        RunStart(meta={"kind": "stream", "scenario": "s"}),
        RunEnd(),
        Arrival(t=1.5, phase="spike"),
        BatchFormed(t=2.0, size=64, phase="pre", replica="gpu0"),
        Dispatch(t=2.0, size=64, exec_ms=4.5, phase="pre"),
        Complete(t=2.1, latency_ms=7.25, phase="pre"),
        Drop(t=3.0, reason="shed", phase="spike"),
        PhaseStart(t=0.0, phase="pre"),
        PhaseEnd(t=4.0, phase="recovery"),
        CacheHit(count=100, label="t0"),
        CacheMiss(count=28, label="t0"),
        CacheEvict(count=3, label="t0"),
        HostFetch(rows=28, bytes=14336, us=12.5, label="t0"),
        Warm(resident=512, label="t0"),
        ReArbitrate(phase=2, grants={"a": {"hit_rate": 0.9}}),
    ]

    @pytest.mark.parametrize(
        "event", EXAMPLES, ids=[e.kind for e in EXAMPLES]
    )
    def test_roundtrip(self, event):
        record = json.loads(json.dumps(event.to_record()))
        assert record["k"] == "e"
        assert record["t"] == event.kind
        assert event_from_record(record) == event

    def test_every_kind_registered(self):
        assert {e.kind for e in self.EXAMPLES} == set(EVENT_TYPES)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_record({"k": "e", "t": "comet"})


def _arrivals():
    return ArrivalBlock(
        times=np.array([0.0, 0.5, 1.0, 1.5]),
        phase_ids=np.array([0, 0, 1, 1], dtype=np.int64),
        phases=("pre", "spike"),
    )


def _batches(**kwargs):
    return BatchBlock(
        starts=np.array([0.5, 1.5]),
        exec_s=np.array([0.004, 0.005]),
        sizes=np.array([2, 2], dtype=np.int64),
        phases=("pre", "spike"),
        **kwargs,
    )


class TestArrivalBlock:
    def test_roundtrip(self):
        block = _arrivals()
        back = block_from_record(
            json.loads(json.dumps(block.to_record()))
        )
        assert np.array_equal(back.times, block.times)
        assert np.array_equal(back.phase_ids, block.phase_ids)
        assert back.phases == block.phases

    def test_events_include_phase_transitions(self):
        kinds = [e.kind for e in _arrivals().events()]
        assert kinds == [
            "phase_start", "arrival", "arrival",
            "phase_end", "phase_start", "arrival", "arrival",
            "phase_end",
        ]

    def test_empty_block_emits_nothing(self):
        empty = ArrivalBlock(
            times=np.empty(0), phase_ids=np.empty(0, dtype=np.int64)
        )
        assert list(empty.events()) == []


class TestBatchBlock:
    def test_roundtrip_without_members(self):
        block = _batches()
        record = json.loads(json.dumps(block.to_record()))
        assert "member_times" not in record
        back = block_from_record(record)
        assert np.array_equal(back.starts, block.starts)
        assert np.array_equal(back.exec_s, block.exec_s)
        assert np.array_equal(back.sizes, block.sizes)
        assert back.member_times is None

    def test_roundtrip_with_members(self):
        block = _batches(
            replica="gpu1",
            member_times=np.array([0.0, 0.5, 1.0, 1.5]),
            member_phases=np.array([0, 0, 1, 1], dtype=np.int64),
        )
        back = block_from_record(
            json.loads(json.dumps(block.to_record()))
        )
        assert back.replica == "gpu1"
        assert np.array_equal(back.member_times, block.member_times)
        assert np.array_equal(back.member_phases, block.member_phases)

    def test_done_is_starts_plus_exec(self):
        block = _batches()
        assert np.array_equal(block.done, block.starts + block.exec_s)

    def test_members_resolve_from_arrivals(self):
        times, phases = _batches().members(_arrivals())
        assert np.array_equal(times, _arrivals().times)
        assert np.array_equal(phases, _arrivals().phase_ids)

    def test_members_without_arrivals_raise(self):
        with pytest.raises(ValueError, match="no member columns"):
            _batches().members(None)

    def test_events_materialize_completions(self):
        events = list(_batches().events(_arrivals()))
        kinds = [e.kind for e in events]
        assert kinds.count("batch_formed") == 2
        assert kinds.count("dispatch") == 2
        assert kinds.count("complete") == 4
        first_complete = next(
            e for e in events if e.kind == "complete"
        )
        # batch 0 done at 0.504; first member arrived at 0.0
        assert first_complete.latency_ms == pytest.approx(504.0)

    def test_unknown_block_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown block kind"):
            block_from_record({"k": "b", "t": "meteors"})


class TestRunRecords:
    def test_stream_run_emission_order(self):
        run = StreamRun(
            meta={"kind": "stream"},
            arrivals=_arrivals(),
            batches=_batches(),
        )
        seen = []

        class Probe:
            def emit(self, event):
                seen.append(event.kind)

            def emit_block(self, block):
                seen.append(block.kind)

        run.emit_to(Probe())
        assert seen == ["run_start", "arrivals", "batches", "run_end"]

    def test_fleet_run_emits_every_replica(self):
        run = FleetRun(
            meta={"kind": "fleet"},
            arrivals=_arrivals(),
            replicas=[_batches(replica="a"), _batches(replica="b")],
        )
        seen = []

        class Probe:
            def emit(self, event):
                seen.append(event.kind)

            def emit_block(self, block):
                seen.append(getattr(block, "replica", None) or block.kind)

        run.emit_to(Probe())
        assert seen == ["run_start", "arrivals", "a", "b", "run_end"]

    def test_group_run_nests_children(self):
        child = StreamRun(
            meta={"kind": "stream", "tenant": "t0"},
            arrivals=_arrivals(),
            batches=_batches(),
        )
        run = GroupRun(meta={"kind": "zoo"}, children={"t0": child})
        seen = []

        class Probe:
            def emit(self, event):
                seen.append(event.kind)

            def emit_block(self, block):
                seen.append(block.kind)

        run.emit_to(Probe())
        assert seen == [
            "run_start", "run_start", "arrivals", "batches",
            "run_end", "run_end",
        ]
