"""TierPlan / HostLink / EmbeddingStore accounting."""

import numpy as np
import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.memstore import (
    EmbeddingStore,
    HostLink,
    TierPlan,
    store_for_spec,
)


class TestTierPlan:
    def test_row_conservation(self):
        plan = TierPlan(table_rows=1000, resident_rows=123, row_bytes=512)
        assert plan.resident_rows + plan.host_rows == plan.table_rows
        assert plan.resident_bytes + plan.host_bytes \
            == plan.table_rows * plan.row_bytes

    def test_from_fraction_bounds(self):
        full = TierPlan.from_fraction(1000, 512, 1.0)
        assert full.fully_resident and full.host_rows == 0
        empty = TierPlan.from_fraction(1000, 512, 0.0)
        assert empty.resident_rows == 0
        with pytest.raises(ValueError):
            TierPlan.from_fraction(1000, 512, 1.5)

    def test_from_budget(self):
        plan = TierPlan.from_budget(1000, 512, 10 * 512)
        assert plan.resident_rows == 10
        big = TierPlan.from_budget(1000, 512, 10**9)
        assert big.fully_resident

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            TierPlan(table_rows=10, resident_rows=11, row_bytes=512)
        with pytest.raises(ValueError, match="unknown cache policy"):
            TierPlan(table_rows=10, resident_rows=5, row_bytes=512,
                     policy="fifo")


class TestHostLink:
    def test_transfer_math(self):
        link = HostLink("pcie", bandwidth_gbps=25.0, latency_us=10.0)
        assert link.transfer_us(0) == 0.0
        # 25 GB/s = 25,000 bytes/us: 2.5 MB => 100 us + launch latency
        assert link.transfer_us(2_500_000) == pytest.approx(110.0)
        assert link.transfer_us(2_500_000, transfers=2) \
            == pytest.approx(120.0)

    def test_from_gpu_and_scaling(self):
        link = HostLink.pcie(A100_SXM4_80GB)
        assert link.bandwidth_gbps == A100_SXM4_80GB.pcie_gbps
        half = link.scaled(0.5)
        assert half.bandwidth_gbps == pytest.approx(link.bandwidth_gbps / 2)
        assert half.latency_us == link.latency_us

    def test_validation(self):
        with pytest.raises(ValueError):
            HostLink("x", bandwidth_gbps=0.0, latency_us=1.0)
        with pytest.raises(ValueError):
            HostLink("x", bandwidth_gbps=1.0, latency_us=-1.0)


def _store(fraction, policy="static_hot", *, table_rows=4096, seed=0):
    return store_for_spec(
        HOTNESS_PRESETS["med_hot"],
        batch_size=32,
        pooling_factor=20,
        table_rows=table_rows,
        row_bytes=512,
        hbm_fraction=fraction,
        link=HostLink("pcie", 25.0, 10.0),
        policy=policy,
        seed=seed,
    )


def _trace(table_rows=4096, seed=0):
    return generate_trace(
        HOTNESS_PRESETS["med_hot"],
        batch_size=32, pooling_factor=20, table_rows=table_rows, seed=seed,
    )


class TestEmbeddingStore:
    def test_fully_resident_never_fetches(self):
        stats = _store(1.0).lookup(_trace())
        assert stats.hit_rate == 1.0
        assert stats.host_rows_fetched == 0
        assert stats.host_fetch_us == 0.0

    def test_partial_residency_accounts_misses(self):
        trace = _trace()
        stats = _store(0.01).lookup(trace)
        assert stats.n_accesses == trace.n_accesses
        assert 0.0 < stats.hit_rate < 1.0
        assert stats.hits + stats.misses == stats.n_accesses
        assert stats.host_bytes == stats.host_rows_fetched * 512
        assert stats.host_fetch_us > 0.0

    def test_lookup_is_deterministic(self):
        trace = _trace()
        assert _store(0.01).lookup(trace) == _store(0.01).lookup(trace)

    def test_adaptive_policy_warms_across_lookups(self):
        trace = _trace()
        store = _store(0.01, policy="lfu")
        cold = store.lookup(trace)
        warm = store.lookup(trace)  # accumulated counts keep hot rows in
        assert warm.hits > cold.hits

    def test_out_of_range_indices_rejected(self):
        store = _store(0.5)
        with pytest.raises(ValueError, match="exceed"):
            store.lookup(np.array([4096]))

    def test_policy_capacity_mismatch_rejected(self):
        from repro.memstore.policy import LRUPolicy

        plan = TierPlan(table_rows=100, resident_rows=10, row_bytes=512)
        with pytest.raises(ValueError, match="capacity"):
            EmbeddingStore(plan, HostLink("pcie", 25.0, 10.0),
                           policy=LRUPolicy(5))
