"""Property-based memstore invariants.

Randomized (hypothesis) checks of the structural guarantees the tiered
store must never lose, whatever the workload:

* hit rate is monotone non-decreasing in cache capacity for *every*
  policy — the stack (inclusion) property the priority-cache design
  guarantees (see :mod:`repro.memstore.policy`);
* a :class:`TierPlan` always conserves rows: resident + host == table;
* lookup accounting conserves accesses: hits + misses == n_accesses,
  and host bytes are exactly fetched-rows x row-bytes.

``derandomize=True`` keeps CI deterministic (hypothesis still explores
the space, from a fixed seed).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.memstore.policy import CACHE_POLICIES, make_policy
from repro.memstore.store import EmbeddingStore, HostLink, TierPlan

SETTINGS = dict(max_examples=60, deadline=None, derandomize=True)

_LINK = HostLink("pcie", 25.0, 10.0)

_accesses = st.lists(
    st.integers(0, 30), min_size=1, max_size=300
).map(lambda xs: np.asarray(xs, dtype=np.int64))

_profiles = st.lists(
    st.integers(0, 30), min_size=0, max_size=31, unique=True
).map(lambda xs: np.asarray(xs, dtype=np.int64))

_policies = st.sampled_from(sorted(CACHE_POLICIES))


def _hits_at(policy_name, capacity, profile, accesses):
    policy = make_policy(policy_name, capacity)
    policy.warm(profile)
    hits = sum(policy.access(int(row)) for row in accesses)
    return hits


@given(
    policy_name=_policies,
    capacity=st.integers(0, 32),
    profile=_profiles,
    accesses=_accesses,
)
@settings(**SETTINGS)
def test_hit_rate_monotone_in_capacity(
    policy_name, capacity, profile, accesses
):
    smaller = _hits_at(policy_name, capacity, profile, accesses)
    larger = _hits_at(policy_name, capacity + 1, profile, accesses)
    assert larger >= smaller


@given(
    table_rows=st.integers(1, 10_000),
    row_bytes=st.sampled_from([64, 128, 256, 512]),
    fraction=st.floats(0.0, 1.0),
)
@settings(**SETTINGS)
def test_tier_plan_conserves_rows(table_rows, row_bytes, fraction):
    plan = TierPlan.from_fraction(table_rows, row_bytes, fraction)
    assert plan.resident_rows + plan.host_rows == plan.table_rows
    assert 0.0 <= plan.resident_fraction <= 1.0
    budgeted = TierPlan.from_budget(
        table_rows, row_bytes, int(fraction * table_rows * row_bytes)
    )
    assert budgeted.resident_rows + budgeted.host_rows == table_rows


@given(
    policy_name=_policies,
    capacity=st.integers(0, 31),
    profile=_profiles,
    accesses=_accesses,
)
@settings(**SETTINGS)
def test_lookup_conserves_accesses(
    policy_name, capacity, profile, accesses
):
    plan = TierPlan(
        table_rows=31, resident_rows=capacity, row_bytes=128,
        policy=policy_name,
    )
    store = EmbeddingStore(plan, _LINK, hot_rows=profile)
    stats = store.lookup(accesses)
    assert stats.n_accesses == len(accesses)
    assert stats.hits + stats.misses == stats.n_accesses
    assert stats.host_bytes == stats.host_rows_fetched * plan.row_bytes
    assert 0.0 <= stats.hit_rate <= 1.0
    # a host fetch only ever serves a miss
    assert stats.host_rows_fetched <= max(stats.misses, 0)
    if stats.misses == 0:
        assert stats.host_fetch_us == 0.0
