"""End-to-end tiered serving: kernel stage, oversized fleets, drift.

The acceptance path of the memstore refactor:

* the kernel/stage layer composes host-fetch time with the (memoized)
  kernel simulation;
* a fleet whose embedding bytes exceed aggregate HBM *places* (no
  error), and the tiered placement feeds the routed fleet simulator to
  an end-to-end p99/goodput report;
* under the drift scenario the reported hit rate decays phase by phase
  and recovers after a cache refresh.
"""

import dataclasses

import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.config.model import PAPER_MODEL
from repro.config.scale import TEST_SCALE
from repro.core.embedding import kernel_workload, run_embedding_stage, \
    run_table_kernel
from repro.core.schemes import BASE, OPTMT
from repro.core.serving import ContinuousBatching
from repro.datasets.spec import HOTNESS_PRESETS
from repro.fleet import (
    FleetSpec,
    place_tables_tiered,
    simulate_fleet,
    tiered_fleet_models,
    tiered_latency_model,
)
from repro.memstore import HostLink, store_for_spec
from repro.traffic import (
    DriftSpec,
    StationarySpec,
    memstore_drift_profile,
    simulate_scenario_serving,
)


@pytest.fixture(scope="module")
def workload():
    return kernel_workload(A100_SXM4_80GB, scale=TEST_SCALE)


def _store(workload, fraction, dataset="med_hot", policy="static_hot"):
    return store_for_spec(
        HOTNESS_PRESETS[dataset],
        batch_size=workload.batch_size,
        pooling_factor=workload.pooling_factor,
        table_rows=workload.table_rows,
        row_bytes=workload.row_bytes,
        hbm_fraction=fraction,
        link=HostLink.pcie(workload.gpu),
        policy=policy,
        seed=0,
    )


class TestTieredKernelStage:
    def test_miss_dependent_latency_composes(self, workload):
        spec = HOTNESS_PRESETS["med_hot"]
        resident = run_table_kernel(
            workload, spec, BASE, store=_store(workload, 1.0)
        )
        tiered = run_table_kernel(
            workload, spec, BASE, store=_store(workload, 0.05)
        )
        # identical kernel (same trace, same scheme) — only the tier
        # differs, and only through the host-fetch composition
        assert tiered.kernel_time_us == resident.kernel_time_us
        assert resident.host_fetch_us == 0.0
        assert resident.total_time_us == resident.kernel_time_us
        assert tiered.host_fetch_us > 0.0
        assert tiered.total_time_us == pytest.approx(
            tiered.kernel_time_us + tiered.host_fetch_us
        )
        assert 0.0 < tiered.tier_stats.hit_rate < 1.0

    def test_untiered_result_unchanged(self, workload):
        result = run_table_kernel(workload, HOTNESS_PRESETS["med_hot"], BASE)
        assert result.tier_stats is None
        assert result.host_fetch_us == 0.0
        assert result.total_time_us == result.kernel_time_us

    def test_stage_threads_stores(self, workload):
        mix = {"med_hot": 3, "random": 2}
        stores = {
            name: _store(workload, 0.05, dataset=name) for name in mix
        }
        plain = run_embedding_stage(workload, mix, BASE)
        tiered = run_embedding_stage(workload, mix, BASE, stores=stores)
        assert plain.hit_rate is None and plain.host_fetch_us == 0.0
        assert 0.0 < tiered.hit_rate < 1.0
        assert tiered.host_fetch_us > 0.0
        assert tiered.total_time_us == pytest.approx(
            plain.total_time_us + tiered.host_fetch_us
        )


class TestOversizedFleet:
    # 600 x 256 MB = ~154 GB of tables against one 80 GB A100: well
    # past aggregate HBM, must place (split) instead of failing.
    MIX = {"med_hot": 400, "random": 200}

    @pytest.fixture(scope="class")
    def placement(self):
        return place_tables_tiered(
            self.MIX, OPTMT, [A100_SXM4_80GB], num_sms=2, seed=0,
        )

    def test_oversized_model_places(self, placement):
        assert not placement.fits_in_hbm
        shard = placement.shards[0]
        assert len(shard.tables) == sum(self.MIX.values())
        assert 0.0 < shard.hbm_fraction < 1.0
        assert shard.host_bytes > 0
        assert shard.resident_bytes <= \
            A100_SXM4_80GB.hbm_bytes * placement.hbm_utilization
        assert shard.host_us > 0.0
        assert placement.critical_path_us > shard.compute_us
        # slicing keeps per-batch time invariant, so the per-query
        # penalty normalizes by the FULL model batch, not the slice's
        assert shard.host_us_per_query == pytest.approx(
            shard.host_us / PAPER_MODEL.batch_size
        )

    def test_end_to_end_p99_and_goodput(self, placement):
        fleet = FleetSpec.homogeneous(A100_SXM4_80GB, 1, scheme=OPTMT)
        base = {A100_SXM4_80GB.name: lambda batch: 10.0 + 0.01 * batch}
        models = tiered_fleet_models(base, placement)
        # the host penalty is in the curve the router sees
        assert models[A100_SXM4_80GB.name](64) > base[
            A100_SXM4_80GB.name](64)
        report = simulate_fleet(
            fleet, models, qps=50, duration_s=2.0, seed=0,
        )
        assert report.n_queries > 0
        assert report.p99_ms > 0.0

    def test_fitting_fleet_fully_resident(self):
        placement = place_tables_tiered(
            {"med_hot": 2}, OPTMT, [A100_SXM4_80GB], num_sms=2, seed=0,
        )
        assert placement.fits_in_hbm
        shard = placement.shards[0]
        assert shard.hbm_fraction == 1.0
        assert shard.host_us == 0.0 and shard.host_bytes == 0

    def test_hbm_utilization_validated(self):
        with pytest.raises(ValueError, match="hbm_utilization"):
            place_tables_tiered(
                {"med_hot": 1}, OPTMT, [A100_SXM4_80GB],
                hbm_utilization=0.0,
            )

    def test_empty_mix_rejected(self):
        for mix in ({}, {"med_hot": 0}):
            with pytest.raises(ValueError, match="mix is empty"):
                place_tables_tiered(mix, OPTMT, [A100_SXM4_80GB])

    def test_missing_latency_model_raises(self, placement):
        with pytest.raises(KeyError, match="no latency model"):
            tiered_fleet_models({"H100-NVL": lambda b: 1.0}, placement)


class TestDriftHitRate:
    SPEC = DriftSpec(n_phases=4, drift_per_phase=0.3, duration_s=4.0)

    @pytest.fixture(scope="class")
    def profiles(self):
        kwargs = dict(hbm_fraction=0.05, num_sms=2, seed=0)
        return (
            memstore_drift_profile(self.SPEC, **kwargs),
            memstore_drift_profile(self.SPEC, refresh_every=2, **kwargs),
        )

    def test_hit_rate_decays_without_refresh(self, profiles):
        pin_once, _ = profiles
        rates = pin_once.hit_rates
        assert all(a > b for a, b in zip(rates, rates[1:]))
        assert not any(pin_once.refreshed)
        # decay is mirrored by growing latency factors
        assert pin_once.factors[0] == 1.0
        assert pin_once.factors[-1] > 1.05

    def test_refresh_recovers_hit_rate(self, profiles):
        pin_once, refreshed = profiles
        assert refreshed.refreshed == (False, False, True, False)
        # identical until the refresh fires...
        assert refreshed.hit_rates[:2] == pin_once.hit_rates[:2]
        # ...then the re-warmed cache recovers hit rate and latency
        for phase in (2, 3):
            assert refreshed.hit_rates[phase] > pin_once.hit_rates[phase]
            assert refreshed.factors[phase] < pin_once.factors[phase]

    def test_hit_rates_thread_into_stream_report(self, profiles):
        pin_once, _ = profiles
        report = simulate_scenario_serving(
            self.SPEC,
            [lambda b, f=f: (1.0 + 0.01 * b) * f for f in pin_once.factors],
            policy=ContinuousBatching(max_batch=256),
            sla_ms=30.0,
            seed=0,
            phase_hit_rates=pin_once.hit_rates,
        )
        assert report.hit_rate == pytest.approx(
            sum(
                p.n_queries * p.hit_rate for p in report.phases
            ) / report.n_queries
        )
        by_phase = [p.hit_rate for p in report.phases]
        assert by_phase == list(pin_once.hit_rates[:len(by_phase)])
        # serializes cleanly (golden snapshots rely on this)
        dataclasses.asdict(report)


def test_tiered_latency_model_wraps_curve():
    base = lambda batch: 5.0 + 0.02 * batch
    same = tiered_latency_model(base, host_us_per_query=0.0)
    assert same is base
    tiered = tiered_latency_model(base, host_us_per_query=50.0)
    assert tiered(100) == pytest.approx(base(100) + 5.0)
    with pytest.raises(ValueError):
        tiered_latency_model(base, host_us_per_query=-1.0)


def test_poisson_scenario_with_hit_rates():
    spec = StationarySpec(base_qps=500, duration_s=2.0)
    report = simulate_scenario_serving(
        spec, lambda b: 2.0 + 0.01 * b, seed=1, phase_hit_rates=(0.9,),
    )
    assert report.hit_rate == pytest.approx(0.9)
    assert report.phases[0].hit_rate == pytest.approx(0.9)
