"""Cache-policy behaviour and the shared popularity profiling."""

import numpy as np
import pytest

from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.memstore.policy import (
    CACHE_POLICIES,
    LFUPolicy,
    LRUPolicy,
    StaticHotPolicy,
    make_policy,
    popular_rows,
    profile_hot_rows,
)


class TestSharedProfiling:
    def test_pinning_reexports_the_policy_implementation(self):
        from repro.kernels import pinning

        assert pinning.profile_hot_rows is profile_hot_rows

    def test_profile_differs_from_timed_trace(self):
        spec = HOTNESS_PRESETS["med_hot"]
        kwargs = dict(
            batch_size=32, pooling_factor=20, table_rows=4096, seed=3
        )
        timed = generate_trace(spec, **kwargs)
        profiled = profile_hot_rows(spec, k=50, **kwargs)
        # honest offline profiling: the hot rows still cover the timed
        # trace (shared layout) without being derived from it
        assert np.isin(timed.indices, profiled).mean() > 0.2

    def test_popular_rows_orders_by_count(self):
        spec = HOTNESS_PRESETS["high_hot"]
        trace = generate_trace(
            spec, batch_size=32, pooling_factor=20, table_rows=4096, seed=0
        )
        top = popular_rows(trace, 5)
        counts = [int((trace.indices == r).sum()) for r in top]
        assert counts == sorted(counts, reverse=True)


class TestPolicyMechanics:
    def test_registry(self):
        assert set(CACHE_POLICIES) == {"static_hot", "lru", "lfu"}
        for name in CACHE_POLICIES:
            assert make_policy(name, 4).name == name
        with pytest.raises(ValueError, match="unknown cache policy"):
            make_policy("fifo", 4)

    def test_zero_capacity_never_hits(self):
        for name in CACHE_POLICIES:
            policy = make_policy(name, 0)
            policy.warm([1, 2, 3])
            assert policy.resident_count == 0
            assert not any(policy.access(r) for r in (1, 2, 3, 1))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy(-1)

    def test_warm_caps_at_capacity_hottest_first(self):
        policy = StaticHotPolicy(2)
        assert policy.warm([7, 8, 9, 10]) == 2
        assert policy.resident(7) and policy.resident(8)
        assert not policy.resident(9)

    def test_warm_on_full_cache_refreshes(self):
        # re-warming with a fresh profile displaces stale residents;
        # warm() alone is a cache refresh, no reset() required
        for name in CACHE_POLICIES:
            policy = make_policy(name, 2)
            policy.warm([1, 2])
            policy.warm([8, 9])
            assert policy.resident(8) and policy.resident(9), name
            assert not policy.resident(1), name

    def test_warm_refresh_with_overlapping_profile(self):
        # a re-profiled hot set overlaps the old one (drift moves only a
        # fraction of rows): surviving hot rows must stay resident with
        # refreshed priority, not be evicted in favor of stale rows
        for name in CACHE_POLICIES:
            policy = make_policy(name, 2)
            policy.warm([1, 2])
            policy.warm([2, 9])
            assert policy.resident(2) and policy.resident(9), name
            assert not policy.resident(1), name

    def test_warm_keeps_entrenched_lfu_rows(self):
        policy = LFUPolicy(2)
        policy.warm([1, 2])
        for _ in range(5):
            policy.access(1)
        policy.warm([8, 9])
        # row 1's accumulated count legitimately outranks the profile
        assert policy.resident(1)

    def test_static_misses_never_admit(self):
        policy = StaticHotPolicy(2)
        policy.warm([1, 2])
        for _ in range(5):
            assert not policy.access(3)
        assert policy.access(1)

    def test_static_lookup_dedups_fetches(self):
        policy = StaticHotPolicy(1)
        policy.warm([0])
        hits, fetches = policy.lookup(np.array([0, 5, 5, 5, 6]))
        assert hits == 1
        assert fetches == 2  # rows 5 and 6, gathered once each

    def test_lru_evicts_oldest(self):
        policy = LRUPolicy(2)
        assert not policy.access(1)
        assert not policy.access(2)
        assert policy.access(1)      # 2 is now LRU
        assert not policy.access(3)  # evicts 2
        assert policy.access(1)
        assert not policy.access(2)

    def test_lfu_protects_frequent_rows(self):
        policy = LFUPolicy(2)
        for _ in range(3):
            policy.access(1)
        policy.access(2)
        # row 3 (count 1) cannot displace row 1 (count 3); it competes
        # with row 2 and wins only once its priority is higher
        policy.access(3)
        assert policy.resident(1)

    def test_reset_clears_residency(self):
        policy = LRUPolicy(4)
        policy.warm([1, 2, 3])
        policy.reset()
        assert policy.resident_count == 0
        assert not policy.access(1)

    def test_lookup_conservation(self):
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 50, size=300)
        for name in CACHE_POLICIES:
            policy = make_policy(name, 16)
            policy.warm(np.arange(16))
            hits, fetches = policy.lookup(indices)
            assert 0 <= hits <= len(indices)
            # one bulk gather per batch: fetches are distinct missed
            # rows for every policy, never more than the miss count
            assert 0 <= fetches <= len(indices) - hits
            assert fetches <= len(np.unique(indices))

    def test_lookup_dedups_fetches_across_policies(self):
        # 20 touches of one cold row in one batch = one host fetch,
        # whether or not the policy admits it
        indices = np.full(20, 42)
        for name in CACHE_POLICIES:
            policy = make_policy(name, 1)
            policy.warm([0])
            _, fetches = policy.lookup(indices)
            assert fetches == 1, name
