"""SimScale: proportional slicing preserves per-SM work."""

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.config.model import PAPER_MODEL
from repro.config.scale import BENCH_SCALE, FULL_SCALE, SCALES, SimScale


class TestApply:
    def test_full_scale_reproduces_paper_workload(self):
        wl = FULL_SCALE.apply(A100_SXM4_80GB, PAPER_MODEL)
        assert wl.batch_size == 2048
        assert wl.table_rows == 500_000
        assert wl.factor == 1.0

    def test_bench_scale_proportions(self):
        wl = BENCH_SCALE.apply(A100_SXM4_80GB, PAPER_MODEL)
        assert wl.gpu.num_sms == 6
        # per-SM resident work stays close to full scale
        full_per_sm = 2048 / 108
        sliced_per_sm = wl.batch_size / 6
        assert abs(sliced_per_sm - full_per_sm) / full_per_sm < 0.15

    def test_pooling_factor_never_scales(self):
        wl = BENCH_SCALE.apply(A100_SXM4_80GB, PAPER_MODEL)
        assert wl.pooling_factor == PAPER_MODEL.pooling_factor

    def test_batch_is_whole_blocks(self):
        # 8 warps/block, 4 warps/sample -> batch must be even
        for sms in (1, 2, 5, 6, 13):
            wl = SimScale("t", sms).apply(A100_SXM4_80GB, PAPER_MODEL)
            assert wl.batch_size % 2 == 0
            assert wl.batch_size >= 4

    def test_footprint_to_l2_ratio_preserved(self):
        full = FULL_SCALE.apply(A100_SXM4_80GB, PAPER_MODEL)
        sliced = BENCH_SCALE.apply(A100_SXM4_80GB, PAPER_MODEL)
        full_ratio = full.accesses_per_table / full.gpu.l2_bytes
        sliced_ratio = sliced.accesses_per_table / sliced.gpu.l2_bytes
        assert sliced_ratio == pytest.approx(full_ratio, rel=0.15)

    def test_h100_slice(self):
        wl = SimScale("t", 6).apply(H100_NVL, PAPER_MODEL)
        assert wl.gpu.num_sms == 6
        assert wl.batch_size >= 4

    def test_registry(self):
        assert set(SCALES) == {"test", "bench", "full"}
