"""GpuSpec: paper constants (Tables I/II/VI) and slice scaling."""

import pytest
from hypothesis import given, strategies as st

from repro.config.gpu import (
    A100_SXM4_80GB,
    CACHE_LINE_BYTES,
    GPUS,
    H100_NVL,
    SECTOR_BYTES,
    SECTORS_PER_LINE,
    WARP_SIZE,
)


class TestPaperConstants:
    def test_a100_table_vi_spec(self):
        assert A100_SXM4_80GB.num_sms == 108
        assert A100_SXM4_80GB.registers_per_sm == 64 * 1024
        assert A100_SXM4_80GB.l1_bytes == 192 * 1024
        assert A100_SXM4_80GB.l2_bytes == 40 * 1024 * 1024
        assert A100_SXM4_80GB.hbm_bytes == 80 * 1024**3

    def test_a100_table_i_latencies(self):
        # Table I: register 1, shared 29, L1 ~38, L2 ~262, HBM ~466
        assert A100_SXM4_80GB.lat_register == 1
        assert A100_SXM4_80GB.lat_shared == 29
        assert A100_SXM4_80GB.lat_l1 == 38
        assert A100_SXM4_80GB.lat_l2 == 262
        assert A100_SXM4_80GB.lat_hbm == 466

    def test_h100_section_vib4_spec(self):
        assert H100_NVL.num_sms == 132
        assert H100_NVL.l2_bytes == 50 * 1024 * 1024
        assert H100_NVL.hbm_bandwidth_gbps == pytest.approx(3840.0)
        # ~27% faster SM clock than A100
        ratio = H100_NVL.clock_ghz / A100_SXM4_80GB.clock_ghz
        assert 1.2 < ratio < 1.35

    def test_l2_set_aside_is_75_pct(self):
        assert A100_SXM4_80GB.l2_set_aside_bytes == 30 * 1024 * 1024

    def test_max_warps_per_smsp(self):
        assert A100_SXM4_80GB.max_warps_per_smsp == 16

    def test_line_and_sector_geometry(self):
        assert CACHE_LINE_BYTES == 128
        assert SECTOR_BYTES == 32
        assert SECTORS_PER_LINE == 4
        assert WARP_SIZE == 32

    def test_registry(self):
        assert GPUS[A100_SXM4_80GB.name] is A100_SXM4_80GB
        assert GPUS[H100_NVL.name] is H100_NVL


class TestDerivedQuantities:
    def test_hbm_bytes_per_cycle(self):
        # 1.94 TB/s at 1.41 GHz -> ~1376 B/cycle
        assert A100_SXM4_80GB.hbm_bytes_per_cycle == pytest.approx(
            1940 / 1.41, rel=1e-6
        )

    def test_cycles_to_us(self):
        assert A100_SXM4_80GB.cycles_to_us(1410) == pytest.approx(1.0)
        assert A100_SXM4_80GB.cycles_to_us(0) == 0.0


class TestScaledSlice:
    def test_slice_scales_shared_resources(self):
        half = A100_SXM4_80GB.scaled_slice(54)
        assert half.num_sms == 54
        assert half.l2_bytes == A100_SXM4_80GB.l2_bytes // 2
        assert half.hbm_bandwidth_gbps == pytest.approx(
            A100_SXM4_80GB.hbm_bandwidth_gbps / 2
        )

    def test_slice_preserves_issue_resources(self):
        sliced = A100_SXM4_80GB.scaled_slice(6)
        assert sliced.registers_per_sm == A100_SXM4_80GB.registers_per_sm
        assert sliced.max_warps_per_sm == A100_SXM4_80GB.max_warps_per_sm
        assert sliced.smsps_per_sm == A100_SXM4_80GB.smsps_per_sm
        assert sliced.tlb_entries == A100_SXM4_80GB.tlb_entries

    def test_slice_name_tags_parent(self):
        assert A100_SXM4_80GB.scaled_slice(6).name == "A100-SXM4-80GB-slice6"

    def test_full_slice_keeps_capacities(self):
        full = A100_SXM4_80GB.scaled_slice(108)
        assert full.l2_bytes == A100_SXM4_80GB.l2_bytes
        assert full.l1_bytes == A100_SXM4_80GB.l1_bytes

    @pytest.mark.parametrize("bad", [0, -1, 109])
    def test_slice_rejects_bad_sm_count(self, bad):
        with pytest.raises(ValueError):
            A100_SXM4_80GB.scaled_slice(bad)

    @given(st.integers(min_value=1, max_value=108))
    def test_slice_invariants(self, num_sms):
        sliced = A100_SXM4_80GB.scaled_slice(num_sms)
        assert sliced.num_sms == num_sms
        assert 0 < sliced.l2_bytes <= A100_SXM4_80GB.l2_bytes
        assert 0 < sliced.l1_bytes <= A100_SXM4_80GB.l1_bytes
        assert sliced.hbm_bandwidth_gbps <= A100_SXM4_80GB.hbm_bandwidth_gbps
        # latencies never change with slicing
        assert sliced.lat_l2 == A100_SXM4_80GB.lat_l2
        assert sliced.lat_hbm == A100_SXM4_80GB.lat_hbm
