"""DLRMConfig: the paper's Section V model arithmetic."""

import pytest

from repro.config.model import PAPER_MODEL, DLRMConfig, EmbeddingTableConfig


class TestEmbeddingTableConfig:
    def test_row_bytes_is_512(self):
        # 128 dims x 4 B = 512 B per vector (Section V)
        assert PAPER_MODEL.table.row_bytes == 512

    def test_table_bytes(self):
        assert PAPER_MODEL.table.table_bytes == 500_000 * 512

    def test_scaled_rounds_and_floors(self):
        small = EmbeddingTableConfig(rows=1000).scaled(0.0001)
        assert small.rows == 64  # floor
        half = EmbeddingTableConfig(rows=1000).scaled(0.5)
        assert half.rows == 500


class TestPaperModel:
    def test_section_v_dimensions(self):
        assert PAPER_MODEL.num_tables == 250
        assert PAPER_MODEL.batch_size == 2048
        assert PAPER_MODEL.pooling_factor == 150
        assert PAPER_MODEL.bottom_mlp_dims == (1024, 512, 128, 128)
        assert PAPER_MODEL.top_mlp_dims == (128, 64, 1)

    def test_data_processed_per_table_is_150_mb(self):
        # Section III-A: 2048 x 150 x 128 x 4 B = 150 MB per table
        assert PAPER_MODEL.embedding_bytes_per_table == \
            2048 * 150 * 128 * 4

    def test_embedding_stage_processes_37_5_gb(self):
        total = PAPER_MODEL.num_tables * PAPER_MODEL.embedding_bytes_per_table
        assert total == pytest.approx(37.5e9, rel=0.05)

    def test_model_weight_is_about_60_gb(self):
        assert PAPER_MODEL.model_bytes == pytest.approx(64e9, rel=0.05)

    def test_lookups_per_table(self):
        assert PAPER_MODEL.lookups_per_table == 2048 * 150


class TestValidation:
    def test_bottom_mlp_must_end_at_embedding_dim(self):
        with pytest.raises(ValueError):
            DLRMConfig(bottom_mlp_dims=(1024, 512, 64))

    def test_custom_config_accepted(self):
        cfg = DLRMConfig(
            num_tables=4,
            table=EmbeddingTableConfig(rows=100, dim=16),
            bottom_mlp_dims=(8, 16),
            batch_size=4,
            pooling_factor=2,
        )
        assert cfg.lookups_per_table == 8
