"""The Section VII static profiling framework."""

import pytest

from repro.config.scale import SimScale
from repro.core.embedding import kernel_workload
from repro.core.tuner import autotune
from repro.datasets.spec import HOTNESS_PRESETS


@pytest.fixture(scope="module")
def tuning_workload():
    return kernel_workload(
        scale=SimScale("unit", 2),
        batch_size=16, pooling_factor=24, table_rows=4096,
    )


@pytest.fixture(scope="module")
def random_report(tuning_workload):
    return autotune(
        HOTNESS_PRESETS["random"],
        workload=tuning_workload,
        warp_targets=(32, 40),
        distances=(2, 4),
        buffers=("register", "shared"),
    )


class TestLatencyBoundPath:
    def test_random_is_diagnosed_latency_bound(self, random_report):
        steps = {s.step: s for s in random_report.steps}
        assert "memory-latency bound" in \
            steps["i: latency-bound check"].decision

    def test_framework_improves_on_base(self, random_report):
        assert random_report.speedup > 1.0
        assert random_report.final is not None
        assert (
            random_report.final.profile.kernel_time_us
            <= random_report.baseline.profile.kernel_time_us
        )

    def test_chosen_scheme_raises_occupancy(self, random_report):
        assert random_report.scheme.maxrregcount is not None
        assert random_report.final.build.warps_per_sm > 24

    def test_evidence_recorded(self, random_report):
        first = random_report.steps[0]
        assert "long_scoreboard_stall_per_inst" in first.evidence
        assert "hbm_bw_util_pct" in first.evidence

    def test_describe_renders(self, random_report):
        text = random_report.describe()
        assert "Static profiling framework" in text
        assert "=> scheme:" in text
        assert random_report.scheme.name in text


class TestEarlyExitPath:
    def test_one_item_is_not_latency_bound(self, tuning_workload):
        report = autotune(
            HOTNESS_PRESETS["one_item"],
            workload=tuning_workload,
            warp_targets=(32,),
            distances=(2,),
            buffers=("register",),
        )
        assert report.scheme.name == "base"
        assert "not latency bound" in report.steps[0].decision
        assert report.speedup == pytest.approx(1.0)
