"""Core embedding runner: profiles, scheme effects, stage aggregation."""

import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.config.model import PAPER_MODEL
from repro.config.scale import SimScale
from repro.core.embedding import (
    kernel_workload,
    run_embedding_stage,
    run_table_kernel,
)
from repro.core.schemes import BASE, L2P, OPTMT, RPF_OPTMT, Scheme
from repro.datasets.spec import HOTNESS_PRESETS
from repro.kernels.embedding_bag import expected_global_loads


@pytest.fixture(scope="module")
def wl():
    return kernel_workload(
        A100_SXM4_80GB, PAPER_MODEL, SimScale("unit", 2),
        batch_size=16, pooling_factor=24, table_rows=4096,
    )


class TestWorkloadResolution:
    def test_defaults_from_scale(self):
        workload = kernel_workload(scale=SimScale("unit", 2))
        assert workload.gpu.num_sms == 2
        assert workload.pooling_factor == 150
        assert workload.factor == pytest.approx(2 / 108)

    def test_overrides(self, wl):
        assert wl.batch_size == 16
        assert wl.pooling_factor == 24
        assert wl.accesses == 16 * 24


class TestTableKernel:
    def test_profile_sanity(self, wl):
        result = run_table_kernel(wl, HOTNESS_PRESETS["random"], BASE)
        p = result.profile
        assert p.kernel_time_us > 0
        assert 0 < p.issued_per_scheduler <= 1.0
        assert 0 <= p.l1_hit_pct <= 100
        assert 0 <= p.l2_hit_pct <= 100
        # load instructions match the kernel's analytic count (scaled)
        raw_loads = p.load_insts_m * 1e6 * wl.factor
        assert raw_loads == pytest.approx(
            expected_global_loads_total(wl), rel=0.01
        )

    def test_determinism(self, wl):
        a = run_table_kernel(wl, HOTNESS_PRESETS["med_hot"], BASE)
        b = run_table_kernel(wl, HOTNESS_PRESETS["med_hot"], BASE)
        assert a.profile.kernel_time_us == b.profile.kernel_time_us
        assert a.profile.l2_hit_pct == b.profile.l2_hit_pct

    def test_one_item_is_fastest(self, wl):
        one = run_table_kernel(wl, HOTNESS_PRESETS["one_item"], BASE)
        rand = run_table_kernel(wl, HOTNESS_PRESETS["random"], BASE)
        assert one.profile.kernel_time_us < rand.profile.kernel_time_us

    def test_optmt_raises_occupancy(self, wl):
        result = run_table_kernel(wl, HOTNESS_PRESETS["random"], OPTMT)
        assert result.build.warps_per_sm == 40
        assert result.profile.occupancy_warps == 40

    def test_l2p_pins_and_reports_coverage(self, wl):
        result = run_table_kernel(wl, HOTNESS_PRESETS["high_hot"], L2P)
        assert result.pinned_lines > 0
        assert result.pin_coverage > 0.5  # hot set fits the set-aside

    def test_pin_kernel_timing_optional(self, wl):
        without = run_table_kernel(wl, HOTNESS_PRESETS["high_hot"], L2P)
        with_timing = run_table_kernel(
            wl, HOTNESS_PRESETS["high_hot"], L2P, time_pin_kernel=True,
        )
        assert without.pin_kernel_us == 0.0
        assert with_timing.pin_kernel_us > 0.0
        # pin-kernel timing must not change the measured kernel
        assert with_timing.profile.kernel_time_us == pytest.approx(
            without.profile.kernel_time_us
        )

    def test_no_pinning_for_plain_schemes(self, wl):
        result = run_table_kernel(wl, HOTNESS_PRESETS["high_hot"], BASE)
        assert result.pinned_lines == 0
        assert result.pin_coverage == 0.0

    def test_custom_trace_accepted(self, wl, trace_factory):
        trace = trace_factory("random", batch=16, pooling=24, rows=4096)
        result = run_table_kernel(
            wl, HOTNESS_PRESETS["random"], BASE, trace=trace
        )
        assert result.dataset == "random"


def expected_global_loads_total(wl):
    from repro.datasets.generator import generate_trace

    trace = generate_trace(
        HOTNESS_PRESETS["random"],
        batch_size=wl.batch_size,
        pooling_factor=wl.pooling_factor,
        table_rows=wl.table_rows,
        seed=0,
    )
    return expected_global_loads(trace, wl.row_bytes)


class TestEmbeddingStage:
    def test_homogeneous_stage_weighting(self, wl):
        stage = run_embedding_stage(wl, {"med_hot": 10}, BASE)
        kernel = stage.per_table["med_hot"]
        expected = 10 * (kernel.kernel_time_us + stage.launch_overhead_us)
        assert stage.total_time_us == pytest.approx(expected)
        assert stage.num_tables == 10

    def test_heterogeneous_stage(self, wl):
        stage = run_embedding_stage(
            wl, {"high_hot": 3, "random": 2}, BASE
        )
        assert set(stage.per_table) == {"high_hot", "random"}
        hot = stage.per_table["high_hot"].kernel_time_us
        cold = stage.per_table["random"].kernel_time_us
        launch = stage.launch_overhead_us
        assert stage.total_time_us == pytest.approx(
            3 * (hot + launch) + 2 * (cold + launch)
        )

    def test_empty_mix_rejected(self, wl):
        with pytest.raises(ValueError):
            run_embedding_stage(wl, {}, BASE)

    def test_nonpositive_count_rejected(self, wl):
        with pytest.raises(ValueError):
            run_embedding_stage(wl, {"random": 0}, BASE)

    def test_schemes_shift_stage_total(self, wl):
        base = run_embedding_stage(wl, {"random": 5}, BASE)
        opt = run_embedding_stage(wl, {"random": 5}, RPF_OPTMT)
        assert opt.total_time_us < base.total_time_us
