"""End-to-end pipeline latency composition."""

import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.config.scale import SimScale
from repro.core.embedding import kernel_workload
from repro.core.pipeline import run_inference, speedup
from repro.core.schemes import BASE, OPTMT


@pytest.fixture(scope="module")
def small_workload():
    return kernel_workload(
        scale=SimScale("unit", 2),
        batch_size=16, pooling_factor=24, table_rows=4096,
    )


class TestRunInference:
    def test_homogeneous_dataset_by_name(self, small_workload):
        result = run_inference("random", BASE, workload=small_workload)
        assert result.mix == {"random": 250}
        assert result.batch_latency_ms > 0
        assert 0 < result.embedding_share_pct < 100

    def test_latency_composition(self, small_workload):
        result = run_inference("med_hot", BASE, workload=small_workload)
        total_us = result.embedding_us + result.non_embedding_us
        assert result.batch_latency_ms == pytest.approx(total_us / 1e3)

    def test_heterogeneous_mix(self, small_workload):
        result = run_inference(
            {"high_hot": 150, "random": 100}, BASE,
            workload=small_workload,
        )
        assert result.embedding.num_tables == 250

    def test_mix_must_cover_model_tables(self, small_workload):
        with pytest.raises(ValueError):
            run_inference({"random": 7}, BASE, workload=small_workload)

    def test_embedding_dominates_for_paper_model(self):
        # with the paper's pooling factor (150), the embedding stage
        # dominates end-to-end latency (Fig. 1/14)
        workload = kernel_workload(scale=SimScale("unit", 2))
        result = run_inference("random", BASE, workload=workload)
        assert result.embedding_share_pct > 50.0

    def test_optmt_improves_end_to_end(self, small_workload):
        base = run_inference("random", BASE, workload=small_workload)
        opt = run_inference("random", OPTMT, workload=small_workload)
        assert speedup(base, opt) > 1.0
        # the embedding-only gain is diluted by non-embedding stages
        emb_gain = base.embedding_us / opt.embedding_us
        assert speedup(base, opt) < emb_gain


class TestSpeedup:
    def test_identity(self, small_workload):
        result = run_inference("high_hot", BASE, workload=small_workload)
        assert speedup(result, result) == 1.0
