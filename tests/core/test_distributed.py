"""Distributed (model-parallel) embedding stage extension."""

import pytest

from repro.config.scale import SimScale
from repro.core.distributed import (
    allgather_us,
    lpt_shard,
    run_distributed_stage,
)
from repro.core.embedding import kernel_workload
from repro.core.schemes import BASE, RPF_L2P_OPTMT


@pytest.fixture(scope="module")
def wl():
    return kernel_workload(
        scale=SimScale("dist", 2),
        batch_size=16, pooling_factor=24, table_rows=8192,
    )


class TestLptSharding:
    def test_balances_homogeneous_tables(self):
        placement = lpt_shard({"a": 10.0}, {"a": 8}, n_gpus=4)
        assert [len(p) for p in placement] == [2, 2, 2, 2]

    def test_heavy_tables_spread_first(self):
        times = {"hot": 1.0, "cold": 10.0}
        placement = lpt_shard(times, {"hot": 2, "cold": 2}, n_gpus=2)
        for shard in placement:
            assert "cold" in shard  # one heavy table per GPU

    def test_single_gpu_gets_everything(self):
        placement = lpt_shard({"a": 1.0}, {"a": 5}, n_gpus=1)
        assert len(placement[0]) == 5

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            lpt_shard({"a": 1.0}, {"a": 1}, n_gpus=0)


class TestAllGather:
    def test_single_gpu_free(self, wl):
        assert allgather_us(wl, 250, 1) == 0.0

    def test_grows_with_gpus_remote_fraction(self, wl):
        two = allgather_us(wl, 250, 2)
        four = allgather_us(wl, 250, 4)
        assert 0 < two < four


class TestLptEdgeCases:
    def test_more_gpus_than_tables(self):
        placement = lpt_shard({"a": 3.0}, {"a": 2}, n_gpus=5)
        assert sum(len(p) for p in placement) == 2
        assert sum(1 for p in placement if not p) == 3
        # the placed tables land on distinct GPUs
        assert max(len(p) for p in placement) == 1

    def test_more_gpus_than_tables_stage_runs(self, wl):
        result = run_distributed_stage(
            wl, {"random": 2}, BASE, n_gpus=4,
        )
        assert result.n_gpus == 4
        empty = [s for s in result.shards if not s.tables]
        assert len(empty) == 2
        assert all(s.compute_us == 0.0 for s in empty)
        assert result.critical_path_us > 0

    def test_skewed_mix_imbalance_bounded_by_heaviest_table(self, wl):
        """One giant table dominates: imbalance reflects it but LPT
        still spreads everything else away from that GPU."""
        times = {"giant": 100.0, "tiny": 1.0}
        placement = lpt_shard(times, {"giant": 1, "tiny": 8}, n_gpus=2)
        giant_gpu = next(
            i for i, p in enumerate(placement) if "giant" in p
        )
        # every tiny table goes to the other GPU
        assert len(placement[1 - giant_gpu]) == 8
        assert placement[giant_gpu] == ["giant"]


class TestAllGatherEdgeCases:
    def test_single_gpu_stage_has_zero_allgather(self, wl):
        result = run_distributed_stage(
            wl, {"random": 3}, BASE, n_gpus=1,
        )
        assert result.allgather_us == 0.0
        assert result.critical_path_us == pytest.approx(
            result.shards[0].compute_us
        )

    def test_imbalance_on_skewed_measured_mix(self, wl):
        """A hot/random split shards unevenly per table but LPT keeps
        the per-GPU *time* imbalance modest."""
        result = run_distributed_stage(
            wl, {"one_item": 6, "random": 2}, BASE, n_gpus=2,
        )
        assert result.imbalance < 2.0
        assert result.imbalance >= 1.0


class TestDistributedStage:
    def test_all_tables_placed(self, wl):
        result = run_distributed_stage(
            wl, {"high_hot": 5, "random": 3}, BASE, n_gpus=2,
        )
        placed = sum(len(s.tables) for s in result.shards)
        assert placed == 8
        assert result.n_gpus == 2

    def test_critical_path_is_slowest_shard_plus_gather(self, wl):
        result = run_distributed_stage(
            wl, {"high_hot": 4, "random": 4}, BASE, n_gpus=2,
        )
        slowest = max(s.compute_us for s in result.shards)
        assert result.critical_path_us == pytest.approx(
            slowest + result.allgather_us
        )

    def test_lpt_keeps_imbalance_low(self, wl):
        result = run_distributed_stage(
            wl, {"high_hot": 6, "med_hot": 6, "random": 4}, BASE, n_gpus=4,
        )
        assert result.imbalance < 1.6

    def test_schemes_speed_up_distributed_stage(self, wl):
        base = run_distributed_stage(
            wl, {"random": 8}, BASE, n_gpus=2,
        )
        opt = run_distributed_stage(
            wl, {"random": 8}, RPF_L2P_OPTMT, n_gpus=2,
        )
        assert opt.speedup_over(base) > 1.0

    def test_empty_mix_rejected(self, wl):
        with pytest.raises(ValueError):
            run_distributed_stage(wl, {}, BASE, n_gpus=2)
