"""Drift + periodic re-pinning extension (Section IV-C follow-through)."""

import numpy as np
import pytest

from repro.config.scale import SimScale
from repro.core.drift import DriftModel, serve_with_drift
from repro.core.embedding import kernel_workload
from repro.core.schemes import BASE, Scheme
from repro.datasets.spec import HOTNESS_PRESETS
from tests.conftest import make_trace


@pytest.fixture(scope="module")
def wl():
    return kernel_workload(
        scale=SimScale("drift", 2),
        batch_size=16, pooling_factor=24, table_rows=8192,
    )


class TestDriftModel:
    def test_step_zero_is_identity(self):
        trace = make_trace("high_hot")
        assert DriftModel(0.2).apply(trace, 0) is trace

    def test_zero_rate_is_identity(self):
        trace = make_trace("high_hot")
        assert DriftModel(0.0).apply(trace, 5) is trace

    def test_drift_preserves_frequency_shape(self):
        trace = make_trace("high_hot")
        drifted = DriftModel(0.3, seed=1).apply(trace, 1)
        original = np.sort(np.unique(trace.indices, return_counts=True)[1])
        after = np.sort(np.unique(drifted.indices, return_counts=True)[1])
        np.testing.assert_array_equal(original, after)

    def test_drift_changes_hot_identities(self):
        trace = make_trace("high_hot")
        drifted = DriftModel(0.5, seed=1).apply(trace, 2)
        before = set(np.unique(trace.indices).tolist())
        after = set(np.unique(drifted.indices).tolist())
        assert before != after

    def test_more_steps_more_divergence(self):
        trace = make_trace("high_hot")
        model = DriftModel(0.2, seed=1)
        one = set(np.unique(model.apply(trace, 1).indices).tolist())
        five = set(np.unique(model.apply(trace, 5).indices).tolist())
        base = set(np.unique(trace.indices).tolist())
        assert len(base & five) <= len(base & one)

    def test_deterministic(self):
        trace = make_trace("med_hot")
        a = DriftModel(0.2, seed=3).apply(trace, 2)
        b = DriftModel(0.2, seed=3).apply(trace, 2)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            DriftModel(1.5)


class TestServeWithDrift:
    def test_pin_once_coverage_decays(self, wl):
        report = serve_with_drift(
            wl, HOTNESS_PRESETS["high_hot"],
            n_batches=4, drift=DriftModel(0.25, seed=2),
        )
        assert report.policy == "pin-once"
        assert report.repin_count == 0
        assert report.steps[-1].pin_coverage < report.steps[0].pin_coverage

    def test_repinning_restores_coverage(self, wl):
        drift = DriftModel(0.25, seed=2)
        stale = serve_with_drift(
            wl, HOTNESS_PRESETS["high_hot"], n_batches=4, drift=drift,
        )
        fresh = serve_with_drift(
            wl, HOTNESS_PRESETS["high_hot"], n_batches=4, drift=drift,
            repin_every=1,
        )
        assert fresh.repin_count > 0
        assert fresh.final_coverage > stale.final_coverage

    def test_requires_pinning_scheme(self, wl):
        with pytest.raises(ValueError):
            serve_with_drift(
                wl, HOTNESS_PRESETS["high_hot"], scheme=BASE,
            )

    def test_custom_scheme_accepted(self, wl):
        report = serve_with_drift(
            wl, HOTNESS_PRESETS["high_hot"],
            n_batches=2,
            scheme=Scheme(l2_pinning=True),
        )
        assert len(report.steps) == 2
        assert report.mean_time_us > 0
