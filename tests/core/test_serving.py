"""Serving-layer simulation: batching, tails, sustainable load."""

import pytest

from repro.core.serving import (
    BatchingPolicy,
    interpolated_latency_model,
    max_sustainable_qps,
    simulate_serving,
)


def linear_model(batch):
    # 10 ms fixed + 10 us per query
    return 10.0 + 0.01 * batch


class TestLatencyModel:
    def test_interpolation(self):
        model = interpolated_latency_model([512, 2048], [30.0, 90.0])
        assert model(512) == pytest.approx(30.0)
        assert model(1280) == pytest.approx(60.0)
        assert model(2048) == pytest.approx(90.0)

    def test_clamps_outside_range(self):
        model = interpolated_latency_model([512, 2048], [30.0, 90.0])
        assert model(100) == pytest.approx(30.0)
        assert model(10_000) == pytest.approx(90.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            interpolated_latency_model([1, 2], [1.0])
        with pytest.raises(ValueError):
            interpolated_latency_model([], [])


class TestSimulateServing:
    def test_light_load_low_latency(self):
        report = simulate_serving(
            linear_model, qps=50, duration_s=5.0,
            policy=BatchingPolicy(max_batch=64, timeout_ms=1.0),
        )
        # mostly singleton batches served immediately: ~exec + timeout
        assert report.p50_ms < 25.0
        assert report.mean_batch_size < 8
        assert report.gpu_utilization < 0.9

    def test_overload_grows_tail(self):
        light = simulate_serving(
            linear_model, qps=50, duration_s=5.0, seed=1,
        )
        heavy = simulate_serving(
            linear_model, qps=5_000, duration_s=5.0, seed=1,
        )
        assert heavy.p99_ms > light.p99_ms
        assert heavy.mean_batch_size > light.mean_batch_size

    def test_batching_amortizes_under_load(self):
        # big batches keep utilization below 100% even at high qps
        report = simulate_serving(
            linear_model, qps=20_000, duration_s=2.0,
            policy=BatchingPolicy(max_batch=2048, timeout_ms=5.0),
        )
        assert report.mean_batch_size > 100
        assert report.n_queries == 40_000

    def test_percentiles_ordered(self):
        report = simulate_serving(linear_model, qps=500, duration_s=3.0)
        assert report.p50_ms <= report.p95_ms <= report.p99_ms

    def test_deterministic_by_seed(self):
        a = simulate_serving(linear_model, qps=500, seed=3)
        b = simulate_serving(linear_model, qps=500, seed=3)
        assert a.p99_ms == b.p99_ms

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_serving(linear_model, qps=0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchingPolicy(timeout_ms=-1)


class TestSustainableQps:
    def test_faster_model_sustains_more(self):
        slow = interpolated_latency_model([1, 2048], [40.0, 90.0])
        fast = interpolated_latency_model([1, 2048], [20.0, 50.0])
        qps_slow, _ = max_sustainable_qps(
            slow, sla_ms=100.0, qps_grid=(1000, 4000, 16000, 64000),
        )
        qps_fast, _ = max_sustainable_qps(
            fast, sla_ms=100.0, qps_grid=(1000, 4000, 16000, 64000),
        )
        assert qps_fast >= qps_slow

    def test_impossible_sla_yields_zero(self):
        model = interpolated_latency_model([1, 2048], [500.0, 900.0])
        qps, reports = max_sustainable_qps(
            model, sla_ms=10.0, qps_grid=(100, 1000),
        )
        assert qps == 0.0
        assert len(reports) == 2

    def test_sla_check_percentile(self):
        report = simulate_serving(linear_model, qps=100, duration_s=2.0)
        assert report.meets_sla(10_000.0)
        assert not report.meets_sla(0.001)
