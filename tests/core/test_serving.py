"""Serving-layer simulation: batching, tails, sustainable load."""

import numpy as np
import pytest

from repro.core.serving import (
    BatchingPolicy,
    ContinuousBatching,
    interpolated_latency_model,
    max_sustainable_qps,
    resolve_percentile_field,
    serve_stream,
    simulate_serving,
)


def linear_model(batch):
    # 10 ms fixed + 10 us per query
    return 10.0 + 0.01 * batch


class TestLatencyModel:
    def test_interpolation(self):
        model = interpolated_latency_model([512, 2048], [30.0, 90.0])
        assert model(512) == pytest.approx(30.0)
        assert model(1280) == pytest.approx(60.0)
        assert model(2048) == pytest.approx(90.0)

    def test_clamps_outside_range(self):
        model = interpolated_latency_model([512, 2048], [30.0, 90.0])
        assert model(100) == pytest.approx(30.0)
        assert model(10_000) == pytest.approx(90.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            interpolated_latency_model([1, 2], [1.0])
        with pytest.raises(ValueError):
            interpolated_latency_model([], [])


class TestSimulateServing:
    def test_light_load_low_latency(self):
        report = simulate_serving(
            linear_model, qps=50, duration_s=5.0,
            policy=BatchingPolicy(max_batch=64, timeout_ms=1.0),
        )
        # mostly singleton batches served immediately: ~exec + timeout
        assert report.p50_ms < 25.0
        assert report.mean_batch_size < 8
        assert report.gpu_utilization < 0.9

    def test_overload_grows_tail(self):
        light = simulate_serving(
            linear_model, qps=50, duration_s=5.0, seed=1,
        )
        heavy = simulate_serving(
            linear_model, qps=5_000, duration_s=5.0, seed=1,
        )
        assert heavy.p99_ms > light.p99_ms
        assert heavy.mean_batch_size > light.mean_batch_size

    def test_batching_amortizes_under_load(self):
        # big batches keep utilization below 100% even at high qps
        report = simulate_serving(
            linear_model, qps=20_000, duration_s=2.0,
            policy=BatchingPolicy(max_batch=2048, timeout_ms=5.0),
        )
        assert report.mean_batch_size > 100
        assert report.n_queries == 40_000

    def test_percentiles_ordered(self):
        report = simulate_serving(linear_model, qps=500, duration_s=3.0)
        assert report.p50_ms <= report.p95_ms <= report.p99_ms

    def test_deterministic_by_seed(self):
        a = simulate_serving(linear_model, qps=500, seed=3)
        b = simulate_serving(linear_model, qps=500, seed=3)
        assert a.p99_ms == b.p99_ms

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_serving(linear_model, qps=0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchingPolicy(timeout_ms=-1)


class TestSustainableQps:
    def test_faster_model_sustains_more(self):
        slow = interpolated_latency_model([1, 2048], [40.0, 90.0])
        fast = interpolated_latency_model([1, 2048], [20.0, 50.0])
        qps_slow, _ = max_sustainable_qps(
            slow, sla_ms=100.0, qps_grid=(1000, 4000, 16000, 64000),
        )
        qps_fast, _ = max_sustainable_qps(
            fast, sla_ms=100.0, qps_grid=(1000, 4000, 16000, 64000),
        )
        assert qps_fast >= qps_slow

    def test_impossible_sla_yields_zero(self):
        model = interpolated_latency_model([1, 2048], [500.0, 900.0])
        qps, reports = max_sustainable_qps(
            model, sla_ms=10.0, qps_grid=(100, 1000),
        )
        assert qps == 0.0
        assert len(reports) == 2

    def test_sla_check_percentile(self):
        report = simulate_serving(linear_model, qps=100, duration_s=2.0)
        assert report.meets_sla(10_000.0)
        assert not report.meets_sla(0.001)


class TestMeetsSlaPercentiles:
    def test_known_percentiles_and_case(self):
        report = simulate_serving(linear_model, qps=100, duration_s=1.0)
        for name in ("p50", "p95", "p99", "P99", "P50"):
            assert report.meets_sla(10_000.0, name)

    def test_unknown_percentile_rejected(self):
        report = simulate_serving(linear_model, qps=100, duration_s=1.0)
        for bad in ("p75", "mean", "p99_ms", "", "scheme_name"):
            with pytest.raises(ValueError, match="unknown percentile"):
                report.meets_sla(100.0, bad)

    def test_non_string_percentile_rejected(self):
        report = simulate_serving(linear_model, qps=100, duration_s=1.0)
        with pytest.raises(ValueError, match="unknown percentile"):
            report.meets_sla(100.0, 99)

    def test_resolver_maps_fields(self):
        assert resolve_percentile_field("p95") == "p95_ms"


class _SteadyStream:
    """Minimal stream for serve_stream unit tests."""

    def __init__(self, times, phase_ids=None, phases=("steady",),
                 phase_durations=None, duration_s=None):
        self.name = "unit"
        self.times = np.asarray(times, dtype=float)
        self.phase_ids = (
            np.zeros(len(times), dtype=np.int64) if phase_ids is None
            else np.asarray(phase_ids)
        )
        self.phases = phases
        self.duration_s = (
            duration_s if duration_s is not None
            else float(self.times[-1]) + 0.1
        )
        self.phase_durations = phase_durations or (self.duration_s,)


class TestContinuousBatching:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContinuousBatching(max_batch=0)
        with pytest.raises(ValueError):
            ContinuousBatching(sla_ms=0.0)
        with pytest.raises(ValueError):
            ContinuousBatching(sla_ms=-5.0)
        assert "continuous" in ContinuousBatching().label

    def test_dispatches_immediately_when_idle(self):
        # 3 well-separated queries: each served alone, no formation wait
        stream = _SteadyStream([0.0, 1.0, 2.0])
        report = serve_stream(
            lambda b: 10.0, stream, policy=ContinuousBatching(),
        )
        assert report.p99_ms == pytest.approx(10.0)
        assert report.mean_batch_size == pytest.approx(1.0)

    def test_riders_join_in_flight_formation(self):
        # queries landing while the GPU is busy form the next batch
        stream = _SteadyStream([0.0, 0.001, 0.002, 0.003])
        report = serve_stream(
            lambda b: 10.0, stream, policy=ContinuousBatching(),
        )
        # batch 1 = [t0]; batch 2 = the three riders at gpu_free=10ms
        assert report.mean_batch_size == pytest.approx(2.0)
        assert report.n_queries == 4

    def test_max_batch_respected(self):
        stream = _SteadyStream([0.0] * 10)
        report = serve_stream(
            lambda b: 1.0, stream, policy=ContinuousBatching(max_batch=4),
        )
        assert report.mean_batch_size <= 4.0

    def test_sla_adaptive_sizing_prefers_in_sla_batches(self):
        # 100 queries at t=0; exec(b) = b ms; SLA 10 ms.  A full drain
        # (100 ms) saves nobody; goodput-greedy serves 10-sized batches
        # while they can still hit, then drains
        stream = _SteadyStream([0.0] * 100, duration_s=1.0)
        exec_ms = lambda b: float(b)
        greedy = serve_stream(
            exec_ms, stream,
            policy=ContinuousBatching(max_batch=100, sla_ms=10.0),
            sla_ms=10.0,
        )
        blind = serve_stream(
            exec_ms, stream,
            policy=ContinuousBatching(max_batch=100), sla_ms=10.0,
        )
        assert greedy.sla_hit_pct > blind.sla_hit_pct

    def test_simulate_serving_accepts_continuous_policy(self):
        report = simulate_serving(
            linear_model, qps=200, duration_s=2.0,
            policy=ContinuousBatching(max_batch=64, sla_ms=50.0),
        )
        assert report.n_queries == 400
        assert report.p50_ms > 0


class TestServeStream:
    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            serve_stream(lambda b: 1.0, _SteadyStream([], duration_s=1.0))

    def test_fixed_policy_matches_simulate_serving(self):
        rng = np.random.default_rng(3)
        qps, duration = 500, 2.0
        n = int(qps * duration)
        times = np.cumsum(rng.exponential(1.0 / qps, size=n))
        via_stream = serve_stream(
            linear_model,
            _SteadyStream(times, duration_s=duration),
            policy=BatchingPolicy(),
        )
        direct = simulate_serving(
            linear_model, qps=qps, duration_s=duration, seed=3,
        )
        assert via_stream.p99_ms == pytest.approx(direct.p99_ms)
        assert via_stream.mean_batch_size == pytest.approx(
            direct.mean_batch_size
        )

    def test_goodput_counts_only_in_sla_completions(self):
        stream = _SteadyStream([0.0, 0.0, 0.0, 0.0], duration_s=2.0)
        # batch of 4 takes 40 ms; SLA 50 -> all good, SLA 30 -> none
        loose = serve_stream(
            lambda b: 10.0 * b, stream,
            policy=ContinuousBatching(), sla_ms=50.0,
        )
        tight = serve_stream(
            lambda b: 10.0 * b, stream,
            policy=ContinuousBatching(), sla_ms=30.0,
        )
        assert loose.goodput_qps == pytest.approx(4 / 2.0)
        assert tight.goodput_qps == pytest.approx(0.0)
        assert tight.sla_hit_pct == pytest.approx(0.0)

    def test_phase_stats_partition_queries(self):
        stream = _SteadyStream(
            [0.0, 0.5, 1.0, 1.5],
            phase_ids=[0, 0, 1, 1],
            phases=("a", "b"),
            phase_durations=(1.0, 1.0),
            duration_s=2.0,
        )
        report = serve_stream(
            lambda b: 1.0, stream, policy=ContinuousBatching(),
            sla_ms=5.0,
        )
        assert [p.phase for p in report.phases] == ["a", "b"]
        assert all(p.n_queries == 2 for p in report.phases)
        assert report.offered_qps == pytest.approx(2.0)
