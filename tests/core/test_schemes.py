"""Scheme composition and the paper's '+' nomenclature."""

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.core.schemes import (
    BASE,
    FIG12_SCHEMES,
    L2P_OPTMT,
    OPTMT,
    RPF_L2P_OPTMT,
    RPF_OPTMT,
    SMPF,
    Scheme,
)


class TestNames:
    @pytest.mark.parametrize("scheme,name", [
        (BASE, "base"),
        (OPTMT, "OptMT"),
        (RPF_OPTMT, "RPF+OptMT"),
        (L2P_OPTMT, "L2P+OptMT"),
        (RPF_L2P_OPTMT, "RPF+L2P+OptMT"),
        (SMPF, "SMPF"),
    ])
    def test_paper_nomenclature(self, scheme, name):
        assert scheme.name == name

    def test_explicit_cap_named(self):
        assert Scheme(maxrregcount=42).name == "maxrreg42"


class TestParse:
    @pytest.mark.parametrize("name", [
        "base", "OptMT", "RPF+OptMT", "L2P+OptMT", "RPF+L2P+OptMT",
        "SMPF", "LMPF", "L1DPF", "SMPF+L2P",
    ])
    def test_round_trip(self, name):
        assert Scheme.parse(name).name == name

    def test_parse_rejects_unknown_token(self):
        with pytest.raises(ValueError):
            Scheme.parse("RPF+TURBO")

    def test_parse_rejects_two_prefetchers(self):
        with pytest.raises(ValueError):
            Scheme.parse("RPF+SMPF")

    def test_parse_empty_is_base(self):
        assert Scheme.parse("") == BASE


class TestValidation:
    def test_bad_prefetch_kind(self):
        with pytest.raises(ValueError):
            Scheme(prefetch="l4")

    def test_bad_distance(self):
        with pytest.raises(ValueError):
            Scheme(prefetch="register", prefetch_distance=0)

    def test_optmt_and_cap_conflict(self):
        with pytest.raises(ValueError):
            Scheme(optmt=True, maxrregcount=40)


class TestResolution:
    def test_default_distance_with_optmt_is_2(self):
        assert RPF_OPTMT.resolved_distance() == 2

    def test_default_distance_without_optmt(self):
        # Section VI-B2: {RPF 4, SMPF 10, LMPF 10, L1DPF 5}
        assert Scheme(prefetch="register").resolved_distance() == 4
        assert Scheme(prefetch="shared").resolved_distance() == 10
        assert Scheme(prefetch="local").resolved_distance() == 10
        assert Scheme(prefetch="l1d").resolved_distance() == 5

    def test_explicit_distance_wins(self):
        assert RPF_OPTMT.with_distance(7).resolved_distance() == 7

    def test_no_prefetch_distance_zero(self):
        assert BASE.resolved_distance() == 0

    def test_maxrreg_resolution(self):
        assert BASE.resolved_maxrreg(A100_SXM4_80GB) is None
        assert OPTMT.resolved_maxrreg(A100_SXM4_80GB) == 48
        assert OPTMT.resolved_maxrreg(H100_NVL) == 64
        assert Scheme(maxrregcount=40).resolved_maxrreg(A100_SXM4_80GB) == 40


class TestCompile:
    def test_compile_base(self):
        build = BASE.compile(A100_SXM4_80GB)
        assert build.warps_per_sm == 24

    def test_compile_combined(self):
        build = RPF_L2P_OPTMT.compile(A100_SXM4_80GB)
        assert build.prefetch == "register"
        assert build.prefetch_distance == 2
        assert build.warps_per_sm == 40
        assert build.spilled_regs > 0

    def test_fig12_lineup(self):
        assert [s.name for s in FIG12_SCHEMES] == [
            "OptMT", "RPF+OptMT", "L2P+OptMT", "RPF+L2P+OptMT",
        ]
