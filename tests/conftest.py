"""Shared test fixtures: small, fast workloads on a 2-SM GPU slice."""

from __future__ import annotations

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.config.model import DLRMConfig, EmbeddingTableConfig
from repro.config.scale import SimScale
from repro.core.embedding import KernelWorkload
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS


@pytest.fixture(scope="session")
def tiny_gpu():
    """A 2-SM slice of the A100 for fast engine tests."""
    return A100_SXM4_80GB.scaled_slice(2)


@pytest.fixture(scope="session")
def tiny_h100():
    return H100_NVL.scaled_slice(2)


@pytest.fixture(scope="session")
def tiny_workload(tiny_gpu):
    """A small but non-trivial kernel workload (fast to simulate)."""
    return KernelWorkload(
        gpu=tiny_gpu,
        full_gpu=A100_SXM4_80GB,
        factor=2 / 108,
        batch_size=16,
        pooling_factor=24,
        table_rows=4096,
        row_bytes=512,
    )


@pytest.fixture(scope="session")
def small_model():
    """A functional-scale DLRM config (materializable weights)."""
    return DLRMConfig(
        num_tables=6,
        table=EmbeddingTableConfig(rows=512, dim=32),
        batch_size=12,
        pooling_factor=8,
        bottom_mlp_dims=(16, 32, 32),
        dense_features=16,
        top_mlp_dims=(32, 16, 1),
    )


@pytest.fixture(scope="session")
def test_scale():
    return SimScale(name="unit", num_sms=2)


def make_trace(name="random", batch=16, pooling=24, rows=4096, seed=0):
    return generate_trace(
        HOTNESS_PRESETS[name],
        batch_size=batch,
        pooling_factor=pooling,
        table_rows=rows,
        seed=seed,
    )


@pytest.fixture
def trace_factory():
    return make_trace
