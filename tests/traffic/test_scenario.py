"""Scenario generation: shapes, phases, seeding, reproducibility."""

import numpy as np
import pytest

from repro.traffic import (
    SCENARIO_PROFILES,
    DiurnalSpec,
    DriftSpec,
    FlashCrowdSpec,
    MMPPSpec,
    StationarySpec,
    generate_arrivals,
    iter_arrivals,
    scenario_profile,
)


class TestBitReproducibility:
    @pytest.mark.parametrize("profile", SCENARIO_PROFILES)
    def test_same_seed_identical_stream(self, profile):
        spec = scenario_profile(profile, base_qps=2000, duration_s=4.0)
        a = generate_arrivals(spec, seed=3)
        b = generate_arrivals(spec, seed=3)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.phase_ids, b.phase_ids)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("profile", SCENARIO_PROFILES)
    def test_different_seed_different_stream(self, profile):
        spec = scenario_profile(profile, base_qps=2000, duration_s=4.0)
        assert (
            generate_arrivals(spec, seed=0).fingerprint()
            != generate_arrivals(spec, seed=1).fingerprint()
        )

    def test_iter_matches_generate(self):
        spec = scenario_profile("flash", base_qps=800, duration_s=2.0)
        trace = generate_arrivals(spec, seed=5)
        arrivals = list(iter_arrivals(spec, seed=5))
        assert len(arrivals) == trace.n_arrivals
        assert arrivals[0].t == pytest.approx(float(trace.times[0]))
        assert arrivals[-1].phase == trace.phases[int(trace.phase_ids[-1])]


class TestTraceStructure:
    @pytest.mark.parametrize("profile", SCENARIO_PROFILES)
    def test_sorted_within_horizon_and_labelled(self, profile):
        spec = scenario_profile(profile, base_qps=3000, duration_s=4.0)
        trace = generate_arrivals(spec, seed=0)
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.times[0] >= 0.0
        assert trace.times[-1] < spec.duration_s
        assert trace.phase_ids.min() >= 0
        assert trace.phase_ids.max() < len(trace.phases)

    @pytest.mark.parametrize("profile", SCENARIO_PROFILES)
    def test_phase_durations_cover_run(self, profile):
        spec = scenario_profile(profile, base_qps=1000, duration_s=5.0)
        trace = generate_arrivals(spec, seed=0)
        assert sum(trace.phase_durations) == pytest.approx(
            spec.duration_s, rel=1e-6
        )

    def test_mean_rate_tracks_spec(self):
        spec = StationarySpec(base_qps=5000, duration_s=8.0)
        trace = generate_arrivals(spec, seed=0)
        assert trace.mean_qps == pytest.approx(5000, rel=0.05)


class TestShapes:
    def test_diurnal_peak_beats_trough(self):
        spec = DiurnalSpec(base_qps=4000, duration_s=8.0, amplitude=0.8)
        trace = generate_arrivals(spec, seed=0)
        by_phase = {
            name: int((trace.phase_ids == i).sum())
            / trace.phase_durations[i]
            for i, name in enumerate(trace.phases)
        }
        assert by_phase["peak"] > by_phase["shoulder"] > by_phase["trough"]
        assert spec.peak_rate() == pytest.approx(4000 * 1.8)

    def test_flash_spike_rate_dwarfs_baseline(self):
        spec = FlashCrowdSpec(
            base_qps=1000, duration_s=6.0, spike_at_s=2.0,
            magnitude=10.0, ramp_s=0.2, decay_s=0.5,
        )
        trace = generate_arrivals(spec, seed=0)
        rate = {
            name: int((trace.phase_ids == i).sum())
            / trace.phase_durations[i]
            for i, name in enumerate(trace.phases)
        }
        assert rate["spike"] > 4 * rate["pre"]
        # before the spike hits, the process is the plain baseline
        assert rate["pre"] == pytest.approx(1000, rel=0.1)

    def test_flash_rate_function(self):
        spec = FlashCrowdSpec(
            base_qps=1000, duration_s=6.0, spike_at_s=2.0,
            magnitude=8.0, ramp_s=0.5, decay_s=1.0,
        )
        assert float(spec.rate(1.0)) == pytest.approx(1000.0)
        assert float(spec.rate(2.5)) == pytest.approx(8000.0)
        assert float(spec.rate(6.0)) < 8000.0

    def test_mmpp_burst_rate_exceeds_calm(self):
        spec = MMPPSpec(
            base_qps=1000, duration_s=10.0, burst_multiplier=6.0,
            mean_calm_s=1.0, mean_burst_s=0.5,
        )
        trace = generate_arrivals(spec, seed=2)
        calm_n = int((trace.phase_ids == 0).sum())
        burst_n = int((trace.phase_ids == 1).sum())
        calm_rate = calm_n / trace.phase_durations[0]
        burst_rate = burst_n / trace.phase_durations[1]
        assert burst_rate > 3 * calm_rate
        assert calm_rate == pytest.approx(1000, rel=0.2)

    def test_drift_phases_partition_run(self):
        spec = DriftSpec(base_qps=1000, duration_s=8.0, n_phases=4)
        trace = generate_arrivals(spec, seed=0)
        assert trace.phases == ("drift0", "drift1", "drift2", "drift3")
        assert all(
            d == pytest.approx(2.0, rel=1e-6)
            for d in trace.phase_durations
        )
        # arrival counts roughly even across phases (stationary process)
        counts = [int((trace.phase_ids == i).sum()) for i in range(4)]
        assert max(counts) < 1.25 * min(counts)


class TestValidation:
    def test_base_validation(self):
        with pytest.raises(ValueError):
            StationarySpec(base_qps=0)
        with pytest.raises(ValueError):
            StationarySpec(base_qps=100, duration_s=0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DiurnalSpec(amplitude=1.5)
        with pytest.raises(ValueError):
            FlashCrowdSpec(duration_s=4.0, spike_at_s=9.0)
        with pytest.raises(ValueError):
            FlashCrowdSpec(magnitude=0.5)
        with pytest.raises(ValueError):
            MMPPSpec(burst_multiplier=1.0)
        with pytest.raises(ValueError):
            DriftSpec(n_phases=0)
        with pytest.raises(ValueError):
            DriftSpec(drift_per_phase=1.5)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario profile"):
            scenario_profile("tsunami")
