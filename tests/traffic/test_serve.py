"""Scenario serving: continuous batching, phase models, fleet wiring."""

import numpy as np
import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.core.serving import BatchingPolicy, ContinuousBatching
from repro.fleet import FleetSpec
from repro.traffic import (
    DriftSpec,
    FlashCrowdSpec,
    StationarySpec,
    drift_phase_factors,
    generate_arrivals,
    scaled_latency_models,
    scenario_profile,
    simulate_fleet_scenario,
    simulate_scenario_serving,
)


def toy_model(batch):
    return 10.0 + 0.01 * batch


class TestScenarioServing:
    def test_reports_every_phase(self):
        spec = scenario_profile("flash", base_qps=2000, duration_s=4.0)
        report = simulate_scenario_serving(
            spec, toy_model, sla_ms=40.0, seed=0
        )
        assert {p.phase for p in report.phases} == {
            "pre", "spike", "recovery"
        }
        assert report.n_queries == sum(p.n_queries for p in report.phases)
        assert report.phase("spike").n_queries > 0
        with pytest.raises(KeyError):
            report.phase("nope")

    def test_accepts_pregenerated_trace(self):
        spec = StationarySpec(base_qps=1000, duration_s=3.0)
        trace = generate_arrivals(spec, seed=4)
        a = simulate_scenario_serving(trace, toy_model, sla_ms=50.0)
        b = simulate_scenario_serving(spec, toy_model, sla_ms=50.0, seed=4)
        assert a.p99_ms == b.p99_ms
        assert a.goodput_qps == b.goodput_qps

    def test_continuous_beats_fixed_timeout_tax_at_light_load(self):
        # below saturation the fixed batcher pays its formation timeout
        # on every dispatch; continuous batching dispatches immediately
        spec = StationarySpec(base_qps=50, duration_s=4.0)
        trace = generate_arrivals(spec, seed=0)
        fixed = simulate_scenario_serving(
            trace, toy_model,
            policy=BatchingPolicy(max_batch=64, timeout_ms=5.0),
            sla_ms=30.0,
        )
        cont = simulate_scenario_serving(
            trace, toy_model,
            policy=ContinuousBatching(max_batch=64, sla_ms=30.0),
            sla_ms=30.0,
        )
        # the formation timeout shows up as a ~timeout-sized shift of
        # the typical latency; deep-tail queries are amortized either
        # way, so the structural claim is about p50 and the hit rate
        assert cont.p50_ms < fixed.p50_ms - 0.5 * 5.0
        assert cont.sla_hit_pct >= fixed.sla_hit_pct

    def test_per_phase_latency_models(self):
        spec = DriftSpec(base_qps=500, duration_s=4.0, n_phases=2)
        trace = generate_arrivals(spec, seed=0)
        # second phase served by a 3x slower GPU: its tail must show it
        report = simulate_scenario_serving(
            trace, [toy_model, lambda b: 3 * toy_model(b)], sla_ms=100.0,
        )
        assert report.phase("drift1").p50_ms > 2 * report.phase(
            "drift0"
        ).p50_ms

    def test_phase_model_mapping_and_validation(self):
        spec = DriftSpec(base_qps=500, duration_s=2.0, n_phases=2)
        trace = generate_arrivals(spec, seed=0)
        by_name = simulate_scenario_serving(
            trace, {"drift0": toy_model, "drift1": toy_model},
        )
        assert by_name.n_queries == trace.n_arrivals
        with pytest.raises(KeyError):
            simulate_scenario_serving(trace, {"drift0": toy_model})
        with pytest.raises(ValueError):
            simulate_scenario_serving(trace, [toy_model])


class TestFleetScenario:
    MODELS = {
        A100_SXM4_80GB.name: toy_model,
        H100_NVL.name: lambda b: 6.0 + 0.006 * b,
    }

    def test_phase_breakdown_and_conservation(self):
        fleet = FleetSpec.mixed({A100_SXM4_80GB: 1, H100_NVL: 1})
        spec = FlashCrowdSpec(
            base_qps=3000, duration_s=4.0, spike_at_s=1.5,
            magnitude=6.0, ramp_s=0.2, decay_s=0.4,
        )
        trace = generate_arrivals(spec, seed=0)
        report = simulate_fleet_scenario(
            fleet, self.MODELS, trace, policy="jsq", sla_ms=40.0, seed=0,
        )
        assert report.n_queries == trace.n_arrivals
        assert {p.phase for p in report.phases} <= set(trace.phases)
        assert sum(p.n_queries for p in report.phases) == trace.n_arrivals
        assert report.sla_ms == 40.0
        assert report.goodput_qps > 0

    def test_seed_reproducible(self):
        fleet = FleetSpec.mixed({A100_SXM4_80GB: 2})
        spec = scenario_profile("mmpp", base_qps=2000, duration_s=3.0)
        a = simulate_fleet_scenario(
            fleet, self.MODELS, spec, policy="power-of-two", seed=9,
        )
        b = simulate_fleet_scenario(
            fleet, self.MODELS, spec, policy="power-of-two", seed=9,
        )
        assert a.p99_ms == b.p99_ms
        assert a.routed_fractions == b.routed_fractions


class TestDriftCalibration:
    def test_factors_start_at_one(self):
        spec = DriftSpec(
            base_qps=500, duration_s=4.0, n_phases=3, drift_per_phase=0.2,
        )
        factors = drift_phase_factors(spec, seed=0)
        assert len(factors) == 3
        assert factors[0] == pytest.approx(1.0)
        assert all(f > 0.5 for f in factors)

    def test_scaled_models_scale(self):
        models = scaled_latency_models(toy_model, (1.0, 2.0))
        assert models[0](100) == pytest.approx(toy_model(100))
        assert models[1](100) == pytest.approx(2 * toy_model(100))
