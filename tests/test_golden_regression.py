"""Golden-regression snapshots of the serving and fleet simulators.

The serving engine and the routed fleet simulator are deterministic
under a fixed seed, so their reports can be pinned as small JSON
summaries.  Any change to the event loop, batch sizing, routing, or
percentile math shows up here as a diff — deliberate behaviour changes
regenerate the snapshots with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_golden_regression.py -q

and commit the updated ``tests/golden/*.json``.  Comparison is at
relative tolerance 1e-9: tight enough to catch any real behaviour
change, loose enough to survive benign float-library drift.
"""

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.core.serving import (
    BatchingPolicy,
    ContinuousBatching,
    simulate_serving,
)
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.fleet import FleetSpec, simulate_fleet, tiered_latency_model
from repro.memstore import HostLink, store_for_spec
from repro.tenancy import (
    ShareDemand,
    arbitrate,
    example_zoo,
    simulate_zoo_serving,
    zoo_hit_curves,
)
from repro.traffic import (
    StationarySpec,
    scenario_profile,
    simulate_fleet_scenario,
    simulate_scenario_serving,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN", "") == "1"


def _toy_model(batch: int) -> float:
    return 10.0 + 0.01 * batch


def _fast_toy_model(batch: int) -> float:
    return 6.0 + 0.006 * batch


def _serving_summary() -> dict:
    fixed = simulate_serving(
        _toy_model, qps=800, duration_s=5.0, seed=42,
        policy=BatchingPolicy(max_batch=256, timeout_ms=5.0),
    )
    continuous = simulate_serving(
        _toy_model, qps=800, duration_s=5.0, seed=42,
        policy=ContinuousBatching(max_batch=256, sla_ms=30.0),
    )
    flash = simulate_scenario_serving(
        scenario_profile("flash", base_qps=2500, duration_s=6.0),
        _toy_model,
        policy=ContinuousBatching(max_batch=256, sla_ms=30.0),
        sla_ms=30.0,
        seed=7,
    )
    return {
        "fixed": dataclasses.asdict(fixed),
        "continuous": dataclasses.asdict(continuous),
        "flash_continuous": dataclasses.asdict(flash),
    }


def _fleet_summary() -> dict:
    fleet = FleetSpec.mixed(
        {A100_SXM4_80GB: 1, H100_NVL: 1}, name="golden-fleet"
    )
    models = {
        A100_SXM4_80GB.name: _toy_model,
        H100_NVL.name: _fast_toy_model,
    }
    poisson = simulate_fleet(
        fleet, models, qps=3000, duration_s=3.0, policy="jsq", seed=7,
    )
    burst = simulate_fleet_scenario(
        fleet, models,
        scenario_profile("mmpp", base_qps=2000, duration_s=5.0),
        policy="least-latency", sla_ms=40.0, seed=7,
    )

    def fleet_dict(report):
        data = dataclasses.asdict(report)
        data["routed_fractions"] = report.routed_fractions
        data["utilization_balance"] = report.utilization_balance
        return data

    return {"poisson_jsq": fleet_dict(poisson),
            "mmpp_least_latency": fleet_dict(burst)}


def _memstore_summary() -> dict:
    """One end-to-end tiered serving run, pinned tier by tier.

    A med_hot table behind a small static-hot HBM cache: the tier
    accounting (hits/fetches/host time) and the serving report it
    produces (host penalty in the latency curve, hit rate threaded into
    the phases) are both snapshot.
    """
    batch, pooling, rows = 64, 20, 4096
    store = store_for_spec(
        HOTNESS_PRESETS["med_hot"],
        batch_size=batch,
        pooling_factor=pooling,
        table_rows=rows,
        row_bytes=512,
        hbm_fraction=0.05,
        link=HostLink("pcie", 25.0, 10.0),
        seed=11,
    )
    trace = generate_trace(
        HOTNESS_PRESETS["med_hot"],
        batch_size=batch, pooling_factor=pooling, table_rows=rows, seed=11,
    )
    tier = store.lookup(trace)
    host_us_per_query = tier.host_fetch_us / batch
    tiered_model = tiered_latency_model(
        _toy_model, host_us_per_query=host_us_per_query
    )

    report = simulate_scenario_serving(
        StationarySpec(base_qps=600, duration_s=5.0),
        tiered_model,
        policy=ContinuousBatching(max_batch=256, sla_ms=40.0),
        sla_ms=40.0,
        seed=11,
        phase_hit_rates=(tier.hit_rate,),
    )
    return {
        "tier_stats": dataclasses.asdict(tier),
        "host_us_per_query": host_us_per_query,
        "report": dataclasses.asdict(report),
    }


def _tenancy_summary() -> dict:
    """A 3-tenant zoo end to end, pinned tenant by tenant.

    Arbitration (grants, hit rates, exact conservation) runs on the
    real per-tenant cache curves at the 2-SM scale; serving runs the
    two-pass interference model over toy latency curves with fixed
    demands, so the snapshot pins the zoo layer itself — contention
    factors, per-tenant p99/goodput/SLA attainment, threaded hit
    rates — without dragging the kernel simulator in.
    """
    zoo = example_zoo(
        3, base_qps=900.0, duration_s=4.0, sla_ms=45.0,
        hbm_floor_fraction=0.01,
    )
    curves = zoo_hit_curves(zoo, num_sms=2, seed=13)
    budget = sum(c.table_bytes for c in curves.values()) // 20
    grant = arbitrate(budget, curves)

    link = HostLink("pcie", 25.0, 10.0)
    base = {"med_hot": _toy_model, "high_hot": _fast_toy_model,
            "low_hot": _toy_model}
    models = {
        name: tiered_latency_model(
            base[name],
            host_us_per_query=curves[name].host_us_per_query(
                grant.grant(name).granted_rows, link
            ),
        )
        for name in zoo.tenant_names
    }
    demands = {
        "med_hot": ShareDemand(0.6, 0.3),
        "high_hot": ShareDemand(0.9, 0.1),
        "low_hot": ShareDemand(0.5, 0.4),
    }
    report = simulate_zoo_serving(
        zoo, models, demands=demands,
        phase_hit_rates={
            name: (grant.grant(name).hit_rate,)
            for name in zoo.tenant_names
        },
        seed=13,
    )
    return {
        "budget_bytes": grant.budget_bytes,
        "leftover_bytes": grant.leftover_bytes,
        "grants": {
            name: dataclasses.asdict(g)
            for name, g in grant.grants.items()
        },
        "report": dataclasses.asdict(report),
    }


def _assert_matches(actual, golden, path=""):
    if isinstance(golden, dict):
        assert isinstance(actual, dict), path
        assert sorted(actual) == sorted(golden), (
            f"{path}: keys {sorted(actual)} != {sorted(golden)}"
        )
        for key in golden:
            _assert_matches(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert len(actual) == len(golden), path
        for i, (a, g) in enumerate(zip(actual, golden)):
            _assert_matches(a, g, f"{path}[{i}]")
    elif isinstance(golden, float):
        assert actual == pytest.approx(golden, rel=1e-9, abs=1e-12), (
            f"{path}: {actual} != {golden}"
        )
    else:
        assert actual == golden, f"{path}: {actual!r} != {golden!r}"


def _tuples_to_lists(obj):
    if isinstance(obj, dict):
        return {k: _tuples_to_lists(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_tuples_to_lists(v) for v in obj]
    return obj


@pytest.mark.parametrize("name, build", [
    ("serving", _serving_summary),
    ("fleet", _fleet_summary),
    ("memstore", _memstore_summary),
    ("tenancy", _tenancy_summary),
])
def test_golden_snapshot(name, build):
    golden_path = GOLDEN_DIR / f"{name}.json"
    summary = _tuples_to_lists(build())
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(json.dumps(summary, indent=2) + "\n")
        pytest.skip(f"regenerated {golden_path}")
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path}; run with "
        "REPRO_REGEN_GOLDEN=1 to create it"
    )
    golden = json.loads(golden_path.read_text())
    _assert_matches(summary, golden)
