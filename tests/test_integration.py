"""Cross-module integration: the paper's causal chain on a small slice.

These tests exercise the full stack — trace generation, compiler model,
engine, hierarchy, profiler, schemes — and assert the paper's headline
*mechanisms* hold end to end (not exact numbers, which are covered by
the benchmark harness at larger scale).
"""

import pytest

from repro.config.scale import SimScale
from repro.core.embedding import kernel_workload, run_table_kernel
from repro.core.schemes import BASE, L2P_OPTMT, OPTMT, RPF_L2P_OPTMT, RPF_OPTMT
from repro.datasets.spec import HOTNESS_PRESETS


@pytest.fixture(scope="module")
def wl():
    # batch 32 = 128 warps: fills the 2-SM slice's resident slots in
    # whole waves, so occupancy effects (OptMT vs base) are not drowned
    # by a ragged final wave the way they are at batch 24.
    return kernel_workload(
        scale=SimScale("integration", 2),
        batch_size=32, pooling_factor=40, table_rows=12_000,
    )


@pytest.fixture(scope="module")
def results(wl):
    out = {}
    for dataset in ("one_item", "high_hot", "random"):
        for scheme in (BASE, OPTMT, RPF_OPTMT, L2P_OPTMT, RPF_L2P_OPTMT):
            out[(dataset, scheme.name)] = run_table_kernel(
                wl, HOTNESS_PRESETS[dataset], scheme
            )
    return out


def time_of(results, dataset, scheme):
    return results[(dataset, scheme)].profile.kernel_time_us


class TestResearchGap:
    def test_hotness_gap_exists(self, results):
        assert time_of(results, "random", "base") > \
            1.5 * time_of(results, "one_item", "base")

    def test_gap_driven_by_scoreboard_stalls(self, results):
        rand = results[("random", "base")].profile
        one = results[("one_item", "base")].profile
        assert rand.long_scoreboard_stall > 3 * one.long_scoreboard_stall

    def test_latency_not_bandwidth_bound(self, results):
        assert results[("random", "base")].profile.hbm_bw_util_pct < 60.0


class TestOptimizations:
    def test_every_scheme_helps_random(self, results):
        base = time_of(results, "random", "base")
        for scheme in ("OptMT", "RPF+OptMT", "L2P+OptMT", "RPF+L2P+OptMT"):
            assert time_of(results, "random", scheme) < base, scheme

    def test_combined_narrows_worst_case_gap(self, results):
        base_gap = (
            time_of(results, "random", "base")
            / time_of(results, "one_item", "base")
        )
        comb_gap = (
            time_of(results, "random", "RPF+L2P+OptMT")
            / time_of(results, "one_item", "RPF+L2P+OptMT")
        )
        assert comb_gap < base_gap

    def test_prefetch_raises_bandwidth_demand(self, results):
        assert (
            results[("random", "RPF+OptMT")].profile.avg_hbm_bw_gbps
            > results[("random", "base")].profile.avg_hbm_bw_gbps
        )

    def test_pinning_cuts_dram_reads_for_hot(self, results):
        assert (
            results[("high_hot", "L2P+OptMT")].profile.dram_read_mb
            < results[("high_hot", "OptMT")].profile.dram_read_mb
        )

    def test_issue_utilization_improves(self, results):
        assert (
            results[("random", "RPF+L2P+OptMT")].profile.issued_per_scheduler
            > results[("random", "base")].profile.issued_per_scheduler
        )


class TestInstructionAccounting:
    def test_loads_constant_across_datasets_for_base(self, results):
        # the paper stresses all datasets observe the same load count
        assert results[("random", "base")].profile.load_insts_m == \
            pytest.approx(
                results[("high_hot", "base")].profile.load_insts_m, rel=1e-6
            )

    def test_optmt_adds_spill_loads(self, results):
        assert (
            results[("random", "OptMT")].profile.load_insts_m
            > results[("random", "base")].profile.load_insts_m
        )
