"""Heterogeneous table placement (unrelated-machines LPT)."""

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.core.schemes import BASE
from repro.fleet.placement import (
    HeteroPlacement,
    HeteroShard,
    hetero_lpt_shard,
    place_tables,
)

#: Synthetic measured times: the "fast" GPU is 2x quicker on everything.
TIMES = {
    "fast": {"hot": 5.0, "cold": 25.0},
    "slow": {"hot": 10.0, "cold": 50.0},
}


class TestHeteroLptShard:
    def test_identical_gpus_balance_counts(self):
        placement = hetero_lpt_shard(
            {"g": {"t": 10.0}}, {"t": 8}, ["g", "g", "g", "g"],
        )
        assert [len(p) for p in placement] == [2, 2, 2, 2]

    def test_faster_gpu_gets_more_tables(self):
        placement = hetero_lpt_shard(
            TIMES, {"hot": 6, "cold": 6}, ["fast", "slow"],
        )
        assert len(placement[0]) > len(placement[1])

    def test_time_balance_not_count_balance(self):
        placement = hetero_lpt_shard(
            TIMES, {"hot": 8, "cold": 4}, ["fast", "slow"],
        )
        loads = [
            sum(TIMES[gpu][t] for t in tables)
            for gpu, tables in zip(("fast", "slow"), placement)
        ]
        assert max(loads) / min(loads) < 1.8

    def test_more_gpus_than_tables_leaves_spares_empty(self):
        placement = hetero_lpt_shard(
            {"g": {"t": 1.0}}, {"t": 2}, ["g"] * 5,
        )
        assert sum(len(p) for p in placement) == 2
        assert sum(1 for p in placement if not p) == 3

    def test_all_tables_placed(self):
        placement = hetero_lpt_shard(
            TIMES, {"hot": 7, "cold": 3}, ["fast", "slow", "fast"],
        )
        assert sum(len(p) for p in placement) == 10

    def test_missing_measurement_raises(self):
        with pytest.raises(KeyError, match="no measured times"):
            hetero_lpt_shard(
                {"fast": {"hot": 1.0}}, {"hot": 1, "cold": 1}, ["fast"],
            )

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            hetero_lpt_shard(TIMES, {}, ["fast"])
        with pytest.raises(ValueError):
            hetero_lpt_shard(TIMES, {"hot": 1}, [])


class TestHeteroPlacement:
    def _placement(self):
        return HeteroPlacement(shards=(
            HeteroShard("fast", ("hot", "hot"), 10.0),
            HeteroShard("slow", ("hot",), 10.0),
        ))

    def test_critical_path_is_slowest_shard(self):
        assert self._placement().critical_path_us == 10.0

    def test_balanced_imbalance_is_one(self):
        assert self._placement().imbalance == pytest.approx(1.0)

    def test_tables_on_sums_instances(self):
        assert self._placement().tables_on("fast") == 2
        assert self._placement().tables_on("slow") == 1


class TestPlaceTables:
    def test_synthetic_times_skip_measurement(self):
        placement = place_tables(
            {"hot": 4, "cold": 2}, BASE, [A100_SXM4_80GB, H100_NVL],
            table_times={
                A100_SXM4_80GB.name: {"hot": 10.0, "cold": 40.0},
                H100_NVL.name: {"hot": 6.0, "cold": 24.0},
            },
        )
        assert placement.n_gpus == 2
        assert sum(len(s.tables) for s in placement.shards) == 6
        assert placement.tables_on(H100_NVL.name) \
            >= placement.tables_on(A100_SXM4_80GB.name)

    def test_measured_placement_balances_mixed_gpus(self):
        """End-to-end with real (tiny) kernel simulations."""
        placement = place_tables(
            {"med_hot": 4, "random": 2}, BASE,
            [A100_SXM4_80GB, H100_NVL], num_sms=2,
        )
        assert sum(len(s.tables) for s in placement.shards) == 6
        # H100 kernels are faster, so it should carry at least as many
        assert placement.tables_on(H100_NVL.name) \
            >= placement.tables_on(A100_SXM4_80GB.name)
        assert placement.imbalance < 2.0
