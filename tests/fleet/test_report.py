"""Fleet report aggregation: global tails, balance, cost normalization."""

import numpy as np
import pytest

from repro.core.serving import ServingReport
from repro.fleet.report import FleetReport, build_fleet_report


def replica(name, n_queries=100, p99=20.0, util=0.5):
    return ServingReport(
        scheme_name=name,
        qps=1000.0,
        n_queries=n_queries,
        p50_ms=5.0,
        p95_ms=15.0,
        p99_ms=p99,
        mean_batch_size=32.0,
        gpu_utilization=util,
    )


def make_report(**kwargs):
    defaults = dict(
        fleet_name="f",
        policy="jsq",
        qps=4000.0,
        latencies_ms=np.linspace(1.0, 100.0, 200),
        replica_reports=(replica("a", util=0.4), replica("b", util=0.6)),
        cost_units=2.9,
    )
    defaults.update(kwargs)
    return build_fleet_report(**defaults)


class TestBuildFleetReport:
    def test_percentiles_from_global_latencies(self):
        report = make_report()
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.p99_ms == pytest.approx(
            float(np.percentile(np.linspace(1.0, 100.0, 200), 99))
        )

    def test_query_count(self):
        assert make_report().n_queries == 200

    def test_empty_latencies_rejected(self):
        with pytest.raises(ValueError):
            make_report(latencies_ms=np.array([]))


class TestFleetReportMetrics:
    def test_meets_sla_percentile_selection(self):
        report = make_report()
        assert report.meets_sla(1e6)
        assert not report.meets_sla(0.5)
        assert report.meets_sla(report.p95_ms, percentile="p95")

    def test_qps_per_gpu_and_cost(self):
        report = make_report()
        assert report.qps_per_gpu == pytest.approx(2000.0)
        assert report.qps_per_cost_unit == pytest.approx(4000.0 / 2.9)

    def test_utilization_balance(self):
        report = make_report()
        assert report.mean_utilization == pytest.approx(0.5)
        assert report.utilization_balance == pytest.approx(0.6 / 0.5)

    def test_perfect_balance_is_one(self):
        report = make_report(
            replica_reports=(replica("a", util=0.5), replica("b", util=0.5)),
        )
        assert report.utilization_balance == pytest.approx(1.0)

    def test_routed_fractions_sum_to_one(self):
        report = make_report(
            replica_reports=(
                replica("a", n_queries=150), replica("b", n_queries=50),
            ),
        )
        fractions = report.routed_fractions
        assert fractions["a"] == pytest.approx(0.75)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_idle_fleet_fractions_are_zero(self):
        report = make_report(
            replica_reports=(
                replica("a", n_queries=0), replica("b", n_queries=0),
            ),
        )
        assert set(report.routed_fractions.values()) == {0.0}

    def test_frozen(self):
        report = make_report()
        with pytest.raises(AttributeError):
            report.qps = 1.0
