"""Fleet topology: replica specs, mixed fleets, cost accounting."""

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.core.schemes import OPTMT
from repro.core.serving import BatchingPolicy
from repro.fleet.topology import GPU_COST_UNITS, FleetSpec, ReplicaSpec


class TestReplicaSpec:
    def test_defaults(self):
        replica = ReplicaSpec(name="r0", gpu=A100_SXM4_80GB)
        assert replica.scheme.name == "base"
        assert replica.batching.max_batch == 2048

    def test_cost_units_follow_gpu(self):
        a = ReplicaSpec(name="a", gpu=A100_SXM4_80GB)
        h = ReplicaSpec(name="h", gpu=H100_NVL)
        assert a.cost_units == GPU_COST_UNITS[A100_SXM4_80GB.name]
        assert h.cost_units > a.cost_units

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ReplicaSpec(name="", gpu=A100_SXM4_80GB)


class TestFleetSpec:
    def test_homogeneous_factory(self):
        fleet = FleetSpec.homogeneous(A100_SXM4_80GB, 3, scheme=OPTMT)
        assert fleet.n_replicas == 3
        assert fleet.gpu_counts == {A100_SXM4_80GB.name: 3}
        assert not fleet.is_heterogeneous
        assert all(r.scheme is OPTMT for r in fleet.replicas)

    def test_mixed_factory(self):
        fleet = FleetSpec.mixed({A100_SXM4_80GB: 2, H100_NVL: 2})
        assert fleet.n_replicas == 4
        assert fleet.is_heterogeneous
        assert fleet.gpu_counts == {
            A100_SXM4_80GB.name: 2, H100_NVL.name: 2,
        }

    def test_cost_units_sum(self):
        fleet = FleetSpec.mixed({A100_SXM4_80GB: 2, H100_NVL: 2})
        expected = 2 * GPU_COST_UNITS[A100_SXM4_80GB.name] \
            + 2 * GPU_COST_UNITS[H100_NVL.name]
        assert fleet.cost_units == pytest.approx(expected)

    def test_replica_names_unique(self):
        fleet = FleetSpec.mixed({A100_SXM4_80GB: 3, H100_NVL: 2})
        names = [r.name for r in fleet.replicas]
        assert len(set(names)) == 5

    def test_duplicate_names_rejected(self):
        replica = ReplicaSpec(name="dup", gpu=A100_SXM4_80GB)
        with pytest.raises(ValueError):
            FleetSpec(name="f", replicas=(replica, replica))

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            FleetSpec(name="f", replicas=())

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            FleetSpec.homogeneous(A100_SXM4_80GB, 0)
        with pytest.raises(ValueError):
            FleetSpec.mixed({A100_SXM4_80GB: 0})

    def test_describe_mentions_gpus(self):
        fleet = FleetSpec.mixed({A100_SXM4_80GB: 2, H100_NVL: 1})
        text = fleet.describe()
        assert A100_SXM4_80GB.name in text and H100_NVL.name in text

    def test_custom_batching_propagates(self):
        policy = BatchingPolicy(max_batch=64, timeout_ms=2.0)
        fleet = FleetSpec.homogeneous(A100_SXM4_80GB, 2, batching=policy)
        assert all(r.batching is policy for r in fleet.replicas)
