"""Property-based invariants for fleet placement and routing.

Randomized (hypothesis) checks of the structural guarantees the fleet
layer must never lose, whatever the workload:

* placement — every table instance in the mix lands on exactly one
  GPU, no instance is dropped or duplicated;
* routing — conservation: every request that enters the router is
  served exactly once (after the final drain nothing is left in
  flight), whatever the policy;
* JSQ — never picks a replica whose queue is strictly longer than
  another's.

``derandomize=True`` keeps CI deterministic (hypothesis still explores
the space, from a fixed seed).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.serving import BatchingPolicy
from repro.fleet.placement import hetero_lpt_shard
from repro.fleet.router import (
    JoinShortestQueuePolicy,
    _ReplicaState,
    simulate_fleet,
    simulate_fleet_stream,
)
from repro.fleet.topology import FleetSpec, ReplicaSpec
from repro.config.gpu import A100_SXM4_80GB, H100_NVL

SETTINGS = dict(max_examples=40, deadline=None, derandomize=True)

# ----------------------------------------------------------------------
# placement: every table placed exactly once
# ----------------------------------------------------------------------
_table_names = st.sampled_from(
    ["high_hot", "med_hot", "low_hot", "random", "one_item"]
)
_mixes = st.dictionaries(_table_names, st.integers(1, 5), min_size=1)
_gpu_lists = st.lists(
    st.sampled_from(["A100", "H100", "L4"]), min_size=1, max_size=5
)


@given(mix=_mixes, gpus=_gpu_lists, data=st.data())
@settings(**SETTINGS)
def test_every_table_placed_exactly_once(mix, gpus, data):
    table_times = {
        gpu: {
            name: data.draw(
                st.floats(0.5, 500.0, allow_nan=False),
                label=f"time[{gpu}][{name}]",
            )
            for name in mix
        }
        for gpu in set(gpus)
    }
    placement = hetero_lpt_shard(table_times, mix, gpus)
    assert len(placement) == len(gpus)
    placed: dict[str, int] = {}
    for shard in placement:
        for table in shard:
            placed[table] = placed.get(table, 0) + 1
    assert placed == dict(mix)


# ----------------------------------------------------------------------
# routing: conservation (in == served after drain), any policy
# ----------------------------------------------------------------------
class _Stream:
    """Minimal ScenarioTrace-shaped stream for arbitrary arrival lists."""

    def __init__(self, times):
        self.name = "prop"
        self.times = np.asarray(sorted(times), dtype=float)
        self.phase_ids = np.zeros(len(times), dtype=np.int64)
        self.phases = ("steady",)
        self.duration_s = float(self.times[-1]) + 1.0
        self.phase_durations = (self.duration_s,)


def _fleet(n_replicas, max_batch, timeout_ms):
    gpus = [A100_SXM4_80GB, H100_NVL]
    return FleetSpec(
        name=f"prop{n_replicas}",
        replicas=tuple(
            ReplicaSpec(
                name=f"r{i}",
                gpu=gpus[i % 2],
                batching=BatchingPolicy(
                    max_batch=max_batch, timeout_ms=timeout_ms
                ),
            )
            for i in range(n_replicas)
        ),
    )


_MODELS = {
    A100_SXM4_80GB.name: lambda b: 2.0 + 0.05 * b,
    H100_NVL.name: lambda b: 1.2 + 0.03 * b,
}


@given(
    times=st.lists(
        st.floats(0.0, 30.0, allow_nan=False, allow_infinity=False),
        min_size=1, max_size=400,
    ),
    n_replicas=st.integers(1, 4),
    max_batch=st.integers(1, 64),
    timeout_ms=st.floats(0.0, 20.0),
    policy=st.sampled_from(
        ["round-robin", "jsq", "power-of-two", "least-latency"]
    ),
    seed=st.integers(0, 2**31 - 1),
)
@settings(**SETTINGS)
def test_router_conserves_requests(
    times, n_replicas, max_batch, timeout_ms, policy, seed
):
    stream = _Stream(times)
    fleet = _fleet(n_replicas, max_batch, timeout_ms)
    report = simulate_fleet_stream(
        fleet, _MODELS, stream, policy=policy, seed=seed,
    )
    # in == completed + in-flight, and after the final drain nothing is
    # in flight: every arrival was served exactly once, somewhere
    assert report.n_queries == len(times)
    assert sum(r.n_queries for r in report.replica_reports) == len(times)
    # latency is physical: at least one batch execution per query
    min_exec_ms = min(model(1) for model in _MODELS.values())
    assert report.p50_ms >= min_exec_ms - 1e-9


@given(
    qps=st.floats(10.0, 5000.0),
    duration_s=st.floats(0.1, 3.0),
    policy=st.sampled_from(
        ["round-robin", "jsq", "power-of-two", "least-latency"]
    ),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None, derandomize=True)
def test_poisson_router_conserves_requests(qps, duration_s, policy, seed):
    fleet = _fleet(3, 64, 5.0)
    report = simulate_fleet(
        fleet, _MODELS, qps=qps, duration_s=duration_s, policy=policy,
        seed=seed,
    )
    expected = max(1, int(qps * duration_s))
    assert report.n_queries == expected
    assert sum(r.n_queries for r in report.replica_reports) == expected


# ----------------------------------------------------------------------
# JSQ: never picks a strictly longer queue
# ----------------------------------------------------------------------
@given(
    queue_lens=st.lists(st.integers(0, 50), min_size=1, max_size=8),
    backlogs=st.data(),
)
@settings(**SETTINGS)
def test_jsq_never_picks_strictly_longer_queue(queue_lens, backlogs):
    states = []
    for i, qlen in enumerate(queue_lens):
        state = _ReplicaState(
            ReplicaSpec(name=f"r{i}", gpu=A100_SXM4_80GB),
            _MODELS[A100_SXM4_80GB.name],
        )
        for k in range(qlen):
            state.enqueue(0.01 * k)
        state.gpu_free = backlogs.draw(
            st.floats(0.0, 5.0, allow_nan=False), label=f"gpu_free[{i}]"
        )
        states.append(state)
    policy = JoinShortestQueuePolicy()
    policy.reset(len(states))
    chosen = policy.select(states, now=1.0, rng=np.random.default_rng(0))
    assert states[chosen].queue_len() == min(queue_lens)
