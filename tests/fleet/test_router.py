"""Routed fleet simulation: policies, dispatch semantics, consistency."""

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.core.serving import BatchingPolicy, simulate_serving
from repro.fleet.router import (
    ROUTING_POLICIES,
    JoinShortestQueuePolicy,
    resolve_policy,
    simulate_fleet,
)
from repro.fleet.topology import FleetSpec


def a100_model(batch):
    return 12.0 + 0.010 * batch


def h100_model(batch):
    return 7.0 + 0.0055 * batch


MODELS = {A100_SXM4_80GB.name: a100_model, H100_NVL.name: h100_model}
POLICY = BatchingPolicy(max_batch=256, timeout_ms=5.0)


def homo_fleet(n=2):
    return FleetSpec.homogeneous(A100_SXM4_80GB, n, batching=POLICY)


def mixed_fleet():
    return FleetSpec.mixed(
        {A100_SXM4_80GB: 2, H100_NVL: 2}, batching=POLICY
    )


class TestPolicyResolution:
    def test_all_registered_policies_resolve(self):
        for name in ROUTING_POLICIES:
            assert resolve_policy(name).name == name

    def test_instance_passthrough(self):
        policy = JoinShortestQueuePolicy()
        assert resolve_policy(policy) is policy

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            resolve_policy("random-spray")


class TestSimulateFleet:
    def test_single_replica_matches_single_gpu_simulation(self):
        """A 1-replica fleet is exactly the core serving simulator."""
        fleet = homo_fleet(1)
        fleet_report = simulate_fleet(
            fleet, MODELS, qps=2000, duration_s=2.0, seed=5,
        )
        solo = simulate_serving(
            a100_model, qps=2000, duration_s=2.0, policy=POLICY, seed=5,
        )
        assert fleet_report.p99_ms == pytest.approx(solo.p99_ms)
        assert fleet_report.p50_ms == pytest.approx(solo.p50_ms)

    def test_deterministic_by_seed(self):
        a = simulate_fleet(mixed_fleet(), MODELS, qps=3000, seed=7,
                           duration_s=1.0)
        b = simulate_fleet(mixed_fleet(), MODELS, qps=3000, seed=7,
                           duration_s=1.0)
        assert a.p99_ms == b.p99_ms
        assert a.n_queries == b.n_queries

    def test_round_robin_splits_evenly(self):
        report = simulate_fleet(
            homo_fleet(4), MODELS, qps=4000, duration_s=1.0,
            policy="round-robin",
        )
        counts = [r.n_queries for r in report.replica_reports]
        assert max(counts) - min(counts) <= 1

    def test_jsq_shifts_load_to_faster_replicas(self):
        report = simulate_fleet(
            mixed_fleet(), MODELS, qps=12_000, duration_s=2.0,
            policy="jsq",
        )
        fractions = report.routed_fractions
        a100 = fractions[f"{A100_SXM4_80GB.name}/0"]
        h100 = fractions[f"{H100_NVL.name}/0"]
        assert h100 > a100

    def test_jsq_beats_round_robin_tail_on_mixed_fleet_at_load(self):
        kwargs = dict(qps=18_000, duration_s=2.0, seed=2)
        rr = simulate_fleet(
            mixed_fleet(), MODELS, policy="round-robin", **kwargs,
        )
        jsq = simulate_fleet(mixed_fleet(), MODELS, policy="jsq", **kwargs)
        assert jsq.p99_ms < rr.p99_ms

    def test_full_batches_dispatch_early(self):
        """Under heavy load batches fill to max_batch, never beyond."""
        report = simulate_fleet(
            homo_fleet(1), MODELS, qps=50_000, duration_s=0.5,
        )
        sizes = report.replica_reports[0].mean_batch_size
        assert 0 < sizes <= POLICY.max_batch

    def test_all_queries_served(self):
        report = simulate_fleet(
            mixed_fleet(), MODELS, qps=2000, duration_s=1.0,
        )
        assert report.n_queries == 2000
        assert sum(r.n_queries for r in report.replica_reports) == 2000

    def test_percentiles_ordered(self):
        report = simulate_fleet(mixed_fleet(), MODELS, qps=3000,
                                duration_s=1.0)
        assert report.p50_ms <= report.p95_ms <= report.p99_ms

    def test_power_of_two_and_least_latency_run(self):
        for policy in ("power-of-two", "least-latency"):
            report = simulate_fleet(
                mixed_fleet(), MODELS, qps=2000, duration_s=0.5,
                policy=policy,
            )
            assert report.policy == policy
            assert report.n_queries == 1000

    def test_latency_model_by_replica_name_wins(self):
        fleet = homo_fleet(2)
        models = {
            fleet.replicas[0].name: lambda b: 1.0,
            fleet.replicas[1].name: lambda b: 1.0,
            A100_SXM4_80GB.name: lambda b: 1e6,  # would dominate if used
        }
        report = simulate_fleet(fleet, models, qps=500, duration_s=0.5)
        assert report.p99_ms < 100.0

    def test_missing_latency_model_raises(self):
        with pytest.raises(KeyError, match="no latency model"):
            simulate_fleet(mixed_fleet(), {A100_SXM4_80GB.name: a100_model},
                           qps=100)

    def test_invalid_qps_rejected(self):
        with pytest.raises(ValueError):
            simulate_fleet(homo_fleet(), MODELS, qps=0)
