"""Fleet capacity planning: sustainable QPS, replicas-needed, autoscaling."""

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.config.model import PAPER_MODEL
from repro.core.serving import BatchingPolicy
from repro.dlrm.timing import non_embedding_time
from repro.fleet.capacity import (
    autoscaler_sweep,
    fleet_max_sustainable_qps,
    linear_latency_model,
    replicas_needed,
)
from repro.fleet.topology import FleetSpec

POLICY = BatchingPolicy(max_batch=512, timeout_ms=5.0)
MODELS = {
    A100_SXM4_80GB.name: lambda b: 10.0 + 0.02 * b,
    H100_NVL.name: lambda b: 6.0 + 0.011 * b,
}
GRID = (1000, 4000, 16000, 64000)


def homo(n):
    return FleetSpec.homogeneous(A100_SXM4_80GB, n, batching=POLICY)


class TestFleetMaxSustainableQps:
    def test_bigger_fleet_sustains_more(self):
        small, _ = fleet_max_sustainable_qps(
            homo(1), MODELS, sla_ms=60.0, qps_grid=GRID,
            refine_iters=0, duration_s=1.0,
        )
        big, _ = fleet_max_sustainable_qps(
            homo(4), MODELS, sla_ms=60.0, qps_grid=GRID,
            refine_iters=0, duration_s=1.0,
        )
        assert big >= small
        assert small > 0

    def test_mixed_beats_homogeneous_at_equal_count(self):
        mixed = FleetSpec.mixed(
            {A100_SXM4_80GB: 1, H100_NVL: 1}, batching=POLICY,
        )
        qps_homo, _ = fleet_max_sustainable_qps(
            homo(2), MODELS, sla_ms=60.0, duration_s=1.0,
        )
        qps_mixed, _ = fleet_max_sustainable_qps(
            mixed, MODELS, sla_ms=60.0, duration_s=1.0,
        )
        assert qps_mixed > qps_homo

    def test_refinement_sharpens_the_boundary(self):
        coarse, _ = fleet_max_sustainable_qps(
            homo(1), MODELS, sla_ms=60.0, qps_grid=GRID,
            refine_iters=0, duration_s=1.0,
        )
        fine, _ = fleet_max_sustainable_qps(
            homo(1), MODELS, sla_ms=60.0, qps_grid=GRID,
            refine_iters=4, duration_s=1.0,
        )
        assert fine >= coarse

    def test_impossible_sla_yields_zero(self):
        best, reports = fleet_max_sustainable_qps(
            homo(1), MODELS, sla_ms=0.5, qps_grid=(1000, 2000),
            refine_iters=2, duration_s=0.5,
        )
        assert best == 0.0
        assert len(reports) == 2  # no refinement without a passing point


class TestReplicasNeeded:
    def test_more_load_needs_more_replicas(self):
        low = replicas_needed(
            homo, MODELS, qps=5_000, sla_ms=60.0, duration_s=1.0,
            max_replicas=8,
        )
        high = replicas_needed(
            homo, MODELS, qps=40_000, sla_ms=60.0, duration_s=1.0,
            max_replicas=8,
        )
        assert low is not None and high is not None
        assert high >= low

    def test_unreachable_load_returns_none(self):
        answer = replicas_needed(
            homo, MODELS, qps=1_000_000, sla_ms=1.0, duration_s=0.5,
            max_replicas=2,
        )
        assert answer is None


class TestAutoscalerSweep:
    def test_monotone_in_load(self):
        sweep = autoscaler_sweep(
            homo, MODELS, qps_grid=(5_000, 20_000, 40_000),
            sla_ms=60.0, duration_s=1.0, max_replicas=8,
        )
        counts = [n for _, n in sweep if n is not None]
        assert counts == sorted(counts)
        assert len(sweep) == 3


class TestLinearLatencyModel:
    def test_monotone_in_batch(self):
        model = linear_latency_model(
            A100_SXM4_80GB, emb_us=50_000.0, emb_batch=2048,
        )
        assert model(512) < model(1024) < model(4096)

    def test_anchored_at_calibration_point(self):
        emb_us = 40_000.0
        model = linear_latency_model(
            A100_SXM4_80GB, emb_us=emb_us, emb_batch=2048,
        )
        non_emb = non_embedding_time(
            A100_SXM4_80GB, PAPER_MODEL, batch_size=2048,
        ).total_us
        assert model(2048) == pytest.approx((emb_us + non_emb) / 1e3)

    def test_invalid_batch_anchor_rejected(self):
        with pytest.raises(ValueError):
            linear_latency_model(A100_SXM4_80GB, emb_us=1.0, emb_batch=0)
