"""Test package (unique module paths for same-basename test files)."""
