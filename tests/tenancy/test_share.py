"""Unit tests for the interference model and zoo serving orchestration."""

import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.tenancy import (
    ShareDemand,
    TenantSpec,
    ZooSpec,
    calibrate_tenant,
    contention_factor,
    shared_latency_model,
    simulate_zoo_serving,
    zoo_contention,
)
from repro.tenancy.share import zoo_effective_times
from repro.tenancy.zoo import example_zoo
from repro.traffic.scenario import StationarySpec


def _toy(batch: int) -> float:
    return 10.0 + 0.01 * batch


def test_share_demand_validation():
    with pytest.raises(ValueError, match="sm_fraction"):
        ShareDemand(sm_fraction=1.2, hbm_fraction=0.5)
    with pytest.raises(ValueError, match="hbm_fraction"):
        ShareDemand(sm_fraction=0.5, hbm_fraction=-0.1)


def test_contention_factor_oversubscription():
    own = ShareDemand(0.6, 0.2)
    # SM is the binding resource: 0.6 + 0.8*0.75 = 1.2
    co = [(ShareDemand(0.8, 0.1), 0.75)]
    assert contention_factor(own, co) == pytest.approx(1.2)
    # HBM binds instead when the co-runner is bandwidth-hungry
    co = [(ShareDemand(0.1, 1.0), 1.0)]
    assert contention_factor(own, co) == pytest.approx(1.2)
    with pytest.raises(ValueError, match="load"):
        contention_factor(own, [(own, 1.5)])


def test_zoo_contention_requires_loads():
    demands = {"a": ShareDemand(0.5, 0.5), "b": ShareDemand(0.5, 0.5)}
    with pytest.raises(KeyError, match="no load"):
        zoo_contention(demands, {"a": 0.5})
    factors = zoo_contention(demands, {"a": 1.0, "b": 0.0})
    # b is idle, so a sees no one; a is busy, so b pays for a
    assert factors["a"] == 1.0
    assert factors["b"] == pytest.approx(1.0)  # 0.5 + 0.5*1.0


def test_shared_latency_model_identity_and_scaling():
    assert shared_latency_model(_toy, 1.0) is _toy
    scaled = shared_latency_model(_toy, 1.5)
    assert scaled(100) == pytest.approx(1.5 * _toy(100))
    with pytest.raises(ValueError, match=">= 1"):
        shared_latency_model(_toy, 0.9)


def test_simulate_zoo_serving_requires_all_models():
    zoo = example_zoo(2, base_qps=300.0, duration_s=2.0)
    with pytest.raises(KeyError, match="no latency model"):
        simulate_zoo_serving(zoo, {zoo.tenant_names[0]: _toy})


def test_consolidation_erodes_tails_not_correctness():
    """Co-residency must slow tenants down, never lose their queries."""
    zoo = example_zoo(3, base_qps=2000.0, duration_s=2.0, sla_ms=50.0)
    models = {name: _toy for name in zoo.tenant_names}
    solo_p99 = {}
    for tenant in zoo.tenants:
        alone = ZooSpec(name=f"s-{tenant.name}", tenants=(tenant,))
        report = simulate_zoo_serving(
            alone, {tenant.name: _toy}, seed=5,
        )
        solo_p99[tenant.name] = report.tenant(tenant.name).p99_ms
    shared = simulate_zoo_serving(zoo, models, seed=5)
    for name in zoo.tenant_names:
        report = shared.tenant(name)
        assert shared.contention[name] >= 1.0
        assert report.p99_ms >= solo_p99[name]
        # same stream, every query still served
        assert report.n_queries == zoo.tenant(name).stream(5).n_arrivals
    assert shared.n_tenants == 3
    with pytest.raises(KeyError, match="known"):
        shared.tenant("stranger")


def test_calibrate_tenant_demand_is_a_valid_fraction():
    tenant = TenantSpec(
        name="cal", scenario=StationarySpec(base_qps=100, duration_s=1.0)
    )
    cal = calibrate_tenant(tenant, A100_SXM4_80GB, num_sms=2, seed=0)
    assert 0.0 <= cal.demand.sm_fraction <= 1.0
    assert 0.0 <= cal.demand.hbm_fraction <= 1.0
    assert cal.embedding_stage_us > 0
    # the curve is usable and increasing in batch
    assert cal.latency_ms(2048) > cal.latency_ms(1) > 0


def test_zoo_effective_times_cover_every_tenant_and_gpu():
    zoo = example_zoo(2, base_qps=100.0, duration_s=1.0)
    times = zoo_effective_times(zoo, [A100_SXM4_80GB], num_sms=2, seed=0)
    assert set(times) == {A100_SXM4_80GB.name}
    assert set(times[A100_SXM4_80GB.name]) == set(zoo.tenant_names)
    assert all(t > 0 for t in times[A100_SXM4_80GB.name].values())
