"""Unit tests for hit curves, waterfilling arbitration, and drift."""

import numpy as np
import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.config.scale import SimScale
from repro.core.embedding import kernel_workload
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.memstore.policy import hit_curve, make_policy
from repro.memstore.store import HostLink
from repro.tenancy import (
    TenantSpec,
    ZooSpec,
    arbitrate,
    rearbitrate_on_drift,
    stores_for_grants,
    tenant_hit_curve,
    zoo_hit_curves,
)
from repro.tenancy.zoo import example_zoo

_LINK = HostLink("pcie", 25.0, 10.0)


# ----------------------------------------------------------------------
# the stack-property curve matches the live policy exactly
# ----------------------------------------------------------------------
def test_hit_curve_matches_static_hot_policy_at_every_capacity():
    rng = np.random.default_rng(3)
    table = 64
    profile = rng.permutation(table)[:40]
    accesses = rng.integers(0, table, 400)
    cum_hits, cum_unique = hit_curve(profile, accesses, table)
    assert cum_hits[0] == 0 and cum_unique[0] == 0
    n_distinct = len(np.unique(accesses))
    for capacity in range(table + 1):
        policy = make_policy("static_hot", capacity)
        policy.warm(profile[:capacity])
        hits, fetches = policy.lookup(accesses)
        assert hits == cum_hits[capacity], capacity
        assert fetches == n_distinct - cum_unique[capacity], capacity


def test_hit_curve_input_validation():
    with pytest.raises(ValueError, match="repeat"):
        hit_curve(np.array([1, 1]), np.array([0]), 4)
    with pytest.raises(ValueError, match="profile rows"):
        hit_curve(np.array([9]), np.array([0]), 4)
    with pytest.raises(ValueError, match="accesses"):
        hit_curve(np.array([1]), np.array([9]), 4)
    cum_hits, cum_unique = hit_curve(
        np.array([], dtype=np.int64), np.array([], dtype=np.int64), 3
    )
    assert list(cum_hits) == [0, 0, 0, 0]
    assert list(cum_unique) == [0, 0, 0, 0]


# ----------------------------------------------------------------------
# arbitration mechanics
# ----------------------------------------------------------------------
def test_arbitrate_rejects_infeasible_floors():
    curves = zoo_hit_curves(
        example_zoo(2, hbm_floor_fraction=0.5), num_sms=2, seed=0
    )
    floors = sum(c.floor_bytes for c in curves.values())
    with pytest.raises(ValueError, match="floors"):
        arbitrate(floors - 1, curves)
    grant = arbitrate(floors, curves)
    for name, curve in curves.items():
        assert grant.grant(name).granted_rows >= curve.floor_rows


def test_arbitrate_validation():
    with pytest.raises(ValueError, match="budget"):
        arbitrate(-1, {})
    with pytest.raises(ValueError, match="at least one"):
        arbitrate(0, {})


def test_arbitrate_prefers_higher_marginal_hit_rate():
    """The hotter tenant's cache fills first under a tight budget."""
    zoo = example_zoo(2, hbm_floor_fraction=0.0)  # med_hot + high_hot
    curves = zoo_hit_curves(zoo, num_sms=2, seed=0)
    hot, med = curves["high_hot"], curves["med_hot"]
    budget = 4 * max(hot.bytes_per_row, med.bytes_per_row)
    grant = arbitrate(budget, curves)
    # per byte, the hot dataset's first rows buy far more hits
    hot_density = grant.grant("high_hot").hit_rate
    med_density = grant.grant("med_hot").hit_rate
    assert hot_density > med_density


def test_stores_for_grants_reproduce_granted_hit_rates():
    zoo = example_zoo(2, hbm_floor_fraction=0.01)
    curves = zoo_hit_curves(zoo, num_sms=2, seed=0)
    budget = sum(c.table_bytes for c in curves.values()) // 25
    grant = arbitrate(budget, curves)
    stores = stores_for_grants(grant, curves, _LINK)
    for tenant in zoo.tenants:
        workload = kernel_workload(
            gpu=A100_SXM4_80GB,
            model=tenant.model,
            scale=SimScale(name="tenancy2", num_sms=2),
        )
        trace = generate_trace(
            HOTNESS_PRESETS[tenant.dataset],
            batch_size=workload.batch_size,
            pooling_factor=workload.pooling_factor,
            table_rows=workload.table_rows,
            seed=0,
        )
        stats = stores[tenant.name].lookup(trace)
        assert stats.hit_rate == pytest.approx(
            grant.grant(tenant.name).hit_rate
        )


# ----------------------------------------------------------------------
# drift re-arbitration
# ----------------------------------------------------------------------
def test_drift_decays_and_rearbitration_recovers():
    zoo = example_zoo(3, hbm_floor_fraction=0.0)
    curves = zoo_hit_curves(zoo, num_sms=2, seed=0)
    budget = sum(c.table_bytes for c in curves.values()) // 20
    initial = arbitrate(budget, curves)

    def realized(phase, grants):
        drifted = zoo_hit_curves(
            zoo, num_sms=2, seed=0,
            drift_phase=phase, profile_phase=0, drift_per_phase=0.3,
        )
        return {
            name: drifted[name].hit_rate_at(g.granted_rows)
            for name, g in grants.items()
        }

    stale = realized(3, initial.grants)
    fresh = rearbitrate_on_drift(
        zoo, budget, drift_phase=3, drift_per_phase=0.3, seed=0,
    )
    # drift away from the phase-0 profile decays the stale hit rates...
    assert sum(stale.values()) < sum(initial.hit_rates.values())
    # ...and re-profiling from the previous phase recovers, in aggregate
    assert sum(fresh.hit_rates.values()) > sum(stale.values())
    assert fresh.budget_bytes == budget
    assert fresh.total_granted_bytes + fresh.leftover_bytes == budget


def test_rearbitrate_requires_a_drifted_phase():
    zoo = example_zoo(1)
    with pytest.raises(ValueError, match="drift_phase"):
        rearbitrate_on_drift(
            zoo, 10**9, drift_phase=0, drift_per_phase=0.2,
        )


def test_tenant_hit_curve_floor_and_host_accounting():
    tenant = TenantSpec(name="t", dataset="med_hot",
                        hbm_floor_fraction=0.1)
    curve = tenant_hit_curve(tenant, num_sms=2, seed=0)
    assert curve.floor_rows == int(np.ceil(0.1 * curve.table_rows))
    assert curve.hit_rate_at(curve.table_rows) >= \
        curve.hit_rate_at(0)
    # fully resident: nothing crosses the link
    assert curve.unique_misses_at(curve.table_rows) == 0
    assert curve.host_us_per_query(curve.table_rows, _LINK) == 0.0
    assert curve.host_us_per_query(0, _LINK) > 0.0
