"""Differential: a 1-tenant zoo adds ZERO perturbation when degenerate.

The zoo layer wraps the existing single-model serving paths; when the
zoo holds one tenant there is no co-runner, the contention factor is
exactly 1.0, and the layer must reproduce the underlying simulators
*field-identically* — same floats, not approximately equal floats.
Seeded across spec/scenario combinations covering every scenario
shape, both batcher families, several fleets and routing policies.
"""

import dataclasses

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.config.model import PAPER_MODEL
from repro.core.serving import (
    BatchingPolicy,
    ContinuousBatching,
    serve_stream,
)
from repro.fleet import FleetSpec, simulate_fleet_stream
from repro.tenancy import (
    ShareDemand,
    TenantSpec,
    ZooSpec,
    simulate_zoo_fleet,
    simulate_zoo_serving,
)
from repro.traffic.scenario import (
    DiurnalSpec,
    DriftSpec,
    FlashCrowdSpec,
    MMPPSpec,
    StationarySpec,
)


def _toy(batch: int) -> float:
    return 10.0 + 0.01 * batch


def _fast(batch: int) -> float:
    return 6.0 + 0.006 * batch


def _tenant(scenario, *, sla_ms=40.0, dataset="med_hot"):
    return TenantSpec(
        name="only", model=PAPER_MODEL, dataset=dataset,
        scenario=scenario, sla_ms=sla_ms,
    )


_A = A100_SXM4_80GB
_H = H100_NVL

#: >= 10 seeded spec/scenario combos: every scenario shape, varied
#: loads/durations/SLAs, both fleet shapes, all four routing policies.
CASES = [
    (StationarySpec(base_qps=800, duration_s=3.0), 40.0, "jsq",
     {_A: 1}, 0),
    (StationarySpec(base_qps=2500, duration_s=2.0), 25.0, "round-robin",
     {_A: 2}, 1),
    (DiurnalSpec(base_qps=1500, duration_s=4.0, amplitude=0.7), 30.0,
     "least-latency", {_A: 1, _H: 1}, 2),
    (DiurnalSpec(base_qps=900, duration_s=3.0, amplitude=0.4), 60.0,
     "power-of-two", {_A: 2, _H: 1}, 3),
    (FlashCrowdSpec(base_qps=700, duration_s=4.0, spike_at_s=1.5,
                    magnitude=6.0), 35.0, "jsq", {_A: 2}, 4),
    (FlashCrowdSpec(base_qps=1200, duration_s=3.0, spike_at_s=1.0,
                    magnitude=4.0, ramp_s=0.2, decay_s=0.5), 20.0,
     "least-latency", {_H: 2}, 5),
    (MMPPSpec(base_qps=1000, duration_s=4.0, burst_multiplier=4.0),
     45.0, "jsq", {_A: 1, _H: 1}, 6),
    (MMPPSpec(base_qps=600, duration_s=5.0, burst_multiplier=6.0,
              mean_calm_s=1.0, mean_burst_s=0.3), 50.0, "round-robin",
     {_A: 3}, 7),
    (DriftSpec(base_qps=1100, duration_s=4.0, n_phases=4), 30.0,
     "power-of-two", {_A: 1}, 8),
    (DriftSpec(base_qps=1800, duration_s=3.0, n_phases=3,
               drift_per_phase=0.3), 25.0, "jsq", {_H: 1}, 9),
    (StationarySpec(base_qps=4000, duration_s=2.0), 15.0,
     "least-latency", {_A: 2, _H: 2}, 10),
    (DiurnalSpec(base_qps=2200, duration_s=5.0, amplitude=0.6), 40.0,
     "jsq", {_A: 1, _H: 2}, 11),
]


@pytest.mark.parametrize(
    "scenario, sla_ms, policy, mix, seed", CASES,
    ids=[f"case{i}-{c[0].kind}" for i, c in enumerate(CASES)],
)
def test_one_tenant_zoo_matches_fleet_stream(
    scenario, sla_ms, policy, mix, seed
):
    tenant = _tenant(scenario, sla_ms=sla_ms)
    zoo = ZooSpec(name="solo", tenants=(tenant,))
    fleet = FleetSpec.mixed(mix, name="diff-fleet")
    models = {_A.name: _toy, _H.name: _fast}

    zoo_report = simulate_zoo_fleet(
        zoo, fleet, {"only": models}, policy=policy, seed=seed,
    )
    direct = simulate_fleet_stream(
        fleet, models, tenant.stream(seed),
        policy=policy, sla_ms=sla_ms, seed=seed,
    )
    # dataclass equality compares every field, including the nested
    # per-replica reports and per-phase stats — bit-identical or bust
    assert zoo_report.tenant_reports["only"] == direct
    assert zoo_report.contention == {
        replica.name: {"only": 1.0} for replica in fleet.replicas
    }
    assert zoo_report.aggregate_goodput_qps == direct.goodput_qps


@pytest.mark.parametrize(
    "scenario, sla_ms, policy, mix, seed", CASES,
    ids=[f"case{i}-{c[0].kind}" for i, c in enumerate(CASES)],
)
def test_one_tenant_zoo_matches_serve_stream(
    scenario, sla_ms, policy, mix, seed
):
    del policy, mix  # single-GPU path: only the scenario matters
    tenant = _tenant(scenario, sla_ms=sla_ms)
    zoo = ZooSpec(name="solo", tenants=(tenant,))
    batcher = (
        BatchingPolicy(max_batch=512, timeout_ms=2.0) if seed % 2
        else ContinuousBatching(max_batch=512, sla_ms=sla_ms)
    )
    zoo_report = simulate_zoo_serving(
        zoo, {"only": _toy}, policies={"only": batcher}, seed=seed,
    )
    direct = serve_stream(
        _toy, tenant.stream(seed), policy=batcher, sla_ms=sla_ms,
        scheme_name=tenant.scheme.name,
    )
    assert zoo_report.tenant_reports["only"] == direct
    assert zoo_report.contention == {"only": 1.0}


def test_one_tenant_zoo_identity_survives_calibrated_demand():
    """Even a fully-demanding solo tenant must see factor exactly 1.0."""
    tenant = _tenant(StationarySpec(base_qps=1500, duration_s=2.0))
    zoo = ZooSpec(name="solo", tenants=(tenant,))
    report = simulate_zoo_serving(
        zoo, {"only": _toy},
        demands={"only": ShareDemand(1.0, 1.0)}, seed=3,
    )
    direct = serve_stream(
        _toy, tenant.stream(3), sla_ms=tenant.sla_ms,
        scheme_name=tenant.scheme.name,
    )
    assert report.tenant_reports["only"] == direct
    # the report really is the same object graph, not a recomputation
    assert dataclasses.asdict(report.tenant_reports["only"]) \
        == dataclasses.asdict(direct)
