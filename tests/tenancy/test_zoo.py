"""Unit tests for TenantSpec / ZooSpec and the example-zoo factory."""

import pytest

from repro.tenancy import TenantSpec, ZooSpec, example_zoo
from repro.traffic.scenario import StationarySpec, derive_seed


def test_tenant_spec_validation():
    with pytest.raises(ValueError, match="name"):
        TenantSpec(name="")
    with pytest.raises(ValueError, match="dataset"):
        TenantSpec(name="t", dataset="nope")
    with pytest.raises(ValueError, match="sla_ms"):
        TenantSpec(name="t", sla_ms=0.0)
    with pytest.raises(ValueError, match="hbm_floor_fraction"):
        TenantSpec(name="t", hbm_floor_fraction=1.5)


def test_zoo_spec_validation():
    with pytest.raises(ValueError, match="at least one"):
        ZooSpec(name="z", tenants=())
    tenant = TenantSpec(name="t")
    with pytest.raises(ValueError, match="duplicate"):
        ZooSpec(name="z", tenants=(tenant, tenant))
    zoo = ZooSpec(name="z", tenants=(tenant,))
    with pytest.raises(KeyError, match="known"):
        zoo.tenant("other")
    assert zoo.tenant("t") is tenant
    assert zoo.n_tenants == 1
    assert zoo.total_table_bytes == tenant.table_bytes


def test_example_zoo_variants_are_distinct():
    zoo = example_zoo(4)
    assert zoo.n_tenants == 4
    shapes = {
        (t.dataset, t.model.table.rows, t.model.pooling_factor,
         t.model.num_tables)
        for t in zoo.tenants
    }
    assert len(shapes) == 4  # no two variants stress the GPU alike
    # a fifth tenant cycles the variants with a fresh name
    bigger = example_zoo(5)
    assert len(set(bigger.tenant_names)) == 5


def test_streams_are_independent_and_stable():
    zoo = example_zoo(3, base_qps=500.0, duration_s=2.0)
    streams = zoo.streams(seed=7)
    fingerprints = {
        name: s.fingerprint() for name, s in streams.items()
    }
    assert len(set(fingerprints.values())) == 3  # mutually distinct
    # adding a tenant must not perturb existing tenants' streams
    bigger = example_zoo(4, base_qps=500.0, duration_s=2.0)
    again = bigger.streams(seed=7)
    for name, fp in fingerprints.items():
        assert again[name].fingerprint() == fp


def test_derive_seed_is_stable_and_label_sensitive():
    assert derive_seed(0, "a") == derive_seed(0, "a")
    assert derive_seed(0, "a") != derive_seed(0, "b")
    assert derive_seed(0, "a") != derive_seed(1, "a")


def test_tenant_stream_uses_derived_seed():
    tenant = TenantSpec(
        name="t", scenario=StationarySpec(base_qps=300, duration_s=2.0)
    )
    direct = tenant.scenario.sample(derive_seed(11, "t"))
    assert tenant.stream(11).fingerprint() == direct.fingerprint()
