"""Property-based tenancy invariants (hypothesis).

The structural guarantees multi-tenant serving must never lose:

* interference — the contention factor is always >= 1.0, *exactly*
  1.0 when solo, and monotone non-decreasing in every co-runner's
  load;
* arbitration — the HBM budget is conserved in exact integer
  arithmetic, no tenant is ever granted less than its floor, grants
  never exceed a tenant's table, and no affordable useful chunk is
  left on the table;
* cache curves — per-tenant hit rate is monotone non-decreasing in
  the granted share (the stack property, surfaced through
  :func:`repro.memstore.policy.hit_curve`).

``derandomize=True`` keeps CI deterministic (hypothesis still explores
the space, from a fixed seed).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.memstore.policy import hit_curve
from repro.tenancy.arbiter import TenantHitCurve, arbitrate
from repro.tenancy.share import ShareDemand, contention_factor

SETTINGS = dict(max_examples=60, deadline=None, derandomize=True)

_fractions = st.floats(0.0, 1.0)
_loads = st.floats(0.0, 1.0)

_demands = st.builds(
    ShareDemand, sm_fraction=_fractions, hbm_fraction=_fractions
)

_co_runners = st.lists(
    st.tuples(_demands, _loads), min_size=0, max_size=5
)


# ----------------------------------------------------------------------
# interference
# ----------------------------------------------------------------------
@given(own=_demands, co=_co_runners)
@settings(**SETTINGS)
def test_contention_factor_at_least_one(own, co):
    assert contention_factor(own, co) >= 1.0


@given(own=_demands)
@settings(**SETTINGS)
def test_contention_factor_exactly_one_solo(own):
    assert contention_factor(own, []) == 1.0
    # co-runners contributing zero load are as good as absent
    idle = [(ShareDemand(1.0, 1.0), 0.0)]
    assert contention_factor(own, idle) == 1.0


@given(
    own=_demands,
    co=st.lists(st.tuples(_demands, _loads), min_size=1, max_size=5),
    which=st.integers(0, 4),
    bump=st.floats(0.0, 1.0),
)
@settings(**SETTINGS)
def test_contention_factor_monotone_in_co_runner_load(
    own, co, which, bump
):
    index = which % len(co)
    demand, load = co[index]
    bumped = list(co)
    bumped[index] = (demand, min(1.0, load + bump))
    assert contention_factor(own, bumped) >= contention_factor(own, co)


# ----------------------------------------------------------------------
# arbitration over synthetic curves (no kernel simulation)
# ----------------------------------------------------------------------
def _curve(name, rng, *, floor_fraction):
    table_rows = int(rng.integers(8, 64))
    profile = rng.permutation(table_rows)[: int(rng.integers(1, table_rows))]
    accesses = rng.integers(0, table_rows, int(rng.integers(1, 200)))
    cum_hits, cum_unique = hit_curve(profile, accesses, table_rows)
    return TenantHitCurve(
        tenant=name,
        table_rows=table_rows,
        row_bytes=int(rng.choice([64, 128, 512])),
        tables=int(rng.integers(1, 8)),
        batch_size=8,
        n_accesses=len(accesses),
        n_distinct=len(np.unique(accesses)),
        floor_rows=int(np.ceil(floor_fraction * table_rows)),
        profile=profile,
        cum_hits=cum_hits,
        cum_unique=cum_unique,
    )


@given(
    seed=st.integers(0, 10_000),
    n_tenants=st.integers(1, 4),
    budget_scale=st.floats(0.0, 1.5),
    floor_fraction=st.floats(0.0, 0.2),
)
@settings(**SETTINGS)
def test_arbiter_conserves_budget_and_floors(
    seed, n_tenants, budget_scale, floor_fraction
):
    rng = np.random.default_rng(seed)
    curves = {
        f"t{i}": _curve(f"t{i}", rng, floor_fraction=floor_fraction)
        for i in range(n_tenants)
    }
    floors = sum(c.floor_bytes for c in curves.values())
    total = sum(c.table_bytes for c in curves.values())
    budget = max(floors, int(budget_scale * total))
    grant = arbitrate(budget, curves, granularity=8)

    # exact conservation: every byte is granted or left over
    assert grant.total_granted_bytes + grant.leftover_bytes == budget
    assert grant.leftover_bytes >= 0
    for name, curve in curves.items():
        g = grant.grant(name)
        # the floor is contractual, the table is the ceiling
        assert g.granted_rows >= curve.floor_rows
        assert g.granted_rows <= curve.table_rows
        assert g.granted_bytes == g.granted_rows * curve.bytes_per_row
        assert g.hit_rate == curve.hit_rate_at(g.granted_rows)
    # no affordable useful row was left behind: any tenant with hits
    # still ahead either saturated or can no longer fit one row
    for name, curve in curves.items():
        g = grant.grant(name)
        hits_ahead = (
            curve.hits_at(curve.table_rows) > curve.hits_at(g.granted_rows)
        )
        if hits_ahead:
            assert grant.leftover_bytes < curve.bytes_per_row


@given(
    seed=st.integers(0, 10_000),
    rows_a=st.integers(0, 64),
    rows_b=st.integers(0, 64),
)
@settings(**SETTINGS)
def test_hit_rate_monotone_in_granted_share(seed, rows_a, rows_b):
    rng = np.random.default_rng(seed)
    curve = _curve("t", rng, floor_fraction=0.0)
    lo, hi = sorted(
        (min(rows_a, curve.table_rows), min(rows_b, curve.table_rows))
    )
    assert curve.hit_rate_at(hi) >= curve.hit_rate_at(lo)
    # and the host gather shrinks as the share grows
    assert curve.unique_misses_at(hi) <= curve.unique_misses_at(lo)


@given(
    seed=st.integers(0, 10_000),
    budget_scale=st.floats(0.0, 1.0),
    extra=st.floats(0.0, 0.5),
)
@settings(**SETTINGS)
def test_single_tenant_grant_monotone_in_budget(
    seed, budget_scale, extra
):
    """With one tenant there is no knapsack effect: a bigger budget
    never shrinks the grant or the hit rate.  (Across tenants,
    indivisible rows of different sizes make per-tenant budget
    monotonicity unattainable for any allocator — only the per-share
    monotonicity above is structural.)"""
    rng = np.random.default_rng(seed)
    curves = {"t": _curve("t", rng, floor_fraction=0.0)}
    total = curves["t"].table_bytes
    small = arbitrate(int(budget_scale * total), curves, granularity=8)
    large = arbitrate(
        int((budget_scale + extra) * total), curves, granularity=8
    )
    assert large.grant("t").granted_rows >= small.grant("t").granted_rows
    assert large.grant("t").hit_rate >= small.grant("t").hit_rate
