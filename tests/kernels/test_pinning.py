"""L2 pinning: hot-row selection, pin kernel, coverage."""

import numpy as np
import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.datasets.spec import HOTNESS_PRESETS
from repro.gpusim.hierarchy import MemoryHierarchy
from repro.kernels.address_map import AddressMap
from repro.kernels.pinning import (
    build_pin_kernel_programs,
    hot_row_lines,
    pin_hot_rows,
    pinnable_rows,
    pinned_coverage,
    profile_hot_rows,
    simulate_pin_kernel,
)
from tests.conftest import make_trace

AMAP = AddressMap(row_bytes=512)
GPU = A100_SXM4_80GB.scaled_slice(2)


class TestCapacityMath:
    def test_paper_60k_vectors(self):
        # 30 MB set-aside / 512 B vectors = 61440 (the paper's "top 60K")
        assert pinnable_rows(30 * 1024 * 1024, 512) == 61_440

    def test_zero_set_aside(self):
        assert pinnable_rows(0, 512) == 0


class TestHotRowSelection:
    def test_profiling_matches_timed_trace_hot_set(self):
        spec = HOTNESS_PRESETS["high_hot"]
        hot = profile_hot_rows(
            spec, batch_size=64, pooling_factor=50,
            table_rows=50_000, k=20, seed=0,
        )
        timed = make_trace("high_hot", batch=64, pooling=50, rows=50_000, seed=0)
        coverage = pinned_coverage(timed, hot)
        # the top-20 hot rows carry a large share of a high_hot trace
        assert coverage > 0.25

    def test_hot_row_lines_expands_whole_rows(self):
        lines = hot_row_lines(np.array([0, 1]), AMAP)
        assert len(lines) == 2 * 4  # 512 B rows = 4 lines each
        assert len(set(lines)) == 8

    def test_pinned_coverage_crafted(self):
        trace = make_trace("one_item", batch=4, pooling=4)
        row = trace.indices[0]
        assert pinned_coverage(trace, np.array([row])) == 1.0
        assert pinned_coverage(trace, np.array([row + 1])) == 0.0


class TestDirectPinning:
    def test_pin_hot_rows_respects_capacity(self):
        hierarchy = MemoryHierarchy(
            GPU, l2_set_aside_bytes=16 * 512  # room for 16 rows
        )
        pinned = pin_hot_rows(hierarchy, np.arange(100), AMAP)
        assert pinned == 16 * 4
        assert len(hierarchy.l2.pinned) == 64

    def test_pinned_rows_hit_l2(self):
        hierarchy = MemoryHierarchy(GPU, l2_set_aside_bytes=512 * 64)
        pin_hot_rows(hierarchy, np.array([7]), AMAP)
        done = hierarchy.load(0, AMAP.row_addr(7), 4, now=0.0)
        # guaranteed L2 hit: pays L2 latency + the cold page walk, but
        # never a DRAM trip
        assert done == pytest.approx(GPU.lat_l2 + GPU.tlb_miss_penalty)
        assert hierarchy.dram_read_bytes == 0


class TestPinKernel:
    def test_programs_cover_all_lines(self):
        rows = np.arange(10)
        programs = build_pin_kernel_programs(rows, AMAP, GPU)
        prefetches = [
            op for p in programs for op in p() if op[0] == 8
        ]
        assert len(prefetches) == 40
        covered = {op[1] >> 7 for op in prefetches}
        assert covered == set(hot_row_lines(rows, AMAP))

    def test_simulate_pin_kernel_pins_and_times(self):
        hierarchy = MemoryHierarchy(
            GPU, l2_set_aside_bytes=GPU.l2_set_aside_bytes
        )
        stats = simulate_pin_kernel(GPU, hierarchy, np.arange(50), AMAP)
        assert stats.makespan_cycles > 0
        assert len(hierarchy.l2.pinned) == 200
        assert stats.prefetch_insts == 200
