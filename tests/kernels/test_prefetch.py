"""Prefetching warp programs: burst structure per buffer station."""

import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.gpusim.isa import (
    OP_LD_GLOBAL,
    OP_LD_LOCAL,
    OP_LD_SHARED,
    OP_PREFETCH_L1,
    OP_ST_LOCAL,
    OP_ST_SHARED,
)
from repro.kernels.address_map import AddressMap
from repro.kernels.compiler import compile_kernel
from repro.kernels.prefetch import build_prefetch_programs
from tests.conftest import make_trace

AMAP = AddressMap(row_bytes=512)
POOL = 12


def program_ops(kind, distance, pooling=POOL, maxrreg=None):
    trace = make_trace(batch=1, pooling=pooling)
    build = compile_kernel(
        A100_SXM4_80GB, prefetch=kind, prefetch_distance=distance,
        maxrregcount=maxrreg,
    )
    programs = build_prefetch_programs(trace, build, AMAP)
    return [list(p()) for p in programs]


def kinds(ops):
    return [op[0] for op in ops]


class TestRowLoadCounts:
    @pytest.mark.parametrize("kind", ["register", "shared", "local"])
    def test_buffered_schemes_load_each_row_once(self, kind):
        ops = program_ops(kind, 4)[0]
        row_loads = [o for o in ops if o[0] == OP_LD_GLOBAL and o[2] == 4]
        assert len(row_loads) == POOL

    def test_l1dpf_prefetches_then_demands(self):
        ops = program_ops("l1d", 4)[0]
        ks = kinds(ops)
        assert ks.count(OP_PREFETCH_L1) == POOL
        demand_rows = [o for o in ops if o[0] == OP_LD_GLOBAL and o[2] == 4]
        assert len(demand_rows) == POOL  # demand loop runs in full


class TestBufferStations:
    def test_smpf_stores_and_loads_shared(self):
        ops = program_ops("shared", 3)[0]
        ks = kinds(ops)
        assert ks.count(OP_ST_SHARED) == POOL
        assert ks.count(OP_LD_SHARED) == POOL

    def test_lmpf_round_trips_local(self):
        ops = program_ops("local", 3)[0]
        ks = kinds(ops)
        assert ks.count(OP_ST_LOCAL) == POOL
        assert ks.count(OP_LD_LOCAL) == POOL

    def test_rpf_uses_no_buffer_ops(self):
        ops = program_ops("register", 3)[0]
        ks = kinds(ops)
        assert OP_ST_SHARED not in ks
        assert OP_LD_SHARED not in ks
        assert OP_ST_LOCAL not in ks

    def test_lmpf_buffer_lines_disjoint_from_spills(self):
        ops = program_ops("local", 3, maxrreg=48)[0]
        buffer_addrs = {o[1] for o in ops if o[0] == OP_ST_LOCAL and
                        o[4] is not None}
        spill_addrs = {o[1] for o in ops if o[0] == OP_ST_LOCAL and
                       o[4] is None}
        assert buffer_addrs.isdisjoint(spill_addrs)


class TestBatching:
    def test_partial_final_group(self):
        # pooling 10, distance 4 -> groups of 4, 4, 2
        ops = program_ops("register", 4, pooling=10)[0]
        row_loads = [o for o in ops if o[0] == OP_LD_GLOBAL and o[2] == 4]
        assert len(row_loads) == 10

    def test_distance_one_degenerates_to_serial(self):
        ops = program_ops("register", 1)[0]
        # one trigger ALU per iteration
        from repro.kernels import calibration as cal

        triggers = [o for o in ops if o[0] == 0 and
                    o[1] == cal.PF_TRIGGER_ALU]
        assert len(triggers) == POOL

    def test_distance_larger_than_pooling(self):
        ops = program_ops("register", 50, pooling=6)[0]
        row_loads = [o for o in ops if o[0] == OP_LD_GLOBAL and o[2] == 4]
        assert len(row_loads) == 6

    def test_burst_issues_loads_back_to_back(self):
        ops = program_ops("register", 4)[0]
        ks = kinds(ops)
        # within a group, the 4 row loads appear before any consume ALU
        # that depends on a prefetch tag
        first_consume = next(
            i for i, o in enumerate(ops)
            if o[0] == 0 and o[4] is not None and o[4] >= 16
        )
        rows_before = sum(
            1 for o in ops[:first_consume]
            if o[0] == OP_LD_GLOBAL and o[2] == 4
        )
        assert rows_before == 4


class TestValidation:
    def test_requires_prefetch_build(self):
        trace = make_trace(batch=1, pooling=4)
        build = compile_kernel(A100_SXM4_80GB)  # no prefetch
        with pytest.raises(ValueError):
            build_prefetch_programs(trace, build, AMAP)

    def test_one_program_per_warp(self):
        trace = make_trace(batch=3, pooling=4)
        build = compile_kernel(
            A100_SXM4_80GB, prefetch="shared", prefetch_distance=2
        )
        assert len(build_prefetch_programs(trace, build, AMAP)) == 12
