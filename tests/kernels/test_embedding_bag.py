"""Baseline embedding-bag warp programs: structure and op accounting."""

import numpy as np
import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.gpusim.isa import (
    OP_ALU,
    OP_LD_GLOBAL,
    OP_LD_LOCAL,
    OP_ST_GLOBAL,
    OP_ST_LOCAL,
)
from repro.kernels.address_map import STREAMING_RANGE, AddressMap
from repro.kernels.compiler import compile_kernel
from repro.kernels.embedding_bag import (
    build_base_programs,
    expected_global_loads,
    iter_warp_work,
    warps_per_sample,
)
from tests.conftest import make_trace

AMAP = AddressMap(row_bytes=512)


def ops_of(program):
    return list(program())


class TestWorkPartitioning:
    def test_warps_per_sample_128_dim_fp32(self):
        assert warps_per_sample(512) == 4

    def test_warps_per_sample_rejects_misaligned(self):
        with pytest.raises(ValueError):
            warps_per_sample(100)

    def test_iter_warp_work_layout(self):
        trace = make_trace(batch=3, pooling=5)
        work = list(iter_warp_work(trace, 512))
        assert len(work) == 3 * 4
        # 4 consecutive warps share a sample, differ in column offset
        sample0 = work[:4]
        assert {w[0] for w in sample0} == {0}
        assert [w[1] for w in sample0] == [0, 128, 256, 384]
        # warps of one sample share the same row list object
        assert sample0[0][3] is sample0[1][3]

    def test_rows_match_trace(self):
        trace = make_trace(batch=2, pooling=4)
        work = list(iter_warp_work(trace, 512))
        assert work[0][3] == trace.sample_rows(0).tolist()
        assert work[4][3] == trace.sample_rows(1).tolist()


class TestProgramStructure:
    def test_op_counts_without_spills(self):
        trace = make_trace(batch=2, pooling=6)
        build = compile_kernel(A100_SXM4_80GB)
        programs = build_base_programs(trace, build, AMAP)
        assert len(programs) == 2 * 4
        ops = ops_of(programs[0])
        kinds = [op[0] for op in ops]
        # per iteration: idx load + addr ALU + row load + accum ALU
        assert kinds.count(OP_LD_GLOBAL) == 1 + 2 * 6  # offsets + per-iter
        assert kinds.count(OP_ST_GLOBAL) == 1
        assert kinds.count(OP_LD_LOCAL) == 0

    def test_expected_global_loads_formula(self):
        trace = make_trace(batch=2, pooling=6)
        build = compile_kernel(A100_SXM4_80GB)
        programs = build_base_programs(trace, build, AMAP)
        total = sum(
            1 for p in programs for op in p() if op[0] == OP_LD_GLOBAL
        )
        assert total == expected_global_loads(trace, 512)

    def test_spill_traffic_emitted_when_capped(self):
        trace = make_trace(batch=2, pooling=40)
        build = compile_kernel(A100_SXM4_80GB, maxrregcount=32)  # 42 spills
        programs = build_base_programs(trace, build, AMAP)
        ops = ops_of(programs[0])
        kinds = [op[0] for op in ops]
        n_spill_loads = kinds.count(OP_LD_LOCAL)
        expected = build.spill_pairs_per_iter * 40
        assert n_spill_loads == pytest.approx(expected, abs=1.5)
        assert kinds.count(OP_ST_LOCAL) == n_spill_loads

    def test_spill_addresses_rotate_distinct_lines(self):
        trace = make_trace(batch=1, pooling=60)
        build = compile_kernel(A100_SXM4_80GB, maxrregcount=48)
        programs = build_base_programs(trace, build, AMAP, warp_uid_base=9)
        local_addrs = {
            op[1] for op in ops_of(programs[0]) if op[0] == OP_LD_LOCAL
        }
        assert len(local_addrs) >= 2
        base = AddressMap.local_window(9)
        for addr in local_addrs:
            assert base <= addr < base + 8192

    def test_row_addresses_target_table_region(self):
        trace = make_trace(batch=1, pooling=4)
        build = compile_kernel(A100_SXM4_80GB)
        programs = build_base_programs(trace, build, AMAP)
        rows = trace.sample_rows(0)
        loads = [op for op in ops_of(programs[1]) if op[0] == OP_LD_GLOBAL]
        # skip offsets + idx loads; row loads are 4-sector
        row_loads = [op for op in loads if op[2] == 4]
        expected = {AMAP.row_addr(int(r), 128) for r in rows}
        assert {op[1] for op in row_loads} == expected

    def test_idx_loads_are_streaming_region(self):
        trace = make_trace(batch=1, pooling=4)
        build = compile_kernel(A100_SXM4_80GB)
        programs = build_base_programs(trace, build, AMAP)
        lo, hi = STREAMING_RANGE
        one_sector = [
            op for op in ops_of(programs[0])
            if op[0] == OP_LD_GLOBAL and op[2] == 1
        ]
        assert one_sector
        for op in one_sector:
            assert lo <= op[1] < hi

    def test_accumulate_depends_on_row_load(self):
        trace = make_trace(batch=1, pooling=3)
        build = compile_kernel(A100_SXM4_80GB)
        ops = ops_of(build_base_programs(trace, build, AMAP)[0])
        # every 4-sector load is followed (eventually) by a dependent ALU
        for i, op in enumerate(ops):
            if op[0] == OP_LD_GLOBAL and op[2] == 4:
                tag = op[3]
                deps = [o for o in ops[i + 1:] if o[4] == tag]
                assert deps, "row load has no consumer"
