"""The nvcc model: scheme -> registers -> occupancy/spills (paper anchors)."""

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.kernels import calibration as cal
from repro.kernels.compiler import (
    KernelBuild,
    compile_kernel,
    demand_registers,
    optmt_maxrreg,
)

A100 = A100_SXM4_80GB


class TestStockKernel:
    def test_base_kernel_74_regs_24_warps(self):
        build = compile_kernel(A100)
        assert build.demand_regs == 74
        assert build.allocated_regs == 74
        assert build.warps_per_sm == 24
        assert build.spilled_regs == 0
        assert build.spill_pairs_per_iter == 0.0
        assert build.label == "base"


class TestOptMT:
    def test_a100_optmt_is_40_warps(self):
        build = compile_kernel(A100, maxrregcount=optmt_maxrreg(A100))
        assert build.warps_per_sm == 40
        assert build.spilled_regs == 74 - 48

    def test_h100_optmt_is_32_warps(self):
        build = compile_kernel(
            H100_NVL, maxrregcount=optmt_maxrreg(H100_NVL)
        )
        assert build.warps_per_sm == 32

    def test_slice_resolves_parent_calibration(self):
        assert optmt_maxrreg(A100.scaled_slice(6)) == 48

    def test_unknown_gpu_rejected(self):
        from dataclasses import replace

        with pytest.raises(KeyError):
            optmt_maxrreg(replace(A100, name="B200"))

    def test_cap_above_demand_never_spills(self):
        build = compile_kernel(A100, maxrregcount=200)
        assert build.spilled_regs == 0
        assert build.allocated_regs == 74


class TestPrefetchVariants:
    def test_demand_registers_per_kind(self):
        assert demand_registers(None, 0) == cal.BASE_DEMAND_REGS
        assert demand_registers("register", 2) == 74 + 2 + 2
        assert demand_registers("shared", 10) == cal.SMPF_DEMAND_REGS
        assert demand_registers("local", 10) == cal.LMPF_DEMAND_REGS
        assert demand_registers("l1d", 5) == cal.L1DPF_DEMAND_REGS

    def test_smpf_compiles_to_32_warps(self):
        # Section VI-B2: nvcc compiles SMPF at 32 warps per SM
        build = compile_kernel(A100, prefetch="shared", prefetch_distance=10)
        assert build.warps_per_sm == 32

    def test_lmpf_and_l1dpf_stay_at_24_warps(self):
        assert compile_kernel(
            A100, prefetch="local", prefetch_distance=10
        ).warps_per_sm == 24
        assert compile_kernel(
            A100, prefetch="l1d", prefetch_distance=5
        ).warps_per_sm == 24

    def test_rpf_occupancy_collapse_at_distance_5(self):
        # Section VI-B2: RPF drops to 16 warps for distances >= 5
        assert compile_kernel(
            A100, prefetch="register", prefetch_distance=4
        ).warps_per_sm == 24
        assert compile_kernel(
            A100, prefetch="register", prefetch_distance=5
        ).warps_per_sm == 16

    def test_smpf_shared_memory_budget(self):
        # Figure 8b: prefetch_bfr[256][10] floats = 10 KB per block
        build = compile_kernel(A100, prefetch="shared", prefetch_distance=10)
        assert build.smem_per_block == 256 * 10 * 4

    def test_label_includes_scheme_and_cap(self):
        build = compile_kernel(
            A100, prefetch="register", prefetch_distance=2, maxrregcount=48,
        )
        assert build.label == "RPF(d=2)+maxrreg=48"


class TestValidation:
    def test_unknown_prefetch_kind(self):
        with pytest.raises(ValueError):
            compile_kernel(A100, prefetch="l3", prefetch_distance=2)
        with pytest.raises(ValueError):
            demand_registers("l3", 2)

    def test_prefetch_needs_distance(self):
        with pytest.raises(ValueError):
            compile_kernel(A100, prefetch="register", prefetch_distance=0)

    def test_maxrreg_range(self):
        with pytest.raises(ValueError):
            compile_kernel(A100, maxrregcount=8)
        with pytest.raises(ValueError):
            compile_kernel(A100, maxrregcount=300)


class TestSpillModel:
    def test_spill_curve_matches_table_v(self):
        # OptMT spills 26 registers -> ~0.88 local round-trips/iteration
        # (fits Table V's +1.07M local loads over Table IV)
        assert cal.spill_pairs_per_iter(26) == pytest.approx(0.88, abs=0.02)

    def test_spill_curve_is_quadratic(self):
        assert cal.spill_pairs_per_iter(40) == pytest.approx(
            4 * cal.spill_pairs_per_iter(20)
        )

    def test_no_spills_no_pairs(self):
        assert cal.spill_pairs_per_iter(0) == 0.0
        assert cal.spill_pairs_per_iter(-5) == 0.0
