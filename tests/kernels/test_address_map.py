"""Address layout: disjoint regions, row addressing, local windows."""

from repro.config.gpu import CACHE_LINE_BYTES
from repro.kernels.address_map import (
    LOCAL_WINDOW_BYTES,
    STREAMING_RANGE,
    AddressMap,
)


class TestRegions:
    def test_streaming_range_covers_inputs_not_table(self):
        amap = AddressMap(row_bytes=512)
        lo, hi = STREAMING_RANGE
        assert lo <= amap.offsets_addr(0) < hi
        assert lo <= amap.index_addr(10**6) < hi
        assert lo <= amap.output_addr(2047, 384) < hi
        assert not lo <= amap.row_addr(499_999, 384) < hi

    def test_local_region_outside_streaming(self):
        lo, hi = STREAMING_RANGE
        addr = AddressMap.local_window(12345)
        assert not lo <= addr < hi

    def test_tables_do_not_overlap(self):
        a = AddressMap(row_bytes=512, table_id=0)
        b = AddressMap(row_bytes=512, table_id=1)
        assert b.row_addr(0) - a.row_addr(0) >= 500_000 * 512


class TestRowAddressing:
    def test_row_stride_is_row_bytes(self):
        amap = AddressMap(row_bytes=512)
        assert amap.row_addr(1) - amap.row_addr(0) == 512

    def test_column_chunks_within_row(self):
        amap = AddressMap(row_bytes=512)
        assert amap.row_addr(7, 128) == amap.row_addr(7) + 128

    def test_index_addresses_are_int64_strided(self):
        amap = AddressMap(row_bytes=512)
        assert amap.index_addr(3) - amap.index_addr(2) == 8

    def test_offsets_addresses(self):
        amap = AddressMap(row_bytes=512)
        assert amap.offsets_addr(1) - amap.offsets_addr(0) == 8

    def test_output_stride_is_row_bytes(self):
        amap = AddressMap(row_bytes=512)
        assert amap.output_addr(1) - amap.output_addr(0) == 512


class TestLocalWindows:
    def test_windows_disjoint_per_warp(self):
        a = AddressMap.local_window(0)
        b = AddressMap.local_window(1)
        assert b - a == LOCAL_WINDOW_BYTES

    def test_local_line_wraps_within_window(self):
        lines = LOCAL_WINDOW_BYTES // CACHE_LINE_BYTES
        assert AddressMap.local_line(0, 0) == AddressMap.local_line(0, lines)
        assert (
            AddressMap.local_line(0, 1) - AddressMap.local_line(0, 0)
            == CACHE_LINE_BYTES
        )

    def test_local_lines_stay_inside_window(self):
        base = AddressMap.local_window(5)
        for slot in range(200):
            addr = AddressMap.local_line(5, slot)
            assert base <= addr < base + LOCAL_WINDOW_BYTES
