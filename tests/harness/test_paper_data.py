"""Transcribed paper data: internal consistency checks."""

from repro.harness import paper_data as paper


class TestShapes:
    def test_five_dataset_tables_have_five_values(self):
        for table in (paper.TAB4_BASE, paper.TAB5_OPTMT):
            for metric, values in table.items():
                assert len(values) == 5, metric

    def test_four_dataset_tables_have_four_values(self):
        for table in (paper.TAB8_RPF_OPTMT, paper.TAB9_COMBINED):
            for metric, values in table.items():
                assert len(values) == 4, metric

    def test_figure_speedups_have_four_values(self):
        for fig in (paper.FIG12_SPEEDUP, paper.FIG13_SPEEDUP,
                    paper.FIG15_SPEEDUP, paper.FIG16A_SPEEDUP,
                    paper.FIG16B_SPEEDUP):
            for scheme, values in fig.items():
                assert len(values) == 4, scheme

    def test_fig6_sweep_has_five_warp_points(self):
        for dataset, values in paper.FIG6_SPEEDUP.items():
            assert len(values) == 5, dataset
            assert values[0] == 1.0  # normalized to the 24-warp baseline


class TestInternalConsistency:
    def test_base_kernel_gap_is_3_2x(self):
        times = paper.TAB4_BASE["kernel_time_us"]
        assert round(times[-1] / times[0], 1) == 3.2

    def test_optmt_gap_is_2_1x(self):
        times = paper.TAB5_OPTMT["kernel_time_us"]
        assert round(times[-1] / times[0], 1) == 2.1

    def test_fig12_combined_matches_headline(self):
        # embedding gain up to 103% -> 2.03x
        assert max(paper.FIG12_SPEEDUP["RPF+L2P+OptMT"]) == 2.03
        assert paper.HEADLINE["embedding_max_gain_pct"] == 103.0

    def test_fig13_combined_matches_headline(self):
        assert max(paper.FIG13_SPEEDUP["RPF+L2P+OptMT"]) == 1.77
        assert paper.HEADLINE["e2e_max_gain_pct"] == 77.0

    def test_kernel_times_monotone_in_hotness(self):
        for table in (paper.TAB4_BASE, paper.TAB5_OPTMT,
                      paper.TAB8_RPF_OPTMT, paper.TAB9_COMBINED):
            times = table["kernel_time_us"]
            assert list(times) == sorted(times)

    def test_combined_never_slower_than_rpf(self):
        rpf = paper.TAB8_RPF_OPTMT["kernel_time_us"]
        combined = paper.TAB9_COMBINED["kernel_time_us"]
        for a, b in zip(combined, rpf):
            assert a <= b

    def test_unique_access_order(self):
        values = [paper.TAB3_UNIQUE_ACCESS_PCT[d] for d in paper.DATASETS5]
        assert values == sorted(values)

    def test_h100_base_faster_than_a100_base(self):
        a100 = paper.TAB4_BASE["kernel_time_us"][1:]
        h100 = [paper.H100_BASE_TIME_US[d] for d in paper.DATASETS4]
        for a, h in zip(a100, h100):
            assert h < a
