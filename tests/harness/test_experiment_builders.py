"""Exercise additional experiment builders end to end (1-SM slice)."""

import pytest

from repro.harness.context import ExperimentContext, HarnessConfig
from repro.harness.runner import run_experiment


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(HarnessConfig(num_sms=1))


class TestNcuTables:
    def test_tab4_structure(self, ctx):
        table = run_experiment("tab4", ctx)
        metrics = {r["metric"] for r in table.rows}
        assert "kernel_time_us" in metrics
        assert "long_scoreboard_stall" in metrics
        # every metric has a measured and a paper row
        for metric in metrics:
            sources = [
                r["source"] for r in table.rows if r["metric"] == metric
            ]
            assert sorted(sources) == ["measured", "paper"]

    def test_tab4_measured_monotone(self, ctx):
        table = run_experiment("tab4", ctx)
        row = next(
            r for r in table.rows
            if r["metric"] == "kernel_time_us" and r["source"] == "measured"
        )
        order = ("one_item", "high_hot", "med_hot", "low_hot", "random")
        times = [row[d] for d in order]
        assert times == sorted(times)


class TestPipelineFigures:
    def test_fig1_rows(self, ctx):
        table = run_experiment("fig1", ctx)
        assert len(table.rows) == 10  # 5 datasets x {base, OptMT}
        for row in table.rows:
            assert row["total_ms"] == pytest.approx(
                row["emb_ms"] + row["non_emb_ms"]
            )
            assert 0 < row["emb_share_pct"] < 100

    def test_fig14_shares(self, ctx):
        table = run_experiment("fig14", ctx)
        schemes = {r["scheme"] for r in table.rows}
        assert "base" in schemes and "RPF+L2P+OptMT" in schemes

    def test_fig17_uses_table_vii_mixes(self, ctx):
        table = run_experiment("fig17", ctx)
        assert [r["mix"] for r in table.rows] == ["Mix1", "Mix2", "Mix3"]
        for row in table.rows:
            assert row["paper_combined"] > 1.0


class TestSweepFigures:
    def test_fig6_contains_local_loads_row(self, ctx):
        table = run_experiment("fig6", ctx)
        datasets = [r["dataset"] for r in table.rows]
        assert "local_loads_M" in datasets
        loads = table.row_for("dataset", "local_loads_M")
        assert loads["w24"] == 0.0
        assert loads["w64"] > 0.0

    def test_fig11_has_pooling_columns(self, ctx):
        table = run_experiment("fig11", ctx)
        assert {r["dataset"] for r in table.rows} == {"high_hot", "med_hot"}
        for row in table.rows:
            assert row["pool10"] > 0.5
