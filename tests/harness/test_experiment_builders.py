"""Exercise additional experiment builders end to end (1-SM slice)."""

import pytest

from repro.harness.context import ExperimentContext, HarnessConfig
from repro.harness.runner import run_experiment


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(HarnessConfig(num_sms=1))


class TestNcuTables:
    def test_tab4_structure(self, ctx):
        table = run_experiment("tab4", ctx)
        metrics = {r["metric"] for r in table.rows}
        assert "kernel_time_us" in metrics
        assert "long_scoreboard_stall" in metrics
        # every metric has a measured and a paper row
        for metric in metrics:
            sources = [
                r["source"] for r in table.rows if r["metric"] == metric
            ]
            assert sorted(sources) == ["measured", "paper"]

    def test_tab4_measured_monotone(self, ctx):
        table = run_experiment("tab4", ctx)
        row = next(
            r for r in table.rows
            if r["metric"] == "kernel_time_us" and r["source"] == "measured"
        )
        order = ("one_item", "high_hot", "med_hot", "low_hot", "random")
        times = [row[d] for d in order]
        assert times == sorted(times)


class TestPipelineFigures:
    def test_fig1_rows(self, ctx):
        table = run_experiment("fig1", ctx)
        assert len(table.rows) == 10  # 5 datasets x {base, OptMT}
        for row in table.rows:
            assert row["total_ms"] == pytest.approx(
                row["emb_ms"] + row["non_emb_ms"]
            )
            assert 0 < row["emb_share_pct"] < 100

    def test_fig14_shares(self, ctx):
        table = run_experiment("fig14", ctx)
        schemes = {r["scheme"] for r in table.rows}
        assert "base" in schemes and "RPF+L2P+OptMT" in schemes

    def test_fig17_uses_table_vii_mixes(self, ctx):
        table = run_experiment("fig17", ctx)
        assert [r["mix"] for r in table.rows] == ["Mix1", "Mix2", "Mix3"]
        for row in table.rows:
            assert row["paper_combined"] > 1.0


class TestSweepFigures:
    def test_fig6_contains_local_loads_row(self, ctx):
        table = run_experiment("fig6", ctx)
        datasets = [r["dataset"] for r in table.rows]
        assert "local_loads_M" in datasets
        loads = table.row_for("dataset", "local_loads_M")
        assert loads["w24"] == 0.0
        assert loads["w64"] > 0.0

    def test_fig11_has_pooling_columns(self, ctx):
        table = run_experiment("fig11", ctx)
        assert {r["dataset"] for r in table.rows} == {"high_hot", "med_hot"}
        for row in table.rows:
            assert row["pool10"] > 0.5


class TestMemstoreExperiment:
    def test_sweep_p99_monotone_and_drift_recovers(self, ctx):
        table = run_experiment("memstore", ctx)
        sweep = [r for r in table.rows if r["part"] == "hbm-sweep"]
        assert len(sweep) >= 4
        fractions = [r["x"] for r in sweep]
        assert fractions == sorted(fractions)
        hits = [r["hit_rate"] for r in sweep]
        assert all(b >= a for a, b in zip(hits, hits[1:]))
        # p99 improves monotonically (within noise) with cache fraction
        p99s = [r["p99_ms"] for r in sweep]
        assert all(b <= a * 1.02 for a, b in zip(p99s, p99s[1:]))
        assert sweep[-1]["host_us_per_query"] == 0.0

        pin_once = [r for r in table.rows if r["part"] == "drift"]
        refreshed = [r for r in table.rows if r["part"] == "drift+refresh"]
        assert len(pin_once) == len(refreshed) == 4
        decay = [r["hit_rate"] for r in pin_once]
        assert all(b < a for a, b in zip(decay, decay[1:]))
        assert any(r["refreshed"] for r in refreshed)
        # after the refresh the hit rate recovers vs pin-once
        for once, fresh in zip(pin_once[2:], refreshed[2:]):
            assert fresh["hit_rate"] > once["hit_rate"]
