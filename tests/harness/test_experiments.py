"""Experiment registry + the fast (trace-only) experiments end to end."""

import pytest

from repro.harness.context import ExperimentContext, HarnessConfig
from repro.harness.experiments import EXPERIMENTS
from repro.harness.runner import list_experiments, run_experiment


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(HarnessConfig(num_sms=1))


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "tab3", "tab4", "tab5", "tab8", "tab9",
            "fig1", "fig5", "fig6", "fig9", "fig11", "fig12", "fig13",
            "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
        }
        assert expected <= set(EXPERIMENTS)

    def test_extensions_registered(self):
        # beyond-the-paper experiments ride in the same registry
        assert "fleet" in EXPERIMENTS

    def test_descriptions_present(self):
        for exp_id, desc in list_experiments():
            assert desc, exp_id

    def test_unknown_experiment_rejected(self, ctx):
        with pytest.raises(KeyError):
            run_experiment("fig99", ctx)


class TestFastExperiments:
    def test_tab3_runs(self, ctx):
        table = run_experiment("tab3", ctx)
        assert len(table.rows) == 5
        assert table.row_for("dataset", "random")["paper_pct"] == 63.21

    def test_fig5_runs(self, ctx):
        table = run_experiment("fig5", ctx)
        assert len(table.rows) == 5
        one = table.row_for("dataset", "one_item")
        assert one["top100pct"] == pytest.approx(100.0)


class TestKernelExperiment:
    def test_fig12_smallest_slice(self, ctx):
        table = run_experiment("fig12", ctx)
        assert len(table.rows) == 4
        comb = table.row_for("scheme", "RPF+L2P+OptMT")
        assert comb["random"] > 1.0
