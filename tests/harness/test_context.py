"""Experiment context: memoization and derived pipeline metrics."""

import pytest

from repro.core.schemes import BASE, OPTMT
from repro.dlrm.timing import KERNEL_LAUNCH_US
from repro.harness.context import ExperimentContext, HarnessConfig


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(HarnessConfig(num_sms=1))


class TestMemoization:
    def test_kernel_cached(self, ctx):
        a = ctx.kernel("high_hot", BASE)
        b = ctx.kernel("high_hot", BASE)
        assert a is b

    def test_distinct_configs_not_conflated(self, ctx):
        a = ctx.kernel("high_hot", BASE)
        b = ctx.kernel("high_hot", OPTMT)
        c = ctx.kernel("high_hot", BASE, pooling_factor=30)
        assert a is not b and a is not c

    def test_workload_cached(self, ctx):
        assert ctx.workload() is ctx.workload()


class TestDerivedMetrics:
    def test_stage_is_weighted_sum(self, ctx):
        t = ctx.kernel("high_hot", BASE).kernel_time_us
        total = ctx.embedding_stage_us({"high_hot": 9}, BASE)
        assert total == pytest.approx(9 * (t + KERNEL_LAUNCH_US))

    def test_batch_latency_adds_non_embedding(self, ctx):
        mix = ctx.homogeneous_mix("high_hot")
        emb_ms = ctx.embedding_stage_us(mix, BASE) / 1e3
        assert ctx.batch_latency_ms(mix, BASE) > emb_ms

    def test_share_between_0_and_100(self, ctx):
        mix = ctx.homogeneous_mix("high_hot")
        share = ctx.embedding_share_pct(mix, BASE)
        assert 0.0 < share < 100.0

    def test_homogeneous_mix_covers_model(self, ctx):
        assert ctx.homogeneous_mix("random") == {"random": 250}
