"""ExperimentTable container."""

import pytest

from repro.harness.results import ExperimentTable


def make_table():
    table = ExperimentTable("t1", "demo", ["name", "value"])
    table.add_row(name="a", value=1.0)
    table.add_row(name="b", value=2.5)
    return table


class TestRows:
    def test_add_and_column(self):
        table = make_table()
        assert table.column("value") == [1.0, 2.5]

    def test_unknown_column_rejected_on_add(self):
        table = make_table()
        with pytest.raises(KeyError):
            table.add_row(name="c", wrong=1)

    def test_unknown_column_rejected_on_read(self):
        with pytest.raises(KeyError):
            make_table().column("missing")

    def test_row_for(self):
        assert make_table().row_for("name", "b")["value"] == 2.5

    def test_row_for_missing(self):
        with pytest.raises(KeyError):
            make_table().row_for("name", "zzz")

    def test_partial_rows_allowed(self):
        table = ExperimentTable("t2", "demo", ["a", "b"])
        table.add_row(a=1)
        assert table.column("b") == [None]


class TestRender:
    def test_render_contains_data_and_notes(self):
        table = make_table()
        table.notes.append("a note")
        text = table.render()
        assert "t1: demo" in text
        assert "2.50" in text
        assert "note: a note" in text

    def test_render_empty_table(self):
        table = ExperimentTable("t3", "empty", ["x"])
        assert "t3" in table.render()

    def test_none_rendered_as_dash(self):
        table = ExperimentTable("t4", "demo", ["x", "y"])
        table.add_row(x=1)
        assert "-" in table.render()


class TestExport:
    def test_csv_round_trip(self):
        import csv
        import io

        text = make_table().to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["name"] == "a"
        assert float(rows[1]["value"]) == 2.5

    def test_json_round_trip(self):
        import json

        table = make_table()
        table.notes.append("n1")
        data = json.loads(table.to_json())
        assert data["exp_id"] == "t1"
        assert data["rows"][1]["value"] == 2.5
        assert data["notes"] == ["n1"]
