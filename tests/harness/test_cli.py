"""CLI smoke tests."""

import json

import pytest

from repro import __version__
from repro.harness.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_run_out_and_record_flags(self):
        args = build_parser().parse_args(
            ["run", "tab3", "--out", "r.json", "--record", "t.jsonl"]
        )
        assert args.out == "r.json"
        assert args.record == "t.jsonl"

    def test_replay_defaults(self):
        args = build_parser().parse_args(["replay", "run.jsonl"])
        assert args.recording == "run.jsonl"
        assert args.report == "summary"

    def test_replay_report_choices(self):
        args = build_parser().parse_args(
            ["replay", "run.jsonl", "--report", "timeline"]
        )
        assert args.report == "timeline"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["replay", "run.jsonl", "--report", "interpretive-dance"]
            )
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig12"])
        assert args.experiment == "fig12"
        assert args.sms == 6
        assert args.seed == 0

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "tab3", "--sms", "2", "--seed", "7"]
        )
        assert args.sms == 2 and args.seed == 7

    def test_scenario_profile_flag(self):
        args = build_parser().parse_args(
            ["run", "scenario", "--profile", "diurnal"]
        )
        assert args.experiment == "scenario"
        assert args.profile == "diurnal"

    def test_profile_defaults_to_none(self):
        args = build_parser().parse_args(["run", "scenario"])
        assert args.profile is None

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "scenario", "--profile", "tsunami"]
            )

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "tab4" in out

    def test_run_tab3(self, capsys):
        assert main(["run", "tab3", "--sms", "1"]) == 0
        out = capsys.readouterr().out
        assert "Unique access" in out
        assert "regenerated in" in out

    def test_run_unknown_lists_choices(self, capsys):
        # no traceback: a friendly error naming the valid experiments
        assert main(["run", "nope", "--sms", "1"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'nope'" in err
        assert "fig12" in err and "memstore" in err and "all" in err

    def test_profile_rejected_for_other_experiments(self, capsys):
        assert main(["run", "tab3", "--sms", "1", "--profile", "mmpp"]) == 2
        err = capsys.readouterr().err
        assert "only applies" in err

    def test_run_scenario_with_profile(self, capsys):
        assert main(
            ["run", "scenario", "--sms", "1", "--profile", "poisson"]
        ) == 0
        out = capsys.readouterr().out
        assert "Scenario serving" in out
        assert "goodput_qps" in out
        assert "continuous" in out


class TestMachineReadableOut:
    def test_out_writes_one_json_document(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        assert main(
            ["run", "tab3", "--sms", "1", "--out", str(out_path)]
        ) == 0
        document = json.loads(out_path.read_text())
        assert document["tool"] == "repro-harness"
        assert document["version"] == __version__
        assert document["config"] == {"sms": 1, "seed": 0}
        (table,) = document["experiments"]
        assert table["exp_id"] == "tab3"
        assert table["columns"] and table["rows"]
        assert str(out_path) in capsys.readouterr().out


class TestRecordReplay:
    def test_record_then_replay_roundtrip(self, tmp_path, capsys):
        rec = tmp_path / "run.jsonl"
        assert main([
            "run", "scenario", "--sms", "1", "--profile", "poisson",
            "--record", str(rec),
        ]) == 0
        assert "telemetry:" in capsys.readouterr().out
        assert rec.read_text().startswith('{"k":"telemetry"')

        assert main(["replay", str(rec)]) == 0
        out = capsys.readouterr().out
        assert "StreamReport" in out

        assert main(["replay", str(rec), "--report", "phases"]) == 0
        assert "phase steady:" in capsys.readouterr().out

        assert main(["replay", str(rec), "--report", "timeline"]) == 0
        assert "peak queue" in capsys.readouterr().out

        # no zoo runs recorded: the tenants view says so, exit 0
        assert main(["replay", str(rec), "--report", "tenants"]) == 0
        assert "no multi-tenant" in capsys.readouterr().out

    def test_record_without_serving_runs_yields_empty_recording(
        self, tmp_path, capsys
    ):
        rec = tmp_path / "empty.jsonl"
        assert main([
            "run", "tab3", "--sms", "1", "--record", str(rec),
        ]) == 0
        capsys.readouterr()
        assert main(["replay", str(rec)]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_replay_truncated_file_exits_2(self, tmp_path, capsys):
        rec = tmp_path / "trunc.jsonl"
        rec.write_text('{"k":"telemetry","schema":1}\n')
        assert main(["replay", str(rec)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "truncated" in err

    def test_replay_schema_mismatch_exits_2(self, tmp_path, capsys):
        rec = tmp_path / "future.jsonl"
        rec.write_text(
            '{"k":"telemetry","schema":99}\n{"k":"end","records":0}\n'
        )
        assert main(["replay", str(rec)]) == 2
        err = capsys.readouterr().err
        assert "schema version 99 is not supported" in err
        assert "Traceback" not in err

    def test_replay_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "ghost.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err
