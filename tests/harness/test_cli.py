"""CLI smoke tests."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig12"])
        assert args.experiment == "fig12"
        assert args.sms == 6
        assert args.seed == 0

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "tab3", "--sms", "2", "--seed", "7"]
        )
        assert args.sms == 2 and args.seed == 7

    def test_scenario_profile_flag(self):
        args = build_parser().parse_args(
            ["run", "scenario", "--profile", "diurnal"]
        )
        assert args.experiment == "scenario"
        assert args.profile == "diurnal"

    def test_profile_defaults_to_none(self):
        args = build_parser().parse_args(["run", "scenario"])
        assert args.profile is None

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "scenario", "--profile", "tsunami"]
            )

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "tab4" in out

    def test_run_tab3(self, capsys):
        assert main(["run", "tab3", "--sms", "1"]) == 0
        out = capsys.readouterr().out
        assert "Unique access" in out
        assert "regenerated in" in out

    def test_run_unknown_lists_choices(self, capsys):
        # no traceback: a friendly error naming the valid experiments
        assert main(["run", "nope", "--sms", "1"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'nope'" in err
        assert "fig12" in err and "memstore" in err and "all" in err

    def test_profile_rejected_for_other_experiments(self, capsys):
        assert main(["run", "tab3", "--sms", "1", "--profile", "mmpp"]) == 2
        err = capsys.readouterr().err
        assert "only applies" in err

    def test_run_scenario_with_profile(self, capsys):
        assert main(
            ["run", "scenario", "--sms", "1", "--profile", "poisson"]
        ) == 0
        out = capsys.readouterr().out
        assert "Scenario serving" in out
        assert "goodput_qps" in out
        assert "continuous" in out
