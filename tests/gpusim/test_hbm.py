"""HBM channel: latency, queueing, bandwidth accounting."""

import pytest

from repro.gpusim.hbm import HbmChannel


class TestLatency:
    def test_unloaded_read_pays_latency(self):
        hbm = HbmChannel(latency=466, bytes_per_cycle=1000.0)
        assert hbm.read(4, now=10.0) == pytest.approx(476.0)

    def test_reads_counted(self):
        hbm = HbmChannel(466, 1000.0)
        hbm.read(4, 0.0)
        hbm.read(1, 0.0)
        assert hbm.reads == 2
        assert hbm.read_bytes == 5 * 32


class TestQueueing:
    def test_backlog_delays_later_requests(self):
        # 1 byte/cycle: a 128-B read occupies the channel for 128 cycles
        hbm = HbmChannel(latency=100, bytes_per_cycle=1.0)
        first = hbm.read(4, now=0.0)
        second = hbm.read(4, now=0.0)
        assert first == pytest.approx(100.0)
        assert second == pytest.approx(228.0)  # 128 queue + 100 latency
        assert hbm.queued_cycles == pytest.approx(128.0)

    def test_idle_gap_clears_backlog(self):
        hbm = HbmChannel(100, 1.0)
        hbm.read(4, 0.0)
        late = hbm.read(4, now=1000.0)
        assert late == pytest.approx(1100.0)

    def test_fast_channel_negligible_queue(self):
        hbm = HbmChannel(100, 1e6)
        for _ in range(100):
            done = hbm.read(4, 0.0)
        assert done < 101.0


class TestAccounting:
    def test_bandwidth_utilization(self):
        hbm = HbmChannel(100, 10.0)
        hbm.read(4, 0.0)  # 128 bytes
        # over 64 cycles: 2 B/cycle of 10 -> 20%
        assert hbm.utilization(64.0) == pytest.approx(0.2)
        assert hbm.avg_read_bandwidth(64.0) == pytest.approx(2.0)

    def test_zero_elapsed_guard(self):
        hbm = HbmChannel(100, 10.0)
        assert hbm.utilization(0.0) == 0.0
        assert hbm.avg_read_bandwidth(-1.0) == 0.0

    def test_write_counts_without_timing(self):
        hbm = HbmChannel(100, 10.0)
        hbm.write(4)
        assert hbm.write_bytes == 128
        assert hbm.next_free == 0.0

    def test_occupy_consumes_service_only(self):
        hbm = HbmChannel(100, 1.0)
        hbm.occupy(4, now=0.0)
        assert hbm.next_free == pytest.approx(128.0)
        assert hbm.read_bytes == 0
        assert hbm.write_bytes == 128

    def test_reset(self):
        hbm = HbmChannel(100, 1.0)
        hbm.read(4, 0.0)
        hbm.reset_stats()
        assert hbm.read_bytes == 0
        assert hbm.next_free == 0.0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            HbmChannel(100, 0.0)
