"""Occupancy rules: the paper's register-pressure arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.gpusim.occupancy import (
    KernelResources,
    max_regs_for_warps,
    occupancy_pct,
    regs_per_warp_allocated,
    resident_warps,
)


class TestPaperAnchors:
    def test_stock_kernel_74_regs_gives_24_warps(self):
        # Section III-C: 74 registers -> 37.5% occupancy = 24 warps
        assert resident_warps(A100_SXM4_80GB, KernelResources(74)) == 24
        assert occupancy_pct(A100_SXM4_80GB, KernelResources(74)) == 37.5

    @pytest.mark.parametrize("regs,warps", [
        (74, 24), (64, 32), (48, 40), (42, 40), (32, 64), (255, 8),
    ])
    def test_register_to_warp_mapping(self, regs, warps):
        assert resident_warps(
            A100_SXM4_80GB, KernelResources(regs)
        ) == warps

    @pytest.mark.parametrize("target,expected_cap", [
        (24, 80), (32, 64), (40, 48), (64, 32),
    ])
    def test_max_regs_for_warps(self, target, expected_cap):
        assert max_regs_for_warps(A100_SXM4_80GB, target) == expected_cap

    def test_h100_32_warp_cap_is_64_regs(self):
        assert max_regs_for_warps(H100_NVL, 32) == 64


class TestAllocationUnit:
    def test_rounding_to_256_register_unit(self):
        # 50 regs x 32 threads = 1600 -> rounds up to 1792
        assert regs_per_warp_allocated(A100_SXM4_80GB, 50) == 1792
        assert regs_per_warp_allocated(A100_SXM4_80GB, 48) == 1536

    def test_rounding_changes_occupancy(self):
        # without rounding 50 regs would give 40 warps; with it, 32
        assert resident_warps(A100_SXM4_80GB, KernelResources(50)) == 32


class TestSharedMemoryLimit:
    def test_smem_caps_blocks(self):
        res = KernelResources(32, smem_per_block=40 * 1024)
        # 164 KB / 40 KB -> 4 blocks -> 32 warps (regs would allow 64)
        assert resident_warps(A100_SXM4_80GB, res) == 32

    def test_smem_zero_is_unlimited(self):
        res = KernelResources(32, smem_per_block=0)
        assert resident_warps(A100_SXM4_80GB, res) == 64


class TestValidation:
    def test_bad_resources(self):
        with pytest.raises(ValueError):
            KernelResources(0)
        with pytest.raises(ValueError):
            KernelResources(32, warps_per_block=0)
        with pytest.raises(ValueError):
            KernelResources(32, smem_per_block=-1)

    def test_bad_warp_target(self):
        with pytest.raises(ValueError):
            max_regs_for_warps(A100_SXM4_80GB, 0)
        with pytest.raises(ValueError):
            max_regs_for_warps(A100_SXM4_80GB, 128)


@given(st.integers(16, 255))
def test_more_registers_never_increase_occupancy(regs):
    a = resident_warps(A100_SXM4_80GB, KernelResources(regs))
    b = resident_warps(A100_SXM4_80GB, KernelResources(min(255, regs + 8)))
    assert b <= a
    assert a % 8 == 0  # whole blocks
    assert 0 <= a <= 64


@given(st.integers(8, 64))
def test_max_regs_round_trip(target):
    target = (target // 8) * 8 or 8
    cap = max_regs_for_warps(A100_SXM4_80GB, target)
    assert resident_warps(A100_SXM4_80GB, KernelResources(cap)) >= target
    if cap < 255:
        assert resident_warps(
            A100_SXM4_80GB, KernelResources(cap + 1)
        ) < target or cap == 255
