"""KernelProfile: NCU-style metric derivation and slice scaling."""

import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.gpusim.engine import RawKernelStats
from repro.gpusim.hierarchy import MemoryHierarchy
from repro.gpusim.profiler import KernelProfile

GPU = A100_SXM4_80GB.scaled_slice(2)


def make_stats(**overrides):
    defaults = dict(
        name="k",
        makespan_cycles=14100.0,
        n_warps=64,
        warps_per_sm=24,
        n_smsp=8,
        issued_insts=56400,
        alu_insts=50000,
        ld_global_insts=6000,
        ld_local_insts=300,
        ld_shared_insts=100,
        st_insts=64,
        prefetch_insts=0,
        warp_resident_cycles=14100.0 * 48,
        stall_long_scoreboard=100000.0,
        stall_short_scoreboard=500.0,
        stall_not_selected=2000.0,
    )
    defaults.update(overrides)
    return RawKernelStats(**defaults)


class TestDerivation:
    def test_kernel_time_from_clock(self):
        profile = KernelProfile.from_run(
            GPU, make_stats(), MemoryHierarchy(GPU)
        )
        assert profile.kernel_time_us == pytest.approx(10.0)

    def test_issue_utilization(self):
        profile = KernelProfile.from_run(
            GPU, make_stats(), MemoryHierarchy(GPU)
        )
        assert profile.issued_per_scheduler == pytest.approx(0.5)
        assert profile.sm_throughput_pct == pytest.approx(50.0)

    def test_stall_per_instruction(self):
        profile = KernelProfile.from_run(
            GPU, make_stats(), MemoryHierarchy(GPU)
        )
        assert profile.long_scoreboard_stall == pytest.approx(
            100000.0 / 56400
        )

    def test_warp_cycles_per_inst(self):
        profile = KernelProfile.from_run(
            GPU, make_stats(), MemoryHierarchy(GPU)
        )
        assert profile.warp_cycles_per_inst == pytest.approx(
            14100.0 * 48 / 56400
        )

    def test_load_insts_full_chip_scaling(self):
        profile = KernelProfile.from_run(
            GPU, make_stats(), MemoryHierarchy(GPU),
            chip_factor=2 / 108,
        )
        assert profile.load_insts_m == pytest.approx(
            6300 / (2 / 108) / 1e6
        )

    def test_bandwidth_uses_full_chip_peak(self):
        hierarchy = MemoryHierarchy(GPU)
        hierarchy.hbm.read(4, 0.0)
        profile = KernelProfile.from_run(
            GPU, make_stats(), hierarchy,
            chip_factor=2 / 108,
            full_hbm_gbps=A100_SXM4_80GB.hbm_bandwidth_gbps,
        )
        util = hierarchy.hbm.utilization(14100.0)
        assert profile.avg_hbm_bw_gbps == pytest.approx(util * 1940.0)
        assert profile.hbm_bw_util_pct == pytest.approx(100 * util)

    def test_chip_factor_validation(self):
        with pytest.raises(ValueError):
            KernelProfile.from_run(
                GPU, make_stats(), MemoryHierarchy(GPU), chip_factor=0.0
            )
        with pytest.raises(ValueError):
            KernelProfile.from_run(
                GPU, make_stats(), MemoryHierarchy(GPU), chip_factor=1.5
            )

    def test_zero_makespan_guards(self):
        profile = KernelProfile.from_run(
            GPU, make_stats(makespan_cycles=0.0, issued_insts=0),
            MemoryHierarchy(GPU),
        )
        assert profile.issued_per_scheduler == 0.0
        assert profile.warp_cycles_per_inst == 0.0


class TestPresentation:
    def test_to_row_is_complete(self):
        profile = KernelProfile.from_run(
            GPU, make_stats(), MemoryHierarchy(GPU)
        )
        row = profile.to_row()
        assert row["name"] == "k"
        assert set(row) >= {
            "kernel_time_us", "l1_hit_pct", "l2_hit_pct",
            "long_scoreboard_stall", "dram_read_mb",
        }

    def test_ncu_rows_reference_real_fields(self):
        profile = KernelProfile.from_run(
            GPU, make_stats(), MemoryHierarchy(GPU)
        )
        for field_name, label, fmt in KernelProfile.NCU_ROWS:
            value = getattr(profile, field_name)
            assert fmt.format(value)
            assert label
