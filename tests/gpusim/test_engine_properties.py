"""Engine invariants over randomized warp programs (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.gpu import A100_SXM4_80GB
from repro.gpusim.engine import run_kernel
from repro.gpusim.hierarchy import MemoryHierarchy
from repro.gpusim.isa import (
    OP_ALU,
    OP_LD_GLOBAL,
    OP_LD_SHARED,
    OP_ST_GLOBAL,
)

GPU = A100_SXM4_80GB.scaled_slice(1)
TABLE = 1 << 35

# one random micro-op: (kind, operand, tag, dep)
_op = st.tuples(
    st.sampled_from([OP_ALU, OP_LD_GLOBAL, OP_LD_SHARED, OP_ST_GLOBAL]),
    st.integers(1, 8),       # ALU cycles / address stride
    st.integers(0, 3),       # tag
    st.one_of(st.none(), st.integers(0, 3)),  # dep
)
_program = st.lists(_op, min_size=1, max_size=20)
_programs = st.lists(_program, min_size=1, max_size=12)


def materialize(raw_program):
    def gen():
        for kind, operand, tag, dep in raw_program:
            if kind == OP_ALU:
                yield (OP_ALU, operand, 0, None, dep)
            elif kind == OP_LD_GLOBAL:
                yield (OP_LD_GLOBAL, TABLE + 128 * operand, 4, tag, dep)
            elif kind == OP_LD_SHARED:
                yield (OP_LD_SHARED, 0, 0, tag, dep)
            else:
                yield (OP_ST_GLOBAL, TABLE + 128 * operand, 4, None, dep)
    return gen


def run(raw_programs, warps_per_sm=8):
    programs = [materialize(p) for p in raw_programs]
    hierarchy = MemoryHierarchy(GPU)
    return run_kernel(
        GPU, hierarchy, programs,
        warps_per_sm=warps_per_sm, warps_per_block=1,
    )


class TestEngineInvariants:
    @settings(max_examples=40, deadline=None)
    @given(_programs)
    def test_all_instructions_issue_exactly_once(self, raw):
        stats = run(raw)
        expected = sum(
            op[1] if op[0] == OP_ALU else 1
            for program in raw for op in program
        )
        assert stats.issued_insts == expected

    @settings(max_examples=40, deadline=None)
    @given(_programs)
    def test_makespan_bounds(self, raw):
        stats = run(raw)
        # lower bound: no SMSP can issue faster than 1/cycle
        per_warp_issue = [
            sum(op[1] if op[0] == OP_ALU else 1 for op in program)
            for program in raw
        ]
        assert stats.makespan_cycles >= max(per_warp_issue)
        # upper bound: fully serial execution with worst-case latency
        worst = sum(per_warp_issue) + 40 * len(raw) + sum(
            (GPU.lat_hbm + GPU.tlb_miss_penalty + GPU.lat_shared)
            for program in raw for op in program
            if op[0] in (OP_LD_GLOBAL, OP_LD_SHARED)
        )
        assert stats.makespan_cycles <= worst

    @settings(max_examples=40, deadline=None)
    @given(_programs)
    def test_stalls_are_nonnegative(self, raw):
        stats = run(raw)
        assert stats.stall_long_scoreboard >= 0
        assert stats.stall_short_scoreboard >= 0
        assert stats.stall_not_selected >= 0
        assert stats.warp_resident_cycles >= 0

    @settings(max_examples=25, deadline=None)
    @given(_programs, st.integers(1, 16))
    def test_occupancy_never_changes_issue_totals(self, raw, warps):
        a = run(raw, warps_per_sm=8)
        b = run(raw, warps_per_sm=warps)
        assert a.issued_insts == b.issued_insts
        assert a.n_warps == b.n_warps

    @settings(max_examples=25, deadline=None)
    @given(_programs)
    def test_determinism_property(self, raw):
        a = run(raw)
        b = run(raw)
        assert a.makespan_cycles == b.makespan_cycles
        assert a.stall_not_selected == b.stall_not_selected


class TestWaveStress:
    def test_many_small_blocks_all_complete(self):
        raw = [[(OP_ALU, 2, 0, None)]] * 200
        stats = run(raw, warps_per_sm=8)
        assert stats.n_warps == 200
        assert stats.issued_insts == 400

    def test_single_warp_many_loads(self):
        raw = [[(OP_LD_GLOBAL, i, i % 4, None) for i in range(20)]]
        stats = run(raw)
        assert stats.ld_global_insts == 20

    def test_mixed_block_sizes(self):
        programs = [materialize([(OP_ALU, 1, 0, None)])] * 13
        hierarchy = MemoryHierarchy(GPU)
        stats = run_kernel(
            GPU, hierarchy, programs, warps_per_sm=8, warps_per_block=4,
        )
        assert stats.n_warps == 13
