"""MemoryHierarchy: level latencies, MSHR merging, streaming, pinning."""

import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.gpusim.hierarchy import MemoryHierarchy

GPU = A100_SXM4_80GB.scaled_slice(2)
TABLE_ADDR = 1 << 35
STREAM = (1 << 33, 1 << 35)


def make_hierarchy(set_aside=0, streaming=None):
    return MemoryHierarchy(
        GPU, l2_set_aside_bytes=set_aside, streaming_range=streaming,
    )


class TestLevels:
    def test_cold_load_pays_dram_latency(self):
        h = make_hierarchy()
        done = h.load(0, TABLE_ADDR, 4, now=0.0)
        # DRAM latency plus the cold page walk
        assert done >= GPU.lat_hbm
        assert h.dram_read_bytes == 128

    def test_warm_load_hits_l1(self):
        h = make_hierarchy()
        h.load(0, TABLE_ADDR, 4, 0.0)
        done = h.load(0, TABLE_ADDR, 4, now=10_000.0)
        assert done == pytest.approx(10_000.0 + GPU.lat_l1)

    def test_l2_hit_from_other_sm(self):
        h = make_hierarchy()
        h.load(0, TABLE_ADDR, 4, 0.0)
        done = h.load(1, TABLE_ADDR, 4, now=10_000.0)
        # other SM misses its own L1 but hits L2 (plus its own page walk)
        assert GPU.lat_l1 < done - 10_000.0
        assert h.dram_read_bytes == 128  # no second DRAM read

    def test_sector_accounting(self):
        h = make_hierarchy()
        h.load(0, TABLE_ADDR, 4, 0.0)
        h.load(0, TABLE_ADDR, 1, 1000.0)
        assert h.l1_hit_sectors == 1
        assert h.l1_miss_sectors == 4


class TestMshrMerging:
    def test_concurrent_misses_merge(self):
        h = make_hierarchy()
        first = h.load(0, TABLE_ADDR, 4, now=0.0)
        second = h.load(0, TABLE_ADDR, 4, now=5.0)
        # the second request waits for the same fill; no new DRAM read
        assert second == pytest.approx(first)
        assert h.hbm.reads == 1

    def test_merge_across_sms(self):
        h = make_hierarchy()
        first = h.load(0, TABLE_ADDR, 4, now=0.0)
        second = h.load(1, TABLE_ADDR, 4, now=5.0)
        assert second >= first - 1e-9
        assert h.hbm.reads == 1

    def test_after_fill_no_merge_path(self):
        h = make_hierarchy()
        first = h.load(0, TABLE_ADDR, 4, now=0.0)
        done = h.load(0, TABLE_ADDR, 4, now=first + 100.0)
        assert done == pytest.approx(first + 100.0 + GPU.lat_l1)


class TestStreaming:
    def test_stream_hits_after_first_touch(self):
        h = make_hierarchy(streaming=STREAM)
        addr = STREAM[0] + 64
        h.load(0, addr, 1, 0.0)
        done = h.load(0, addr, 1, now=50_000.0)
        assert done == pytest.approx(50_000.0 + GPU.lat_l1)

    def test_stream_first_touch_goes_below(self):
        h = make_hierarchy(streaming=STREAM)
        done = h.load(0, STREAM[0], 1, now=0.0)
        assert done >= GPU.lat_hbm

    def test_stream_seen_is_per_sm(self):
        h = make_hierarchy(streaming=STREAM)
        h.load(0, STREAM[0], 1, 0.0)
        done = h.load(1, STREAM[0], 1, now=10_000.0)
        assert done > 10_000.0 + GPU.lat_l1  # SM 1's own first touch

    def test_table_region_not_streaming(self):
        h = make_hierarchy(streaming=STREAM)
        h.load(0, TABLE_ADDR, 4, 0.0)
        assert TABLE_ADDR >> 7 not in h._stream_seen[0]


class TestLocalMemory:
    def test_local_within_budget_is_l1_latency(self):
        h = make_hierarchy()
        h.configure_local_memory(1000, budget_bytes=10_000)
        assert not h.local_overflow
        done = h.load(0, 1 << 40, 4, now=5.0, local=True)
        assert done == pytest.approx(5.0 + GPU.lat_l1)
        assert h.local_read_sectors == 4

    def test_local_overflow_round_trips_l2(self):
        h = make_hierarchy()
        h.configure_local_memory(20_000, budget_bytes=10_000)
        assert h.local_overflow
        done = h.load(0, 1 << 40, 4, now=5.0, local=True)
        assert done >= 5.0 + GPU.lat_l2

    def test_local_store_counts(self):
        h = make_hierarchy()
        h.store(0, 1 << 40, 4, 0.0, local=True)
        assert h.local_write_sectors == 4

    def test_global_store_counts_hbm_write(self):
        h = make_hierarchy()
        h.store(0, TABLE_ADDR, 4, 0.0)
        assert h.hbm.write_bytes == 128


class TestPinning:
    def test_pinned_line_always_l2_hit(self):
        h = make_hierarchy(set_aside=GPU.l2_set_aside_bytes)
        line = TABLE_ADDR >> 7
        assert h.l2.pin(line)
        done = h.load(0, TABLE_ADDR, 4, now=0.0)
        # L1 miss but guaranteed L2 hit (+ page walk on first touch)
        assert done < GPU.lat_hbm + GPU.tlb_miss_penalty
        assert h.dram_read_bytes == 0

    def test_set_aside_validation(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(GPU, l2_set_aside_bytes=GPU.l2_bytes)

    def test_prefetch_pin_l2_fetches_and_pins(self):
        h = make_hierarchy(set_aside=GPU.l2_set_aside_bytes)
        h.prefetch_pin_l2(TABLE_ADDR, 4, 0.0)
        assert h.l2.contains(TABLE_ADDR >> 7)
        assert h.dram_read_bytes == 128
        # a later demand load is an L2 hit with no further DRAM traffic
        h.load(0, TABLE_ADDR, 4, 10_000.0)
        assert h.dram_read_bytes == 128

    def test_prefetch_pin_beyond_capacity_degrades_gracefully(self):
        h = make_hierarchy(set_aside=0)
        h.prefetch_pin_l2(TABLE_ADDR, 4, 0.0)  # set-aside of zero
        assert not h.l2.pinned


class TestStats:
    def test_reset_stats(self):
        h = make_hierarchy(streaming=STREAM)
        h.load(0, TABLE_ADDR, 4, 0.0)
        h.load(0, STREAM[0], 1, 0.0)
        h.reset_stats()
        assert h.l1_hit_sectors == 0
        assert h.dram_read_bytes == 0
        assert h.tlb_miss_rate == 0.0
        assert all(not s for s in h._stream_seen)

    def test_tlb_miss_rate_bounds(self):
        h = make_hierarchy()
        for i in range(10):
            h.load(0, TABLE_ADDR + i * 4096, 4, float(i))
        assert 0.0 < h.tlb_miss_rate <= 1.0
