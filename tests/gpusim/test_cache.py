"""SectoredCache: LRU sets, sector statistics, residency pinning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.gpu import CACHE_LINE_BYTES
from repro.gpusim.cache import SectoredCache


def tiny_cache(sets=2, assoc=2, pin_bytes=0):
    return SectoredCache(
        "t", sets * assoc * CACHE_LINE_BYTES, assoc,
        pin_capacity_bytes=pin_bytes,
    )


class TestBasics:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.access(10, 4) is False
        assert cache.access(10, 4) is True
        assert cache.hit_sectors == 4
        assert cache.miss_sectors == 4

    def test_sector_weighted_hit_rate(self):
        cache = tiny_cache()
        cache.access(1, 4)   # miss, 4 sectors
        cache.access(1, 1)   # hit, 1 sector
        assert cache.hit_rate == pytest.approx(1 / 5)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SectoredCache("t", 64, 4)

    def test_contains_does_not_mutate(self):
        cache = tiny_cache()
        cache.access(2, 1)
        hits, misses = cache.hit_sectors, cache.miss_sectors
        assert cache.contains(2)
        assert not cache.contains(99)
        assert (cache.hit_sectors, cache.miss_sectors) == (hits, misses)

    def test_reset_stats_keeps_contents(self):
        cache = tiny_cache()
        cache.access(3, 4)
        cache.reset_stats()
        assert cache.miss_sectors == 0
        assert cache.access(3, 4) is True


class TestLru:
    def test_eviction_order_is_lru(self):
        cache = tiny_cache(sets=1, assoc=2)
        cache.access(0, 1)
        cache.access(1, 1)
        cache.access(0, 1)  # 0 becomes MRU
        cache.access(2, 1)  # evicts 1
        assert cache.contains(0)
        assert not cache.contains(1)
        assert cache.contains(2)

    def test_set_isolation(self):
        cache = tiny_cache(sets=2, assoc=1)
        cache.access(0, 1)  # set 0
        cache.access(1, 1)  # set 1
        assert cache.contains(0) and cache.contains(1)
        cache.access(2, 1)  # set 0, evicts 0
        assert not cache.contains(0)
        assert cache.contains(1)

    def test_allocate_inserts_without_stats(self):
        cache = tiny_cache()
        cache.allocate(5)
        assert cache.contains(5)
        assert cache.miss_sectors == 0
        assert cache.access(5, 2) is True


class TestPinning:
    def test_pin_always_hits(self):
        cache = tiny_cache(sets=1, assoc=1, pin_bytes=4 * CACHE_LINE_BYTES)
        assert cache.pin(7)
        for line in range(8, 28):  # thrash everything except the pin
            cache.access(line, 1)
        assert cache.access(7, 4) is True
        assert cache.pin_hit_sectors == 4

    def test_pin_capacity_enforced(self):
        cache = tiny_cache(pin_bytes=2 * CACHE_LINE_BYTES)
        assert cache.pin(1) and cache.pin(2)
        assert cache.pin(3) is False
        assert cache.pin(1) is True  # re-pin is idempotent

    def test_pin_removes_from_normal_ways(self):
        cache = tiny_cache(sets=1, assoc=2, pin_bytes=CACHE_LINE_BYTES)
        cache.access(4, 1)
        cache.pin(4)
        assert 4 not in cache.sets[0]
        assert cache.contains(4)

    def test_unpin_all(self):
        cache = tiny_cache(pin_bytes=4 * CACHE_LINE_BYTES)
        cache.pin(1)
        cache.unpin_all()
        assert not cache.pinned

    def test_pin_default_capacity_zero(self):
        assert tiny_cache().pin(1) is False


_lines_strategy = st.lists(st.integers(0, 63), min_size=1, max_size=300)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(_lines_strategy)
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = tiny_cache(sets=4, assoc=2)
        for line in lines:
            cache.access(line, 1)
        for ways in cache.sets:
            assert len(ways) <= cache.assoc
            # every resident line maps to its own set
            for line in ways:
                assert cache.sets[line % cache.num_sets] is ways

    @settings(max_examples=50, deadline=None)
    @given(_lines_strategy)
    def test_hit_immediately_after_access(self, lines):
        cache = tiny_cache(sets=4, assoc=2)
        for line in lines:
            cache.access(line, 1)
            assert cache.contains(line)

    @settings(max_examples=50, deadline=None)
    @given(_lines_strategy)
    def test_stats_conservation(self, lines):
        cache = tiny_cache(sets=4, assoc=2)
        for line in lines:
            cache.access(line, 2)
        assert cache.hit_sectors + cache.miss_sectors == 2 * len(lines)
