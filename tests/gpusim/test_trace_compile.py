"""Compiled-trace fast path: equivalence with the generator reference
path, trace lowering fidelity, and the kernel-result memo layer.

The contract under test: for every kernel variant the repo can build,
the compiled executor produces ``RawKernelStats`` *identical field for
field* to the generator-driven reference executor, on identical
hierarchy state — so every figure the harness regenerates is invariant
to which engine path ran it.
"""

import dataclasses

import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.config.scale import SimScale
from repro.core.embedding import kernel_workload, run_table_kernel
from repro.core.schemes import Scheme
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.gpusim.engine import run_kernel
from repro.gpusim.hierarchy import MemoryHierarchy
from repro.gpusim.isa import OP_ALU, OP_LD_GLOBAL
from repro.gpusim.memo import (
    KernelMemo,
    MemoizedKernelRun,
    memo_key,
)
from repro.gpusim.profiler import HierarchyStats
from repro.gpusim.trace import CompiledTrace, TraceBuilder, compile_programs
from repro.kernels import calibration as cal
from repro.kernels.address_map import STREAMING_RANGE, AddressMap
from repro.kernels.pinning import (
    build_pin_kernel_programs,
    build_pin_kernel_trace,
    pin_hot_rows,
    profile_hot_rows,
)
from repro.kernels.registry import build_programs, build_trace

GPU_SLICE = 2

#: Every kernel shape the repo can emit: baseline, OptMT (spilled), all
#: four prefetch stations (with and without heavy spilling).
SCHEMES = [
    Scheme(),
    Scheme(optmt=True),
    Scheme(prefetch="register", optmt=True),
    Scheme(prefetch="shared", optmt=True),
    Scheme(prefetch="local", optmt=True),
    Scheme(prefetch="l1d", optmt=True),
    Scheme(maxrregcount=40),
    Scheme(prefetch="register", maxrregcount=32),
    Scheme(prefetch="shared"),
]


@pytest.fixture(scope="module")
def workload():
    return kernel_workload(
        A100_SXM4_80GB,
        scale=SimScale("trace-test", GPU_SLICE),
        batch_size=16,
        pooling_factor=12,
        table_rows=4096,
    )


@pytest.fixture(scope="module")
def traces(workload):
    return {
        name: generate_trace(
            HOTNESS_PRESETS[name],
            batch_size=workload.batch_size,
            pooling_factor=workload.pooling_factor,
            table_rows=workload.table_rows,
            seed=0,
        )
        for name in ("med_hot", "random")
    }


def make_hierarchy(workload, build, *, set_aside=0):
    hierarchy = MemoryHierarchy(
        workload.gpu,
        l2_set_aside_bytes=set_aside,
        streaming_range=STREAMING_RANGE,
    )
    local_lines = build.spilled_regs + (
        build.prefetch_distance if build.prefetch == "local" else 0
    )
    hierarchy.configure_local_memory(
        local_lines * 128 * build.warps_per_sm,
        int(workload.full_gpu.l1_bytes * cal.LOCAL_L1_BUDGET_FRACTION),
    )
    return hierarchy


def hierarchy_snapshot(hierarchy):
    return dataclasses.asdict(HierarchyStats.capture(hierarchy))


class TestCompiledEquivalence:
    @pytest.mark.parametrize(
        "scheme", SCHEMES, ids=lambda s: s.name or "base"
    )
    @pytest.mark.parametrize("dataset", ["med_hot", "random"])
    def test_stats_identical_to_reference(
        self, workload, traces, dataset, scheme
    ):
        """Compiled path == generator path, field for field, plus the
        full memory-hierarchy counter state."""
        trace = traces[dataset]
        build = scheme.compile(workload.gpu)
        amap = AddressMap(row_bytes=workload.row_bytes)

        h_ref = make_hierarchy(workload, build)
        ref = run_kernel(
            workload.gpu, h_ref, build_programs(trace, build, amap),
            warps_per_sm=build.warps_per_sm,
            warps_per_block=build.warps_per_block,
            reference=True,
        )
        h_fast = make_hierarchy(workload, build)
        fast = run_kernel(
            workload.gpu, h_fast, build_trace(trace, build, amap),
            warps_per_sm=build.warps_per_sm,
            warps_per_block=build.warps_per_block,
        )
        assert dataclasses.asdict(fast) == dataclasses.asdict(ref)
        assert hierarchy_snapshot(h_fast) == hierarchy_snapshot(h_ref)

    @pytest.mark.parametrize(
        "scheme", SCHEMES, ids=lambda s: s.name or "base"
    )
    def test_structured_builders_match_lowered_generators(
        self, workload, traces, scheme
    ):
        """The direct trace builders emit exactly the op stream of the
        generator programs, fused the same way."""
        trace = traces["med_hot"]
        build = scheme.compile(workload.gpu)
        amap = AddressMap(row_bytes=workload.row_bytes)
        structured = build_trace(trace, build, amap)
        lowered = compile_programs(build_programs(trace, build, amap))
        assert structured == lowered
        assert structured.fingerprint() == lowered.fingerprint()

    def test_pinned_kernel_equivalence(self, workload, traces):
        """The L2-pinning variant: pinned hierarchy state, both paths."""
        scheme = Scheme(l2_pinning=True, optmt=True)
        trace = traces["med_hot"]
        build = scheme.compile(workload.gpu)
        amap = AddressMap(row_bytes=workload.row_bytes)
        set_aside = workload.gpu.l2_set_aside_bytes
        hot = profile_hot_rows(
            HOTNESS_PRESETS["med_hot"],
            batch_size=workload.batch_size,
            pooling_factor=workload.pooling_factor,
            table_rows=workload.table_rows,
            k=64,
            seed=0,
        )
        results = []
        for reference in (True, False):
            hierarchy = make_hierarchy(workload, build, set_aside=set_aside)
            pin_hot_rows(hierarchy, hot, amap)
            programs = (
                build_programs(trace, build, amap) if reference
                else build_trace(trace, build, amap)
            )
            stats = run_kernel(
                workload.gpu, hierarchy, programs,
                warps_per_sm=build.warps_per_sm,
                warps_per_block=build.warps_per_block,
                reference=reference,
            )
            results.append(
                (dataclasses.asdict(stats), hierarchy_snapshot(hierarchy))
            )
        assert results[0] == results[1]

    def test_pin_kernel_trace_matches_programs(self, workload):
        hot = profile_hot_rows(
            HOTNESS_PRESETS["high_hot"],
            batch_size=workload.batch_size,
            pooling_factor=workload.pooling_factor,
            table_rows=workload.table_rows,
            k=32,
            seed=1,
        )
        amap = AddressMap(row_bytes=workload.row_bytes)
        gpu = workload.gpu
        structured = build_pin_kernel_trace(hot, amap, gpu)
        lowered = compile_programs(build_pin_kernel_programs(hot, amap, gpu))
        assert structured == lowered

    def test_unfused_trace_runs_identically(self, workload, traces):
        """Runtime ALU coalescing makes fused and unfused encodings of
        the same program execute identically."""
        trace = traces["med_hot"]
        build = Scheme(optmt=True).compile(workload.gpu)
        amap = AddressMap(row_bytes=workload.row_bytes)
        fused = compile_programs(build_programs(trace, build, amap))
        unfused = compile_programs(
            build_programs(trace, build, amap), fuse=False
        )
        assert unfused.n_ops > fused.n_ops
        out = []
        for compiled in (fused, unfused):
            hierarchy = make_hierarchy(workload, build)
            stats = run_kernel(
                workload.gpu, hierarchy, compiled,
                warps_per_sm=build.warps_per_sm,
                warps_per_block=build.warps_per_block,
            )
            out.append(dataclasses.asdict(stats))
        assert out[0] == out[1]

    def test_run_kernel_dispatch_paths_agree(self, workload, traces):
        """Generators through the default path are lowered and produce
        the same result as an explicit trace or the reference flag."""
        trace = traces["med_hot"]
        build = Scheme().compile(workload.gpu)
        amap = AddressMap(row_bytes=workload.row_bytes)
        outs = []
        for programs, reference in (
            (build_programs(trace, build, amap), None),
            (build_programs(trace, build, amap), True),
            (build_trace(trace, build, amap), None),
            (build_trace(trace, build, amap), True),
        ):
            hierarchy = make_hierarchy(workload, build)
            stats = run_kernel(
                workload.gpu, hierarchy, programs,
                warps_per_sm=build.warps_per_sm,
                warps_per_block=build.warps_per_block,
                reference=reference,
            )
            outs.append(dataclasses.asdict(stats))
        assert outs[0] == outs[1] == outs[2] == outs[3]


class TestTraceStructure:
    def test_roundtrip_through_programs(self, workload, traces):
        build = Scheme(prefetch="register", optmt=True).compile(workload.gpu)
        amap = AddressMap(row_bytes=workload.row_bytes)
        ct = build_trace(traces["med_hot"], build, amap)
        assert compile_programs(ct.to_programs()) == ct

    def test_fingerprint_stable_and_content_addressed(
        self, workload, traces
    ):
        build = Scheme().compile(workload.gpu)
        amap = AddressMap(row_bytes=workload.row_bytes)
        a = build_trace(traces["med_hot"], build, amap)
        b = build_trace(traces["med_hot"], build, amap)
        assert a.fingerprint() == b.fingerprint()
        other = build_trace(traces["random"], build, amap)
        assert a.fingerprint() != other.fingerprint()

    def test_builder_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TraceBuilder().append(99)

    def test_builder_requires_terminated_warps(self):
        builder = TraceBuilder()
        builder.append(OP_ALU, 3)
        with pytest.raises(ValueError):
            builder.build()

    def test_builder_fuses_dependency_free_alu_runs(self):
        builder = TraceBuilder()
        builder.append(OP_ALU, 3, dep=1)
        builder.append(OP_ALU, 4)
        builder.append(OP_ALU, 5)
        builder.append(OP_LD_GLOBAL, 1 << 35, 4, tag=0)
        builder.append(OP_ALU, 2, dep=0)  # dep: not fused
        builder.end_warp()
        ct = builder.build()
        assert ct.kind == [OP_ALU, OP_LD_GLOBAL, OP_ALU]
        assert ct.a[0] == 12
        # fusion never crosses a warp boundary
        builder2 = TraceBuilder()
        builder2.append(OP_ALU, 3)
        builder2.end_warp()
        builder2.append(OP_ALU, 4)
        builder2.end_warp()
        assert builder2.build().n_ops == 2

    def test_empty_warp_is_legal(self):
        builder = TraceBuilder()
        builder.end_warp()
        builder.append(OP_ALU, 5)
        builder.end_warp()
        ct = builder.build()
        assert ct.n_warps == 2
        assert ct.warp_starts == [0, 0, 1]

    def test_exec_form_counts_match_run(self, workload, traces):
        build = Scheme(optmt=True).compile(workload.gpu)
        amap = AddressMap(row_bytes=workload.row_bytes)
        ct = build_trace(traces["med_hot"], build, amap)
        _, counts = ct.exec_form()
        hierarchy = make_hierarchy(workload, build)
        stats = run_kernel(
            workload.gpu, hierarchy, ct,
            warps_per_sm=build.warps_per_sm,
            warps_per_block=build.warps_per_block,
        )
        assert stats.issued_insts == counts["issued"]
        assert stats.alu_insts == counts["alu"]
        assert stats.ld_local_insts == counts["ld_local"]


class TestKernelMemo:
    def test_key_stable_across_calls(self, workload, traces):
        parts = (
            "table-kernel", workload.gpu, traces["med_hot"].indices,
            traces["med_hot"].offsets, 3.5, None, True,
        )
        assert memo_key(*parts) == memo_key(*parts)

    def test_key_invalidates_on_any_input_change(self, workload, traces):
        base = memo_key("k", workload.gpu, traces["med_hot"].indices, 0)
        assert base != memo_key("k", workload.gpu,
                                traces["med_hot"].indices, 1)
        assert base != memo_key("k", workload.full_gpu,
                                traces["med_hot"].indices, 0)
        assert base != memo_key("k", workload.gpu,
                                traces["random"].indices, 0)

    def test_key_type_tagged(self):
        assert memo_key(1) != memo_key("1")
        assert memo_key(1.0) != memo_key(1)
        assert memo_key(True) != memo_key(1)
        assert memo_key(None) != memo_key("None")

    def test_key_rejects_unhashable_types(self):
        with pytest.raises(TypeError):
            memo_key(object())

    def _run_once(self, workload, memo, *, seed=0, scheme=None):
        return run_table_kernel(
            workload,
            HOTNESS_PRESETS["med_hot"],
            scheme or Scheme(optmt=True),
            seed=seed,
            memo=memo,
        )

    def test_hit_returns_equal_result_without_engine(
        self, workload, monkeypatch
    ):
        memo = KernelMemo(capacity=8)
        cold = self._run_once(workload, memo)
        assert memo.misses == 1 and memo.hits == 0

        import repro.core.embedding as embedding_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("engine ran on a memo hit")

        monkeypatch.setattr(embedding_mod, "run_kernel", boom)
        warm = self._run_once(workload, memo)
        assert memo.hits == 1
        assert warm.profile == cold.profile
        assert warm.build == cold.build
        assert (warm.pinned_lines, warm.pin_coverage, warm.pin_kernel_us) \
            == (cold.pinned_lines, cold.pin_coverage, cold.pin_kernel_us)

    def test_pinned_hit_skips_profiling_and_engine(
        self, workload, monkeypatch
    ):
        """For L2P schemes a memo hit must skip the offline hot-row
        profiling pass too, not just the engine run."""
        memo = KernelMemo(capacity=8)
        scheme = Scheme(l2_pinning=True, optmt=True)
        cold = self._run_once(workload, memo, scheme=scheme)
        assert cold.pinned_lines > 0

        import repro.core.embedding as embedding_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("expensive path ran on a memo hit")

        monkeypatch.setattr(embedding_mod, "run_kernel", boom)
        monkeypatch.setattr(embedding_mod, "profile_hot_rows", boom)
        warm = self._run_once(workload, memo, scheme=scheme)
        assert memo.hits == 1
        assert warm.profile == cold.profile
        assert warm.pinned_lines == cold.pinned_lines
        assert warm.pin_coverage == cold.pin_coverage

    def test_config_change_misses(self, workload):
        memo = KernelMemo(capacity=8)
        self._run_once(workload, memo, seed=0)
        self._run_once(workload, memo, seed=1)
        self._run_once(workload, memo, scheme=Scheme())
        assert memo.hits == 0
        assert memo.misses == 3

    def test_lru_eviction(self):
        memo = KernelMemo(capacity=2)
        runs = {}
        for i in range(3):
            stats = dataclasses.replace(
                _dummy_stats(), name=f"k{i}"
            )
            runs[i] = MemoizedKernelRun(stats, _dummy_hier())
            memo.put(f"key{i}", runs[i])
        assert len(memo) == 2
        assert memo.get("key0") is None  # evicted
        assert memo.get("key2") is runs[2]

    def test_disabled_memo_is_noop(self):
        memo = KernelMemo(capacity=0)
        assert not memo.enabled
        memo.put("k", MemoizedKernelRun(_dummy_stats(), _dummy_hier()))
        assert memo.get("k") is None
        assert len(memo) == 0

    def test_disk_roundtrip(self, tmp_path):
        run = MemoizedKernelRun(
            _dummy_stats(), _dummy_hier(),
            pinned_lines=7, pin_coverage=0.25, pin_kernel_us=1.5,
        )
        writer = KernelMemo(capacity=4, disk_dir=tmp_path)
        writer.put("deadbeef", run)
        reader = KernelMemo(capacity=4, disk_dir=tmp_path)
        got = reader.get("deadbeef")
        assert got is not None
        assert reader.disk_hits == 1
        assert dataclasses.asdict(got.stats) == \
            dataclasses.asdict(run.stats)
        assert got.hierarchy == run.hierarchy
        assert got.pinned_lines == 7
        # corrupt entries count as misses, not crashes
        (tmp_path / "bad.json").write_text("{not json")
        assert reader.get("bad") is None

    def test_disk_store_shares_across_memos_end_to_end(
        self, workload, tmp_path, monkeypatch
    ):
        first = KernelMemo(capacity=4, disk_dir=tmp_path)
        cold = self._run_once(workload, first)

        import repro.core.embedding as embedding_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("engine ran despite disk memo entry")

        monkeypatch.setattr(embedding_mod, "run_kernel", boom)
        fresh = KernelMemo(capacity=4, disk_dir=tmp_path)  # new "process"
        warm = self._run_once(workload, fresh)
        assert fresh.disk_hits == 1
        assert warm.profile == cold.profile


def _dummy_stats():
    from repro.gpusim.engine import RawKernelStats

    return RawKernelStats(
        name="dummy", makespan_cycles=100.0, n_warps=4, warps_per_sm=8,
        n_smsp=8, issued_insts=40, alu_insts=30, ld_global_insts=5,
        ld_local_insts=1, ld_shared_insts=1, st_insts=2, prefetch_insts=1,
        warp_resident_cycles=400.0, stall_long_scoreboard=10.0,
        stall_short_scoreboard=1.0, stall_not_selected=2.0,
    )


def _dummy_hier():
    return HierarchyStats(
        l1_hit_sectors=10, l1_miss_sectors=5, l2_hit_sectors=4,
        l2_miss_sectors=1, l2_pin_hit_sectors=0, dram_read_bytes=1280,
        dram_write_bytes=128, tlb_hits=9, tlb_misses=1,
        local_read_sectors=2, local_write_sectors=2, global_write_sectors=4,
    )
