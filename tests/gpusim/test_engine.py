"""The event-driven engine: hand-crafted warp programs with known timing."""

import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.gpusim.engine import run_kernel
from repro.gpusim.hierarchy import MemoryHierarchy
from repro.gpusim.isa import (
    alu,
    ld_global,
    ld_shared,
    prefetch_l1,
    prefetch_l2,
    st_global,
    st_shared,
)

GPU = A100_SXM4_80GB.scaled_slice(1)
TABLE = 1 << 35


def run(programs, warps_per_sm=8, set_aside=0):
    hierarchy = MemoryHierarchy(GPU, l2_set_aside_bytes=set_aside)
    stats = run_kernel(
        GPU, hierarchy, programs,
        warps_per_sm=warps_per_sm, warps_per_block=1,
    )
    return stats, hierarchy


def program(*ops):
    def gen():
        yield from ops
    return gen


class TestAluTiming:
    def test_single_alu_burst(self):
        stats, _ = run([program(alu(10))])
        assert stats.makespan_cycles == pytest.approx(10.0)
        assert stats.issued_insts == 10
        assert stats.alu_insts == 10

    def test_sequential_bursts_accumulate(self):
        stats, _ = run([program(alu(5), alu(5))])
        assert stats.makespan_cycles == pytest.approx(10.0)

    def test_two_warps_same_smsp_serialize_issue(self):
        # warps_per_block=1, two blocks land on SMSP 0 and SMSP 1, so use
        # 5 warps to force a same-SMSP pair on a 4-SMSP SM
        stats, _ = run([program(alu(100)) for _ in range(5)])
        # warps 0 and 4 share SMSP 0: its issue port serializes them
        assert stats.makespan_cycles == pytest.approx(200.0)
        assert stats.stall_not_selected > 0


class TestLoadsAndScoreboard:
    def test_independent_load_does_not_stall(self):
        stats, _ = run([program(ld_global(TABLE, 4, 0), alu(3))])
        # load issues at 0, ALU runs immediately after issue
        assert stats.makespan_cycles == pytest.approx(4.0)
        assert stats.stall_long_scoreboard == 0.0

    def test_dependent_alu_waits_for_load(self):
        stats, _ = run([program(ld_global(TABLE, 4, 0), alu(3, dep=0))])
        # cold table load: DRAM + page walk, then the ALU burst
        expected = GPU.lat_hbm + GPU.tlb_miss_penalty + 3
        assert stats.makespan_cycles == pytest.approx(expected, abs=2)
        assert stats.stall_long_scoreboard > 0

    def test_scoreboard_allows_loads_in_flight(self):
        ops = [ld_global(TABLE + i * 128, 4, i) for i in range(4)]
        ops.append(alu(1, dep=3))
        stats, hierarchy = run([program(*ops)])
        # all four loads overlap: far less than 4 serial DRAM latencies
        assert stats.makespan_cycles < 2 * (
            GPU.lat_hbm + GPU.tlb_miss_penalty
        )
        assert hierarchy.hbm.reads == 4

    def test_warp_hides_latency_of_other_warp(self):
        loader = program(ld_global(TABLE, 4, 0), alu(1, dep=0))
        worker = program(alu(400))
        stats, _ = run([loader, worker, worker, worker, worker])
        solo, _ = run([loader])
        # adding computation on other SMSPs doesn't stretch the makespan
        assert stats.makespan_cycles < solo.makespan_cycles + 450

    def test_shared_memory_dep_counts_short_stall(self):
        stats, _ = run([program(ld_shared(0), alu(1, dep=0))])
        assert stats.stall_short_scoreboard > 0
        assert stats.stall_long_scoreboard == 0
        assert stats.makespan_cycles == pytest.approx(
            GPU.lat_shared + 1, abs=1
        )

    def test_dep_on_unknown_tag_is_noop(self):
        stats, _ = run([program(alu(2, dep=42))])
        assert stats.makespan_cycles == pytest.approx(2.0)


class TestStoresAndPrefetch:
    def test_stores_issue_one_cycle(self):
        stats, _ = run([program(st_global(TABLE, 4), st_shared())])
        assert stats.makespan_cycles == pytest.approx(2.0)
        assert stats.st_insts == 2

    def test_prefetch_l1_warms_cache(self):
        stats, hierarchy = run([program(
            prefetch_l1(TABLE, 4),
            alu(2000),  # wait out the fill
            ld_global(TABLE, 4, 0),
            alu(1, dep=0),
        )])
        # the demand load hits L1: total far below two DRAM trips
        assert stats.makespan_cycles < 2004 + GPU.lat_l1 + 5
        assert stats.prefetch_insts == 1

    def test_prefetch_l2_pins(self):
        _, hierarchy = run(
            [program(prefetch_l2(TABLE, 4))],
            set_aside=GPU.l2_set_aside_bytes,
        )
        assert (TABLE >> 7) in hierarchy.l2.pinned


class TestBlockScheduling:
    def test_waves_when_blocks_exceed_slots(self):
        # 4 warps on 1 SM with 1 resident warp -> 4 sequential waves...
        # but each block goes to a different SMSP only when resident, so
        # with warps_per_sm=1 they run one after another
        stats, _ = run([program(alu(10)) for _ in range(4)],
                       warps_per_sm=1)
        assert stats.makespan_cycles == pytest.approx(40.0)

    def test_all_warps_run(self):
        stats, _ = run([program(alu(1)) for _ in range(13)],
                       warps_per_sm=4)
        assert stats.n_warps == 13
        assert stats.issued_insts == 13

    def test_empty_program_list_rejected(self):
        with pytest.raises(ValueError):
            run([])

    def test_zero_occupancy_rejected(self):
        with pytest.raises(ValueError):
            run([program(alu(1))], warps_per_sm=0)

    def test_empty_warp_program_retires_cleanly(self):
        stats, _ = run([program(), program(alu(5))])
        assert stats.makespan_cycles == pytest.approx(5.0)


class TestAccounting:
    def test_instruction_counters(self):
        stats, _ = run([program(
            ld_global(TABLE, 4, 0),
            ld_shared(1),
            st_global(TABLE, 4),
            alu(7),
            prefetch_l1(TABLE + 128, 4),
        )])
        assert stats.ld_global_insts == 1
        assert stats.ld_shared_insts == 1
        assert stats.st_insts == 1
        assert stats.alu_insts == 7
        assert stats.prefetch_insts == 1
        assert stats.issued_insts == 11
        assert stats.load_insts == 1  # global + local only

    def test_warp_resident_cycles(self):
        stats, _ = run([program(alu(10))])
        assert stats.warp_resident_cycles == pytest.approx(10.0)

    def test_determinism(self):
        def build():
            return [
                program(
                    ld_global(TABLE + 128 * i, 4, 0),
                    alu(3, dep=0),
                    ld_global(TABLE + 64 * i, 2, 1),
                    alu(2, dep=1),
                )
                for i in range(16)
            ]
        a, _ = run(build())
        b, _ = run(build())
        assert a.makespan_cycles == b.makespan_cycles
        assert a.stall_long_scoreboard == b.stall_long_scoreboard
        assert a.issued_insts == b.issued_insts
