"""Differential fuzzing: compiled fast path == reference engine.

``tests/gpusim/test_trace_compile.py`` pins the two executors to
identical statistics on a curated scheme lineup; this suite widens the
net with *randomized* kernel configurations — scheme knobs
(prefetch kind/distance, register caps, pinning), dataset hotness,
and workload shape (batch, pooling, table size, trace seed) are all
drawn from seeded RNG streams — and asserts, case by case, that the
compiled executor's ``RawKernelStats`` and the full memory-hierarchy
counter state are field-identical to the generator-driven reference.

The first :data:`SMOKE_CASES` draws always run (they fold into the
tier-1 suite and cover every prefetch station); the remaining draws up
to :data:`TOTAL_CASES` are the extended fuzz set, skipped unless
``REPRO_FUZZ_FULL=1`` (CI runs them as a dedicated step).  Draws are
indexed by case number, so case ``k`` is the same kernel configuration
forever — a failure reproduces with ``-k case47``.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.config.scale import SimScale
from repro.core.embedding import kernel_workload
from repro.core.schemes import Scheme
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.gpusim.engine import run_kernel
from repro.gpusim.hierarchy import MemoryHierarchy
from repro.gpusim.profiler import HierarchyStats
from repro.kernels import calibration as cal
from repro.kernels.address_map import STREAMING_RANGE, AddressMap
from repro.kernels.pinning import pin_hot_rows, profile_hot_rows
from repro.kernels.registry import build_programs, build_trace

SMOKE_CASES = 12
TOTAL_CASES = 50
_RUN_FULL = os.environ.get("REPRO_FUZZ_FULL", "") == "1"

#: cycled through the first draws so the always-on smoke subset covers
#: every prefetch station, both register-cap styles, and pinning.
_COVERAGE_SCHEMES = (
    dict(),
    dict(optmt=True),
    dict(prefetch="register", optmt=True),
    dict(prefetch="shared", optmt=True),
    dict(prefetch="local", optmt=True),
    dict(prefetch="l1d", optmt=True),
    dict(l2_pinning=True, optmt=True),
    dict(prefetch="register", l2_pinning=True, optmt=True),
    dict(maxrregcount=40),
    dict(prefetch="register", maxrregcount=32),
    dict(prefetch="shared", l2_pinning=True),
    dict(prefetch="local"),
)


def draw_case(case: int) -> dict:
    """Deterministically draw one kernel configuration for case ``case``."""
    rng = np.random.default_rng(987_001 + case)
    if case < len(_COVERAGE_SCHEMES):
        scheme_kwargs = dict(_COVERAGE_SCHEMES[case])
    else:
        prefetch = rng.choice(
            [None, "register", "shared", "local", "l1d"]
        )
        scheme_kwargs = {
            "prefetch": None if prefetch is None else str(prefetch),
            "l2_pinning": bool(rng.random() < 0.3),
        }
        cap_style = rng.integers(0, 3)  # none / optmt / explicit cap
        if cap_style == 1:
            scheme_kwargs["optmt"] = True
        elif cap_style == 2:
            scheme_kwargs["maxrregcount"] = int(rng.integers(24, 96))
    if scheme_kwargs.get("prefetch") and rng.random() < 0.5:
        scheme_kwargs["prefetch_distance"] = int(rng.integers(1, 9))
    return {
        "scheme": Scheme(**scheme_kwargs),
        "gpu": A100_SXM4_80GB if rng.random() < 0.7 else H100_NVL,
        "dataset": str(rng.choice(sorted(HOTNESS_PRESETS))),
        "batch_size": int(rng.choice([4, 8, 12, 16])),
        "pooling_factor": int(rng.integers(4, 17)),
        "table_rows": int(rng.choice([1024, 4096, 16384])),
        "trace_seed": int(rng.integers(0, 10_000)),
    }


def _case_params():
    for case in range(TOTAL_CASES):
        marks = []
        if case >= SMOKE_CASES:
            marks.append(pytest.mark.fuzz_extended)
            if not _RUN_FULL:
                marks.append(pytest.mark.skip(
                    reason="extended fuzz case; set REPRO_FUZZ_FULL=1"
                ))
        yield pytest.param(case, id=f"case{case}", marks=marks)


@pytest.mark.fuzz
@pytest.mark.parametrize("case", _case_params())
def test_compiled_engine_matches_reference(case):
    cfg = draw_case(case)
    scheme, gpu = cfg["scheme"], cfg["gpu"]
    workload = kernel_workload(
        gpu,
        scale=SimScale(f"fuzz{case}", 2),
        batch_size=cfg["batch_size"],
        pooling_factor=cfg["pooling_factor"],
        table_rows=cfg["table_rows"],
    )
    spec = HOTNESS_PRESETS[cfg["dataset"]]
    trace = generate_trace(
        spec,
        batch_size=workload.batch_size,
        pooling_factor=workload.pooling_factor,
        table_rows=workload.table_rows,
        seed=cfg["trace_seed"],
    )
    build = scheme.compile(workload.gpu)
    amap = AddressMap(row_bytes=workload.row_bytes)
    set_aside = workload.gpu.l2_set_aside_bytes if scheme.l2_pinning else 0
    hot_rows = None
    if scheme.l2_pinning:
        hot_rows = profile_hot_rows(
            spec,
            batch_size=workload.batch_size,
            pooling_factor=workload.pooling_factor,
            table_rows=workload.table_rows,
            k=64,
            seed=cfg["trace_seed"],
        )

    results = []
    for reference in (True, False):
        hierarchy = MemoryHierarchy(
            workload.gpu,
            l2_set_aside_bytes=set_aside,
            streaming_range=STREAMING_RANGE,
        )
        local_lines = build.spilled_regs + (
            build.prefetch_distance if build.prefetch == "local" else 0
        )
        hierarchy.configure_local_memory(
            local_lines * 128 * build.warps_per_sm,
            int(workload.full_gpu.l1_bytes * cal.LOCAL_L1_BUDGET_FRACTION),
        )
        if hot_rows is not None:
            pin_hot_rows(hierarchy, hot_rows, amap)
        programs = (
            build_programs(trace, build, amap) if reference
            else build_trace(trace, build, amap)
        )
        stats = run_kernel(
            workload.gpu, hierarchy, programs,
            warps_per_sm=build.warps_per_sm,
            warps_per_block=build.warps_per_block,
            reference=reference,
            name=f"fuzz{case}",
        )
        results.append((
            dataclasses.asdict(stats),
            dataclasses.asdict(HierarchyStats.capture(hierarchy)),
        ))
    assert results[0] == results[1], (
        f"engines diverged on case {case}: {cfg}"
    )
