"""Per-SM uTLB: LRU, page walks, walk merging."""

import pytest

from repro.gpusim.hierarchy import Tlb

PAGE = 4096


def make_tlb(capacity=2, penalty=400):
    return Tlb(capacity, PAGE, penalty)


class TestBasics:
    def test_first_touch_pays_walk(self):
        tlb = make_tlb()
        assert tlb.lookup(0, now=0.0) == 400.0
        assert tlb.misses == 1

    def test_hit_after_walk_completes(self):
        tlb = make_tlb()
        tlb.lookup(0, 0.0)
        assert tlb.lookup(0, now=500.0) == 0.0
        assert tlb.hits == 1

    def test_same_page_different_addresses(self):
        tlb = make_tlb()
        tlb.lookup(0, 0.0)
        assert tlb.lookup(PAGE - 1, now=1000.0) == 0.0

    def test_lru_eviction(self):
        tlb = make_tlb(capacity=2)
        tlb.lookup(0 * PAGE, 0.0)
        tlb.lookup(1 * PAGE, 0.0)
        tlb.lookup(0 * PAGE, 1000.0)     # refresh page 0
        tlb.lookup(2 * PAGE, 1000.0)     # evicts page 1
        assert tlb.lookup(0 * PAGE, 2000.0) == 0.0
        assert tlb.lookup(1 * PAGE, 3000.0) == 400.0  # was evicted


class TestWalkMerging:
    def test_probe_during_walk_joins_it(self):
        tlb = make_tlb()
        tlb.lookup(0, now=0.0)           # walk completes at 400
        wait = tlb.lookup(0, now=100.0)  # joins in-flight walk
        assert wait == pytest.approx(300.0)
        assert tlb.hits == 1  # counted as a (delayed) hit, not a new walk

    def test_walk_state_cleared_after_completion(self):
        tlb = make_tlb()
        tlb.lookup(0, 0.0)
        tlb.lookup(0, 500.0)
        assert 0 not in tlb.walks

    def test_evicted_page_drops_walk(self):
        tlb = make_tlb(capacity=1)
        tlb.lookup(0 * PAGE, 0.0)
        tlb.lookup(1 * PAGE, 0.0)  # evicts page 0 and its walk record
        assert tlb.walks.keys() == {1}
