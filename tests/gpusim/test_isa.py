"""Micro-op encoding helpers."""

from repro.gpusim import isa


class TestEncoding:
    def test_all_ops_are_5_tuples(self):
        ops = [
            isa.alu(3),
            isa.alu(3, dep=1),
            isa.ld_global(0x100, 4, 0),
            isa.ld_local(0x100, 4, 0, dep=2),
            isa.ld_shared(1),
            isa.st_global(0x100, 4),
            isa.st_shared(),
            isa.st_local(0x100, 4),
            isa.prefetch_l1(0x100, 4),
            isa.prefetch_l2(0x100, 4),
        ]
        for op in ops:
            assert len(op) == 5
            assert op[0] in isa.OP_NAMES

    def test_kind_constants_distinct(self):
        kinds = [
            isa.OP_ALU, isa.OP_LD_GLOBAL, isa.OP_LD_LOCAL,
            isa.OP_LD_SHARED, isa.OP_ST_GLOBAL, isa.OP_ST_SHARED,
            isa.OP_ST_LOCAL, isa.OP_PREFETCH_L1, isa.OP_PREFETCH_L2,
        ]
        assert len(set(kinds)) == len(kinds)

    def test_scoreboard_kinds(self):
        assert isa.OP_LD_GLOBAL in isa.SCOREBOARD_KINDS
        assert isa.OP_LD_SHARED in isa.SCOREBOARD_KINDS
        assert isa.OP_ST_GLOBAL not in isa.SCOREBOARD_KINDS

    def test_load_kinds_reach_memory(self):
        assert isa.LOAD_KINDS == {isa.OP_LD_GLOBAL, isa.OP_LD_LOCAL}

    def test_dep_encoding(self):
        op = isa.alu(5, dep=7)
        assert op[1] == 5 and op[4] == 7
        assert isa.alu(5)[4] is None

    def test_tags_preserved(self):
        assert isa.ld_global(0x40, 2, 9)[3] == 9
        assert isa.ld_shared(4, dep=2) == (isa.OP_LD_SHARED, 0, 0, 4, 2)
