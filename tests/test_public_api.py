"""The documented public API surface stays importable and consistent."""

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__ == "1.0.0"


def test_key_entry_points_callable():
    assert callable(repro.run_table_kernel)
    assert callable(repro.run_inference)
    assert callable(repro.autotune)
    assert callable(repro.generate_trace)
    assert callable(repro.kernel_workload)


def test_presets_accessible():
    assert set(repro.HOTNESS_PRESETS) == {
        "one_item", "high_hot", "med_hot", "low_hot", "random",
    }
    assert sum(repro.TABLE_MIXES["Mix1"].values()) == 250


def test_gpu_presets():
    assert repro.A100_SXM4_80GB.num_sms == 108
    assert repro.H100_NVL.num_sms == 132
