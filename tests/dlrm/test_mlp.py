"""Functional MLP."""

import numpy as np
import pytest

from repro.dlrm.mlp import MLP, relu, sigmoid


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(relu(x), [0.0, 0.0, 2.0])

    def test_sigmoid_range_and_midpoint(self):
        x = np.array([-100.0, 0.0, 100.0])
        out = sigmoid(x)
        assert 0.0 <= out.min() and out.max() <= 1.0
        assert out[1] == pytest.approx(0.5)

    def test_sigmoid_no_overflow(self):
        assert np.isfinite(sigmoid(np.array([-1e9, 1e9]))).all()


class TestMlp:
    def test_output_shape(self):
        mlp = MLP((8, 16, 4))
        out = mlp(np.zeros((5, 8), dtype=np.float32))
        assert out.shape == (5, 4)

    def test_hidden_relu_makes_outputs_vary(self):
        mlp = MLP((8, 16, 4), seed=1)
        rng = np.random.default_rng(0)
        out = mlp(rng.normal(size=(5, 8)).astype(np.float32))
        assert np.std(out) > 0

    def test_final_sigmoid_bounds(self):
        mlp = MLP((8, 4, 1), final_activation="sigmoid")
        rng = np.random.default_rng(0)
        out = mlp(10 * rng.normal(size=(20, 8)).astype(np.float32))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_final_relu(self):
        mlp = MLP((8, 4, 2), final_activation="relu")
        rng = np.random.default_rng(0)
        out = mlp(rng.normal(size=(20, 8)).astype(np.float32))
        assert out.min() >= 0.0

    def test_seed_determinism(self):
        a = MLP((8, 4), seed=3)
        b = MLP((8, 4), seed=3)
        c = MLP((8, 4), seed=4)
        np.testing.assert_array_equal(a.weights[0], b.weights[0])
        assert not np.array_equal(a.weights[0], c.weights[0])

    def test_parameter_count(self):
        mlp = MLP((8, 4, 2))
        assert mlp.parameter_count() == (8 * 4 + 4) + (4 * 2 + 2)

    def test_n_layers(self):
        assert MLP((1024, 512, 128, 128)).n_layers == 3


class TestValidation:
    def test_needs_two_dims(self):
        with pytest.raises(ValueError):
            MLP((8,))

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP((8, 4), final_activation="tanh")

    def test_input_dim_checked(self):
        mlp = MLP((8, 4))
        with pytest.raises(ValueError):
            mlp(np.zeros((2, 9), dtype=np.float32))
