"""Roofline timing of the non-embedding stages."""

import pytest

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.config.model import PAPER_MODEL
from repro.dlrm.timing import (
    KERNEL_LAUNCH_US,
    gemm_roofline_us,
    input_transfer_us,
    interaction_us,
    mlp_us,
    non_embedding_time,
)


class TestGemmRoofline:
    def test_compute_bound_regime(self):
        # huge batch, tiny weights: flops dominate
        big = gemm_roofline_us(A100_SXM4_80GB, 10**6, 1024, 1024)
        flops_s = 2 * 10**6 * 1024 * 1024 / (19.5e12)
        assert big == pytest.approx(flops_s * 1e6, rel=0.2)

    def test_memory_bound_regime(self):
        # batch of 1: weight traffic dominates
        t = gemm_roofline_us(A100_SXM4_80GB, 1, 4096, 4096)
        bytes_s = 4 * 4096 * 4096 / (1940e9)
        assert t == pytest.approx(bytes_s * 1e6, rel=0.2)

    def test_h100_is_faster(self):
        a = gemm_roofline_us(A100_SXM4_80GB, 2048, 1024, 512)
        h = gemm_roofline_us(H100_NVL, 2048, 1024, 512)
        assert h < a


class TestStageTimes:
    def test_mlp_sums_layers(self):
        dims = (1024, 512, 128)
        total = mlp_us(A100_SXM4_80GB, 2048, dims)
        parts = (
            gemm_roofline_us(A100_SXM4_80GB, 2048, 1024, 512)
            + gemm_roofline_us(A100_SXM4_80GB, 2048, 512, 128)
        )
        assert total == pytest.approx(parts)

    def test_interaction_positive_and_scales_with_batch(self):
        small = interaction_us(A100_SXM4_80GB, PAPER_MODEL, 256)
        large = interaction_us(A100_SXM4_80GB, PAPER_MODEL, 2048)
        assert 0 < small < large

    def test_input_transfer_dominated_by_indices(self):
        total = input_transfer_us(A100_SXM4_80GB, PAPER_MODEL, 2048)
        idx_only = (
            8 * 2048 * 150 * 250 / (25e9) * 1e6
        )
        assert total == pytest.approx(idx_only, rel=0.05)


class TestNonEmbeddingTotal:
    def test_components_positive(self):
        timing = non_embedding_time(A100_SXM4_80GB, PAPER_MODEL)
        assert timing.input_transfer_us > 0
        assert timing.bottom_mlp_us > 0
        assert timing.interaction_us > 0
        assert timing.top_mlp_us > 0
        assert timing.launch_us == KERNEL_LAUNCH_US * 7

    def test_total_is_sum(self):
        timing = non_embedding_time(A100_SXM4_80GB, PAPER_MODEL)
        assert timing.total_us == pytest.approx(
            timing.input_transfer_us + timing.bottom_mlp_us
            + timing.interaction_us + timing.top_mlp_us + timing.launch_us
        )

    def test_paper_model_non_emb_in_tens_of_ms(self):
        # PCIe transfer of 250 tables' indices dominates: ~25 ms at Gen4
        timing = non_embedding_time(A100_SXM4_80GB, PAPER_MODEL)
        assert 15_000 < timing.total_us < 50_000

    def test_batch_override(self):
        half = non_embedding_time(
            A100_SXM4_80GB, PAPER_MODEL, batch_size=1024
        )
        full = non_embedding_time(A100_SXM4_80GB, PAPER_MODEL)
        assert half.input_transfer_us < full.input_transfer_us
