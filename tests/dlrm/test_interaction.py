"""Feature interaction stage."""

import numpy as np
import pytest

from repro.dlrm.interaction import dot_interaction, interaction_output_dim


class TestOutputDim:
    def test_formula(self):
        # n = tables + 1 vectors -> dim + C(n, 2)
        assert interaction_output_dim(2, 4) == 4 + 3
        assert interaction_output_dim(250, 128) == 128 + 251 * 250 // 2


class TestDotInteraction:
    def test_shape(self):
        bottom = np.ones((3, 4), dtype=np.float32)
        embs = [np.ones((3, 4), dtype=np.float32) for _ in range(2)]
        out = dot_interaction(bottom, embs)
        assert out.shape == (3, interaction_output_dim(2, 4))

    def test_passthrough_of_bottom_features(self):
        rng = np.random.default_rng(0)
        bottom = rng.normal(size=(2, 4)).astype(np.float32)
        embs = [rng.normal(size=(2, 4)).astype(np.float32)]
        out = dot_interaction(bottom, embs)
        np.testing.assert_array_equal(out[:, :4], bottom)

    def test_dot_values_match_manual(self):
        bottom = np.array([[1.0, 0.0]], dtype=np.float32)
        emb1 = np.array([[0.0, 2.0]], dtype=np.float32)
        emb2 = np.array([[3.0, 1.0]], dtype=np.float32)
        out = dot_interaction(bottom, [emb1, emb2])
        # pairs in (i, j) upper-triangle order:
        # (bottom, emb1)=0, (bottom, emb2)=3, (emb1, emb2)=2
        np.testing.assert_allclose(out[0, 2:], [0.0, 3.0, 2.0])

    def test_shape_mismatch_rejected(self):
        bottom = np.ones((2, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            dot_interaction(bottom, [np.ones((2, 5), dtype=np.float32)])
        with pytest.raises(ValueError):
            dot_interaction(bottom, [np.ones((3, 4), dtype=np.float32)])

    def test_needs_embeddings(self):
        with pytest.raises(ValueError):
            dot_interaction(np.ones((2, 4)), [])
