"""Functional embedding bag vs the loop reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dlrm.embedding import embedding_bag, embedding_bag_reference


def table(rows=20, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(rows, dim)).astype(np.float32)


class TestSumMode:
    def test_matches_reference(self):
        t = table()
        indices = np.array([0, 1, 2, 3, 4, 5])
        offsets = np.array([0, 2, 6])
        out = embedding_bag(t, indices, offsets)
        ref = embedding_bag_reference(t, indices, offsets)
        np.testing.assert_allclose(out, ref, rtol=1e-6)

    def test_single_row_bag(self):
        t = table()
        out = embedding_bag(t, np.array([7]), np.array([0, 1]))
        np.testing.assert_allclose(out[0], t[7])

    def test_repeated_rows_accumulate(self):
        t = table()
        out = embedding_bag(t, np.array([3, 3, 3]), np.array([0, 3]))
        np.testing.assert_allclose(out[0], 3 * t[3], rtol=1e-6)

    def test_empty_bag_is_zero(self):
        t = table()
        out = embedding_bag(t, np.array([1]), np.array([0, 0, 1]))
        assert np.all(out[0] == 0)
        np.testing.assert_allclose(out[1], t[1])

    def test_no_indices_at_all(self):
        t = table()
        out = embedding_bag(
            t, np.array([], dtype=np.int64), np.array([0, 0, 0])
        )
        assert out.shape == (2, 4)
        assert np.all(out == 0)


class TestMeanMode:
    def test_mean_divides_by_count(self):
        t = table()
        out = embedding_bag(t, np.array([0, 1]), np.array([0, 2]),
                            mode="mean")
        np.testing.assert_allclose(out[0], (t[0] + t[1]) / 2, rtol=1e-6)

    def test_mean_empty_bag_stays_zero(self):
        t = table()
        out = embedding_bag(t, np.array([1]), np.array([0, 0, 1]),
                            mode="mean")
        assert np.all(out[0] == 0)


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError):
            embedding_bag(table(), np.array([0]), np.array([0, 1]),
                          mode="max")

    def test_bad_offsets(self):
        with pytest.raises(ValueError):
            embedding_bag(table(), np.array([0]), np.array([1, 1]))
        with pytest.raises(ValueError):
            embedding_bag(table(), np.array([0, 1]), np.array([0, 1]))
        with pytest.raises(ValueError):
            embedding_bag(table(), np.array([0, 1]), np.array([0, 2, 1, 2]))

    def test_table_must_be_2d(self):
        with pytest.raises(ValueError):
            embedding_bag(np.zeros(5), np.array([0]), np.array([0, 1]))


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    rows=st.integers(2, 30),
    dim=st.integers(1, 8),
    batch=st.integers(1, 6),
)
def test_vectorized_equals_reference_property(data, rows, dim, batch):
    rng = np.random.default_rng(0)
    t = rng.normal(size=(rows, dim)).astype(np.float32)
    pooling = data.draw(
        st.lists(st.integers(0, 5), min_size=batch, max_size=batch)
    )
    offsets = np.concatenate([[0], np.cumsum(pooling)]).astype(np.int64)
    indices = data.draw(
        st.lists(
            st.integers(0, rows - 1),
            min_size=int(offsets[-1]), max_size=int(offsets[-1]),
        )
    )
    indices = np.asarray(indices, dtype=np.int64)
    for mode in ("sum", "mean"):
        out = embedding_bag(t, indices, offsets, mode=mode)
        ref = embedding_bag_reference(t, indices, offsets, mode=mode)
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-6)
