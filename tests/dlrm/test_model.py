"""Functional DLRM end-to-end."""

import numpy as np
import pytest

from repro.config.model import DLRMConfig, EmbeddingTableConfig
from repro.dlrm.embedding import embedding_bag
from repro.dlrm.inference import make_batch, serve_topk
from repro.dlrm.model import DLRM
from repro.datasets.spec import HOTNESS_PRESETS


@pytest.fixture(scope="module")
def model(small_model):
    return DLRM(small_model, seed=0)


@pytest.fixture(scope="module")
def batch(small_model):
    return make_batch(small_model, HOTNESS_PRESETS["high_hot"], seed=1)


class TestForward:
    def test_ctr_shape_and_range(self, model, batch):
        ctr = model(batch)
        assert ctr.shape == (batch.batch_size,)
        assert ctr.min() >= 0.0 and ctr.max() <= 1.0

    def test_deterministic(self, model, batch):
        np.testing.assert_array_equal(model(batch), model(batch))

    def test_embedding_outputs_match_operator(self, model, batch):
        outs = model.embedding_outputs(batch)
        t0 = batch.tables[0]
        expected = embedding_bag(model.tables[0], t0.indices, t0.offsets)
        np.testing.assert_allclose(outs[0], expected, rtol=1e-6)

    def test_wrong_table_count_rejected(self, model, batch):
        from repro.dlrm.model import Batch

        bad = Batch(dense=batch.dense, tables=batch.tables[:-1])
        with pytest.raises(ValueError):
            model(bad)


class TestTopK:
    def test_topk_is_sorted_by_ctr(self, model, batch):
        ctr = model(batch)
        top = model.predict_topk(batch, 5)
        assert len(top) == 5
        scores = ctr[top]
        assert list(scores) == sorted(scores, reverse=True)
        assert scores[0] == ctr.max()

    def test_topk_caps_at_batch(self, model, batch):
        top = model.predict_topk(batch, 10_000)
        assert len(top) == batch.batch_size

    def test_serve_topk(self, model, batch):
        top, scores = serve_topk(model, batch, 3)
        assert len(top) == len(scores) == 3


class TestGuards:
    def test_paper_scale_model_rejected(self):
        with pytest.raises(ValueError):
            DLRM(DLRMConfig())  # 16B embedding params: must not build

    def test_small_model_parameters(self, model, small_model):
        assert len(model.tables) == small_model.num_tables
        assert model.tables[0].shape == (512, 32)


class TestMakeBatch:
    def test_batch_structure(self, batch, small_model):
        assert batch.dense.shape == (
            small_model.batch_size, small_model.dense_features
        )
        assert len(batch.tables) == small_model.num_tables
        for trace in batch.tables:
            assert trace.batch_size == small_model.batch_size

    def test_tables_have_independent_traces(self, batch):
        assert not np.array_equal(
            batch.tables[0].indices, batch.tables[1].indices
        )
