"""Trace generation: uniqueness control, coverage shape, stable layout."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.analysis import coverage_at, top_hot_rows
from repro.datasets.generator import (
    fit_zipf_exponent,
    generate_tables,
    generate_trace,
)
from repro.datasets.spec import HOTNESS_PRESETS, DatasetSpec

BATCH, POOL, ROWS = 64, 50, 50_000


def gen(name, seed=0, batch=BATCH, pool=POOL, rows=ROWS):
    return generate_trace(
        HOTNESS_PRESETS[name],
        batch_size=batch, pooling_factor=pool, table_rows=rows, seed=seed,
    )


class TestUniqueAccessControl:
    @pytest.mark.parametrize("name,target", [
        ("high_hot", 4.05), ("med_hot", 20.50), ("low_hot", 46.21),
    ])
    def test_zipf_uniqueness_is_exact(self, name, target):
        trace = gen(name)
        assert trace.unique_access_pct == pytest.approx(target, abs=0.2)

    def test_one_item_touches_one_row(self):
        assert gen("one_item").n_unique == 1

    def test_random_uniqueness_near_one_minus_1_over_e(self):
        trace = gen("random", batch=256)
        assert trace.unique_access_pct == pytest.approx(63.21, abs=2.5)

    def test_uniqueness_capped_by_table(self):
        trace = generate_trace(
            HOTNESS_PRESETS["low_hot"],
            batch_size=64, pooling_factor=50, table_rows=100, seed=0,
        )
        assert trace.n_unique <= 100


class TestCoverageShape:
    def test_high_hot_top10_covers_about_68pct(self):
        assert coverage_at(gen("high_hot"), 10.0) == pytest.approx(
            68.0, abs=5.0
        )

    def test_hotness_ordering_of_concentration(self):
        cov = {n: coverage_at(gen(n), 10.0)
               for n in ("high_hot", "med_hot", "low_hot")}
        assert cov["high_hot"] > cov["med_hot"] > cov["low_hot"]


class TestStableLayout:
    """Popularity belongs to the catalogue, not to one batch."""

    @pytest.mark.parametrize("name", ["high_hot", "med_hot"])
    def test_hot_rows_stable_across_seeds(self, name):
        a = set(top_hot_rows(gen(name, seed=1), 50).tolist())
        b = set(top_hot_rows(gen(name, seed=2), 50).tolist())
        overlap = len(a & b) / 50
        assert overlap > 0.8

    def test_one_item_row_stable_across_seeds(self):
        assert gen("one_item", seed=1).indices[0] == \
            gen("one_item", seed=2).indices[0]

    def test_sequences_differ_across_seeds(self):
        assert not np.array_equal(
            gen("high_hot", seed=1).indices, gen("high_hot", seed=2).indices
        )

    def test_same_seed_is_deterministic(self):
        assert np.array_equal(
            gen("random", seed=7).indices, gen("random", seed=7).indices
        )


class TestZipfFit:
    def test_fit_hits_target_coverage(self):
        s = fit_zipf_exponent(1000, 0.1, 0.68)
        ranks = np.arange(1, 1001.0)
        w = ranks ** -s
        assert w[:100].sum() / w.sum() == pytest.approx(0.68, abs=0.01)

    def test_fit_monotone_in_target(self):
        assert fit_zipf_exponent(1000, 0.1, 0.9) > \
            fit_zipf_exponent(1000, 0.1, 0.3)

    def test_degenerate_single_item(self):
        assert fit_zipf_exponent(1, 0.1, 0.5) == 0.0

    def test_saturates_at_max_exponent(self):
        assert fit_zipf_exponent(10, 0.1, 0.999999) == 8.0


class TestStructure:
    def test_offsets_are_fixed_pooling(self):
        trace = gen("med_hot")
        assert np.all(trace.pooling_factors() == POOL)

    def test_errors_on_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_trace(HOTNESS_PRESETS["random"], batch_size=0,
                           pooling_factor=1, table_rows=10)
        with pytest.raises(ValueError):
            generate_trace(HOTNESS_PRESETS["random"], batch_size=1,
                           pooling_factor=0, table_rows=10)

    def test_generate_tables_independent_sequences(self):
        tables = generate_tables(
            HOTNESS_PRESETS["high_hot"], num_tables=3,
            batch_size=16, pooling_factor=10, table_rows=1000,
        )
        assert len(tables) == 3
        assert not np.array_equal(tables[0].indices, tables[1].indices)

    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(1, 64),
        pool=st.integers(1, 40),
        rows=st.integers(64, 5000),
        name=st.sampled_from(list(HOTNESS_PRESETS)),
    )
    def test_any_generated_trace_is_valid(self, batch, pool, rows, name):
        trace = generate_trace(
            HOTNESS_PRESETS[name],
            batch_size=batch, pooling_factor=pool, table_rows=rows, seed=3,
        )
        assert trace.n_accesses == batch * pool
        assert trace.indices.min() >= 0
        assert trace.indices.max() < rows
        assert 0 < trace.unique_access_pct <= 100.0


class TestCustomSpecs:
    def test_custom_zipf_spec(self):
        spec = DatasetSpec("custom", "zipf", 10.0, top10_coverage=0.5)
        trace = generate_trace(
            spec, batch_size=64, pooling_factor=50, table_rows=10_000,
        )
        assert trace.unique_access_pct == pytest.approx(10.0, abs=0.2)
