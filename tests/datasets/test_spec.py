"""Dataset specifications and the Table VII mixes."""

import pytest

from repro.datasets.spec import (
    EVAL_PRESETS,
    HOTNESS_PRESETS,
    TABLE_MIXES,
    DatasetSpec,
)


class TestPresets:
    def test_five_presets_in_hotness_order(self):
        assert list(HOTNESS_PRESETS) == [
            "one_item", "high_hot", "med_hot", "low_hot", "random",
        ]

    def test_unique_access_targets_match_table3(self):
        targets = {
            "one_item": 0.0002, "high_hot": 4.05, "med_hot": 20.50,
            "low_hot": 46.21, "random": 63.21,
        }
        for name, expected in targets.items():
            assert HOTNESS_PRESETS[name].unique_access_pct == expected

    def test_eval_presets_exclude_one_item(self):
        assert "one_item" not in EVAL_PRESETS
        assert len(EVAL_PRESETS) == 4

    def test_coverage_anchor_decreases_with_hotness(self):
        assert (
            HOTNESS_PRESETS["high_hot"].top10_coverage
            > HOTNESS_PRESETS["med_hot"].top10_coverage
            > HOTNESS_PRESETS["low_hot"].top10_coverage
        )


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", "weird", 1.0)

    def test_zipf_needs_coverage(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", "zipf", 10.0, top10_coverage=0.0)

    def test_valid_zipf(self):
        spec = DatasetSpec("x", "zipf", 10.0, top10_coverage=0.5)
        assert spec.top10_coverage == 0.5


class TestMixes:
    def test_table_vii_mixes_sum_to_250(self):
        for name, mix in TABLE_MIXES.items():
            assert sum(mix.values()) == 250, name

    def test_mix1_is_hot_heavy_mix3_cold_heavy(self):
        assert TABLE_MIXES["Mix1"]["high_hot"] == 100
        assert TABLE_MIXES["Mix3"]["random"] == 100
        assert TABLE_MIXES["Mix2"]["med_hot"] == 63
