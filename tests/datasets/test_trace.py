"""EmbeddingTrace container semantics."""

import numpy as np
import pytest

from repro.datasets.trace import EmbeddingTrace


def make(indices, offsets, rows=100):
    return EmbeddingTrace(
        name="t",
        indices=np.asarray(indices, dtype=np.int64),
        offsets=np.asarray(offsets, dtype=np.int64),
        table_rows=rows,
    )


class TestValidation:
    def test_valid_trace(self):
        trace = make([1, 2, 3, 4], [0, 2, 4])
        assert trace.batch_size == 2
        assert trace.n_accesses == 4

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(ValueError):
            make([1, 2], [1, 2])

    def test_offsets_must_end_at_len(self):
        with pytest.raises(ValueError):
            make([1, 2, 3], [0, 2])

    def test_indices_in_range(self):
        with pytest.raises(ValueError):
            make([1, 200], [0, 2], rows=100)
        with pytest.raises(ValueError):
            make([-1, 2], [0, 2])

    def test_needs_one_sample(self):
        with pytest.raises(ValueError):
            make([], [0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            EmbeddingTrace(
                "t", np.zeros((2, 2), dtype=np.int64),
                np.array([0, 4]), 10,
            )


class TestAccessors:
    def test_sample_rows(self):
        trace = make([5, 6, 7, 8, 9], [0, 2, 5])
        assert trace.sample_rows(0).tolist() == [5, 6]
        assert trace.sample_rows(1).tolist() == [7, 8, 9]

    def test_pooling_factors(self):
        trace = make([5, 6, 7], [0, 1, 3])
        assert trace.pooling_factors().tolist() == [1, 2]

    def test_unique_access_pct(self):
        trace = make([1, 1, 1, 2], [0, 4])
        assert trace.unique_access_pct == pytest.approx(50.0)

    def test_empty_bag_allowed(self):
        trace = make([1, 2], [0, 0, 2])
        assert trace.sample_rows(0).size == 0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = make([1, 2, 3, 4], [0, 2, 4])
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = EmbeddingTrace.load(path)
        assert loaded.name == trace.name
        assert loaded.table_rows == trace.table_rows
        assert np.array_equal(loaded.indices, trace.indices)
        assert np.array_equal(loaded.offsets, trace.offsets)
