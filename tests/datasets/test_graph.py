"""Graph gather traces (generalizability substrate)."""

import numpy as np
import pytest

from repro.datasets.analysis import coverage_at
from repro.datasets.graph import barabasi_albert_trace, csr_trace


class TestBarabasiAlbert:
    def test_structure(self):
        trace = barabasi_albert_trace(num_vertices=300, attachment=3)
        assert trace.batch_size == 300
        assert trace.table_rows == 300
        assert trace.n_accesses == len(trace.indices)
        # undirected BA graph: 3 edges per new vertex, counted twice
        assert trace.n_accesses == pytest.approx(2 * 3 * 297, rel=0.02)

    def test_power_law_reuse(self):
        trace = barabasi_albert_trace(num_vertices=500, attachment=4)
        # hubs concentrate accesses: top 10% of vertices cover far more
        # than 10% of gathers (the property pinning exploits)
        assert coverage_at(trace, 10.0) > 25.0

    def test_variable_pooling(self):
        trace = barabasi_albert_trace(num_vertices=200, attachment=2)
        degrees = trace.pooling_factors()
        assert degrees.min() >= 1
        assert degrees.max() > degrees.min()

    def test_batched_layer(self):
        trace = barabasi_albert_trace(
            num_vertices=300, attachment=3, batch_vertices=50
        )
        assert trace.batch_size == 50

    def test_determinism(self):
        a = barabasi_albert_trace(num_vertices=100, attachment=2, seed=1)
        b = barabasi_albert_trace(num_vertices=100, attachment=2, seed=1)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert_trace(num_vertices=3, attachment=3)


class TestCsr:
    def test_wraps_adjacency(self):
        indptr = np.array([0, 2, 3])
        cols = np.array([1, 4, 0])
        trace = csr_trace(indptr, cols, num_rows_in_table=5)
        assert trace.batch_size == 2
        assert trace.sample_rows(0).tolist() == [1, 4]
        assert trace.sample_rows(1).tolist() == [0]


class TestSchemesApplyToGraphs:
    def test_kernel_stack_runs_on_graph_trace(self):
        from repro.config.scale import SimScale
        from repro.core.embedding import kernel_workload, run_table_kernel
        from repro.core.schemes import BASE, OPTMT
        from repro.datasets.spec import DatasetSpec

        trace = barabasi_albert_trace(
            num_vertices=2000, attachment=6, batch_vertices=16
        )
        wl = kernel_workload(
            scale=SimScale("graph", 2),
            batch_size=trace.batch_size,
            table_rows=trace.table_rows,
        )
        spec = DatasetSpec("graph_ba", "uniform", 50.0)
        base = run_table_kernel(wl, spec, BASE, trace=trace)
        opt = run_table_kernel(wl, spec, OPTMT, trace=trace)
        assert base.profile.kernel_time_us > 0
        # the same WLP optimization transfers to the graph gather
        assert opt.profile.kernel_time_us < base.profile.kernel_time_us
