"""Trace analysis: coverage curves and hot-row extraction."""

import numpy as np
import pytest

from repro.datasets.analysis import (
    access_counts,
    coverage_at,
    coverage_curve,
    top_hot_rows,
    unique_access_pct,
    working_set_bytes,
)
from repro.datasets.trace import EmbeddingTrace


def crafted_trace():
    # row 7 appears 5x, row 3 appears 3x, rows 1 and 2 once each
    indices = np.array([7] * 5 + [3] * 3 + [1, 2], dtype=np.int64)
    offsets = np.array([0, 5, 10], dtype=np.int64)
    return EmbeddingTrace("crafted", indices, offsets, table_rows=10)


class TestAccessCounts:
    def test_sorted_by_frequency(self):
        rows, counts = access_counts(crafted_trace())
        assert rows[0] == 7 and counts[0] == 5
        assert rows[1] == 3 and counts[1] == 3
        assert set(rows[2:]) == {1, 2}

    def test_top_hot_rows(self):
        assert top_hot_rows(crafted_trace(), 2).tolist() == [7, 3]

    def test_top_hot_rows_larger_k_than_unique(self):
        assert len(top_hot_rows(crafted_trace(), 100)) == 4


class TestCoverage:
    def test_coverage_curve_monotone_to_100(self):
        pct_unique, pct_access = coverage_curve(crafted_trace(), points=4)
        assert list(pct_unique) == [25.0, 50.0, 75.0, 100.0]
        assert list(pct_access) == sorted(pct_access)
        assert pct_access[-1] == pytest.approx(100.0)

    def test_coverage_at_top_row(self):
        # top 25% of 4 unique rows = row 7 = 5/10 accesses
        assert coverage_at(crafted_trace(), 25.0) == pytest.approx(50.0)

    def test_coverage_at_everything(self):
        assert coverage_at(crafted_trace(), 100.0) == pytest.approx(100.0)


class TestSimpleMetrics:
    def test_unique_access_pct(self):
        assert unique_access_pct(crafted_trace()) == pytest.approx(40.0)

    def test_working_set_bytes(self):
        assert working_set_bytes(crafted_trace(), row_bytes=512) == 4 * 512
