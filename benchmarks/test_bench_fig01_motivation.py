"""Figure 1: motivation — embedding stage dominates batch latency."""


def test_fig1_motivation(regenerate):
    table = regenerate("fig1")
    base_rows = [r for r in table.rows if r["scheme"] == "base"]
    opt_rows = [r for r in table.rows if r["scheme"] == "OptMT"]
    order = ("one_item", "high_hot", "med_hot", "low_hot", "random")
    base_by = {r["dataset"]: r for r in base_rows}
    opt_by = {r["dataset"]: r for r in opt_rows}
    # latency degrades monotonically as hotness drops
    totals = [base_by[d]["total_ms"] for d in order]
    assert totals == sorted(totals)
    # the embedding stage is the dominant contributor (70-90% band)
    for row in base_rows:
        assert 55.0 < row["emb_share_pct"] < 95.0, row
    # OptMT improves every dataset except the already-optimal one_item
    for dataset in order[1:]:
        assert opt_by[dataset]["total_ms"] < base_by[dataset]["total_ms"]
    assert (
        abs(opt_by["one_item"]["total_ms"] - base_by["one_item"]["total_ms"])
        / base_by["one_item"]["total_ms"] < 0.1
    )
    # ... but a significant end-to-end gap to one_item remains (the
    # research gap; paper Fig. 1 shows 82.88 vs 69.19 ms under OptMT)
    assert opt_by["random"]["total_ms"] > 1.15 * opt_by["one_item"]["total_ms"]
