"""Figure 19 / Section VI-B4: H100 NVL vs A100 comparison."""

from repro.config.gpu import A100_SXM4_80GB, H100_NVL

DATASETS = ("high_hot", "med_hot", "low_hot", "random")


def _row(table, gpu, scheme):
    for row in table.rows:
        if row["gpu"] == gpu and row["scheme"] == scheme:
            return row
    raise KeyError((gpu, scheme))


def test_fig19_h100_vs_a100(regenerate, ctx):
    table = regenerate("fig19")
    from repro.core.schemes import BASE, OPTMT, RPF_L2P_OPTMT

    # H100's base kernels are faster than A100's (paper: ~47% uplift)
    for d in DATASETS:
        h100 = ctx.kernel(d, BASE, gpu_name=H100_NVL.name)
        a100 = ctx.kernel(d, BASE)
        assert h100.profile.kernel_time_us < a100.profile.kernel_time_us, d
    # OptMT lands at 32 warps on H100 (vs 40 on A100)
    h100_wl = ctx.workload(H100_NVL)
    assert OPTMT.compile(h100_wl.gpu).warps_per_sm == 32
    # the integrated scheme still yields significant speedups on H100
    h100_comb = _row(table, H100_NVL.name, "RPF+L2P+OptMT")
    for d in DATASETS:
        assert h100_comb[d] > 1.0, d
    assert h100_comb["random"] > 1.4
    # the proposed schemes narrow the cost gap: optimized A100 is in the
    # same league as (paper: faster than) stock H100
    a100_comb_random = ctx.kernel(
        "random", RPF_L2P_OPTMT
    ).profile.kernel_time_us
    h100_base_random = ctx.kernel(
        "random", BASE, gpu_name=H100_NVL.name
    ).profile.kernel_time_us
    assert a100_comb_random < h100_base_random * 1.3
    assert A100_SXM4_80GB.name in {r["gpu"] for r in table.rows}
