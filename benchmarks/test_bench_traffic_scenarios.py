"""Traffic scenarios: p99/goodput per profile, batching and routing.

Beyond the paper: serves non-stationary arrival streams against the
calibrated latency curves and checks the two headline serving results —
continuous batching beats the fixed size-or-timeout batcher on p99 and
goodput under a flash crowd at a tight SLA, and queue-aware routing
shields a heterogeneous fleet inside the burst where oblivious
round-robin lets the slower replicas blow up.
"""

from repro.config.gpu import A100_SXM4_80GB
from repro.core.schemes import RPF_L2P_OPTMT
from repro.core.serving import BatchingPolicy
from repro.harness.experiments import _fleet_latency_models, scenario_serving
from repro.fleet import FleetSpec
from repro.config.gpu import H100_NVL
from repro.traffic import scenario_profile, simulate_fleet_scenario


def _rows_by(table):
    return {(r["batcher"], r["phase"]): r for r in table.rows}


def test_flash_crowd_batching(regenerate):
    """Continuous batching beats the fixed policy under the flash crowd."""
    table = regenerate("scenario")  # default profile: flash
    rows = _rows_by(table)

    fixed_all = rows[("fixed", "all")]
    cont_all = rows[("continuous", "all")]
    # the acceptance pair: better tail AND more in-SLA work done
    assert cont_all["p99_ms"] < fixed_all["p99_ms"]
    assert cont_all["goodput_qps"] > fixed_all["goodput_qps"]

    # the win concentrates inside the burst
    fixed_spike = rows[("fixed", "spike")]
    cont_spike = rows[("continuous", "spike")]
    assert cont_spike["goodput_qps"] > fixed_spike["goodput_qps"]
    assert cont_spike["sla_hit_pct"] >= fixed_spike["sla_hit_pct"]

    # per-phase reporting is complete
    for batcher in ("fixed", "continuous"):
        for phase in ("pre", "spike", "recovery", "all"):
            assert (batcher, phase) in rows


def test_scenario_profiles_record_tails(ctx):
    """Every profile completes and records per-phase p99/goodput."""
    for profile in ("diurnal", "mmpp", "drift", "poisson"):
        table = scenario_serving(ctx, profile=profile)
        print()
        print(table.render())
        rows = _rows_by(table)
        for (batcher, phase), row in rows.items():
            assert row["p99_ms"] >= row["p50_ms"] >= 0.0
            assert row["goodput_qps"] >= 0.0
        # continuous batching never loses on the run-wide SLA hit rate
        assert (
            rows[("continuous", "all")]["sla_hit_pct"]
            >= rows[("fixed", "all")]["sla_hit_pct"]
        )


def test_fleet_flash_routing(ctx, benchmark):
    """Inside the burst, queue-aware routing shields a mixed fleet."""
    scheme = RPF_L2P_OPTMT
    models = _fleet_latency_models(ctx, scheme)
    a100 = models[A100_SXM4_80GB.name]
    capacity_a100 = 2048.0 / (a100(2048) / 1e3)
    fleet = FleetSpec.mixed(
        {A100_SXM4_80GB: 2, H100_NVL: 2}, name="2xA100+2xH100",
        scheme=scheme,
    )
    # the spike exceeds the A100s' fair share but not the fleet's total
    spec = scenario_profile(
        "flash", base_qps=5 * 0.95 * capacity_a100 / 8.0, duration_s=4.0,
    )
    fixed = BatchingPolicy()
    spike_batch = max(1, int(spec.peak_rate() / 4 * fixed.timeout_ms / 1e3))
    sla_ms = 0.8 * (fixed.timeout_ms + a100(spike_batch))

    def run_policies():
        return {
            policy: simulate_fleet_scenario(
                fleet, models, spec, policy=policy, sla_ms=sla_ms, seed=0,
            )
            for policy in ("round-robin", "jsq", "least-latency")
        }

    reports = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    print()
    for policy, report in reports.items():
        spike = report.phase("spike")
        print(f"  {policy:14s} spike p99 {spike.p99_ms:7.2f} ms, "
              f"goodput {spike.goodput_qps:7.0f} QPS, "
              f"hit {spike.sla_hit_pct:5.1f}%")

    rr = reports["round-robin"].phase("spike")
    jsq = reports["jsq"].phase("spike")
    ll = reports["least-latency"].phase("spike")
    # oblivious routing overloads the slower A100s inside the burst
    assert jsq.p99_ms < rr.p99_ms
    # speed-aware routing also banks the H100 headroom: best tail AND
    # the most in-SLA work
    assert ll.p99_ms <= jsq.p99_ms
    assert ll.goodput_qps > rr.goodput_qps
    assert ll.goodput_qps > jsq.goodput_qps
