"""Table VIII: microarchitectural details of RPF+OptMT."""


def _measured(table, metric):
    for row in table.rows:
        if row["metric"] == metric and row["source"] == "measured":
            return row
    raise KeyError(metric)


def test_tab8_rpf_optmt_ncu(regenerate, ctx):
    table = regenerate("tab8")
    from repro.core.schemes import BASE, OPTMT

    times = _measured(table, "kernel_time_us")
    # prefetching compresses the hotness spread: random/high gap shrinks
    # far below the baseline's (paper: 224/177 = 1.27 vs base 442/237)
    base_gap = (
        ctx.kernel("random", BASE).profile.kernel_time_us
        / ctx.kernel("high_hot", BASE).profile.kernel_time_us
    )
    rpf_gap = times["random"] / times["high_hot"]
    assert rpf_gap < base_gap
    # bandwidth demand rises well above both base and OptMT (paper: ~700
    # vs 329 GBps) as latencies get overlapped
    bw = _measured(table, "avg_hbm_bw_gbps")
    base_bw = ctx.kernel("random", BASE).profile.avg_hbm_bw_gbps
    optmt_bw = ctx.kernel("random", OPTMT).profile.avg_hbm_bw_gbps
    assert bw["random"] > base_bw
    assert bw["random"] >= 0.9 * optmt_bw
    # more instructions than OptMT (buffer management + deeper spills)
    loads = _measured(table, "load_insts_m")
    optmt_loads = ctx.kernel("random", OPTMT).profile.load_insts_m
    assert loads["random"] >= optmt_loads * 0.95
