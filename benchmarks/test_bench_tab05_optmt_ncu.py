"""Table V: NCU characterization of the OptMT (40-warp) build."""


def _measured(table, metric):
    for row in table.rows:
        if row["metric"] == metric and row["source"] == "measured":
            return row
    raise KeyError(metric)


def test_tab5_optmt_ncu(regenerate, ctx):
    table = regenerate("tab5")
    from repro.core.schemes import BASE, OPTMT

    # OptMT runs at 40 resident warps on A100 (vs 24 for base)
    build = ctx.kernel("random", OPTMT).build
    assert build.warps_per_sm == 40
    assert ctx.kernel("random", BASE).build.warps_per_sm == 24

    times = _measured(table, "kernel_time_us")
    base_random = ctx.kernel("random", BASE).profile.kernel_time_us
    # paper: up to 53% latency reduction; allow a generous band
    assert times["random"] < base_random * 0.85
    # one_item is already issue-bound: OptMT does not help it
    base_one = ctx.kernel("one_item", BASE).profile.kernel_time_us
    assert abs(times["one_item"] - base_one) / base_one < 0.12
    # spilling appears as extra (local) load instructions vs Table IV
    loads = _measured(table, "load_insts_m")
    assert loads["random"] > 2.47
    # more resident warps demand more bandwidth
    bw = _measured(table, "avg_hbm_bw_gbps")
    assert bw["random"] > 300.0
    # ... but the kernel stays latency-bound (utilization far below peak)
    util = _measured(table, "hbm_bw_util_pct")
    assert util["random"] < 50.0
