"""Telemetry overhead guardrail: recording must stay near-free.

The column-block design is what makes an attached recorder cheap: one
``serve_stream`` call emits two blocks (plus run markers), not one
line per query.  This bench serves the flash-crowd golden scenario
with the recorder + stats sink attached and asserts the wall time
stays within 10% of the detached loop — the budget the observability
layer promises the serving stack.

It also leaves ``telemetry-scenario.jsonl`` behind (a recorded
fixed-vs-continuous scenario run that replays field-identical); CI
uploads it as a workflow artifact.
"""

from __future__ import annotations

import io
import time

from repro.core.serving import BatchingPolicy, ContinuousBatching, serve_stream
from repro.telemetry.replay import replay_reports
from repro.telemetry.sinks import MultiSink, RecorderSink, StatsSink
from repro.traffic import generate_arrivals, scenario_profile

#: Allowed slowdown of the attached loop (1.10 == +10%).
OVERHEAD_BUDGET = 1.10
ARTIFACT = "telemetry-scenario.jsonl"


def _toy_model(batch: int) -> float:
    return 10.0 + 0.01 * batch


def _stream():
    return generate_arrivals(
        scenario_profile("flash", base_qps=2500, duration_s=6.0), seed=7
    )


def _serve(stream, sink=None):
    return serve_stream(
        _toy_model, stream,
        policy=ContinuousBatching(max_batch=256, sla_ms=30.0),
        sla_ms=30.0, sink=sink,
    )


def _interleaved_best(fn_a, fn_b, rounds: int) -> tuple[float, float]:
    """Best-of timings taken alternately, so clock drift and cache
    warmth hit both sides equally."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def test_recorder_overhead_within_budget():
    stream = _stream()
    _serve(stream)  # warm caches/JIT-on-first-call effects out

    def attached():
        buffer = io.StringIO()
        recorder = RecorderSink(buffer)
        _serve(stream, sink=MultiSink(recorder, StatsSink()))
        recorder.close()

    detached_s, attached_s = _interleaved_best(
        lambda: _serve(stream), attached, rounds=15
    )
    slowdown = attached_s / detached_s
    print(
        f"\ntelemetry overhead: detached {detached_s * 1e3:.2f} ms, "
        f"attached {attached_s * 1e3:.2f} ms ({slowdown:.3f}x)"
    )
    assert slowdown <= OVERHEAD_BUDGET, (
        f"recorder+stats sink slows serve_stream by "
        f"{(slowdown - 1) * 100:.1f}% (> {(OVERHEAD_BUDGET - 1) * 100:.0f}% "
        f"budget)"
    )


def test_detached_report_identical_to_attached():
    """Telemetry must observe, never perturb: same report either way."""
    stream = _stream()
    detached = _serve(stream)
    buffer = io.StringIO()
    recorder = RecorderSink(buffer)
    attached = _serve(stream, sink=MultiSink(recorder, StatsSink()))
    recorder.close()
    assert attached == detached
    # and the recording folds back into that very report
    (replayed,) = replay_reports(io.StringIO(buffer.getvalue()))
    assert replayed == detached


def test_record_scenario_artifact():
    """Record the fixed-vs-continuous scenario pair for the CI artifact."""
    stream = _stream()
    with RecorderSink(ARTIFACT) as recorder:
        sink = MultiSink(recorder, StatsSink())
        fixed = serve_stream(
            _toy_model, stream,
            policy=BatchingPolicy(max_batch=256, timeout_ms=5.0),
            sla_ms=30.0, sink=sink,
        )
        continuous = _serve(stream, sink=sink)
    replayed = replay_reports(ARTIFACT)
    assert replayed == [fixed, continuous]
    print(f"\nrecorded {recorder.records} records -> {ARTIFACT}")
