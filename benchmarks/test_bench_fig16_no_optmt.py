"""Figure 16: the schemes applied directly to base PyTorch (no OptMT)."""

DATASETS = ("high_hot", "med_hot", "low_hot", "random")


def test_fig16_no_optmt(regenerate, ctx):
    table = regenerate("fig16")
    smpf = table.row_for("scheme", "SMPF")
    lmpf = table.row_for("scheme", "LMPF")
    l1dpf = table.row_for("scheme", "L1DPF")
    l2p = table.row_for("scheme", "L2P")
    smpf_l2p = table.row_for("scheme", "SMPF+L2P")
    # paper: without OptMT the winner flips from RPF to SMPF, because
    # nvcc compiles SMPF at 32 warps/SM vs 24
    from repro.core.schemes import SMPF as SMPF_SCHEME, LMPF as LMPF_SCHEME

    assert SMPF_SCHEME.compile(ctx.workload().gpu).warps_per_sm == 32
    assert LMPF_SCHEME.compile(ctx.workload().gpu).warps_per_sm == 24
    for d in DATASETS:
        assert smpf[d] >= lmpf[d] - 0.02, d
        assert smpf[d] >= l1dpf[d], d
    # RPF's occupancy collapses at distance >= 5 (16 warps)
    from repro.core.schemes import Scheme

    collapsed = Scheme(prefetch="register", prefetch_distance=5)
    assert collapsed.compile(ctx.workload().gpu).warps_per_sm == 16
    # part b: L2P alone is a modest, hot-biased win; it composes with SMPF
    assert l2p["high_hot"] > 0.95
    assert l2p["med_hot"] >= l2p["random"] - 0.02
    for d in DATASETS:
        assert smpf_l2p[d] >= smpf[d] - 0.05, d
