"""Table IV: NCU characterization of the stock PyTorch embedding kernel."""


def _measured(table, metric):
    for row in table.rows:
        if row["metric"] == metric and row["source"] == "measured":
            return row
    raise KeyError(metric)


def test_tab4_base_ncu(regenerate):
    table = regenerate("tab4")
    time_row = _measured(table, "kernel_time_us")
    order = ("one_item", "high_hot", "med_hot", "low_hot", "random")
    times = [time_row[d] for d in order]
    # hotness ordering: kernel time grows as hotness decreases
    assert times == sorted(times)
    # headline: the random-vs-one_item gap is around the paper's 3.2x
    gap = times[-1] / times[0]
    assert 2.2 < gap < 4.2, f"base worst-case gap {gap:.2f}"
    # issue-slot utilization decays with hotness
    issue = _measured(table, "issued_per_scheduler")
    assert issue["one_item"] > 0.6
    assert issue["random"] < 0.45
    # long scoreboard stalls dominate as hotness drops
    stalls = _measured(table, "long_scoreboard_stall")
    assert stalls["random"] > 5 * stalls["one_item"]
    # L1/L2 hit-rate structure matches the paper's sectored accounting
    l1 = _measured(table, "l1_hit_pct")
    assert l1["one_item"] > 95.0
    assert 15.0 < l1["random"] < 30.0
    # one_item reads ~nothing from DRAM; random reads >100 MB equivalent
    dram = _measured(table, "dram_read_mb")
    assert dram["one_item"] < 2.0
    assert dram["random"] > 80.0
    # latency-bound, not bandwidth-bound: BW utilization stays low
    util = _measured(table, "hbm_bw_util_pct")
    assert util["random"] < 40.0
