"""Engine throughput: the simulator's own speed, guarded over time.

Unlike the figure benchmarks (which regenerate paper results and record
their wall-clock into the pytest-benchmark JSON trajectory), this file
benchmarks the *simulator machinery* on one realistic embedding-bag
launch:

* ``compiled`` — the trace-compiled fast path (tracked metric:
  micro-ops/second, so future PRs can't silently regress the engine),
* ``reference`` — the generator-driven reference executor,
* ``memo`` — a repeated identical launch answered by the kernel memo.

A *sweep* here means what the harness and the fleet planners actually
do: the same launch evaluated N times (figure reuse, capacity grids,
autoscaler steps).  Its speedup is composed from the measured parts::

    sweep_speedup = N * t_reference / (t_cold + (N - 1) * t_memo_hit)

Ratios are measured on one machine in one process, so they are stable
across hardware; ``engine_throughput_baseline.json`` pins the committed
expectations and the test fails when a ratio falls more than 30% below
its committed value.
"""

import json
import time
from pathlib import Path

from repro.config.gpu import A100_SXM4_80GB
from repro.config.scale import SimScale
from repro.core.embedding import kernel_workload, run_table_kernel
from repro.core.schemes import Scheme
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.gpusim.engine import run_kernel
from repro.gpusim.hierarchy import MemoryHierarchy
from repro.gpusim.memo import KernelMemo
from repro.kernels import calibration as cal
from repro.kernels.address_map import STREAMING_RANGE, AddressMap
from repro.kernels.registry import build_programs, build_trace

BASELINE_PATH = Path(__file__).parent / "engine_throughput_baseline.json"
#: Fail when a measured ratio drops >30% below its committed baseline.
REGRESSION_TOLERANCE = 0.7
#: Launches per simulated sweep (cold + warm repeats).
SWEEP_LAUNCHES = 5

DATASET = "med_hot"
SCHEME = Scheme(optmt=True)


def _workload():
    return kernel_workload(
        A100_SXM4_80GB, scale=SimScale("engine-bench", 4)
    )


def _hierarchy(workload, build):
    hierarchy = MemoryHierarchy(
        workload.gpu, streaming_range=STREAMING_RANGE
    )
    local_lines = build.spilled_regs + (
        build.prefetch_distance if build.prefetch == "local" else 0
    )
    hierarchy.configure_local_memory(
        local_lines * 128 * build.warps_per_sm,
        int(workload.full_gpu.l1_bytes * cal.LOCAL_L1_BUDGET_FRACTION),
    )
    return hierarchy


def _best_of(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_throughput(benchmark):
    workload = _workload()
    build = SCHEME.compile(workload.gpu)
    amap = AddressMap(row_bytes=workload.row_bytes)
    spec = HOTNESS_PRESETS[DATASET]
    trace = generate_trace(
        spec,
        batch_size=workload.batch_size,
        pooling_factor=workload.pooling_factor,
        table_rows=workload.table_rows,
        seed=0,
    )
    compiled = build_trace(trace, build, amap)
    n_ops = compiled.n_ops
    issued = compiled.exec_form()[1]["issued"]

    def run_fast():
        return run_kernel(
            workload.gpu, _hierarchy(workload, build),
            build_trace(trace, build, amap),
            warps_per_sm=build.warps_per_sm,
            warps_per_block=build.warps_per_block,
        )

    def run_ref():
        return run_kernel(
            workload.gpu, _hierarchy(workload, build),
            build_programs(trace, build, amap),
            warps_per_sm=build.warps_per_sm,
            warps_per_block=build.warps_per_block,
            reference=True,
        )

    # the tracked trajectory metric: compiled-path launches
    stats = benchmark.pedantic(run_fast, rounds=3, iterations=1)
    assert stats.n_warps == compiled.n_warps

    # interleave the rounds so machine-load drift hits both paths alike
    t_fast = float("inf")
    t_ref = float("inf")
    for _ in range(4):
        t_fast = min(t_fast, _best_of(run_fast, rounds=1))
        t_ref = min(t_ref, _best_of(run_ref, rounds=1))

    # memo tier: cold table-kernel run, then repeated identical launches
    memo = KernelMemo(capacity=8)

    def run_table(m=memo):
        return run_table_kernel(
            workload, spec, SCHEME, seed=0, memo=m,
        )

    t_cold = _best_of(lambda: run_table(KernelMemo(capacity=8)), rounds=2)
    run_table()  # prime
    t_hit = _best_of(run_table, rounds=5)
    assert memo.hits >= 5

    engine_cold_speedup = t_ref / t_fast
    memo_hit_speedup = t_cold / t_hit
    sweep_speedup = (SWEEP_LAUNCHES * t_ref) / (
        t_cold + (SWEEP_LAUNCHES - 1) * t_hit
    )
    benchmark.extra_info.update({
        "micro_ops": n_ops,
        "issued_insts": issued,
        "micro_ops_per_sec_compiled": round(n_ops / t_fast),
        "micro_ops_per_sec_reference": round(n_ops / t_ref),
        "engine_cold_speedup": round(engine_cold_speedup, 3),
        "memo_hit_speedup": round(memo_hit_speedup, 1),
        "sweep_speedup": round(sweep_speedup, 2),
        "t_reference_s": round(t_ref, 4),
        "t_compiled_s": round(t_fast, 4),
        "t_memo_hit_s": round(t_hit, 5),
    })
    print(
        f"\nengine throughput: {n_ops / t_fast / 1e6:.2f}M compiled "
        f"vs {n_ops / t_ref / 1e6:.2f}M reference micro-ops/s; "
        f"memo hit {memo_hit_speedup:.0f}x over cold, "
        f"{SWEEP_LAUNCHES}-launch sweep {sweep_speedup:.1f}x"
    )

    baseline = json.loads(BASELINE_PATH.read_text())
    floor = {k: v * REGRESSION_TOLERANCE for k, v in baseline.items()}
    assert engine_cold_speedup >= floor["engine_cold_speedup"], (
        f"compiled path regressed: {engine_cold_speedup:.2f}x vs "
        f"committed {baseline['engine_cold_speedup']}x"
    )
    assert sweep_speedup >= floor["memo_sweep_speedup"], (
        f"sweep speedup regressed: {sweep_speedup:.2f}x vs "
        f"committed {baseline['memo_sweep_speedup']}x"
    )
    # the memo must keep re-running an identical launch near-free
    assert t_hit < t_cold / 10, (
        f"memo hit cost {t_hit * 1e3:.1f}ms is not near-zero vs "
        f"cold {t_cold * 1e3:.1f}ms"
    )
