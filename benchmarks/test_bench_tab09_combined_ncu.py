"""Table IX: microarchitectural details of RPF+L2P+OptMT."""


def _measured(table, metric):
    for row in table.rows:
        if row["metric"] == metric and row["source"] == "measured":
            return row
    raise KeyError(metric)


def test_tab9_combined_ncu(regenerate, ctx):
    table = regenerate("tab9")
    from repro.core.schemes import RPF_OPTMT

    # pinning cuts device-memory reads for the hot datasets vs RPF+OptMT
    # (paper: -71% high_hot, -16% med_hot)
    dram = _measured(table, "dram_read_mb")
    rpf_dram_high = ctx.kernel("high_hot", RPF_OPTMT).profile.dram_read_mb
    rpf_dram_med = ctx.kernel("med_hot", RPF_OPTMT).profile.dram_read_mb
    assert dram["high_hot"] < rpf_dram_high * 0.6
    assert dram["med_hot"] < rpf_dram_med
    # random barely changes: its working set dwarfs the 30 MB set-aside
    rpf_dram_rand = ctx.kernel("random", RPF_OPTMT).profile.dram_read_mb
    assert dram["random"] > 0.5 * rpf_dram_rand
    # combined never runs slower than RPF+OptMT (paper: small wins)
    times = _measured(table, "kernel_time_us")
    for d in ("high_hot", "med_hot", "low_hot", "random"):
        rpf_t = ctx.kernel(d, RPF_OPTMT).profile.kernel_time_us
        assert times[d] <= rpf_t * 1.05, d
