"""Figure 14: embedding-stage contribution to end-to-end latency."""

DATASETS = ("high_hot", "med_hot", "low_hot", "random")


def test_fig14_emb_share(regenerate):
    table = regenerate("fig14")
    base = table.row_for("scheme", "base")
    comb = table.row_for("scheme", "RPF+L2P+OptMT")
    # base: embedding dominates and grows as hotness drops
    shares = [base[d] for d in DATASETS]
    assert shares == sorted(shares)
    assert shares[0] > 55.0
    # the combined scheme reduces the embedding share on every dataset
    # (paper: by up to 10 points for random)
    for d in DATASETS:
        assert comb[d] < base[d], d
    assert base["random"] - comb["random"] > 4.0
