"""Figure 11: L2 pinning benefit across pooling factors."""


def test_fig11_l2p_pooling(regenerate):
    table = regenerate("fig11")
    poolings = (10, 30, 50, 70, 90, 110, 130, 150)
    for row in table.rows:
        series = [row[f"pool{p}"] for p in poolings]
        # L2P never catastrophically hurts at any pooling factor
        assert min(series) > 0.85, row
        # it helps somewhere on the sweep
        assert max(series) > 1.0, row
        # paper: smaller pooling factors leave less natural reuse for the
        # hardware caches, so pinning helps them at least as much
        assert row["pool10"] >= row["pool150"] - 0.15
