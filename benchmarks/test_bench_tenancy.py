"""Tenancy guardrails: consolidation keeps its goodput promise.

Two perf-smoke invariants of multi-tenant serving:

* consolidating a zoo onto one GPU retains at least a floor fraction
  of the goodput the same tenants achieve solo on dedicated GPUs —
  MPS-style sharing erodes tails, it must not collapse throughput;
* the `tenancy` experiment's zoo-size sweep shows aggregate goodput
  rising monotonically with consolidation while per-tenant p99 erodes
  monotonically (the trade the experiment exists to expose).
"""

from repro.tenancy import ZooSpec, example_zoo, simulate_zoo_serving

#: consolidated aggregate goodput must keep at least this fraction of
#: the sum of the tenants' solo goodputs (worst-case demands).
_CONSOLIDATION_GOODPUT_FLOOR = 0.70


def test_consolidation_goodput_floor():
    zoo = example_zoo(3, base_qps=2500.0, duration_s=3.0, sla_ms=60.0)
    toy = lambda batch: 8.0 + 0.008 * batch
    models = {name: toy for name in zoo.tenant_names}

    solo_total = 0.0
    for tenant in zoo.tenants:
        alone = ZooSpec(name=f"solo-{tenant.name}", tenants=(tenant,))
        report = simulate_zoo_serving(
            alone, {tenant.name: toy}, seed=2,
        )
        solo_total += report.aggregate_goodput_qps

    consolidated = simulate_zoo_serving(zoo, models, seed=2)
    print()
    print(f"sum of solo goodput (3 GPUs): {solo_total:9.0f} QPS")
    print(f"consolidated (1 GPU):         "
          f"{consolidated.aggregate_goodput_qps:9.0f} QPS "
          f"(factors {sorted(consolidated.contention.values())})")
    assert consolidated.aggregate_goodput_qps >= (
        _CONSOLIDATION_GOODPUT_FLOOR * solo_total
    ), (consolidated.aggregate_goodput_qps, solo_total)


def test_tenancy_experiment_consolidation_trade(regenerate):
    table = regenerate("tenancy")
    totals = [
        r for r in table.rows
        if r["part"] == "sweep" and r["tenant"] == "ALL"
    ]
    sizes = [r["zoo_size"] for r in totals]
    assert sizes == sorted(sizes)
    goodputs = [r["goodput_qps"] for r in totals]
    assert all(b > a for a, b in zip(goodputs, goodputs[1:])), (
        f"aggregate goodput must rise under consolidation: {goodputs}"
    )
    # every tenant's p99 erodes as the zoo grows (within 1% noise)
    tenants = {
        r["tenant"] for r in table.rows
        if r["part"] == "sweep" and r["tenant"] != "ALL"
    }
    for tenant in tenants:
        p99s = [
            r["p99_ms"] for r in table.rows
            if r["part"] == "sweep" and r["tenant"] == tenant
        ]
        assert all(b >= a * 0.99 for a, b in zip(p99s, p99s[1:])), (
            tenant, p99s
        )
    # drift part: re-arbitration recovers aggregate hit rate per phase
    for phase in ("drift2", "drift3"):
        stale = sum(
            r["hit_rate"] for r in table.rows
            if r["part"] == "drift" and r["phase"] == f"{phase}/stale"
        )
        rearb = sum(
            r["hit_rate"] for r in table.rows
            if r["part"] == "drift" and r["phase"] == f"{phase}/rearb"
        )
        assert rearb > stale, (phase, stale, rearb)
