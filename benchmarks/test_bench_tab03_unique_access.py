"""Table III: unique access % per dataset."""

from repro.harness import paper_data as paper


def test_tab3_unique_access(regenerate):
    table = regenerate("tab3")
    for row in table.rows:
        expected = paper.TAB3_UNIQUE_ACCESS_PCT[row["dataset"]]
        if row["dataset"] == "one_item":
            assert row["measured_pct"] < 0.1
        else:
            # generator controls uniqueness to within a percent point
            assert abs(row["measured_pct"] - expected) < 1.0, row
    # hotness ordering is strict
    measured = table.column("measured_pct")
    assert measured == sorted(measured)
