"""Figure 9: SMPF prefetch-distance sweep (no OptMT)."""


def test_fig9_pf_distance(regenerate):
    table = regenerate("fig9")
    for row in table.rows:
        distances = (1, 3, 5, 6, 7, 9, 10, 11, 13, 15)
        series = [row[f"d{d}"] for d in distances]
        # distance 1 is the worst choice for every dataset (paper)
        assert min(series) == row["d1"], row["dataset"]
        # larger distances improve until a plateau; d=10 is near-optimal
        best = max(series)
        assert row["d10"] > 0.9 * best
        # the optimum is well away from d=1
        assert row["best_d"] >= 5
    # colder datasets gain more from prefetching
    assert (
        table.row_for("dataset", "random")["d10"]
        > table.row_for("dataset", "high_hot")["d10"]
    )
