"""Figure 13: end-to-end inference speedups of the proposed schemes."""

DATASETS = ("high_hot", "med_hot", "low_hot", "random")


def test_fig13_e2e_speedup(regenerate, ctx):
    table = regenerate("fig13")
    comb = table.row_for("scheme", "RPF+L2P+OptMT")
    # headline: up to ~1.77x end-to-end (paper); ours is in that regime
    assert comb["random"] > 1.5
    # end-to-end speedups track the embedding-only trends but are damped
    # by the non-embedding stages
    from repro.harness.runner import run_experiment

    fig12 = run_experiment("fig12", ctx)
    emb_comb = fig12.row_for("scheme", "RPF+L2P+OptMT")
    for d in DATASETS:
        assert comb[d] <= emb_comb[d] + 0.02, d
        assert comb[d] > 1.0, d
    # speedup grows as hotness drops (more headroom)
    assert comb["random"] >= comb["high_hot"]
