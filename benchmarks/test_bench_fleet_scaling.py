"""Fleet scaling: heterogeneous capacity and routing at the p99 SLA.

Beyond the paper: composes the calibrated kernels into a cluster-scale
serving simulation and checks the two headline cluster results — a
mixed A100+H100 fleet outserves an equal-GPU-count all-A100 fleet, and
queue-aware routing beats oblivious round-robin on the fleet tail.
"""


def test_fleet_scaling(regenerate):
    table = regenerate("fleet")

    def row(fleet, policy):
        for r in table.rows:
            if r["fleet"] == fleet and r["policy"] == policy:
                return r
        raise AssertionError(f"missing row {fleet}/{policy}")

    homo_jsq = row("4xA100", "jsq")
    mixed_jsq = row("2xA100+2xH100", "jsq")
    mixed_rr = row("2xA100+2xH100", "round-robin")

    # (a) equal GPU count, higher capacity from the mixed fleet
    assert mixed_jsq["max_qps_at_sla"] > homo_jsq["max_qps_at_sla"]

    # (b) queue-aware routing beats round-robin on the fleet p99 at the
    # common high-load probe point, and never loses on capacity
    assert mixed_jsq["p99_at_load_ms"] < mixed_rr["p99_at_load_ms"]
    assert mixed_jsq["max_qps_at_sla"] >= mixed_rr["max_qps_at_sla"]

    # JSQ keeps the mixed fleet's replicas busy evenly; round-robin
    # leaves the H100s underutilized while the A100s saturate
    assert mixed_jsq["util_balance"] <= mixed_rr["util_balance"]

    # sanity: every fleet sustains some load at the SLA
    for r in table.rows:
        assert r["max_qps_at_sla"] > 0
