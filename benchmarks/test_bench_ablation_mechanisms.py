"""Ablations of the simulator's design choices (DESIGN.md).

Not a paper figure: these isolate the mechanisms our reproduction's
conclusions rest on, so a reviewer can see which part of the model
produces which behaviour:

* address translation (uTLB) — the source of the hotness-dependent
  per-load latency beyond raw HBM,
* the L2 set-aside size — the pinning capacity/benefit tradeoff,
* periodic re-pinning under drift — the Section IV-C mitigation.
"""

from dataclasses import replace

import pytest

from repro.config.gpu import A100_SXM4_80GB
from repro.config.scale import SimScale
from repro.core.drift import DriftModel, serve_with_drift
from repro.core.embedding import KernelWorkload, kernel_workload, \
    run_table_kernel
from repro.core.schemes import BASE, L2P_OPTMT
from repro.datasets.spec import HOTNESS_PRESETS

SCALE = SimScale("ablation", 4)


def _workload(gpu=A100_SXM4_80GB):
    return kernel_workload(gpu, scale=SCALE)


def _no_tlb_workload():
    gpu = replace(A100_SXM4_80GB, tlb_miss_penalty=0)
    wl = kernel_workload(gpu, scale=SCALE)
    # keep the slice identity comparable
    return KernelWorkload(
        gpu=wl.gpu, full_gpu=gpu, factor=wl.factor,
        batch_size=wl.batch_size, pooling_factor=wl.pooling_factor,
        table_rows=wl.table_rows, row_bytes=wl.row_bytes,
    )


def test_ablation_tlb_translation_cost(benchmark):
    def run():
        with_tlb = _workload()
        without = _no_tlb_workload()
        rows = {}
        for name in ("one_item", "random"):
            spec = HOTNESS_PRESETS[name]
            t_on = run_table_kernel(with_tlb, spec, BASE)
            t_off = run_table_kernel(without, spec, BASE)
            rows[name] = (
                t_on.profile.kernel_time_us, t_off.profile.kernel_time_us
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, (on, off) in rows.items():
        print(f"ablation/tlb {name}: with={on:.0f}us without={off:.0f}us")
    # translation barely touches the cache-resident case...
    on, off = rows["one_item"]
    assert abs(on - off) / on < 0.05
    # ...but is a large share of the random case's latency
    on, off = rows["random"]
    assert on > 1.2 * off
    # and without it a big hotness gap still remains (caches + DRAM)
    assert rows["random"][1] > 1.5 * rows["one_item"][1]


def test_ablation_l2_set_aside_size(benchmark):
    """Sweep the residency-control carve-out: more set-aside pins more
    rows but shrinks the hardware-managed L2."""
    fractions = (0.25, 0.5, 0.75)

    def run():
        out = {}
        for fraction in fractions:
            gpu = replace(A100_SXM4_80GB, l2_set_aside_fraction=fraction)
            wl = kernel_workload(gpu, scale=SCALE)
            result = run_table_kernel(
                wl, HOTNESS_PRESETS["med_hot"], L2P_OPTMT
            )
            out[fraction] = (
                result.profile.kernel_time_us, result.pin_coverage
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for fraction, (t, cov) in out.items():
        print(f"ablation/set-aside {fraction:.2f}: {t:.0f}us "
              f"coverage={cov:.2f}")
    # larger carve-outs pin a larger share of the accesses
    assert out[0.75][1] >= out[0.5][1] >= out[0.25][1]


def test_ablation_drift_repinning(benchmark):
    """Section IV-C: without refresh, pin coverage decays under drift;
    periodic re-pinning holds it up."""
    wl = kernel_workload(scale=SimScale("ablation-drift", 2))
    drift = DriftModel(drift_per_batch=0.2, seed=5)

    def run():
        stale = serve_with_drift(
            wl, HOTNESS_PRESETS["high_hot"], n_batches=5, drift=drift,
        )
        fresh = serve_with_drift(
            wl, HOTNESS_PRESETS["high_hot"], n_batches=5, drift=drift,
            repin_every=1,
        )
        return stale, fresh

    stale, fresh = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"ablation/drift pin-once: coverage "
          f"{stale.steps[0].pin_coverage:.2f} -> {stale.final_coverage:.2f}"
          f", mean {stale.mean_time_us:.0f}us")
    print(f"ablation/drift repin-1 : coverage "
          f"{fresh.steps[0].pin_coverage:.2f} -> {fresh.final_coverage:.2f}"
          f", mean {fresh.mean_time_us:.0f}us")
    assert stale.final_coverage < stale.steps[0].pin_coverage
    assert fresh.final_coverage > stale.final_coverage
    assert fresh.mean_time_us <= stale.mean_time_us * 1.02
