"""Figure 17: heterogeneous table mixes (Table VII's Mix1/2/3)."""


def test_fig17_hetero_mix(regenerate):
    table = regenerate("fig17")
    combined = "RPF+L2P+OptMT"
    schemes = ("OptMT", "RPF+OptMT", "L2P+OptMT", combined)
    for row in table.rows:
        # all schemes help on every mix
        for scheme in schemes:
            assert row[scheme] > 1.0, (row["mix"], scheme)
        # the combined scheme is best (or ties) within every mix
        best_single = max(row[s] for s in schemes[:-1])
        assert row[combined] >= best_single - 0.05, row["mix"]
    # mixes with more cold tables benefit more (Mix3 > Mix1)
    mix1 = table.row_for("mix", "Mix1")
    mix3 = table.row_for("mix", "Mix3")
    assert mix3[combined] > mix1[combined]
