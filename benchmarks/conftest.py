"""Shared fixtures for the per-figure/per-table benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
simulated GPU slice (6 SMs by default; override with REPRO_HARNESS_SMS).
Results are memoized in a session-wide context, mirroring how the
paper's artifact reuses measurements across plots.
"""

from __future__ import annotations

import pytest

from repro.harness.context import default_context
from repro.harness.runner import run_experiment


@pytest.fixture(scope="session")
def ctx():
    return default_context()


@pytest.fixture
def regenerate(ctx, benchmark):
    """Run one experiment under pytest-benchmark and print its rows."""

    def _run(exp_id: str):
        table = benchmark.pedantic(
            lambda: run_experiment(exp_id, ctx), rounds=1, iterations=1
        )
        print()
        print(table.render())
        return table

    return _run
