"""Figure 5: coverage study of the access patterns."""

from repro.harness import paper_data as paper


def test_fig5_coverage(regenerate):
    table = regenerate("fig5")
    high = table.row_for("dataset", "high_hot")
    # the paper's quoted anchor: top 10% unique rows cover ~68% of accesses
    assert abs(
        high["top10pct"] - paper.FIG5_HIGH_HOT_TOP10_COVERAGE_PCT
    ) < 6.0
    # one_item: a single row covers everything
    one = table.row_for("dataset", "one_item")
    assert one["top10pct"] == 100.0
    # coverage curves are monotone and end at 100%
    for row in table.rows:
        values = [row[f"top{10 * (i + 1)}pct"] for i in range(10)]
        assert values == sorted(values)
        assert abs(values[-1] - 100.0) < 1e-6
    # hotter datasets concentrate more mass in their top rows
    assert high["top10pct"] > table.row_for("dataset", "med_hot")["top10pct"]
    assert (
        table.row_for("dataset", "med_hot")["top10pct"]
        > table.row_for("dataset", "low_hot")["top10pct"]
    )
    assert (
        table.row_for("dataset", "low_hot")["top10pct"]
        > table.row_for("dataset", "random")["top10pct"]
    )
