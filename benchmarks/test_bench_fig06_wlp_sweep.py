"""Figure 6: sweeping -maxrregcount to trade registers for warps (A100)."""


def test_fig6_wlp_sweep(regenerate):
    table = regenerate("fig6")
    for row in table.rows:
        if row["dataset"] == "local_loads_M":
            continue
        # paper: peak gain at 40 resident warps (OptMT); the 24-warp
        # baseline is never the best point for these datasets
        assert row["best_warps"] in (32, 40, 48), row
        # 64 warps underperforms the best point (spill penalty)
        best = max(row[f"w{t}"] for t in (24, 32, 40, 48, 64))
        assert row["w64"] < best
        # colder datasets benefit more from extra WLP
    random_row = table.row_for("dataset", "random")
    high_row = table.row_for("dataset", "high_hot")
    assert random_row["w40"] >= high_row["w40"]
    # register spilling grows with forced occupancy (secondary axis)
    loads = table.row_for("dataset", "local_loads_M")
    assert loads["w24"] == 0.0
    assert loads["w64"] > loads["w40"] > loads["w32"]
