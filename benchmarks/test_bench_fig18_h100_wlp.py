"""Figure 18: the WLP sweep on H100 NVL."""


def test_fig18_h100_wlp(regenerate):
    table = regenerate("fig18")
    for row in table.rows:
        if row["dataset"] == "local_loads_M":
            continue
        # extra WLP beats the 24-warp baseline on H100 as well
        best = max(row[f"w{t}"] for t in (24, 32, 40, 48, 64))
        assert best > 1.05, row
        assert row["best_warps"] != 24, row
        # the WLP gain curve saturates: the last step (48 -> 64 warps)
        # buys less than the first (24 -> 32).  (The paper's measured
        # optimum is 32 warps; our simulated H100 saturates later — a
        # known deviation recorded in EXPERIMENTS.md.)
        assert row["w64"] - row["w48"] < row["w32"] - row["w24"], row
    # spilling grows with forced occupancy on H100 as well
    loads = table.row_for("dataset", "local_loads_M")
    assert loads["w64"] > loads["w32"]
