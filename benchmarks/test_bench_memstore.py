"""Memstore guardrails: hit rate vs HBM-cache capacity, p99 vs fraction.

Two perf-smoke invariants of the tiered embedding store:

* for every admission/eviction policy, hit rate is monotone
  non-decreasing as the HBM cache grows (the stack property of the
  priority-cache design) — printed as a sweep table;
* the end-to-end `memstore` experiment's p99 improves monotonically
  (within noise) as the resident fraction grows, i.e. host-DRAM
  fetches actually leave the critical path.
"""

from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.memstore import CACHE_POLICIES, HostLink, store_for_spec

_FRACTIONS = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)
_LINK = HostLink("pcie", 25.0, 10.0)


def test_hit_rate_vs_capacity_sweep():
    spec = HOTNESS_PRESETS["med_hot"]
    kwargs = dict(batch_size=128, pooling_factor=50, table_rows=16384)
    trace = generate_trace(spec, seed=5, **kwargs)

    print()
    header = "policy      " + "".join(f"  f={f:<6g}" for f in _FRACTIONS)
    print(header)
    for policy in sorted(CACHE_POLICIES):
        rates = []
        for fraction in _FRACTIONS:
            store = store_for_spec(
                spec, row_bytes=512, hbm_fraction=fraction,
                link=_LINK, policy=policy, seed=5, **kwargs,
            )
            rates.append(store.lookup(trace).hit_rate)
        print(f"{policy:<12}" + "".join(f"  {r:<8.3f}" for r in rates))
        assert all(b >= a for a, b in zip(rates, rates[1:])), (
            f"{policy}: hit rate not monotone in capacity: {rates}"
        )
        assert rates[-1] == 1.0  # fully resident: every access hits


def test_memstore_experiment_p99_monotone(regenerate):
    table = regenerate("memstore")
    sweep = [r for r in table.rows if r["part"] == "hbm-sweep"]
    p99s = [r["p99_ms"] for r in sweep]
    # monotone within 2% noise, and the ends are far apart: a small
    # cache is tail-dominated by host fetches, a full one is not
    assert all(b <= a * 1.02 for a, b in zip(p99s, p99s[1:])), p99s
    assert p99s[0] > 2.0 * p99s[-1]
    goodputs = [r["goodput_qps"] for r in sweep]
    assert goodputs[-1] >= max(goodputs) * 0.99
