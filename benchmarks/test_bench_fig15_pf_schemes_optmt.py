"""Figure 15: comparing all four prefetching schemes on top of OptMT."""

DATASETS = ("high_hot", "med_hot", "low_hot", "random")


def test_fig15_pf_schemes_optmt(regenerate):
    table = regenerate("fig15")
    rpf = table.row_for("scheme", "RPF+OptMT")
    smpf = table.row_for("scheme", "SMPF+OptMT")
    lmpf = table.row_for("scheme", "LMPF+OptMT")
    l1dpf = table.row_for("scheme", "L1DPF+OptMT")
    # paper: RPF wins (register file is closest to the pipeline)
    for d in ("med_hot", "low_hot", "random"):
        assert rpf[d] >= smpf[d] - 0.03, d
        assert rpf[d] >= lmpf[d] - 0.03, d
    # paper: L1DPF improves the least (highest instruction overhead)
    for d in DATASETS:
        assert l1dpf[d] <= rpf[d], d
        assert l1dpf[d] <= smpf[d] + 0.03, d
    # every scheme still beats base on the cold datasets
    for row in (rpf, smpf, lmpf, l1dpf):
        assert row["random"] > 1.3, row["scheme"]
