"""Figure 12: embedding-only speedups of the proposed schemes."""

DATASETS = ("high_hot", "med_hot", "low_hot", "random")


def test_fig12_embedding_speedup(regenerate):
    table = regenerate("fig12")
    optmt = table.row_for("scheme", "OptMT")
    rpf = table.row_for("scheme", "RPF+OptMT")
    l2p = table.row_for("scheme", "L2P+OptMT")
    comb = table.row_for("scheme", "RPF+L2P+OptMT")
    # every scheme beats base on every dataset
    for row in (optmt, rpf, l2p, comb):
        for d in DATASETS:
            assert row[d] > 1.0, (row["scheme"], d)
    # headline: combined reaches ~2x for random (paper: 2.03x)
    assert comb["random"] > 1.7
    # prefetching pays off most on the cold end...
    assert rpf["random"] > rpf["high_hot"]
    assert rpf["random"] > optmt["random"]
    # ...while pinning pays off on the hot/medium end
    assert l2p["med_hot"] >= optmt["med_hot"] - 0.05
    # the combination is never (materially) worse than its parts
    for d in DATASETS:
        assert comb[d] >= max(rpf[d], l2p[d]) - 0.10, d
