"""Proportional GPU slicing for tractable pure-Python simulation.

Simulating all 108 A100 SMs with 8192 warps x 150 lookups per kernel is
too slow for a Python test suite.  A ``SimScale`` shrinks the simulated
chip to ``num_sms`` SMs and scales the *chip-shared* workload and
resources by the same factor:

* batch size (so per-SM resident work is unchanged),
* table rows (so the footprint : L2-capacity ratio is unchanged),
* L2 capacity, L2 set-aside, and HBM bandwidth (via ``GpuSpec.scaled_slice``).

Per-SM quantities — pooling factor, L1, register file, occupancy, uTLB —
are left alone, so per-SM contention and latency-hiding behaviour match
the full chip.  Reported kernel times are directly comparable to paper
values because per-SM work is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.gpu import GpuSpec
from repro.config.model import DLRMConfig


def _round_to(value: float, multiple: int, minimum: int) -> int:
    return max(minimum, int(round(value / multiple)) * multiple)


@dataclass(frozen=True)
class SimScale:
    """A named simulation fidelity level."""

    name: str
    num_sms: int

    def apply(self, gpu: GpuSpec, model: DLRMConfig) -> "ScaledWorkload":
        factor = self.num_sms / gpu.num_sms
        sliced_gpu = gpu.scaled_slice(self.num_sms)
        # Keep whole blocks: 8 warps/block, 4 warps/sample -> 2 samples/block.
        samples_per_block = max(
            1, gpu.warps_per_block // max(1, model.table.dim // 32)
        )
        batch = _round_to(model.batch_size * factor, samples_per_block * 2, 4)
        table = model.table.scaled(factor)
        return ScaledWorkload(
            scale=self,
            gpu=sliced_gpu,
            model=model,
            batch_size=batch,
            table_rows=table.rows,
            factor=factor,
        )


@dataclass(frozen=True)
class ScaledWorkload:
    """The result of applying a :class:`SimScale` to a GPU + model."""

    scale: SimScale
    gpu: GpuSpec
    model: DLRMConfig
    batch_size: int
    table_rows: int
    factor: float

    @property
    def pooling_factor(self) -> int:
        return self.model.pooling_factor

    @property
    def accesses_per_table(self) -> int:
        return self.batch_size * self.pooling_factor


#: Tiny slice for unit tests (seconds-scale full suites).
TEST_SCALE = SimScale(name="test", num_sms=2)

#: Default slice for benchmark harness runs.
BENCH_SCALE = SimScale(name="bench", num_sms=6)

#: Full-chip simulation (slow; for spot checks).
FULL_SCALE = SimScale(name="full", num_sms=108)

SCALES = {s.name: s for s in (TEST_SCALE, BENCH_SCALE, FULL_SCALE)}
