"""DLRM model and workload configuration (paper Section V).

The paper's representative industrial inference configuration:

* bottom MLP 1024-512-128-128, top MLP 128-64-1
* 250 embedding tables x 500,000 rows x 128 dims, fp32 (512 B per vector)
* batch size 2048, pooling factor (lookups per sample) 150
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class EmbeddingTableConfig:
    """One embedding table: ``rows x dim`` values of ``precision`` bytes."""

    rows: int = 500_000
    dim: int = 128
    precision_bytes: int = 4

    @property
    def row_bytes(self) -> int:
        return self.dim * self.precision_bytes

    @property
    def table_bytes(self) -> int:
        return self.rows * self.row_bytes

    def scaled(self, factor: float) -> "EmbeddingTableConfig":
        """Scale the row count (used by proportional GPU slices)."""
        return replace(self, rows=max(64, int(round(self.rows * factor))))


@dataclass(frozen=True)
class DLRMConfig:
    """Model-level configuration for end-to-end inference."""

    num_tables: int = 250
    table: EmbeddingTableConfig = field(default_factory=EmbeddingTableConfig)
    batch_size: int = 2048
    pooling_factor: int = 150
    bottom_mlp_dims: tuple[int, ...] = (1024, 512, 128, 128)
    top_mlp_dims: tuple[int, ...] = (128, 64, 1)
    dense_features: int = 1024

    def __post_init__(self) -> None:
        if self.bottom_mlp_dims[-1] != self.table.dim:
            raise ValueError(
                "bottom MLP output dim must equal the embedding dim "
                f"({self.bottom_mlp_dims[-1]} != {self.table.dim})"
            )

    @property
    def lookups_per_table(self) -> int:
        return self.batch_size * self.pooling_factor

    @property
    def embedding_bytes_per_table(self) -> int:
        """Data processed per table (BS x pooling x dim x precision)."""
        return self.lookups_per_table * self.table.row_bytes

    @property
    def model_bytes(self) -> int:
        """Total embedding weight footprint (the ~60 GB in Section V)."""
        return self.num_tables * self.table.table_bytes


#: The paper's Section V configuration.
PAPER_MODEL = DLRMConfig()
