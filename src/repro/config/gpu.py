"""GPU hardware specifications used by the timing simulator.

The numbers transcribed here come from the paper's Tables I, II and VI,
the A100/H100 whitepapers it cites, and the Hopper/Ampere benchmarking
study (Luo et al.) it uses for access latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

CACHE_LINE_BYTES = 128
SECTOR_BYTES = 32
SECTORS_PER_LINE = CACHE_LINE_BYTES // SECTOR_BYTES
WARP_SIZE = 32


@dataclass(frozen=True)
class GpuSpec:
    """Microarchitectural description of one GPU.

    Latencies are in core clock cycles and follow the paper's Table I
    (A100, from Luo et al.); capacities follow Tables II and VI.
    """

    name: str
    num_sms: int
    smsps_per_sm: int
    max_warps_per_sm: int
    warps_per_block: int
    registers_per_sm: int
    register_alloc_unit: int
    l1_bytes: int
    l1_assoc: int
    shared_mem_bytes: int
    l2_bytes: int
    l2_assoc: int
    l2_set_aside_fraction: float
    l2_bandwidth_gbps: float
    hbm_bytes: int
    hbm_bandwidth_gbps: float
    clock_ghz: float
    fp32_tflops: float
    pcie_gbps: float
    # Access latencies (cycles), Table I.
    lat_register: int
    lat_shared: int
    lat_l1: int
    lat_l2: int
    lat_hbm: int
    # Address-translation model: a per-SM uTLB over 4 KB pages. Random
    # gathers over a multi-hundred-MB table thrash it, which is what pushes
    # the paper's observed per-load stalls far beyond the raw HBM latency.
    tlb_entries: int
    tlb_page_bytes: int
    tlb_miss_penalty: int

    @property
    def max_warps_per_smsp(self) -> int:
        return self.max_warps_per_sm // self.smsps_per_sm

    @property
    def hbm_bytes_per_cycle(self) -> float:
        """Aggregate HBM bandwidth expressed per core-clock cycle."""
        return self.hbm_bandwidth_gbps * 1e9 / (self.clock_ghz * 1e9)

    @property
    def l2_bytes_per_cycle(self) -> float:
        """Aggregate L2-to-SM bandwidth per core-clock cycle."""
        return self.l2_bandwidth_gbps * 1e9 / (self.clock_ghz * 1e9)

    @property
    def l2_set_aside_bytes(self) -> int:
        """Maximum L2 carve-out for residency control (75% on A100)."""
        return int(self.l2_bytes * self.l2_set_aside_fraction)

    def cycles_to_us(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e3)

    def scaled_slice(self, num_sms: int) -> "GpuSpec":
        """Return a proportional slice of this GPU with ``num_sms`` SMs.

        Chip-shared resources (L2, HBM bandwidth) scale with the SM
        count.  L1 and the uTLB are per-SM, but the *table* working set
        each SM observes also shrinks with the slice (the batch scales),
        so they are scaled too to preserve footprint-to-capacity ratios;
        streaming and local-memory accesses bypass the scaled L1 (see
        ``MemoryHierarchy``).  Issue/occupancy resources (register file,
        warp slots, schedulers) are untouched — per-SM work is preserved.
        """
        if not 0 < num_sms <= self.num_sms:
            raise ValueError(
                f"slice must use 1..{self.num_sms} SMs, got {num_sms}"
            )
        factor = num_sms / self.num_sms
        return replace(
            self,
            name=f"{self.name}-slice{num_sms}",
            num_sms=num_sms,
            l1_bytes=max(16 * CACHE_LINE_BYTES * self.l1_assoc,
                         int(self.l1_bytes * factor)),
            l2_bytes=max(CACHE_LINE_BYTES * self.l2_assoc,
                         int(self.l2_bytes * factor)),
            l2_bandwidth_gbps=self.l2_bandwidth_gbps * factor,
            hbm_bytes=int(self.hbm_bytes * factor),
            hbm_bandwidth_gbps=self.hbm_bandwidth_gbps * factor,
        )


#: Nvidia A100-SXM4-80GB — the paper's primary platform (Table VI).
A100_SXM4_80GB = GpuSpec(
    name="A100-SXM4-80GB",
    num_sms=108,
    smsps_per_sm=4,
    max_warps_per_sm=64,
    warps_per_block=8,
    registers_per_sm=64 * 1024,
    register_alloc_unit=256,
    l1_bytes=192 * 1024,
    l1_assoc=4,
    shared_mem_bytes=164 * 1024,
    l2_bytes=40 * 1024 * 1024,
    l2_assoc=16,
    l2_set_aside_fraction=0.75,
    l2_bandwidth_gbps=3800.0,
    hbm_bytes=80 * 1024**3,
    hbm_bandwidth_gbps=1940.0,
    clock_ghz=1.41,
    fp32_tflops=19.5,
    pcie_gbps=25.0,
    lat_register=1,
    lat_shared=29,
    lat_l1=38,
    lat_l2=262,
    lat_hbm=466,
    tlb_entries=128,
    tlb_page_bytes=4096,
    tlb_miss_penalty=650,
)

#: Nvidia H100 NVL — the paper's Section VI-B4 platform.
#: 132 SMs / 16896 cores, 50 MB L2, HBM3 at 3.84 TB/s, ~27% faster SM clock.
H100_NVL = GpuSpec(
    name="H100-NVL",
    num_sms=132,
    smsps_per_sm=4,
    max_warps_per_sm=64,
    warps_per_block=8,
    registers_per_sm=64 * 1024,
    register_alloc_unit=256,
    l1_bytes=256 * 1024,
    l1_assoc=4,
    shared_mem_bytes=228 * 1024,
    l2_bytes=50 * 1024 * 1024,
    l2_assoc=16,
    l2_set_aside_fraction=0.75,
    l2_bandwidth_gbps=5500.0,
    hbm_bytes=94 * 1024**3,
    hbm_bandwidth_gbps=3840.0,
    clock_ghz=1.785,
    fp32_tflops=60.0,
    pcie_gbps=50.0,
    lat_register=1,
    lat_shared=29,
    lat_l1=33,
    lat_l2=273,
    lat_hbm=572,
    tlb_entries=128,
    tlb_page_bytes=4096,
    tlb_miss_penalty=780,
)

GPUS = {spec.name: spec for spec in (A100_SXM4_80GB, H100_NVL)}
