"""Hardware, model and simulation-scale configuration."""

from repro.config.gpu import (
    A100_SXM4_80GB,
    CACHE_LINE_BYTES,
    GPUS,
    H100_NVL,
    SECTOR_BYTES,
    SECTORS_PER_LINE,
    WARP_SIZE,
    GpuSpec,
)
from repro.config.model import PAPER_MODEL, DLRMConfig, EmbeddingTableConfig
from repro.config.scale import (
    BENCH_SCALE,
    FULL_SCALE,
    SCALES,
    TEST_SCALE,
    ScaledWorkload,
    SimScale,
)

__all__ = [
    "A100_SXM4_80GB",
    "BENCH_SCALE",
    "CACHE_LINE_BYTES",
    "DLRMConfig",
    "EmbeddingTableConfig",
    "FULL_SCALE",
    "GPUS",
    "GpuSpec",
    "H100_NVL",
    "PAPER_MODEL",
    "SCALES",
    "SECTOR_BYTES",
    "SECTORS_PER_LINE",
    "ScaledWorkload",
    "SimScale",
    "TEST_SCALE",
    "WARP_SIZE",
]
