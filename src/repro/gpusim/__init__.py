"""From-scratch GPU microarchitecture timing simulator.

The substrate the paper's real A100/H100 measurements are replayed on:
sectored caches with residency control, HBM bandwidth queue, per-SM
uTLBs, occupancy rules, and an event-driven warp scheduler with
scoreboard-stall attribution.
"""

from repro.gpusim import isa
from repro.gpusim.cache import SectoredCache
from repro.gpusim.engine import RawKernelStats, run_kernel
from repro.gpusim.hbm import HbmChannel
from repro.gpusim.hierarchy import MemoryHierarchy, Tlb
from repro.gpusim.memo import (
    KernelMemo,
    MemoizedKernelRun,
    default_memo,
    memo_key,
    set_default_memo,
)
from repro.gpusim.occupancy import (
    KernelResources,
    max_regs_for_warps,
    occupancy_pct,
    regs_per_warp_allocated,
    resident_warps,
)
from repro.gpusim.profiler import HierarchyStats, KernelProfile
from repro.gpusim.trace import CompiledTrace, TraceBuilder, compile_programs

__all__ = [
    "CompiledTrace",
    "HbmChannel",
    "HierarchyStats",
    "KernelMemo",
    "KernelProfile",
    "KernelResources",
    "MemoizedKernelRun",
    "MemoryHierarchy",
    "RawKernelStats",
    "SectoredCache",
    "Tlb",
    "TraceBuilder",
    "compile_programs",
    "default_memo",
    "isa",
    "max_regs_for_warps",
    "memo_key",
    "occupancy_pct",
    "regs_per_warp_allocated",
    "resident_warps",
    "run_kernel",
    "set_default_memo",
]
