"""HBM timing: fixed access latency plus a bandwidth service queue.

The paper's point is that the embedding kernel is memory *latency* bound,
not bandwidth bound — average read bandwidth stays well under the HBM
peak (Table IV/V).  We therefore model HBM as a single aggregate service
queue: each read occupies the channel for ``bytes / bytes_per_cycle``
and a request that arrives while the channel is backed up waits for the
backlog.  When demand is far below peak the queue adds ~nothing and the
fixed latency dominates, matching the latency-bound regime; if a scheme
over-drives bandwidth the queueing delay emerges naturally.
"""

from __future__ import annotations

from repro.config.gpu import SECTOR_BYTES


class HbmChannel:
    """Aggregate HBM read channel with a busy-until cursor."""

    __slots__ = (
        "latency", "bytes_per_cycle", "next_free",
        "read_bytes", "write_bytes", "busy_cycles", "queued_cycles",
        "reads",
    )

    def __init__(self, latency: int, bytes_per_cycle: float) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        self.latency = latency
        self.bytes_per_cycle = bytes_per_cycle
        self.next_free = 0.0
        self.read_bytes = 0
        self.write_bytes = 0
        self.busy_cycles = 0.0
        self.queued_cycles = 0.0
        self.reads = 0

    def read(self, sectors: int, now: float) -> float:
        """Issue a read of ``sectors`` 32-B sectors; returns completion time."""
        nbytes = sectors * SECTOR_BYTES
        service = nbytes / self.bytes_per_cycle
        queue_wait = self.next_free - now
        if queue_wait < 0.0:
            queue_wait = 0.0
        self.next_free = now + queue_wait + service
        self.read_bytes += nbytes
        self.busy_cycles += service
        self.queued_cycles += queue_wait
        self.reads += 1
        return now + queue_wait + self.latency

    def write(self, sectors: int) -> None:
        """Writes are counted for traffic stats but not timed (the
        embedding kernel's output traffic is negligible; see DESIGN.md)."""
        self.write_bytes += sectors * SECTOR_BYTES

    def occupy(self, sectors: int, now: float) -> None:
        """Consume service bandwidth without a waiting consumer (e.g.
        local-memory spill writebacks draining through the L2)."""
        nbytes = sectors * SECTOR_BYTES
        service = nbytes / self.bytes_per_cycle
        start = self.next_free if self.next_free > now else now
        self.next_free = start + service
        self.write_bytes += nbytes
        self.busy_cycles += service

    def avg_read_bandwidth(self, elapsed_cycles: float) -> float:
        """Average achieved read bandwidth in bytes/cycle."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.read_bytes / elapsed_cycles

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of peak read bandwidth actually used."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.avg_read_bandwidth(elapsed_cycles) / self.bytes_per_cycle

    def reset_stats(self) -> None:
        self.next_free = 0.0
        self.read_bytes = 0
        self.write_bytes = 0
        self.busy_cycles = 0.0
        self.queued_cycles = 0.0
        self.reads = 0
