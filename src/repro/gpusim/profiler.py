"""NCU-style kernel profiles.

Turns raw engine counters plus memory-hierarchy statistics into the
metrics the paper reports in Tables IV, V, VIII and IX.  When the kernel
ran on a proportional GPU slice, chip-total quantities (load instruction
counts, DRAM bytes, bandwidth) are scaled back to full-chip equivalents
so rows are directly comparable with the paper; per-SM and ratio metrics
(hit rates, stalls per instruction, issue-slot utilization) need no
scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.config.gpu import GpuSpec
from repro.gpusim.engine import RawKernelStats
from repro.gpusim.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class HierarchyStats:
    """Flat snapshot of the memory-hierarchy counters after one run.

    Everything :class:`KernelProfile` needs from a live
    :class:`~repro.gpusim.hierarchy.MemoryHierarchy`, as plain numbers —
    so a profile can be rebuilt from a memoized kernel run
    (:mod:`repro.gpusim.memo`) without re-simulating.
    """

    l1_hit_sectors: int
    l1_miss_sectors: int
    l2_hit_sectors: int
    l2_miss_sectors: int
    l2_pin_hit_sectors: int
    dram_read_bytes: int
    dram_write_bytes: int
    tlb_hits: int
    tlb_misses: int
    local_read_sectors: int
    local_write_sectors: int
    global_write_sectors: int

    @classmethod
    def capture(cls, hierarchy: MemoryHierarchy) -> "HierarchyStats":
        return cls(
            l1_hit_sectors=hierarchy.l1_hit_sectors,
            l1_miss_sectors=hierarchy.l1_miss_sectors,
            l2_hit_sectors=hierarchy.l2.hit_sectors,
            l2_miss_sectors=hierarchy.l2.miss_sectors,
            l2_pin_hit_sectors=hierarchy.l2.pin_hit_sectors,
            dram_read_bytes=hierarchy.hbm.read_bytes,
            dram_write_bytes=hierarchy.hbm.write_bytes,
            tlb_hits=sum(t.hits for t in hierarchy.tlbs),
            tlb_misses=sum(t.misses for t in hierarchy.tlbs),
            local_read_sectors=hierarchy.local_read_sectors,
            local_write_sectors=hierarchy.local_write_sectors,
            global_write_sectors=hierarchy.global_write_sectors,
        )

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hit_sectors + self.l1_miss_sectors
        return self.l1_hit_sectors / total if total else 0.0

    @property
    def l2_hit_rate(self) -> float:
        total = self.l2_hit_sectors + self.l2_miss_sectors
        return self.l2_hit_sectors / total if total else 0.0

    @property
    def tlb_miss_rate(self) -> float:
        total = self.tlb_hits + self.tlb_misses
        return self.tlb_misses / total if total else 0.0


@dataclass(frozen=True)
class KernelProfile:
    """One kernel's worth of NCU-like metrics (paper table rows)."""

    name: str
    kernel_time_us: float
    load_insts_m: float
    sm_throughput_pct: float
    warp_cycles_per_inst: float
    long_scoreboard_stall: float
    short_scoreboard_stall: float
    not_selected_stall: float
    issued_per_scheduler: float
    l1_hit_pct: float
    l2_hit_pct: float
    dram_read_mb: float
    avg_hbm_bw_gbps: float
    hbm_bw_util_pct: float
    local_loads_m: float
    tlb_miss_pct: float
    occupancy_warps: int
    issued_insts: int
    makespan_cycles: float

    @classmethod
    def from_run(
        cls,
        gpu: GpuSpec,
        stats: RawKernelStats,
        hierarchy: MemoryHierarchy,
        *,
        chip_factor: float = 1.0,
        full_hbm_gbps: float | None = None,
    ) -> "KernelProfile":
        """Build a profile from one engine run.

        ``chip_factor`` is the slice fraction (simulated SMs / full SMs);
        ``full_hbm_gbps`` the unsliced chip's peak bandwidth, used to
        report full-chip-equivalent average bandwidth.
        """
        return cls.from_stats(
            gpu, stats, HierarchyStats.capture(hierarchy),
            chip_factor=chip_factor, full_hbm_gbps=full_hbm_gbps,
        )

    @classmethod
    def from_stats(
        cls,
        gpu: GpuSpec,
        stats: RawKernelStats,
        hstats: HierarchyStats,
        *,
        chip_factor: float = 1.0,
        full_hbm_gbps: float | None = None,
    ) -> "KernelProfile":
        """Build a profile from raw counters alone (live run or memo)."""
        if not 0 < chip_factor <= 1.0:
            raise ValueError("chip_factor must be in (0, 1]")
        makespan = stats.makespan_cycles
        time_us = gpu.cycles_to_us(makespan)
        issued = stats.issued_insts
        issue_util = (
            issued / (stats.n_smsp * makespan) if makespan > 0 else 0.0
        )
        util = (
            hstats.dram_read_bytes / makespan / gpu.hbm_bytes_per_cycle
            if makespan > 0 else 0.0
        )
        peak_gbps = full_hbm_gbps or gpu.hbm_bandwidth_gbps
        return cls(
            name=stats.name,
            kernel_time_us=time_us,
            load_insts_m=stats.load_insts / chip_factor / 1e6,
            sm_throughput_pct=100.0 * issue_util,
            warp_cycles_per_inst=(
                stats.warp_resident_cycles / issued if issued else 0.0
            ),
            long_scoreboard_stall=(
                stats.stall_long_scoreboard / issued if issued else 0.0
            ),
            short_scoreboard_stall=(
                stats.stall_short_scoreboard / issued if issued else 0.0
            ),
            not_selected_stall=(
                stats.stall_not_selected / issued if issued else 0.0
            ),
            issued_per_scheduler=issue_util,
            l1_hit_pct=100.0 * hstats.l1_hit_rate,
            l2_hit_pct=100.0 * hstats.l2_hit_rate,
            dram_read_mb=hstats.dram_read_bytes / chip_factor / 1e6,
            avg_hbm_bw_gbps=util * peak_gbps,
            hbm_bw_util_pct=100.0 * util,
            local_loads_m=stats.ld_local_insts / chip_factor / 1e6,
            tlb_miss_pct=100.0 * hstats.tlb_miss_rate,
            occupancy_warps=stats.warps_per_sm,
            issued_insts=issued,
            makespan_cycles=makespan,
        )

    def to_row(self) -> dict[str, float | int | str]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    #: metric name -> (paper row label, format) for NCU-style tables
    NCU_ROWS = (
        ("kernel_time_us", "Kernel time (us)", "{:.0f}"),
        ("load_insts_m", "#load insts (M)", "{:.2f}"),
        ("sm_throughput_pct", "SM Throughput %", "{:.2f}"),
        ("warp_cycles_per_inst", "warp cycles per executed inst", "{:.2f}"),
        ("long_scoreboard_stall", "long scoreboard stall (cycles)", "{:.2f}"),
        ("issued_per_scheduler", "issued warp per scheduler per cycle",
         "{:.2f}"),
        ("l1_hit_pct", "Global L1$ hit rate %", "{:.2f}"),
        ("l2_hit_pct", "L2$ hit rate %", "{:.2f}"),
        ("dram_read_mb", "Device Memory size read (MB)", "{:.2f}"),
        ("avg_hbm_bw_gbps", "Avg HBM Read BW (GBps)", "{:.1f}"),
        ("hbm_bw_util_pct", "Avg HBM Read BW Utilization (%)", "{:.2f}"),
    )
