"""Event-driven warp-level GPU execution engine.

Models what the paper's characterization hinges on, at warp granularity:

* each SM has 4 SMSPs (sub-partitions); an SMSP issues at most one
  warp-instruction per cycle,
* a per-warp scoreboard lets execution continue past loads until the
  first dependent instruction, which then stalls the warp ("long
  scoreboard stall" for global/local loads, "short" for shared memory),
* thread blocks occupy resident-warp slots; the block scheduler streams
  queued blocks onto SMs as slots free up (waves),
* warps that are ready but not picked accumulate "not selected" stalls.

The engine consumes warp *programs* — either generators yielding the
5-tuple micro-ops defined in :mod:`repro.gpusim.isa`, or a
:class:`~repro.gpusim.trace.CompiledTrace` that lowers the whole launch
into flat arrays — and a :class:`~repro.gpusim.hierarchy.MemoryHierarchy`
that provides load completion times.  Scheduling is loose-round-robin:
the ready warp with the earliest ready time issues first; ties break
deterministically.

Two executors implement identical semantics:

* the **compiled fast path** (default) indexes a ``CompiledTrace``'s
  preallocated op array; generator programs are lowered once via
  :func:`~repro.gpusim.trace.compile_programs` before execution,
* the **reference path** (``reference=True``, or
  ``REPRO_GPUSIM_ENGINE=reference``) drives the generators directly —
  the slow, obviously-correct implementation the fast path is pinned
  against, field for field, in ``tests/gpusim/test_trace_compile.py``.

Scheduling semantics shared by both executors:

* **ALU-burst coalescing** — consecutive ALU micro-ops with no
  intervening dependency issue as a single burst; the warp holds its
  SMSP issue port across the chain (a dependent arithmetic chain never
  yields the port mid-burst).  This is what lets the trace compiler
  fuse such ops at compile time without changing any statistic.
* **one-step scoreboard scheduling** — when the op following a
  dispatch depends on an outstanding scoreboard tag, the stall
  (``ready_time - warp_avail``) is attributed immediately and the warp
  is scheduled directly at the dependency's ready time, rather than
  waking at ``warp_avail`` only to re-queue.  Stall attribution is
  therefore measured from when the warp *could have issued* — the way
  NCU's warp-state sampling attributes long/short-scoreboard cycles —
  and each dependency costs one heap event instead of two.  Makespans,
  issue counts and not-selected stalls are unaffected.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.config.gpu import CACHE_LINE_BYTES, GpuSpec
from repro.gpusim.hierarchy import MemoryHierarchy
from repro.gpusim.isa import (
    OP_ALU,
    OP_LD_GLOBAL,
    OP_LD_LOCAL,
    OP_LD_SHARED,
    OP_PREFETCH_L1,
    OP_PREFETCH_L2,
    OP_ST_GLOBAL,
    OP_ST_LOCAL,
    OP_ST_SHARED,
)
from repro.gpusim.trace import CompiledTrace, compile_programs

WarpProgram = Callable[[], Iterator[tuple]]

#: Environment switch for the default execution path; set to
#: ``reference`` to run the generator-driven reference implementation.
ENGINE_ENV = "REPRO_GPUSIM_ENGINE"


def _reference_default() -> bool:
    return os.environ.get(ENGINE_ENV, "").strip().lower() in (
        "reference", "generator", "slow"
    )


class _Warp:
    __slots__ = ("gen", "op", "sm", "smsp", "pending", "short_tags",
                 "avail", "start", "block")

    def __init__(self, gen: Iterator[tuple], sm: int, smsp: int,
                 start: float, block: list) -> None:
        self.gen = gen
        self.op = next(gen, None)
        self.sm = sm
        self.smsp = smsp
        self.pending: dict[int, float] = {}
        self.short_tags: set[int] = set()
        self.avail = start
        self.start = start
        self.block = block


@dataclass
class RawKernelStats:
    """Raw counters from one kernel execution (pre-profiler)."""

    name: str
    makespan_cycles: float
    n_warps: int
    warps_per_sm: int
    n_smsp: int
    issued_insts: int
    alu_insts: int
    ld_global_insts: int
    ld_local_insts: int
    ld_shared_insts: int
    st_insts: int
    prefetch_insts: int
    warp_resident_cycles: float
    stall_long_scoreboard: float
    stall_short_scoreboard: float
    stall_not_selected: float

    @property
    def load_insts(self) -> int:
        """Load instructions the way NCU counts them for the paper's
        "#load insts" rows (global + local; shared reported separately)."""
        return self.ld_global_insts + self.ld_local_insts


def run_kernel(
    gpu: GpuSpec,
    hierarchy: MemoryHierarchy,
    programs: Iterable[WarpProgram] | CompiledTrace,
    *,
    warps_per_sm: int,
    warps_per_block: int = 8,
    name: str = "kernel",
    reference: bool | None = None,
) -> RawKernelStats:
    """Execute one kernel launch and return its raw statistics.

    ``programs`` supplies one generator factory per warp in launch order,
    or a pre-lowered :class:`CompiledTrace`; consecutive groups of
    ``warps_per_block`` form thread blocks, which are distributed
    round-robin over the simulated SMs and streamed into
    ``warps_per_sm // warps_per_block`` resident slots per SM.

    ``reference`` selects the generator-driven reference executor
    (default: the compiled fast path, unless ``REPRO_GPUSIM_ENGINE``
    says otherwise).  Both executors produce identical statistics.
    """
    if warps_per_sm <= 0:
        raise ValueError("kernel has zero occupancy (too many registers?)")
    if reference is None:
        reference = _reference_default()
    if isinstance(programs, CompiledTrace):
        trace = programs
        if trace.n_warps == 0:
            raise ValueError("kernel launched with zero warps")
        if reference:
            return _run_reference(
                gpu, hierarchy, trace.to_programs(),
                warps_per_sm=warps_per_sm, warps_per_block=warps_per_block,
                name=name,
            )
        return _run_compiled(
            gpu, hierarchy, trace,
            warps_per_sm=warps_per_sm, warps_per_block=warps_per_block,
            name=name,
        )
    programs = list(programs)
    if not programs:
        raise ValueError("kernel launched with zero warps")
    if reference:
        return _run_reference(
            gpu, hierarchy, programs,
            warps_per_sm=warps_per_sm, warps_per_block=warps_per_block,
            name=name,
        )
    return _run_compiled(
        gpu, hierarchy, compile_programs(programs),
        warps_per_sm=warps_per_sm, warps_per_block=warps_per_block,
        name=name,
    )


# ----------------------------------------------------------------------
# compiled fast path: index the flat trace op array
# ----------------------------------------------------------------------
def _run_compiled(
    gpu: GpuSpec,
    hierarchy: MemoryHierarchy,
    trace: CompiledTrace,
    *,
    warps_per_sm: int,
    warps_per_block: int,
    name: str,
) -> RawKernelStats:
    num_sms = gpu.num_sms
    smsps_per_sm = gpu.smsps_per_sm
    n_smsp = num_sms * smsps_per_sm
    lat_shared = gpu.lat_shared

    # Instruction-mix counters are schedule-independent: every op issues
    # exactly once, so they are precomputed from the trace and the hot
    # loop tracks only time-dependent quantities.
    ops, counts = trace.exec_form()
    op_dep = trace.dep
    starts = trace.warp_starts
    n_warps = trace.n_warps

    blocks = [
        range(i, min(i + warps_per_block, n_warps))
        for i in range(0, n_warps, warps_per_block)
    ]
    queues: list[deque] = [deque() for _ in range(num_sms)]
    for bid, block in enumerate(blocks):
        queues[bid % num_sms].append(block)
    resident_slots = max(1, warps_per_sm // warps_per_block)

    smsp_next_free = [0.0] * n_smsp
    sm_warp_counter = [0] * num_sms

    # per-warp state, indexed by launch id (pc travels in heap entries)
    w_sm = [0] * n_warps
    w_smsp = [0] * n_warps
    w_start = [0.0] * n_warps
    w_pending: list[dict] = [None] * n_warps  # type: ignore[list-item]
    w_short: list[set] = [None] * n_warps  # type: ignore[list-item]
    w_block: list[list] = [None] * n_warps  # type: ignore[list-item]

    heap: list[tuple[float, int, int, int]] = []
    seq = 0

    stall_long = stall_short = stall_ns = 0.0
    warp_resident = 0.0
    max_finish = 0.0
    n_warps_run = 0

    def start_block(sm: int, warp_ids, t: float) -> None:
        nonlocal seq, n_warps_run
        # block state: [warps remaining, latest finish, home SM]
        block_state = [len(warp_ids), t, sm]
        for wi in warp_ids:
            smsp = sm * smsps_per_sm + (sm_warp_counter[sm] % smsps_per_sm)
            sm_warp_counter[sm] += 1
            w_sm[wi] = sm
            w_smsp[wi] = smsp
            w_start[wi] = t
            w_pending[wi] = {}
            w_short[wi] = set()
            w_block[wi] = block_state
            n_warps_run += 1
            if starts[wi] == starts[wi + 1]:  # empty program
                _retire(wi, t)
                continue
            seq += 1
            heapq.heappush(heap, (t, seq, wi, starts[wi]))

    def _retire(wi: int, finish: float) -> None:
        nonlocal warp_resident, max_finish
        warp_resident += finish - w_start[wi]
        if finish > max_finish:
            max_finish = finish
        block_state = w_block[wi]
        block_state[0] -= 1
        if finish > block_state[1]:
            block_state[1] = finish
        if block_state[0] == 0:
            home = block_state[2]
            if queues[home]:
                start_block(home, queues[home].popleft(), block_state[1])

    for sm in range(num_sms):
        for _ in range(resident_slots):
            if queues[sm]:
                start_block(sm, queues[sm].popleft(), 0.0)

    heappush, heappop = heapq.heappush, heapq.heappop
    load = hierarchy.load
    load_local = hierarchy.load_local
    store = hierarchy.store
    pf_l1 = hierarchy.prefetch_into_l1
    pf_l2 = hierarchy.prefetch_pin_l2
    # Inlined warm-hit fast path for streaming addresses (offsets /
    # indices / output): once a line is in the per-SM seen set, a load
    # is a pure L1 hit — the accounting is accumulated locally and
    # flushed to the hierarchy after the loop (identical final stats).
    stream_lo, stream_hi = hierarchy.streaming_range
    stream_seen = hierarchy._stream_seen
    lat_l1 = hierarchy.gpu.lat_l1
    line_shift = CACHE_LINE_BYTES.bit_length() - 1
    stream_hits = [0] * num_sms

    while heap:
        t, _, wi, pc = heappop(heap)
        smsp = w_smsp[wi]
        nf = smsp_next_free[smsp]
        if nf > t:
            stall_ns += nf - t
            t_can = nf
        else:
            t_can = t

        end = starts[wi + 1]
        kind, a_v, b_v, tag_v = ops[pc]
        pc += 1
        if kind == OP_ALU:
            # runtime burst coalescing (same rule as the compiler's
            # ALU fusion, so fused and unfused traces agree)
            while pc < end:
                op = ops[pc]
                if op[0] != OP_ALU or op_dep[pc] >= 0:
                    break
                a_v += op[1]
                pc += 1
            avail = t_can + a_v
        elif kind == OP_LD_GLOBAL:
            sm = w_sm[wi]
            if (
                stream_lo <= a_v < stream_hi
                and (a_v >> line_shift) in stream_seen[sm]
            ):
                stream_hits[sm] += b_v
                w_pending[wi][tag_v] = t_can + lat_l1
            else:
                w_pending[wi][tag_v] = load(sm, a_v, b_v, t_can)
            avail = t_can + 1
        elif kind == OP_LD_LOCAL:
            w_pending[wi][tag_v] = load_local(w_sm[wi], a_v, b_v, t_can)
            avail = t_can + 1
        elif kind == OP_LD_SHARED:
            w_pending[wi][tag_v] = t_can + lat_shared
            w_short[wi].add(tag_v)
            avail = t_can + 1
        elif kind == OP_ST_GLOBAL:
            store(w_sm[wi], a_v, b_v, t_can)
            avail = t_can + 1
        elif kind == OP_ST_SHARED:
            avail = t_can + 1
        elif kind == OP_ST_LOCAL:
            store(w_sm[wi], a_v, b_v, t_can, local=True)
            avail = t_can + 1
        elif kind == OP_PREFETCH_L1:
            pf_l1(w_sm[wi], a_v, b_v, t_can)
            avail = t_can + 1
        elif kind == OP_PREFETCH_L2:
            pf_l2(a_v, b_v, t_can)
            avail = t_can + 1
        else:
            raise ValueError(f"unknown micro-op kind {kind}")
        smsp_next_free[smsp] = avail

        if pc == end:
            _retire(wi, avail)
            continue

        # one-step scoreboard scheduling for the next op
        dep = op_dep[pc]
        if dep >= 0:
            pending = w_pending[wi]
            dep_ready = pending.get(dep) if pending else None
            if dep_ready is not None:
                del pending[dep]
                if dep_ready > avail:
                    short_tags = w_short[wi]
                    if dep in short_tags:
                        stall_short += dep_ready - avail
                        short_tags.discard(dep)
                    else:
                        stall_long += dep_ready - avail
                    seq += 1
                    heappush(heap, (dep_ready, seq, wi, pc))
                    continue
                w_short[wi].discard(dep)
        seq += 1
        heappush(heap, (avail, seq, wi, pc))

    for sm in range(num_sms):
        if stream_hits[sm]:
            hierarchy.l1s[sm].hit_sectors += stream_hits[sm]

    if n_warps_run != n_warps:
        raise RuntimeError(
            "block scheduler lost warps: "
            f"ran {n_warps_run} of {n_warps}"
        )

    return RawKernelStats(
        name=name,
        makespan_cycles=max_finish,
        n_warps=n_warps,
        warps_per_sm=warps_per_sm,
        n_smsp=n_smsp,
        issued_insts=counts["issued"],
        alu_insts=counts["alu"],
        ld_global_insts=counts["ld_global"],
        ld_local_insts=counts["ld_local"],
        ld_shared_insts=counts["ld_shared"],
        st_insts=counts["st"],
        prefetch_insts=counts["prefetch"],
        warp_resident_cycles=warp_resident,
        stall_long_scoreboard=stall_long,
        stall_short_scoreboard=stall_short,
        stall_not_selected=stall_ns,
    )


# ----------------------------------------------------------------------
# reference path: drive generator programs directly
# ----------------------------------------------------------------------
def _run_reference(
    gpu: GpuSpec,
    hierarchy: MemoryHierarchy,
    programs: list[WarpProgram],
    *,
    warps_per_sm: int,
    warps_per_block: int,
    name: str,
) -> RawKernelStats:
    num_sms = gpu.num_sms
    smsps_per_sm = gpu.smsps_per_sm
    n_smsp = num_sms * smsps_per_sm
    lat_shared = gpu.lat_shared

    blocks = [
        programs[i:i + warps_per_block]
        for i in range(0, len(programs), warps_per_block)
    ]
    queues: list[deque] = [deque() for _ in range(num_sms)]
    for b, block in enumerate(blocks):
        queues[b % num_sms].append(block)
    resident_slots = max(1, warps_per_sm // warps_per_block)

    smsp_next_free = [0.0] * n_smsp
    smsp_issued = [0] * n_smsp
    sm_warp_counter = [0] * num_sms

    heap: list[tuple[float, int, _Warp]] = []
    seq = 0

    # counters
    n_alu = n_ldg = n_ldl = n_lds = n_st = n_pf = 0
    stall_long = stall_short = stall_ns = 0.0
    warp_resident = 0.0
    max_finish = 0.0
    n_warps_run = 0

    def start_block(sm: int, factories: list[WarpProgram], t: float) -> None:
        nonlocal seq, n_warps_run
        # block state: [warps remaining, latest finish, home SM]
        block_state = [len(factories), t, sm]
        for factory in factories:
            smsp = sm * smsps_per_sm + (sm_warp_counter[sm] % smsps_per_sm)
            sm_warp_counter[sm] += 1
            warp = _Warp(factory(), sm, smsp, t, block_state)
            n_warps_run += 1
            if warp.op is None:  # empty program: finishes immediately
                _retire(warp, t)
                continue
            seq += 1
            heapq.heappush(heap, (t, seq, warp))

    def _retire(warp: _Warp, finish: float) -> None:
        nonlocal warp_resident, max_finish
        warp_resident += finish - warp.start
        if finish > max_finish:
            max_finish = finish
        block_state = warp.block
        block_state[0] -= 1
        if finish > block_state[1]:
            block_state[1] = finish
        if block_state[0] == 0:
            home = block_state[2]
            if queues[home]:
                start_block(home, queues[home].popleft(), block_state[1])

    for sm in range(num_sms):
        for _ in range(resident_slots):
            if queues[sm]:
                start_block(sm, queues[sm].popleft(), 0.0)

    heappush, heappop = heapq.heappush, heapq.heappop
    load = hierarchy.load
    store = hierarchy.store
    pf_l1 = hierarchy.prefetch_into_l1
    pf_l2 = hierarchy.prefetch_pin_l2

    while heap:
        t, _, w = heappop(heap)
        op = w.op
        smsp = w.smsp
        nf = smsp_next_free[smsp]
        t_can = nf if nf > t else t
        if t_can > t:
            stall_ns += t_can - t

        kind = op[0]
        if kind == OP_ALU:
            n = op[1]
            # runtime burst coalescing: a dependency-free ALU op directly
            # following an ALU op joins the same burst (the warp holds
            # its issue port across the chain) — the same rule the trace
            # compiler applies at compile time
            nxt = next(w.gen, None)
            while nxt is not None and nxt[0] == OP_ALU and nxt[4] is None:
                n += nxt[1]
                nxt = next(w.gen, None)
            smsp_next_free[smsp] = t_can + n
            smsp_issued[smsp] += n
            n_alu += n
            w.avail = t_can + n
        else:
            if kind == OP_LD_GLOBAL:
                w.pending[op[3]] = load(w.sm, op[1], op[2], t_can)
                n_ldg += 1
            elif kind == OP_LD_LOCAL:
                w.pending[op[3]] = load(w.sm, op[1], op[2], t_can, local=True)
                n_ldl += 1
            elif kind == OP_LD_SHARED:
                tag = op[3]
                w.pending[tag] = t_can + lat_shared
                w.short_tags.add(tag)
                n_lds += 1
            elif kind == OP_ST_GLOBAL:
                store(w.sm, op[1], op[2], t_can)
                n_st += 1
            elif kind == OP_ST_SHARED:
                n_st += 1
            elif kind == OP_ST_LOCAL:
                store(w.sm, op[1], op[2], t_can, local=True)
                n_st += 1
            elif kind == OP_PREFETCH_L1:
                pf_l1(w.sm, op[1], op[2], t_can)
                n_pf += 1
            elif kind == OP_PREFETCH_L2:
                pf_l2(op[1], op[2], t_can)
                n_pf += 1
            else:
                raise ValueError(f"unknown micro-op kind {kind}")
            smsp_next_free[smsp] = t_can + 1
            smsp_issued[smsp] += 1
            w.avail = t_can + 1
            nxt = next(w.gen, None)

        if nxt is None:
            _retire(w, w.avail)
            continue

        # one-step scoreboard scheduling for the next op
        avail = w.avail
        nxt_t = avail
        dep = nxt[4]
        if dep is not None:
            dep_ready = w.pending.get(dep)
            if dep_ready is not None:
                del w.pending[dep]
                if dep_ready > avail:
                    if dep in w.short_tags:
                        stall_short += dep_ready - avail
                        w.short_tags.discard(dep)
                    else:
                        stall_long += dep_ready - avail
                    nxt_t = dep_ready
                else:
                    w.short_tags.discard(dep)
        w.op = nxt
        seq += 1
        heappush(heap, (nxt_t, seq, w))

    if n_warps_run != len(programs):
        raise RuntimeError(
            "block scheduler lost warps: "
            f"ran {n_warps_run} of {len(programs)}"
        )

    return RawKernelStats(
        name=name,
        makespan_cycles=max_finish,
        n_warps=len(programs),
        warps_per_sm=warps_per_sm,
        n_smsp=n_smsp,
        issued_insts=sum(smsp_issued),
        alu_insts=n_alu,
        ld_global_insts=n_ldg,
        ld_local_insts=n_ldl,
        ld_shared_insts=n_lds,
        st_insts=n_st,
        prefetch_insts=n_pf,
        warp_resident_cycles=warp_resident,
        stall_long_scoreboard=stall_long,
        stall_short_scoreboard=stall_short,
        stall_not_selected=stall_ns,
    )
