"""Event-driven warp-level GPU execution engine.

Models what the paper's characterization hinges on, at warp granularity:

* each SM has 4 SMSPs (sub-partitions); an SMSP issues at most one
  warp-instruction per cycle,
* a per-warp scoreboard lets execution continue past loads until the
  first dependent instruction, which then stalls the warp ("long
  scoreboard stall" for global/local loads, "short" for shared memory),
* thread blocks occupy resident-warp slots; the block scheduler streams
  queued blocks onto SMs as slots free up (waves),
* warps that are ready but not picked accumulate "not selected" stalls.

The engine consumes warp *programs* — generators yielding the 5-tuple
micro-ops defined in :mod:`repro.gpusim.isa` — and a
:class:`~repro.gpusim.hierarchy.MemoryHierarchy` that provides load
completion times.  Scheduling is loose-round-robin: the ready warp with
the earliest ready time issues first; ties break deterministically.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.config.gpu import GpuSpec
from repro.gpusim.hierarchy import MemoryHierarchy
from repro.gpusim.isa import (
    OP_ALU,
    OP_LD_GLOBAL,
    OP_LD_LOCAL,
    OP_LD_SHARED,
    OP_PREFETCH_L1,
    OP_PREFETCH_L2,
    OP_ST_GLOBAL,
    OP_ST_LOCAL,
    OP_ST_SHARED,
)

WarpProgram = Callable[[], Iterator[tuple]]


class _Warp:
    __slots__ = ("gen", "op", "sm", "smsp", "pending", "short_tags",
                 "avail", "start", "block")

    def __init__(self, gen: Iterator[tuple], sm: int, smsp: int,
                 start: float, block: list) -> None:
        self.gen = gen
        self.op = next(gen, None)
        self.sm = sm
        self.smsp = smsp
        self.pending: dict[int, float] = {}
        self.short_tags: set[int] = set()
        self.avail = start
        self.start = start
        self.block = block


@dataclass
class RawKernelStats:
    """Raw counters from one kernel execution (pre-profiler)."""

    name: str
    makespan_cycles: float
    n_warps: int
    warps_per_sm: int
    n_smsp: int
    issued_insts: int
    alu_insts: int
    ld_global_insts: int
    ld_local_insts: int
    ld_shared_insts: int
    st_insts: int
    prefetch_insts: int
    warp_resident_cycles: float
    stall_long_scoreboard: float
    stall_short_scoreboard: float
    stall_not_selected: float

    @property
    def load_insts(self) -> int:
        """Load instructions the way NCU counts them for the paper's
        "#load insts" rows (global + local; shared reported separately)."""
        return self.ld_global_insts + self.ld_local_insts


def run_kernel(
    gpu: GpuSpec,
    hierarchy: MemoryHierarchy,
    programs: Iterable[WarpProgram],
    *,
    warps_per_sm: int,
    warps_per_block: int = 8,
    name: str = "kernel",
) -> RawKernelStats:
    """Execute one kernel launch and return its raw statistics.

    ``programs`` supplies one generator factory per warp, in launch order;
    consecutive groups of ``warps_per_block`` form thread blocks, which
    are distributed round-robin over the simulated SMs and streamed into
    ``warps_per_sm // warps_per_block`` resident slots per SM.
    """
    programs = list(programs)
    if not programs:
        raise ValueError("kernel launched with zero warps")
    if warps_per_sm <= 0:
        raise ValueError("kernel has zero occupancy (too many registers?)")

    num_sms = gpu.num_sms
    smsps_per_sm = gpu.smsps_per_sm
    n_smsp = num_sms * smsps_per_sm
    lat_shared = gpu.lat_shared

    blocks = [
        programs[i:i + warps_per_block]
        for i in range(0, len(programs), warps_per_block)
    ]
    queues: list[deque] = [deque() for _ in range(num_sms)]
    for b, block in enumerate(blocks):
        queues[b % num_sms].append(block)
    resident_slots = max(1, warps_per_sm // warps_per_block)

    smsp_next_free = [0.0] * n_smsp
    smsp_issued = [0] * n_smsp
    sm_warp_counter = [0] * num_sms

    heap: list[tuple[float, int, _Warp]] = []
    seq = 0

    # counters
    n_alu = n_ldg = n_ldl = n_lds = n_st = n_pf = 0
    stall_long = stall_short = stall_ns = 0.0
    warp_resident = 0.0
    max_finish = 0.0
    n_warps_run = 0

    def start_block(sm: int, factories: list[WarpProgram], t: float) -> None:
        nonlocal seq, n_warps_run
        # block state: [warps remaining, latest finish, home SM]
        block_state = [len(factories), t, sm]
        for factory in factories:
            smsp = sm * smsps_per_sm + (sm_warp_counter[sm] % smsps_per_sm)
            sm_warp_counter[sm] += 1
            warp = _Warp(factory(), sm, smsp, t, block_state)
            n_warps_run += 1
            if warp.op is None:  # empty program: finishes immediately
                _retire(warp, t)
                continue
            seq += 1
            heapq.heappush(heap, (t, seq, warp))

    def _retire(warp: _Warp, finish: float) -> None:
        nonlocal warp_resident, max_finish
        warp_resident += finish - warp.start
        if finish > max_finish:
            max_finish = finish
        block_state = warp.block
        block_state[0] -= 1
        if finish > block_state[1]:
            block_state[1] = finish
        if block_state[0] == 0:
            home = block_state[2]
            if queues[home]:
                start_block(home, queues[home].popleft(), block_state[1])

    for sm in range(num_sms):
        for _ in range(resident_slots):
            if queues[sm]:
                start_block(sm, queues[sm].popleft(), 0.0)

    heappush, heappop = heapq.heappush, heapq.heappop
    load = hierarchy.load
    store = hierarchy.store
    pf_l1 = hierarchy.prefetch_into_l1
    pf_l2 = hierarchy.prefetch_pin_l2

    while heap:
        t, _, w = heappop(heap)
        op = w.op
        dep = op[4]
        smsp = w.smsp
        nf = smsp_next_free[smsp]
        t_can = nf if nf > t else t
        if dep is not None:
            dep_ready = w.pending.get(dep)
            if dep_ready is not None:
                if dep_ready > t_can:
                    if dep in w.short_tags:
                        stall_short += dep_ready - t_can
                    else:
                        stall_long += dep_ready - t_can
                    seq += 1
                    heappush(heap, (dep_ready, seq, w))
                    continue
                del w.pending[dep]
                w.short_tags.discard(dep)
        if t_can > t:
            stall_ns += t_can - t

        kind = op[0]
        if kind == OP_ALU:
            n = op[1]
            smsp_next_free[smsp] = t_can + n
            smsp_issued[smsp] += n
            n_alu += n
            w.avail = t_can + n
        elif kind == OP_LD_GLOBAL:
            w.pending[op[3]] = load(w.sm, op[1], op[2], t_can)
            smsp_next_free[smsp] = t_can + 1
            smsp_issued[smsp] += 1
            n_ldg += 1
            w.avail = t_can + 1
        elif kind == OP_LD_LOCAL:
            w.pending[op[3]] = load(w.sm, op[1], op[2], t_can, local=True)
            smsp_next_free[smsp] = t_can + 1
            smsp_issued[smsp] += 1
            n_ldl += 1
            w.avail = t_can + 1
        elif kind == OP_LD_SHARED:
            tag = op[3]
            w.pending[tag] = t_can + lat_shared
            w.short_tags.add(tag)
            smsp_next_free[smsp] = t_can + 1
            smsp_issued[smsp] += 1
            n_lds += 1
            w.avail = t_can + 1
        elif kind == OP_ST_GLOBAL:
            store(w.sm, op[1], op[2], t_can)
            smsp_next_free[smsp] = t_can + 1
            smsp_issued[smsp] += 1
            n_st += 1
            w.avail = t_can + 1
        elif kind == OP_ST_SHARED:
            smsp_next_free[smsp] = t_can + 1
            smsp_issued[smsp] += 1
            n_st += 1
            w.avail = t_can + 1
        elif kind == OP_ST_LOCAL:
            store(w.sm, op[1], op[2], t_can, local=True)
            smsp_next_free[smsp] = t_can + 1
            smsp_issued[smsp] += 1
            n_st += 1
            w.avail = t_can + 1
        elif kind == OP_PREFETCH_L1:
            pf_l1(w.sm, op[1], op[2], t_can)
            smsp_next_free[smsp] = t_can + 1
            smsp_issued[smsp] += 1
            n_pf += 1
            w.avail = t_can + 1
        elif kind == OP_PREFETCH_L2:
            pf_l2(op[1], op[2], t_can)
            smsp_next_free[smsp] = t_can + 1
            smsp_issued[smsp] += 1
            n_pf += 1
            w.avail = t_can + 1
        else:
            raise ValueError(f"unknown micro-op kind {kind}")

        nxt = next(w.gen, None)
        if nxt is None:
            _retire(w, w.avail)
        else:
            w.op = nxt
            seq += 1
            heappush(heap, (w.avail, seq, w))

    if n_warps_run != len(programs):
        raise RuntimeError(
            "block scheduler lost warps: "
            f"ran {n_warps_run} of {len(programs)}"
        )

    return RawKernelStats(
        name=name,
        makespan_cycles=max_finish,
        n_warps=len(programs),
        warps_per_sm=warps_per_sm,
        n_smsp=n_smsp,
        issued_insts=sum(smsp_issued),
        alu_insts=n_alu,
        ld_global_insts=n_ldg,
        ld_local_insts=n_ldl,
        ld_shared_insts=n_lds,
        st_insts=n_st,
        prefetch_insts=n_pf,
        warp_resident_cycles=warp_resident,
        stall_long_scoreboard=stall_long,
        stall_short_scoreboard=stall_short,
        stall_not_selected=stall_ns,
    )
