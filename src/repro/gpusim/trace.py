"""Compiled warp traces: flat-array lowering of warp programs.

The generator encoding in :mod:`repro.gpusim.isa` is convenient to
write but expensive to execute: every micro-op costs a generator frame
resume and a fresh 5-tuple.  A :class:`CompiledTrace` lowers a whole
kernel launch into five flat int columns (op kind / operand A /
operand B / scoreboard tag / dependency tag) plus a CSR-style
``warp_starts`` index, so the engine's inner loop indexes preallocated
arrays instead of driving Python generators.

Lowering is mechanical and loss-free; the one compile-time optimization
is *ALU fusion*: an ``OP_ALU`` op directly following another ``OP_ALU``
with no dependency is merged into its predecessor's cycle count.  The
engine applies the identical fusion rule at runtime on both execution
paths (see :mod:`repro.gpusim.engine`), so a fused and an unfused trace
of the same program produce identical statistics — fusion only shrinks
the op stream and the event count.

``None`` tags/deps are stored as ``-1`` so every column stays a plain
int column; :func:`compile_programs` converts on the way in and
:meth:`CompiledTrace.to_programs` converts back on the way out.

A trace also knows its :meth:`~CompiledTrace.fingerprint` — a content
hash over the packed columns — a stable identity for deduplication and
equivalence tests.  (The kernel-result memo in
:mod:`repro.gpusim.memo` keys on the *inputs* that produce a trace —
workload content, build, lowering constants — so cache hits never pay
for trace construction; see ``run_table_kernel``.)
"""

from __future__ import annotations

import hashlib
from array import array
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.gpusim.isa import (
    OP_ALU,
    OP_LD_GLOBAL,
    OP_LD_LOCAL,
    OP_LD_SHARED,
    OP_NAMES,
    OP_PREFETCH_L1,
    OP_PREFETCH_L2,
    OP_ST_GLOBAL,
    OP_ST_LOCAL,
    OP_ST_SHARED,
)

WarpProgram = Callable[[], Iterator[tuple]]


class CompiledTrace:
    """One kernel launch, lowered to flat per-op columns.

    ``kind[i]``, ``a[i]``, ``b[i]``, ``tag[i]``, ``dep[i]`` describe
    micro-op ``i``; warp ``w`` owns ops ``warp_starts[w]`` (inclusive)
    through ``warp_starts[w + 1]`` (exclusive).  Tag/dep use ``-1`` for
    "none".
    """

    __slots__ = ("kind", "a", "b", "tag", "dep", "warp_starts",
                 "_fingerprint", "_exec")

    def __init__(
        self,
        kind: list[int],
        a: list[int],
        b: list[int],
        tag: list[int],
        dep: list[int],
        warp_starts: list[int],
    ) -> None:
        n = len(kind)
        if not (len(a) == len(b) == len(tag) == len(dep) == n):
            raise ValueError("trace columns must have equal length")
        if not warp_starts or warp_starts[0] != 0 or warp_starts[-1] != n:
            raise ValueError("warp_starts must span [0, n_ops]")
        self.kind = kind
        self.a = a
        self.b = b
        self.tag = tag
        self.dep = dep
        self.warp_starts = warp_starts
        self._fingerprint: str | None = None
        self._exec: tuple[list[tuple], dict[str, int]] | None = None

    # ------------------------------------------------------------------
    @property
    def n_warps(self) -> int:
        return len(self.warp_starts) - 1

    @property
    def n_ops(self) -> int:
        return len(self.kind)

    def fingerprint(self) -> str:
        """Content hash of the trace (stable across processes/runs)."""
        if self._fingerprint is None:
            h = hashlib.sha256()
            for column in (self.kind, self.a, self.b, self.tag, self.dep,
                           self.warp_starts):
                h.update(array("q", column).tobytes())
                h.update(b"|")
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def exec_form(self) -> tuple[list[tuple], dict[str, int]]:
        """Execution form: one ``(kind, a, b, tag)`` tuple per op (the
        dep column is indexed separately), plus static counters.

        Every op issues exactly once regardless of scheduling, so the
        instruction-mix counters of :class:`RawKernelStats` are a pure
        function of the trace; precomputing them here (cached) lets the
        engine's hot loop track only time-dependent quantities.
        """
        if self._exec is None:
            kind = self.kind
            a = self.a
            ops = list(zip(kind, a, self.b, self.tag))
            if kind:
                kind_arr = np.asarray(kind, dtype=np.int64)
                n_alu = int(
                    np.asarray(a, dtype=np.int64)[kind_arr == OP_ALU].sum()
                )
            else:
                n_alu = 0
            counts = {
                "alu": n_alu,
                "ld_global": kind.count(OP_LD_GLOBAL),
                "ld_local": kind.count(OP_LD_LOCAL),
                "ld_shared": kind.count(OP_LD_SHARED),
                "st": (
                    kind.count(OP_ST_GLOBAL)
                    + kind.count(OP_ST_SHARED)
                    + kind.count(OP_ST_LOCAL)
                ),
                "prefetch": (
                    kind.count(OP_PREFETCH_L1) + kind.count(OP_PREFETCH_L2)
                ),
            }
            counts["issued"] = n_alu + (len(kind) - kind.count(OP_ALU))
            self._exec = (ops, counts)
        return self._exec

    def warp_ops(self, warp: int) -> Iterator[tuple]:
        """The 5-tuple micro-ops of one warp (ISA encoding, with None)."""
        kind, a, b = self.kind, self.a, self.b
        tag, dep = self.tag, self.dep
        for i in range(self.warp_starts[warp], self.warp_starts[warp + 1]):
            yield (
                kind[i], a[i], b[i],
                tag[i] if tag[i] >= 0 else None,
                dep[i] if dep[i] >= 0 else None,
            )

    def to_programs(self) -> list[WarpProgram]:
        """Generator-program adapters (for the reference engine path)."""

        def make(w: int) -> WarpProgram:
            return lambda: self.warp_ops(w)

        return [make(w) for w in range(self.n_warps)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledTrace):
            return NotImplemented
        return (
            self.kind == other.kind and self.a == other.a
            and self.b == other.b and self.tag == other.tag
            and self.dep == other.dep
            and self.warp_starts == other.warp_starts
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledTrace({self.n_warps} warps, {self.n_ops} ops, "
            f"{self.fingerprint()[:12]})"
        )


class TraceBuilder:
    """Incremental builder for :class:`CompiledTrace`.

    Structured kernel builders append ops warp by warp; consecutive ALU
    micro-ops are fused on the fly (``fuse=False`` keeps the stream
    verbatim, e.g. to pin down fused-versus-unfused equivalence in
    tests).
    """

    __slots__ = ("kind", "a", "b", "tag", "dep", "warp_starts", "fuse")

    def __init__(self, *, fuse: bool = True) -> None:
        self.kind: list[int] = []
        self.a: list[int] = []
        self.b: list[int] = []
        self.tag: list[int] = []
        self.dep: list[int] = []
        self.warp_starts: list[int] = [0]
        self.fuse = fuse

    def append(self, kind: int, a: int = 0, b: int = 0,
               tag: int = -1, dep: int = -1) -> None:
        """Append one micro-op to the current (last open) warp."""
        if kind not in OP_NAMES:
            raise ValueError(f"unknown micro-op kind {kind}")
        kinds = self.kind
        if (
            self.fuse
            and kind == OP_ALU
            and dep < 0
            and len(kinds) > self.warp_starts[-1]
            and kinds[-1] == OP_ALU
        ):
            self.a[-1] += a
            return
        kinds.append(kind)
        self.a.append(a)
        self.b.append(b)
        self.tag.append(tag)
        self.dep.append(dep)

    def append_op(self, op: tuple) -> None:
        """Append one ISA 5-tuple (``None`` tag/dep allowed)."""
        kind, a, b, tag, dep = op
        self.append(
            kind, a, b,
            -1 if tag is None else tag,
            -1 if dep is None else dep,
        )

    def end_warp(self) -> None:
        """Close the current warp (empty warps are legal)."""
        self.warp_starts.append(len(self.kind))

    @property
    def open_warp_ops(self) -> int:
        """Ops appended to the warp currently being built."""
        return len(self.kind) - self.warp_starts[-1]

    def build(self) -> CompiledTrace:
        if self.warp_starts[-1] != len(self.kind):
            raise ValueError("unterminated warp: call end_warp() first")
        return CompiledTrace(
            self.kind, self.a, self.b, self.tag, self.dep, self.warp_starts
        )


def compile_programs(
    programs: Iterable[WarpProgram], *, fuse: bool = True
) -> CompiledTrace:
    """Lower generator warp programs into one flat :class:`CompiledTrace`.

    Runs each generator exactly once, materializing its op stream into
    the builder (with ALU fusion unless disabled).  This is how the
    engine's fast path executes legacy generator programs; structured
    builders (:mod:`repro.kernels`) skip the generators entirely.
    """
    builder = TraceBuilder(fuse=fuse)
    append_op = builder.append_op
    for factory in programs:
        for op in factory():
            append_op(op)
        builder.end_warp()
    return builder.build()
