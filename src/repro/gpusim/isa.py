"""Micro-op encoding for warp-level kernel programs.

Kernel programs (``repro.kernels``) are Python generators that yield one
plain 5-tuple per warp-level instruction::

    (kind, a, b, tag, dep)

``kind`` selects the operation; ``a``/``b`` are operands (address +
sector count for memory ops, cycle count for ALU bursts); ``tag`` names
the destination scoreboard slot a load writes; ``dep`` names the
scoreboard slot this instruction must wait on (``None`` when independent).

Plain tuples (instead of objects) keep the event loop fast; this module
is the single place that documents the encoding.

Kinds
-----
``OP_ALU``        ``a`` back-to-back ALU instructions; occupies the SMSP
                  issue port for ``a`` cycles and advances the warp by
                  ``a`` cycles (a dependent arithmetic burst).
``OP_LD_GLOBAL``  global-memory load of ``b`` 32-byte sectors at address
                  ``a``; completion posted to scoreboard slot ``tag``.
``OP_LD_LOCAL``   local-memory load (register spills / LMPF buffers);
                  same semantics, different address space statistics.
``OP_LD_SHARED``  shared-memory load: fixed-latency, posts to ``tag``.
``OP_ST_GLOBAL``  global store (fire-and-forget, counted not timed).
``OP_ST_SHARED``  shared-memory store (single issue slot).
``OP_ST_LOCAL``   local store; allocates the line in L1 so later local
                  loads hit (spill round-trips).
``OP_PREFETCH_L1``  ``prefetch.global.L1``: runs the full memory path and
                  fills L1, but writes no register (no scoreboard slot).
``OP_PREFETCH_L2``  ``prefetch.global.L2::evict_last``: fills the L2
                  set-aside partition and marks the line resident.
"""

from __future__ import annotations

OP_ALU = 0
OP_LD_GLOBAL = 1
OP_LD_LOCAL = 2
OP_LD_SHARED = 3
OP_ST_GLOBAL = 4
OP_ST_SHARED = 5
OP_ST_LOCAL = 6
OP_PREFETCH_L1 = 7
OP_PREFETCH_L2 = 8

OP_NAMES = {
    OP_ALU: "alu",
    OP_LD_GLOBAL: "ld.global",
    OP_LD_LOCAL: "ld.local",
    OP_LD_SHARED: "ld.shared",
    OP_ST_GLOBAL: "st.global",
    OP_ST_SHARED: "st.shared",
    OP_ST_LOCAL: "st.local",
    OP_PREFETCH_L1: "prefetch.global.L1",
    OP_PREFETCH_L2: "prefetch.global.L2::evict_last",
}

#: kinds that read from the memory hierarchy
LOAD_KINDS = frozenset({OP_LD_GLOBAL, OP_LD_LOCAL})
#: kinds that post a completion time to the warp scoreboard
SCOREBOARD_KINDS = frozenset({OP_LD_GLOBAL, OP_LD_LOCAL, OP_LD_SHARED})


def alu(cycles: int, dep: int | None = None) -> tuple:
    """An ALU burst of ``cycles`` dependent instructions."""
    return (OP_ALU, cycles, 0, None, dep)


def ld_global(addr: int, sectors: int, tag: int,
              dep: int | None = None) -> tuple:
    return (OP_LD_GLOBAL, addr, sectors, tag, dep)


def ld_local(addr: int, sectors: int, tag: int,
             dep: int | None = None) -> tuple:
    return (OP_LD_LOCAL, addr, sectors, tag, dep)


def ld_shared(tag: int, dep: int | None = None) -> tuple:
    return (OP_LD_SHARED, 0, 0, tag, dep)


def st_global(addr: int, sectors: int, dep: int | None = None) -> tuple:
    return (OP_ST_GLOBAL, addr, sectors, None, dep)


def st_shared(dep: int | None = None) -> tuple:
    return (OP_ST_SHARED, 0, 0, None, dep)


def st_local(addr: int, sectors: int, dep: int | None = None) -> tuple:
    return (OP_ST_LOCAL, addr, sectors, None, dep)


def prefetch_l1(addr: int, sectors: int, dep: int | None = None) -> tuple:
    return (OP_PREFETCH_L1, addr, sectors, None, dep)


def prefetch_l2(addr: int, sectors: int, dep: int | None = None) -> tuple:
    return (OP_PREFETCH_L2, addr, sectors, None, dep)
