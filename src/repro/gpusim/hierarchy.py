"""The GPU memory hierarchy: per-SM L1 + uTLB, shared L2, HBM, MSHRs.

Latency model (paper Table I): an access pays the latency of the level
that supplies it — L1 ~38 cycles, L2 ~262, HBM ~466 plus queueing — and,
on an L1 miss, an address-translation cost when the per-SM uTLB misses.
The uTLB is what separates `random` (hundreds of thousands of 4 KB pages)
from the hot datasets, reproducing per-load stall cycles well above the
raw HBM latency that the paper measures.

Outstanding fills are tracked in a global MSHR map so that concurrent
misses to the same line merge instead of issuing duplicate DRAM reads —
essential for the ``one_item`` dataset where thousands of warps miss the
same line at t=0 and the paper reports ~zero DRAM traffic.
"""

from __future__ import annotations

from repro.config.gpu import CACHE_LINE_BYTES, GpuSpec
from repro.gpusim.cache import SectoredCache
from repro.gpusim.hbm import HbmChannel

_LINE_SHIFT = CACHE_LINE_BYTES.bit_length() - 1


class Tlb:
    """Per-SM micro-TLB over small pages, LRU via insertion-ordered dict.

    Page walks are tracked like MSHRs: while a walk is in flight, other
    probes of the same page wait for the same walk instead of starting a
    new one — so the four warps sharing one embedding row all pay the
    translation latency of its (cold) page, as they do on hardware.
    """

    __slots__ = ("entries", "capacity", "page_shift", "penalty",
                 "hits", "misses", "walks")

    def __init__(self, capacity: int, page_bytes: int, penalty: int) -> None:
        self.entries: dict[int, None] = {}
        self.capacity = capacity
        self.page_shift = page_bytes.bit_length() - 1
        self.penalty = penalty
        self.hits = 0
        self.misses = 0
        self.walks: dict[int, float] = {}

    def lookup(self, addr: int, now: float) -> float:
        """Translate; returns the extra cycles this access spends waiting
        for the page walk (0 on a TLB hit with no walk in flight)."""
        page = addr >> self.page_shift
        entries = self.entries
        if page in entries:
            del entries[page]
            entries[page] = None
            done = self.walks.get(page)
            if done is not None:
                if done > now:  # join the in-flight walk
                    self.hits += 1
                    return done - now
                del self.walks[page]
            self.hits += 1
            return 0.0
        self.misses += 1
        if len(entries) >= self.capacity:
            victim = next(iter(entries))
            del entries[victim]
            self.walks.pop(victim, None)
        entries[page] = None
        self.walks[page] = now + self.penalty
        return float(self.penalty)


class MemoryHierarchy:
    """L1s (one per simulated SM), shared L2, HBM and the MSHR map.

    Two address classes get special handling so proportional GPU slicing
    only affects what it is meant to model (the irregular table gathers):

    * ``streaming_range`` — offsets/indices/output arrays.  These are
      sequential, line-reused streams that always fit in a real L1; they
      hit after first touch regardless of the scaled L1 capacity (first
      touch pays the full L2/HBM path).
    * local memory — register spills and LMPF buffers are private
      per-warp lines.  While the kernel's total local footprint per SM
      fits the *full-chip* L1 budget they are served at L1 latency; once
      it overflows (heavy spilling at high occupancy, the paper's
      64-warp point) every local access round-trips through the L2
      service channel, consuming its bandwidth — the mechanism that
      makes over-aggressive ``-maxrregcount`` lose (Figure 6).

    The L2 is modelled with both a capacity (the sectored cache) and a
    bandwidth service channel: L2-supplied reads queue on the channel, so
    spill-heavy or L2-resident workloads see realistic serialization.
    """

    def __init__(
        self,
        gpu: GpuSpec,
        *,
        l2_set_aside_bytes: int = 0,
        streaming_range: tuple[int, int] | None = None,
    ) -> None:
        if l2_set_aside_bytes < 0 or l2_set_aside_bytes > gpu.l2_set_aside_bytes:
            raise ValueError(
                "set-aside must be within the GPU's residency-control limit "
                f"(0..{gpu.l2_set_aside_bytes} B)"
            )
        self.gpu = gpu
        self.l1s = [
            SectoredCache(f"L1-sm{i}", gpu.l1_bytes, gpu.l1_assoc)
            for i in range(gpu.num_sms)
        ]
        normal_l2 = gpu.l2_bytes - l2_set_aside_bytes
        self.l2 = SectoredCache(
            "L2", normal_l2, gpu.l2_assoc,
            pin_capacity_bytes=l2_set_aside_bytes,
        )
        self.hbm = HbmChannel(gpu.lat_hbm, gpu.hbm_bytes_per_cycle)
        self.l2_channel = HbmChannel(gpu.lat_l2, gpu.l2_bytes_per_cycle)
        self.local_overflow = False
        self.tlbs = [
            Tlb(gpu.tlb_entries, gpu.tlb_page_bytes, gpu.tlb_miss_penalty)
            for i in range(gpu.num_sms)
        ]
        self.inflight: dict[int, float] = {}
        self.streaming_range = streaming_range or (0, 0)
        self._stream_seen: list[set[int]] = [
            set() for _ in range(gpu.num_sms)
        ]
        self.local_read_sectors = 0
        self.local_write_sectors = 0
        self.global_write_sectors = 0

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------
    def load(self, sm: int, addr: int, sectors: int, now: float,
             *, local: bool = False) -> float:
        """A warp-level load; returns the cycle its data is available."""
        gpu = self.gpu
        if local:
            return self.load_local(sm, addr, sectors, now)
        line = addr >> _LINE_SHIFT
        stream_lo, stream_hi = self.streaming_range
        if stream_lo <= addr < stream_hi:
            seen = self._stream_seen[sm]
            if line in seen:
                self.l1s[sm].hit_sectors += sectors
                return now + gpu.lat_l1
            seen.add(line)
            self.l1s[sm].miss_sectors += sectors
            # first touch pays the normal L2/DRAM path
            if self.l2.access(line, sectors):
                return self.l2_channel.read(sectors, now)
            return self.hbm.read(sectors, now)
        inflight = self.inflight
        if self.l1s[sm].access(line, sectors):
            ready = inflight.get(line)
            if ready is not None:
                if ready > now:  # merged with an outstanding fill
                    return ready if ready > now + gpu.lat_l1 \
                        else now + gpu.lat_l1
                del inflight[line]
            return now + gpu.lat_l1
        extra = self.tlbs[sm].lookup(addr, now)
        if self.l2.access(line, sectors):
            ready = inflight.get(line)
            if ready is not None:
                if ready > now:
                    base = self.l2_channel.read(sectors, now) + extra
                    return ready if ready > base else base
                del inflight[line]
            return self.l2_channel.read(sectors, now) + extra
        done = self.hbm.read(sectors, now) + extra
        inflight[line] = done
        return done

    def load_local(self, sm: int, addr: int, sectors: int,
                   now: float) -> float:
        """A local-memory load (register spill reload, LMPF buffer)."""
        self.local_read_sectors += sectors
        if self.local_overflow:
            # Spill working set exceeds the L1 budget: round-trip L2.
            return self.l2_channel.read(sectors, now)
        self.l1s[sm].hit_sectors += sectors
        return now + self.gpu.lat_l1

    def configure_local_memory(
        self, footprint_bytes_per_sm: int, budget_bytes: int
    ) -> None:
        """Decide where a kernel's local memory lives: within the L1
        budget it stays on-SM; beyond it every access round-trips L2."""
        self.local_overflow = footprint_bytes_per_sm > budget_bytes

    def store(self, sm: int, addr: int, sectors: int, now: float = 0.0,
              *, local: bool = False) -> None:
        """Stores are fire-and-forget: local stores stay in the per-warp
        L1 lines (or drain L2 bandwidth when overflowing); global stores
        only count write traffic."""
        if local:
            self.local_write_sectors += sectors
            if self.local_overflow:
                self.l2_channel.occupy(sectors, now)
        else:
            self.global_write_sectors += sectors
            self.hbm.write(sectors)

    def prefetch_into_l1(self, sm: int, addr: int, sectors: int,
                         now: float) -> float:
        """`prefetch.global.L1`: demand path without a register target."""
        return self.load(sm, addr, sectors, now)

    def prefetch_pin_l2(self, addr: int, sectors: int, now: float) -> float:
        """`prefetch.global.L2::evict_last`: fetch the line (if absent) and
        pin it in the set-aside partition.  Returns fill-complete time."""
        line = addr >> _LINE_SHIFT
        already_present = line in self.inflight or self.l2.contains(line)
        if self.l2.pin(line):
            if already_present:
                return now + self.gpu.lat_l2
            return self.hbm.read(sectors, now)
        # Set-aside full: behaves like a normal L2 prefetch.
        if not self.l2.access(line, sectors):
            return self.hbm.read(sectors, now)
        return now + self.gpu.lat_l2

    # ------------------------------------------------------------------
    # aggregate statistics
    # ------------------------------------------------------------------
    @property
    def l1_hit_sectors(self) -> int:
        return sum(c.hit_sectors for c in self.l1s)

    @property
    def l1_miss_sectors(self) -> int:
        return sum(c.miss_sectors for c in self.l1s)

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hit_sectors + self.l1_miss_sectors
        return self.l1_hit_sectors / total if total else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2.hit_rate

    @property
    def dram_read_bytes(self) -> int:
        return self.hbm.read_bytes

    @property
    def tlb_miss_rate(self) -> float:
        hits = sum(t.hits for t in self.tlbs)
        misses = sum(t.misses for t in self.tlbs)
        total = hits + misses
        return misses / total if total else 0.0

    def reset_stats(self) -> None:
        for cache in self.l1s:
            cache.reset_stats()
        self.l2.reset_stats()
        self.hbm.reset_stats()
        self.l2_channel.reset_stats()
        for seen in self._stream_seen:
            seen.clear()
        for tlb in self.tlbs:
            tlb.hits = 0
            tlb.misses = 0
            tlb.walks.clear()
        self.local_read_sectors = 0
        self.local_write_sectors = 0
        self.global_write_sectors = 0
