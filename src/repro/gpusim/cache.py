"""Set-associative, sectored, LRU caches with residency (pinning) support.

Lines are 128 B; statistics are kept at 32 B *sector* granularity, the
way Nsight Compute reports hit rates (a one-sector index load and a
four-sector row load weigh differently, which is what produces the
paper's ~19% L1 hit rate for ``random`` even though every index load
hits).

Pinning models Ampere's L2 residency control: pinned lines live in a
dedicated set-aside map and are never evicted by normal traffic — the
``evict_last`` policy at the granularity the paper uses (whole hot rows
pinned once, before the kernel).
"""

from __future__ import annotations

from repro.config.gpu import CACHE_LINE_BYTES


class SectoredCache:
    """One cache level.  Addresses are byte addresses; lookups are by line."""

    __slots__ = (
        "name", "capacity_bytes", "assoc", "num_sets", "sets",
        "hit_sectors", "miss_sectors", "pinned", "pin_hit_sectors",
        "pin_capacity_lines",
    )

    def __init__(self, name: str, capacity_bytes: int, assoc: int,
                 pin_capacity_bytes: int = 0) -> None:
        if capacity_bytes < CACHE_LINE_BYTES * assoc:
            raise ValueError(
                f"{name}: capacity {capacity_bytes} below one set"
            )
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.assoc = assoc
        self.num_sets = max(1, capacity_bytes // (CACHE_LINE_BYTES * assoc))
        # Per-set recency order as an insertion-ordered dict: most
        # recently used at the END, victim at the front — O(1) hit
        # promotion and eviction instead of O(assoc) list surgery.
        self.sets: list[dict[int, None]] = [{} for _ in range(self.num_sets)]
        self.hit_sectors = 0
        self.miss_sectors = 0
        self.pinned: set[int] = set()
        self.pin_hit_sectors = 0
        self.pin_capacity_lines = pin_capacity_bytes // CACHE_LINE_BYTES

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.assoc

    def access(self, line: int, sectors: int) -> bool:
        """Probe for ``line``; returns True on hit.  On miss the line is
        allocated MRU (fill timing is tracked by the hierarchy's MSHRs)."""
        if line in self.pinned:
            self.hit_sectors += sectors
            self.pin_hit_sectors += sectors
            return True
        ways = self.sets[line % self.num_sets]
        if line in ways:
            self.hit_sectors += sectors
            del ways[line]  # promote to MRU (re-insert at the end)
            ways[line] = None
            return True
        self.miss_sectors += sectors
        ways[line] = None
        if len(ways) > self.assoc:
            del ways[next(iter(ways))]  # evict LRU (front)
        return False

    def contains(self, line: int) -> bool:
        """Non-mutating probe (no stats, no LRU update)."""
        return line in self.pinned or line in self.sets[line % self.num_sets]

    def allocate(self, line: int) -> None:
        """Insert a line without counting a demand access (store-allocate,
        prefetch fill)."""
        if line in self.pinned:
            return
        ways = self.sets[line % self.num_sets]
        if line in ways:
            del ways[line]
            ways[line] = None
            return
        ways[line] = None
        if len(ways) > self.assoc:
            del ways[next(iter(ways))]

    def pin(self, line: int) -> bool:
        """Pin a line into the set-aside region.  Returns False when the
        set-aside partition is full (the paper's 60K-row limit)."""
        if line in self.pinned:
            return True
        if len(self.pinned) >= self.pin_capacity_lines:
            return False
        self.pinned.add(line)
        # A pinned line must not also occupy a normal way.
        self.sets[line % self.num_sets].pop(line, None)
        return True

    def unpin_all(self) -> None:
        self.pinned.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hit_sectors + self.miss_sectors
        return self.hit_sectors / total if total else 0.0

    def reset_stats(self) -> None:
        self.hit_sectors = 0
        self.miss_sectors = 0
        self.pin_hit_sectors = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SectoredCache({self.name}, {self.capacity_bytes >> 10} KiB, "
            f"{self.assoc}-way, hit_rate={self.hit_rate:.2%})"
        )
