"""Occupancy calculation: registers / shared memory -> resident warps.

Follows the CUDA occupancy rules the paper leans on in Section III-C:

* warps are resident in whole thread blocks (8 warps per block for the
  embedding kernel's (32, 8, 1) block shape),
* per-warp register allocation is rounded up to the allocation unit,
* the block count is limited by registers, shared memory, and the
  hardware warp ceiling (64 on A100/H100).

With 74 registers/thread this yields the paper's 24 resident warps
(37.5% occupancy); forcing 50 registers via ``-maxrregcount`` yields the
OptMT point of 40 warps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.gpu import WARP_SIZE, GpuSpec


@dataclass(frozen=True)
class KernelResources:
    """Per-kernel resource usage as the compiler reports it."""

    regs_per_thread: int
    smem_per_block: int = 0
    warps_per_block: int = 8

    def __post_init__(self) -> None:
        if self.regs_per_thread <= 0:
            raise ValueError("regs_per_thread must be positive")
        if self.warps_per_block <= 0:
            raise ValueError("warps_per_block must be positive")
        if self.smem_per_block < 0:
            raise ValueError("smem_per_block must be >= 0")


def regs_per_warp_allocated(gpu: GpuSpec, regs_per_thread: int) -> int:
    """Registers actually reserved per warp (allocation-unit rounding)."""
    raw = regs_per_thread * WARP_SIZE
    unit = gpu.register_alloc_unit
    return -(-raw // unit) * unit


def resident_warps(gpu: GpuSpec, res: KernelResources) -> int:
    """Theoretical resident warps per SM for a kernel's resource usage."""
    per_block_regs = regs_per_warp_allocated(gpu, res.regs_per_thread) \
        * res.warps_per_block
    blocks_by_regs = gpu.registers_per_sm // per_block_regs
    if res.smem_per_block > 0:
        blocks_by_smem = gpu.shared_mem_bytes // res.smem_per_block
    else:
        blocks_by_smem = 1 << 30
    blocks_by_warps = gpu.max_warps_per_sm // res.warps_per_block
    blocks = min(blocks_by_regs, blocks_by_smem, blocks_by_warps)
    return max(0, blocks) * res.warps_per_block


def occupancy_pct(gpu: GpuSpec, res: KernelResources) -> float:
    """Theoretical occupancy as a percentage of the warp ceiling."""
    return 100.0 * resident_warps(gpu, res) / gpu.max_warps_per_sm


def max_regs_for_warps(gpu: GpuSpec, target_warps: int,
                       warps_per_block: int = 8) -> int:
    """Largest ``-maxrregcount`` value that still yields >= target warps.

    This is the paper's Section VII step (iii):
    ``regs <= max_registers_per_SM / (desired_warps * warp_size)``,
    adjusted for block granularity and the allocation unit.
    """
    if target_warps <= 0 or target_warps > gpu.max_warps_per_sm:
        raise ValueError("target_warps out of range")
    for regs in range(255, 0, -1):
        res = KernelResources(regs, warps_per_block=warps_per_block)
        if resident_warps(gpu, res) >= target_warps:
            return regs
    raise ValueError("no register count achieves the requested occupancy")
