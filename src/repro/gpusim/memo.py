"""Cross-run kernel-result memoization.

Figure sweeps, capacity planners and the autoscaler re-run
near-identical kernel launches hundreds of times; the engine is
deterministic, so a launch's result is a pure function of its inputs.
This module caches :class:`~repro.gpusim.engine.RawKernelStats` (plus
the hierarchy counter snapshot a profile needs) under a content hash of
everything that feeds the simulation — compiled-trace/workload content,
:class:`~repro.kernels.compiler.KernelBuild`,
:class:`~repro.config.gpu.GpuSpec` fields and scheme knobs.

Two storage tiers:

* an **in-process LRU** (always on by default) serving repeated
  launches within one process — e.g. every load point of a
  ``fleet.capacity`` sweep, or Fig. 12/13/14 sharing their kernels,
* an optional **on-disk store** (one JSON file per key) serving
  repeated launches *across* processes — e.g. consecutive
  ``repro-harness`` invocations.  Point ``REPRO_KERNEL_MEMO_DIR`` (or
  ``repro-harness run --memo-dir``) at a directory to enable it; delete
  the directory to invalidate.

Keys embed :data:`MEMO_SCHEMA_VERSION`; bump it whenever engine
scheduling semantics *or kernel lowering* change behaviour so stale
entries can never resurface.  (Calibration constants and the address
layout are hashed into the keys by ``run_table_kernel``, so plain
constant tweaks self-invalidate without a version bump.)
``REPRO_KERNEL_MEMO=off`` disables memoization entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import asdict, fields, is_dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.gpusim.engine import RawKernelStats
from repro.gpusim.profiler import HierarchyStats

#: Bump on any behavioural change to engine scheduling semantics, stat
#: definitions, or kernel lowering (trace builders / program emitters).
#: v2 = ALU-burst coalescing + one-step scoreboard scheduling.
MEMO_SCHEMA_VERSION = 2

MEMO_ENV = "REPRO_KERNEL_MEMO"
MEMO_DIR_ENV = "REPRO_KERNEL_MEMO_DIR"
MEMO_CAPACITY_ENV = "REPRO_KERNEL_MEMO_CAP"

_DEFAULT_CAPACITY = 512


# ----------------------------------------------------------------------
# content hashing
# ----------------------------------------------------------------------
def _feed(h, value: Any) -> None:
    """Feed one value into the hash, canonically and type-tagged."""
    if value is None:
        h.update(b"N;")
    elif isinstance(value, bool):
        h.update(b"B1;" if value else b"B0;")
    elif isinstance(value, int):
        h.update(b"I" + str(value).encode() + b";")
    elif isinstance(value, float):
        h.update(b"F" + value.hex().encode() + b";")
    elif isinstance(value, str):
        h.update(b"S" + value.encode() + b";")
    elif isinstance(value, bytes):
        h.update(b"Y" + value + b";")
    elif isinstance(value, np.ndarray):
        h.update(b"A" + str(value.dtype).encode() + b"|"
                 + str(value.shape).encode() + b"|")
        h.update(np.ascontiguousarray(value).tobytes())
        h.update(b";")
    elif is_dataclass(value) and not isinstance(value, type):
        h.update(b"D" + type(value).__name__.encode() + b"(")
        for f in fields(value):
            _feed(h, f.name)
            _feed(h, getattr(value, f.name))
        h.update(b");")
    elif isinstance(value, dict):
        h.update(b"M(")
        for k in sorted(value):
            _feed(h, k)
            _feed(h, value[k])
        h.update(b");")
    elif isinstance(value, (list, tuple)):
        h.update(b"L(")
        for item in value:
            _feed(h, item)
        h.update(b");")
    elif isinstance(value, (np.integer,)):
        _feed(h, int(value))
    elif isinstance(value, (np.floating,)):
        _feed(h, float(value))
    else:
        raise TypeError(f"cannot hash {type(value).__name__} into a memo key")


def memo_key(*parts: Any) -> str:
    """Stable sha256 content hash over heterogeneous key parts.

    Accepts None, bools, ints, floats, strings, bytes, numpy arrays,
    dataclasses and (nested) dict/list/tuple containers.  The hash is
    stable across processes and platforms (floats hash by their exact
    bit pattern) and every part is type-tagged, so reordered or
    retyped inputs never collide.
    """
    h = hashlib.sha256()
    _feed(h, MEMO_SCHEMA_VERSION)
    for part in parts:
        _feed(h, part)
    return h.hexdigest()


# ----------------------------------------------------------------------
# memoized value
# ----------------------------------------------------------------------
class MemoizedKernelRun:
    """One kernel launch's complete, profile-ready result."""

    __slots__ = ("stats", "hierarchy", "pinned_lines", "pin_coverage",
                 "pin_kernel_us")

    def __init__(
        self,
        stats: RawKernelStats,
        hierarchy: HierarchyStats,
        *,
        pinned_lines: int = 0,
        pin_coverage: float = 0.0,
        pin_kernel_us: float = 0.0,
    ) -> None:
        self.stats = stats
        self.hierarchy = hierarchy
        self.pinned_lines = pinned_lines
        self.pin_coverage = pin_coverage
        self.pin_kernel_us = pin_kernel_us

    def to_json(self) -> str:
        return json.dumps({
            "version": MEMO_SCHEMA_VERSION,
            "stats": asdict(self.stats),
            "hierarchy": asdict(self.hierarchy),
            "pinned_lines": self.pinned_lines,
            "pin_coverage": self.pin_coverage,
            "pin_kernel_us": self.pin_kernel_us,
        })

    @classmethod
    def from_json(cls, text: str) -> "MemoizedKernelRun":
        data = json.loads(text)
        if data.get("version") != MEMO_SCHEMA_VERSION:
            raise ValueError("memo schema version mismatch")
        return cls(
            RawKernelStats(**data["stats"]),
            HierarchyStats(**data["hierarchy"]),
            pinned_lines=data["pinned_lines"],
            pin_coverage=data["pin_coverage"],
            pin_kernel_us=data["pin_kernel_us"],
        )


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class KernelMemo:
    """In-process LRU over kernel results, with an optional disk tier.

    ``capacity`` bounds the in-memory tier (0 disables memoization in
    memory; with no ``disk_dir`` that makes the memo a no-op).  Disk
    entries are one JSON file per key, written atomically; unreadable
    or version-skewed files count as misses and are ignored.
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY,
                 disk_dir: str | Path | None = None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._lru: OrderedDict[str, MemoizedKernelRun] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lru)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0 or self.disk_dir is not None

    def _disk_path(self, key: str) -> Path:
        return self.disk_dir / f"{key}.json"  # type: ignore[operator]

    def get(self, key: str) -> MemoizedKernelRun | None:
        lru = self._lru
        run = lru.get(key)
        if run is not None:
            lru.move_to_end(key)
            self.hits += 1
            return run
        if self.disk_dir is not None:
            try:
                run = MemoizedKernelRun.from_json(
                    self._disk_path(key).read_text()
                )
            except (OSError, ValueError, KeyError, TypeError):
                run = None
            if run is not None:
                self.disk_hits += 1
                self.hits += 1
                self._remember(key, run)
                return run
        self.misses += 1
        return None

    def put(self, key: str, run: MemoizedKernelRun) -> None:
        self._remember(key, run)
        if self.disk_dir is not None:
            try:
                self.disk_dir.mkdir(parents=True, exist_ok=True)
                path = self._disk_path(key)
                # per-writer temp name: concurrent processes sharing the
                # store must never interleave writes to one temp file
                tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
                tmp.write_text(run.to_json())
                os.replace(tmp, path)
            except OSError:
                pass  # disk tier is best-effort

    def _remember(self, key: str, run: MemoizedKernelRun) -> None:
        if self.capacity <= 0:
            return
        lru = self._lru
        if key in lru:
            lru.move_to_end(key)
        lru[key] = run
        if len(lru) > self.capacity:
            lru.popitem(last=False)

    def clear(self) -> None:
        """Drop the in-memory tier (disk entries are left alone)."""
        self._lru.clear()

    def stats_line(self) -> str:
        total = self.hits + self.misses
        return (
            f"kernel memo: {self.hits}/{total} hits "
            f"({self.disk_hits} from disk), {len(self._lru)} resident"
        )


#: Process-wide default memo, configured from the environment on first use.
_DEFAULT_MEMO: KernelMemo | None = None


def default_memo() -> KernelMemo:
    """The process-wide memo: in-process LRU by default, disk-backed
    when ``REPRO_KERNEL_MEMO_DIR`` is set, disabled entirely when
    ``REPRO_KERNEL_MEMO=off``."""
    global _DEFAULT_MEMO
    if _DEFAULT_MEMO is None:
        if os.environ.get(MEMO_ENV, "").strip().lower() in ("off", "0", "no"):
            _DEFAULT_MEMO = KernelMemo(capacity=0)
        else:
            capacity = int(
                os.environ.get(MEMO_CAPACITY_ENV, str(_DEFAULT_CAPACITY))
            )
            _DEFAULT_MEMO = KernelMemo(
                capacity=capacity,
                disk_dir=os.environ.get(MEMO_DIR_ENV) or None,
            )
    return _DEFAULT_MEMO


def set_default_memo(memo: KernelMemo | None) -> None:
    """Replace the process-wide memo (``None`` re-reads the environment
    on next use).  Used by the CLI's ``--memo-dir`` and by tests."""
    global _DEFAULT_MEMO
    _DEFAULT_MEMO = memo
