"""Tiered embedding parameter-server: HBM hot set ⇄ host DRAM remainder.

Production recommenders hold terabyte-scale embedding tables behind a
GPU-cached parameter server (Wei et al., HugeCTR HPS); the GPU keeps a
hot subset of rows HBM-resident and fetches the rest from host DRAM
over PCIe/NVLink.  This module models that split:

* :class:`TierPlan` — how one table divides into a resident fraction
  and a host remainder (``resident_rows + host_rows == table_rows``
  always — a pinned invariant).
* :class:`HostLink` — the modeled interconnect (bandwidth + latency),
  derived from :class:`~repro.config.gpu.GpuSpec`.
* :class:`EmbeddingStore` — a plan plus a live
  :class:`~repro.memstore.policy.CachePolicy`; ``lookup(trace)``
  replays a trace's accesses against the cache and returns a
  :class:`TierStats` with hit/miss and host-fetch-time accounting.

Everything is deterministic: traces are seeded, policies carry no
randomness, so one ``(plan, policy, trace)`` triple always yields the
same :class:`TierStats` — the reproducibility contract the serving and
fleet layers build on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config.gpu import GpuSpec
from repro.datasets.spec import DatasetSpec
from repro.datasets.trace import EmbeddingTrace
from repro.memstore.policy import (
    CACHE_POLICIES,
    CachePolicy,
    make_policy,
    profile_hot_rows,
)
from repro.telemetry.events import (
    CacheEvict,
    CacheHit,
    CacheMiss,
    HostFetch,
    Warm,
)
from repro.telemetry.sinks import Sink, resolve_sink

#: Host-link launch latency (DMA setup + round trip) per bulk transfer.
PCIE_LATENCY_US = 10.0
NVLINK_LATENCY_US = 2.0

#: NVLink3 effective bandwidth per GPU (mirrors
#: ``repro.core.distributed.NVLINK_GBPS``; duplicated to keep memstore
#: importable from ``core`` without a cycle).
NVLINK_GBPS = 300.0


@dataclass(frozen=True)
class HostLink:
    """A modeled host⇄device interconnect: bandwidth plus launch latency."""

    name: str
    bandwidth_gbps: float
    latency_us: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.latency_us < 0:
            raise ValueError("latency_us must be >= 0")

    def transfer_us(self, n_bytes: int, *, transfers: int = 1) -> float:
        """Time to move ``n_bytes`` in ``transfers`` bulk DMA operations."""
        if n_bytes <= 0:
            return 0.0
        return transfers * self.latency_us + 1e6 * n_bytes / (
            self.bandwidth_gbps * 1e9
        )

    def scaled(self, factor: float) -> "HostLink":
        """Proportional chip slice: bandwidth scales, latency does not
        (mirrors :meth:`GpuSpec.scaled_slice` for HBM)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(self, bandwidth_gbps=self.bandwidth_gbps * factor)

    @classmethod
    def pcie(cls, gpu: GpuSpec) -> "HostLink":
        """The GPU's PCIe link to host DRAM."""
        return cls("pcie", gpu.pcie_gbps, PCIE_LATENCY_US)

    @classmethod
    def nvlink_c2c(cls) -> "HostLink":
        """A coherent NVLink path to host memory (Grace-Hopper style)."""
        return cls("nvlink-c2c", NVLINK_GBPS, NVLINK_LATENCY_US)


@dataclass(frozen=True)
class TierPlan:
    """How one embedding table splits across HBM and host DRAM."""

    table_rows: int
    resident_rows: int
    row_bytes: int
    policy: str = "static_hot"

    def __post_init__(self) -> None:
        if self.table_rows <= 0:
            raise ValueError("table_rows must be positive")
        if self.row_bytes <= 0:
            raise ValueError("row_bytes must be positive")
        if not 0 <= self.resident_rows <= self.table_rows:
            raise ValueError(
                f"resident_rows must be in [0, {self.table_rows}], "
                f"got {self.resident_rows}"
            )
        if self.policy not in CACHE_POLICIES:
            known = ", ".join(CACHE_POLICIES)
            raise ValueError(
                f"unknown cache policy {self.policy!r}; known: {known}"
            )

    @property
    def host_rows(self) -> int:
        """Rows living in host DRAM (``resident + host == table`` always)."""
        return self.table_rows - self.resident_rows

    @property
    def resident_bytes(self) -> int:
        return self.resident_rows * self.row_bytes

    @property
    def host_bytes(self) -> int:
        return self.host_rows * self.row_bytes

    @property
    def resident_fraction(self) -> float:
        return self.resident_rows / self.table_rows

    @property
    def fully_resident(self) -> bool:
        return self.resident_rows >= self.table_rows

    @classmethod
    def from_fraction(
        cls,
        table_rows: int,
        row_bytes: int,
        hbm_fraction: float,
        *,
        policy: str = "static_hot",
    ) -> "TierPlan":
        """Plan keeping ``hbm_fraction`` of the table's rows resident."""
        if not 0.0 <= hbm_fraction <= 1.0:
            raise ValueError("hbm_fraction must be in [0, 1]")
        return cls(
            table_rows=table_rows,
            resident_rows=int(round(hbm_fraction * table_rows)),
            row_bytes=row_bytes,
            policy=policy,
        )

    @classmethod
    def from_budget(
        cls,
        table_rows: int,
        row_bytes: int,
        budget_bytes: int,
        *,
        policy: str = "static_hot",
    ) -> "TierPlan":
        """Plan keeping as many rows as ``budget_bytes`` of HBM holds."""
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0")
        return cls(
            table_rows=table_rows,
            resident_rows=min(table_rows, budget_bytes // row_bytes),
            row_bytes=row_bytes,
            policy=policy,
        )


@dataclass(frozen=True)
class TierStats:
    """Hit/miss accounting of one trace replay against a store."""

    n_accesses: int
    hits: int
    host_rows_fetched: int
    host_bytes: int
    host_fetch_us: float

    def __post_init__(self) -> None:
        if not 0 <= self.hits <= self.n_accesses:
            raise ValueError("hits must be in [0, n_accesses]")

    @property
    def misses(self) -> int:
        return self.n_accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from HBM (1.0 for an empty trace)."""
        if self.n_accesses == 0:
            return 1.0
        return self.hits / self.n_accesses


class EmbeddingStore:
    """One table's tiered store: a plan, a live policy, and a host link.

    ``lookup`` replays a trace's accesses against the cache policy and
    prices the misses on the link: every fetched row crosses as part of
    one bulk gather per batch (a single launch latency plus bytes over
    bandwidth).  Adaptive policies (LRU/LFU) mutate across lookups —
    that is the point; call :meth:`reset`/:meth:`warm` to model a cache
    refresh.

    Telemetry: each ``lookup`` emits ``cache_hit``/``cache_miss`` (and
    ``cache_evict``/``host_fetch`` when rows were displaced/fetched),
    each ``warm`` a ``warm`` event, to ``sink`` — or the ambient
    default when ``sink`` is ``None`` — tagged with ``label``.
    """

    def __init__(
        self,
        plan: TierPlan,
        link: HostLink,
        *,
        policy: CachePolicy | None = None,
        hot_rows: np.ndarray | None = None,
        sink: Sink | None = None,
        label: str = "store",
    ) -> None:
        if policy is None:
            policy = make_policy(plan.policy, plan.resident_rows)
        elif policy.capacity_rows != plan.resident_rows:
            raise ValueError(
                f"policy capacity {policy.capacity_rows} != plan "
                f"resident_rows {plan.resident_rows}"
            )
        self.plan = plan
        self.link = link
        self.policy = policy
        self.sink = sink
        self.label = label
        if hot_rows is not None:
            self.policy.warm(hot_rows)

    def warm(self, rows: np.ndarray) -> int:
        """(Re-)admit a popularity profile; returns rows now resident."""
        resident = self.policy.warm(rows)
        sink = resolve_sink(self.sink)
        if sink.enabled:
            sink.emit(Warm(resident=resident, label=self.label))
        return resident

    def reset(self) -> None:
        self.policy.reset()

    @property
    def resident_fraction(self) -> float:
        return self.plan.resident_fraction

    def lookup(self, trace: EmbeddingTrace | np.ndarray) -> TierStats:
        """Replay a trace (or raw index array) and account the tiers."""
        indices = (
            trace.indices if isinstance(trace, EmbeddingTrace)
            else np.asarray(trace, dtype=np.int64)
        )
        if len(indices) and int(indices.max()) >= self.plan.table_rows:
            raise ValueError("trace indices exceed the plan's table_rows")
        evicted_before = self.policy.evictions
        if self.plan.fully_resident:
            hits, fetches = len(indices), 0
        else:
            hits, fetches = self.policy.lookup(indices)
        host_bytes = fetches * self.plan.row_bytes
        stats = TierStats(
            n_accesses=len(indices),
            hits=hits,
            host_rows_fetched=fetches,
            host_bytes=host_bytes,
            host_fetch_us=self.link.transfer_us(host_bytes),
        )
        sink = resolve_sink(self.sink)
        if sink.enabled:
            sink.emit(CacheHit(count=hits, label=self.label))
            sink.emit(CacheMiss(count=stats.misses, label=self.label))
            evicted = self.policy.evictions - evicted_before
            if evicted:
                sink.emit(CacheEvict(count=evicted, label=self.label))
            if fetches:
                sink.emit(HostFetch(
                    rows=fetches, bytes=host_bytes,
                    us=stats.host_fetch_us, label=self.label,
                ))
        return stats


def store_for_spec(
    spec: DatasetSpec,
    *,
    batch_size: int,
    pooling_factor: int,
    table_rows: int,
    row_bytes: int,
    hbm_fraction: float,
    link: HostLink,
    policy: str = "static_hot",
    seed: int = 0,
) -> EmbeddingStore:
    """Build a store for one table, warmed from the dataset's profile.

    The warm set comes from :func:`profile_hot_rows` — the same honest
    offline profiling L2 pinning uses (calibration trace at a seed
    offset, never the trace being served).
    """
    plan = TierPlan.from_fraction(
        table_rows, row_bytes, hbm_fraction, policy=policy
    )
    hot = None
    if 0 < plan.resident_rows < plan.table_rows:
        hot = profile_hot_rows(
            spec,
            batch_size=batch_size,
            pooling_factor=pooling_factor,
            table_rows=table_rows,
            k=plan.resident_rows,
            seed=seed,
        )
    return EmbeddingStore(plan, link, hot_rows=hot)
