"""Shared popularity profiling and HBM-cache admission/eviction policies.

Every consumer of "which rows are hot?" — L2 pinning's offline
profiling (paper Fig. 10), drift re-pinning, and the memstore's HBM
admission — used to carry its own copy of the logic.  This module is
the single implementation: :func:`popular_rows` ranks a trace's rows by
access count, :func:`profile_hot_rows` draws an honest calibration
trace and ranks that (the offline step), and the cache policies decide
which rows *stay* HBM-resident as traffic flows.

Policies are *priority caches*: every row carries a priority computed
from capacity-independent state (global access counts and last-access
ticks).  On a miss the row is fetched from host DRAM and competes for
residency; the lowest-priority row among ``resident + {new}`` is the
one left out.  Priorities being independent of the cache's own content
gives all three policies the stack (inclusion) property, so hit rate is
provably monotone non-decreasing in capacity — the invariant the
property tests pin.

* ``static_hot`` — residency fixed at warm time from a popularity
  profile; misses never admit (the L2-pinning philosophy, lifted to
  HBM granularity).
* ``lru`` — priority is the last-access tick.
* ``lfu`` — priority is (global access count, last-access tick).
"""

from __future__ import annotations

import heapq
from typing import Iterable

import numpy as np

from repro.datasets.analysis import top_hot_rows
from repro.datasets.generator import generate_trace
from repro.datasets.spec import DatasetSpec
from repro.datasets.trace import EmbeddingTrace

#: Seed offset between the profiled (calibration) trace and any trace
#: being timed — profiling must never see the evaluation trace.
PROFILE_SEED_OFFSET = 104_729


def popular_rows(trace: EmbeddingTrace, k: int) -> np.ndarray:
    """The ``k`` most frequently accessed rows of a trace.

    The popularity profile shared by L2 pinning, drift re-pinning and
    memstore admission — a thin delegate to the one ranking primitive,
    :func:`repro.datasets.analysis.top_hot_rows`.
    """
    return top_hot_rows(trace, k)


def profile_hot_rows(
    spec: DatasetSpec,
    *,
    batch_size: int,
    pooling_factor: int,
    table_rows: int,
    k: int,
    seed: int = 0,
) -> np.ndarray:
    """Offline profiling: draw a calibration trace from the dataset's
    distribution and return its top-``k`` rows.  Uses a seed offset so
    the profiled trace differs from any trace being timed."""
    calib = generate_trace(
        spec,
        batch_size=batch_size,
        pooling_factor=pooling_factor,
        table_rows=table_rows,
        seed=seed + PROFILE_SEED_OFFSET,
    )
    return popular_rows(calib, k)


def hit_curve(
    profile: np.ndarray,
    accesses: np.ndarray,
    table_rows: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Capacity-indexed hit/fetch accounting for a static-hot cache.

    The stack (inclusion) property of the priority caches means the
    resident set at capacity ``k`` is exactly the top ``k`` rows of the
    warmed ``profile`` — so one pass over ``accesses`` prices *every*
    capacity at once instead of replaying the policy per candidate.
    Returns ``(cum_hits, cum_unique)``, each of length
    ``table_rows + 1``:

    * ``cum_hits[k]`` — accesses served from HBM at capacity ``k``
      (monotone non-decreasing in ``k`` by construction, which is what
      makes waterfilling arbitration on marginal hit rate sound);
    * ``cum_unique[k]`` — *distinct* resident rows touched, so
      ``n_distinct - cum_unique[k]`` is the per-batch host-gather row
      count under the policies' bulk-fetch dedup.

    Both match :class:`StaticHotPolicy` lookups exactly: for any ``k``,
    ``cum_hits[k]`` equals the hits of a store warmed with
    ``profile[:k]`` replaying ``accesses``.
    """
    profile = np.asarray(profile, dtype=np.int64)
    accesses = np.asarray(accesses, dtype=np.int64)
    if len(profile) != len(np.unique(profile)):
        raise ValueError("profile must not repeat rows")
    if len(profile) and (
        profile.min() < 0 or profile.max() >= table_rows
    ):
        raise ValueError("profile rows exceed table_rows")
    if len(accesses) and (
        accesses.min() < 0 or accesses.max() >= table_rows
    ):
        raise ValueError("accesses exceed table_rows")
    # rank = position in the warmed profile; unprofiled rows never hit
    rank = np.full(table_rows, table_rows, dtype=np.int64)
    rank[profile] = np.arange(len(profile), dtype=np.int64)
    access_ranks = rank[accesses] if len(accesses) else accesses
    ranked = access_ranks[access_ranks < table_rows]
    counts = np.bincount(ranked, minlength=table_rows)
    cum_hits = np.concatenate(([0], np.cumsum(counts)))
    distinct = np.unique(access_ranks) if len(accesses) else access_ranks
    dcounts = np.bincount(
        distinct[distinct < table_rows], minlength=table_rows
    )
    cum_unique = np.concatenate(([0], np.cumsum(dcounts)))
    return cum_hits, cum_unique


class CachePolicy:
    """Row-granular HBM-cache policy: priority-based admission/eviction.

    Subclasses define :meth:`_priority`; the mechanics (residency map,
    lazy min-heap, capacity enforcement) are shared.  ``_counts`` and
    ``_ticks`` are updated for *every* accessed row whether or not it is
    resident, keeping priorities capacity-independent (see module docs).
    """

    name = "policy"
    #: whether misses may enter the cache (static policies say no).
    admits = True

    def __init__(self, capacity_rows: int) -> None:
        if capacity_rows < 0:
            raise ValueError("capacity_rows must be >= 0")
        self.capacity_rows = int(capacity_rows)
        self.reset()

    def reset(self) -> None:
        """Drop all residency and bookkeeping state."""
        self._resident: dict[int, tuple] = {}
        self._heap: list[tuple] = []  # lazy min-heap of (priority, row)
        self._tick = 0
        self._counts: dict[int, int] = {}
        self._ticks: dict[int, int] = {}
        #: rows displaced from residency since the last reset — the
        #: telemetry ``cache_evict`` source (not part of TierStats).
        self.evictions = 0

    # -- subclass hook --------------------------------------------------
    def _priority(self, row: int) -> tuple:
        raise NotImplementedError

    # -- mechanics ------------------------------------------------------
    def _touch(self, row: int) -> None:
        self._tick += 1
        self._counts[row] = self._counts.get(row, 0) + 1
        self._ticks[row] = self._tick

    def _place(self, row: int) -> None:
        prio = self._priority(row)
        self._resident[row] = prio
        heapq.heappush(self._heap, (prio, row))

    def _settle_min(self) -> tuple | None:
        """Current true minimum heap entry (stale entries discarded)."""
        while self._heap:
            prio, row = self._heap[0]
            if self._resident.get(row) == prio:
                return self._heap[0]
            heapq.heappop(self._heap)
        return None

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    def resident(self, row: int) -> bool:
        return int(row) in self._resident

    def warm(self, rows: Iterable[int] | np.ndarray) -> int:
        """(Re-)admit a popularity profile (hottest first).

        Every profiled row competes for residency by priority, so
        warming a *full* cache refreshes it: freshly-profiled rows
        carry the newest ticks and displace stale lower-priority
        residents (for LFU, entrenched counts may legitimately win).
        Bookkeeping (counts/ticks) is seeded for every profiled row,
        resident or not, so priorities stay capacity-independent.
        Returns the number of rows resident afterwards.
        """
        ordered = list(dict.fromkeys(
            int(r) for r in np.asarray(rows, dtype=np.int64).tolist()
        ))
        for row in reversed(ordered):  # hottest row gets the newest tick
            self._touch(row)
        for row in ordered:
            if self.capacity_rows == 0:
                break
            if row in self._resident:
                self._place(row)  # refresh the recorded priority
                continue
            if len(self._resident) < self.capacity_rows:
                self._place(row)
                continue
            entry = self._settle_min()
            prio = self._priority(row)
            if entry is not None and entry[0] < prio:
                heapq.heappop(self._heap)
                del self._resident[entry[1]]
                self.evictions += 1
                self._resident[row] = prio
                heapq.heappush(self._heap, (prio, row))
        return len(self._resident)

    def access(self, row: int) -> bool:
        """One row access: returns True on an HBM hit, False on a miss
        (the row is then fetched from host and competes for residency)."""
        row = int(row)
        self._touch(row)
        if row in self._resident:
            self._place(row)  # refresh priority (old entry goes stale)
            return True
        if not self.admits or self.capacity_rows == 0:
            return False
        if len(self._resident) < self.capacity_rows:
            self._place(row)
            return False
        entry = self._settle_min()
        new_prio = self._priority(row)
        if entry is not None and entry[0] < new_prio:
            heapq.heappop(self._heap)
            del self._resident[entry[1]]
            self.evictions += 1
            self._resident[row] = new_prio
            heapq.heappush(self._heap, (new_prio, row))
        return False

    def lookup(self, indices: np.ndarray) -> tuple[int, int]:
        """Run a batch of accesses; returns ``(hits, host_fetches)``.

        One lookup is one batch, served by one bulk gather: a row that
        misses is fetched from host once per batch however many times
        the batch touches it — the same dedup for every policy, so
        cross-policy host-byte accounting stays comparable.
        """
        hits = 0
        fetched: set[int] = set()
        for row in np.asarray(indices, dtype=np.int64).tolist():
            if self.access(row):
                hits += 1
            else:
                fetched.add(row)
        return hits, len(fetched)


class LRUPolicy(CachePolicy):
    """Evict the least-recently-used row."""

    name = "lru"

    def _priority(self, row: int) -> tuple:
        return (self._ticks[row],)


class LFUPolicy(CachePolicy):
    """Evict the least-frequently-used row (global counts, LRU ties)."""

    name = "lfu"

    def _priority(self, row: int) -> tuple:
        return (self._counts[row], self._ticks[row])


class StaticHotPolicy(CachePolicy):
    """Residency fixed at warm time from a popularity profile.

    Misses never admit, so the resident set is exactly the top
    ``capacity_rows`` of the warmed profile — the memstore analogue of
    the paper's L2 pinning.  Lookups are vectorized, and host fetches
    are deduplicated per batch (a static miss row is gathered once into
    the batch's staging buffer, however often the batch touches it).
    """

    name = "static_hot"
    admits = False

    def _priority(self, row: int) -> tuple:
        return (self._ticks[row],)

    def lookup(self, indices: np.ndarray) -> tuple[int, int]:
        # vectorized twin of the generic loop (residency never changes)
        idx = np.asarray(indices, dtype=np.int64)
        if not len(idx):
            return 0, 0
        resident = np.fromiter(
            self._resident, dtype=np.int64, count=len(self._resident)
        )
        hit_mask = np.isin(idx, resident)
        hits = int(np.count_nonzero(hit_mask))
        fetches = int(len(np.unique(idx[~hit_mask])))
        return hits, fetches


#: policy name -> class.
CACHE_POLICIES: dict[str, type[CachePolicy]] = {
    StaticHotPolicy.name: StaticHotPolicy,
    LRUPolicy.name: LRUPolicy,
    LFUPolicy.name: LFUPolicy,
}


def make_policy(name: str, capacity_rows: int) -> CachePolicy:
    """Instantiate a cache policy by registry name."""
    try:
        cls = CACHE_POLICIES[name]
    except KeyError:
        known = ", ".join(CACHE_POLICIES)
        raise ValueError(
            f"unknown cache policy {name!r}; known: {known}"
        ) from None
    return cls(capacity_rows)
