"""Tiered embedding parameter-server: HBM hot cache over host DRAM.

The scale axis of the reproduction: serve models *bigger than the
hardware* by keeping a per-GPU hot subset of embedding rows
HBM-resident and fetching the remainder from host DRAM over a modeled
PCIe/NVLink link.  One policy module (popularity profiling + pluggable
admission/eviction) feeds every layer: L2 pinning's hot-row profiling,
drift re-pinning, kernel-stage miss latency, fleet placement splits,
and per-phase hit-rate reporting in the serving engines.
"""

from repro.memstore.policy import (
    CACHE_POLICIES,
    PROFILE_SEED_OFFSET,
    CachePolicy,
    LFUPolicy,
    LRUPolicy,
    StaticHotPolicy,
    hit_curve,
    make_policy,
    popular_rows,
    profile_hot_rows,
)
from repro.memstore.store import (
    EmbeddingStore,
    HostLink,
    TierPlan,
    TierStats,
    store_for_spec,
)

__all__ = [
    "CACHE_POLICIES",
    "CachePolicy",
    "EmbeddingStore",
    "HostLink",
    "LFUPolicy",
    "LRUPolicy",
    "PROFILE_SEED_OFFSET",
    "StaticHotPolicy",
    "TierPlan",
    "TierStats",
    "hit_curve",
    "make_policy",
    "popular_rows",
    "profile_hot_rows",
    "store_for_spec",
]
