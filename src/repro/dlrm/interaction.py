"""The DLRM feature-interaction stage (Figure 2).

Combines the bottom-MLP output with the per-table embedding outputs by
pairwise dot products (the DLRM "dot" interaction), concatenating the
dense vector with the upper triangle of the interaction matrix.
"""

from __future__ import annotations

import numpy as np


def interaction_output_dim(num_tables: int, dim: int) -> int:
    """Output width: dense vector + upper triangle of (tables+1)^2 dots."""
    n = num_tables + 1
    return dim + n * (n - 1) // 2


def dot_interaction(
    bottom_out: np.ndarray, embedding_outs: list[np.ndarray]
) -> np.ndarray:
    """Pairwise-dot feature interaction.

    ``bottom_out`` is ``[batch, dim]``; each embedding output likewise.
    Returns ``[batch, dim + C(n, 2)]`` with ``n = len(embedding_outs)+1``.
    """
    if not embedding_outs:
        raise ValueError("interaction needs at least one embedding output")
    dim = bottom_out.shape[1]
    for i, emb in enumerate(embedding_outs):
        if emb.shape != bottom_out.shape:
            raise ValueError(
                f"embedding output {i} shape {emb.shape} != "
                f"bottom output shape {bottom_out.shape}"
            )
    features = np.stack([bottom_out, *embedding_outs], axis=1)  # [B, n, d]
    grams = np.einsum("bnd,bmd->bnm", features, features)
    n = features.shape[1]
    iu, ju = np.triu_indices(n, k=1)
    dots = grams[:, iu, ju]  # [B, C(n, 2)]
    out = np.concatenate([bottom_out, dots], axis=1)
    assert out.shape[1] == interaction_output_dim(len(embedding_outs), dim)
    return out
