"""Functional DLRM: embedding tables + MLPs + interaction + CTR head.

This is the numerical model (Figure 2): continuous features flow
through the bottom MLP, categorical features through the embedding
stage, outputs meet in the dot interaction and the top MLP emits a
click-through-rate per sample.  It exists to pin down *what* the
simulated kernels compute; the timing model lives in
:mod:`repro.dlrm.timing` and :mod:`repro.core.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config.model import DLRMConfig
from repro.datasets.trace import EmbeddingTrace
from repro.dlrm.embedding import embedding_bag
from repro.dlrm.interaction import dot_interaction, interaction_output_dim
from repro.dlrm.mlp import MLP

#: Guard against accidentally materializing the paper's 60 GB model.
_MAX_FUNCTIONAL_PARAMS = 200_000_000


@dataclass(frozen=True)
class Batch:
    """One inference batch: dense features plus one trace per table."""

    dense: np.ndarray
    tables: list[EmbeddingTrace]

    @property
    def batch_size(self) -> int:
        return self.dense.shape[0]


class DLRM:
    """A runnable DLRM with real weights (use small configs)."""

    def __init__(self, config: DLRMConfig, *, seed: int = 0) -> None:
        emb_params = config.num_tables * config.table.rows * config.table.dim
        if emb_params > _MAX_FUNCTIONAL_PARAMS:
            raise ValueError(
                "functional model too large to materialize "
                f"({emb_params / 1e6:.0f}M embedding parameters); "
                "use a scaled-down DLRMConfig for functional work"
            )
        rng = np.random.default_rng(seed)
        self.config = config
        self.tables = [
            rng.normal(0.0, 0.1, size=(config.table.rows, config.table.dim))
            .astype(np.float32)
            for _ in range(config.num_tables)
        ]
        self.bottom_mlp = MLP(config.bottom_mlp_dims, seed=seed + 1)
        top_in = interaction_output_dim(config.num_tables, config.table.dim)
        self.top_mlp = MLP(
            (top_in, *config.top_mlp_dims),
            seed=seed + 2,
            final_activation="sigmoid",
        )

    def embedding_outputs(self, batch: Batch) -> list[np.ndarray]:
        if len(batch.tables) != self.config.num_tables:
            raise ValueError(
                f"batch has {len(batch.tables)} table traces, model has "
                f"{self.config.num_tables} tables"
            )
        return [
            embedding_bag(table, trace.indices, trace.offsets)
            for table, trace in zip(self.tables, batch.tables)
        ]

    def forward(self, batch: Batch) -> np.ndarray:
        """Predicted CTR per sample, shape ``[batch_size]``."""
        bottom_out = self.bottom_mlp(batch.dense.astype(np.float32))
        emb_outs = self.embedding_outputs(batch)
        interacted = dot_interaction(bottom_out, emb_outs)
        ctr = self.top_mlp(interacted.astype(np.float32))
        return ctr[:, 0]

    __call__ = forward

    def predict_topk(self, batch: Batch, k: int) -> np.ndarray:
        """Indices of the top-k samples by predicted CTR (the serving
        decision the paper's pipeline produces)."""
        ctr = self.forward(batch)
        k = min(k, len(ctr))
        top = np.argpartition(ctr, -k)[-k:]
        return top[np.argsort(ctr[top])[::-1]]
