"""Functional multi-layer perceptron used by the DLRM's dense stages."""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class MLP:
    """A dense ReLU MLP with an optional final activation.

    ``dims`` is the full layer-size chain including the input dim, e.g.
    the paper's bottom MLP is ``(1024, 512, 128, 128)``.
    """

    def __init__(
        self,
        dims: tuple[int, ...],
        *,
        seed: int = 0,
        final_activation: str | None = None,
    ) -> None:
        if len(dims) < 2:
            raise ValueError("an MLP needs at least input and output dims")
        if final_activation not in (None, "relu", "sigmoid"):
            raise ValueError(f"unknown activation {final_activation!r}")
        rng = np.random.default_rng(seed)
        self.dims = tuple(dims)
        self.final_activation = final_activation
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(dims, dims[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He initialization
            self.weights.append(
                rng.normal(0.0, scale, size=(fan_in, fan_out))
                .astype(np.float32)
            )
            self.biases.append(np.zeros(fan_out, dtype=np.float32))

    @property
    def n_layers(self) -> int:
        return len(self.weights)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.dims[0]:
            raise ValueError(
                f"input dim {x.shape[-1]} != MLP input {self.dims[0]}"
            )
        out = x
        last = self.n_layers - 1
        for layer, (w, b) in enumerate(zip(self.weights, self.biases)):
            out = out @ w + b
            if layer < last:
                out = relu(out)
            elif self.final_activation == "relu":
                out = relu(out)
            elif self.final_activation == "sigmoid":
                out = sigmoid(out)
        return out

    __call__ = forward

    def parameter_count(self) -> int:
        return sum(w.size + b.size for w, b in
                   zip(self.weights, self.biases))
