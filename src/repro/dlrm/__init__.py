"""Functional (numpy) DLRM model and non-embedding timing."""

from repro.dlrm.embedding import embedding_bag, embedding_bag_reference
from repro.dlrm.inference import make_batch, serve_topk
from repro.dlrm.interaction import dot_interaction, interaction_output_dim
from repro.dlrm.mlp import MLP, relu, sigmoid
from repro.dlrm.model import DLRM, Batch
from repro.dlrm.timing import (
    KERNEL_LAUNCH_US,
    NonEmbeddingTiming,
    gemm_roofline_us,
    input_transfer_us,
    interaction_us,
    mlp_us,
    non_embedding_time,
)

__all__ = [
    "Batch",
    "DLRM",
    "KERNEL_LAUNCH_US",
    "MLP",
    "NonEmbeddingTiming",
    "dot_interaction",
    "embedding_bag",
    "embedding_bag_reference",
    "gemm_roofline_us",
    "input_transfer_us",
    "interaction_output_dim",
    "interaction_us",
    "make_batch",
    "mlp_us",
    "non_embedding_time",
    "relu",
    "serve_topk",
    "sigmoid",
]
