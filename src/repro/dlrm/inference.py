"""Batch construction and functional inference helpers."""

from __future__ import annotations

import numpy as np

from repro.config.model import DLRMConfig
from repro.datasets.generator import generate_trace
from repro.datasets.spec import DatasetSpec
from repro.dlrm.model import DLRM, Batch


def make_batch(
    config: DLRMConfig, spec: DatasetSpec, *, seed: int = 0
) -> Batch:
    """Build a functional inference batch whose categorical accesses
    follow the given hotness spec (one independent trace per table)."""
    rng = np.random.default_rng(seed)
    dense = rng.normal(
        0.0, 1.0, size=(config.batch_size, config.dense_features)
    ).astype(np.float32)
    tables = [
        generate_trace(
            spec,
            batch_size=config.batch_size,
            pooling_factor=config.pooling_factor,
            table_rows=config.table.rows,
            seed=seed + 31 * t,
        )
        for t in range(config.num_tables)
    ]
    return Batch(dense=dense, tables=tables)


def serve_topk(
    model: DLRM, batch: Batch, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """One serving decision: (top-k sample indices, their CTRs)."""
    ctr = model.forward(batch)
    top = model.predict_topk(batch, k)
    return top, ctr[top]
