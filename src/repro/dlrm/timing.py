"""Roofline timing for the non-embedding stages + host-side costs.

The paper's object of study is the embedding kernel; the other three
stages are compute-bound GEMMs (prior work it cites) and are timed with
a standard roofline — ``max(flops / peak_flops, bytes / hbm_bw)`` per
layer — plus the host costs a real serving pipeline pays: PCIe transfer
of the batch inputs and per-kernel launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.gpu import GpuSpec
from repro.config.model import DLRMConfig
from repro.dlrm.interaction import interaction_output_dim

#: CUDA kernel launch overhead (host -> device, microseconds).
KERNEL_LAUNCH_US = 5.0

_FP32 = 4


def gemm_roofline_us(
    gpu: GpuSpec, batch: int, fan_in: int, fan_out: int
) -> float:
    """Roofline time of one dense layer on the full GPU."""
    flops = 2.0 * batch * fan_in * fan_out
    bytes_moved = _FP32 * (fan_in * fan_out + batch * (fan_in + fan_out))
    compute_s = flops / (gpu.fp32_tflops * 1e12)
    memory_s = bytes_moved / (gpu.hbm_bandwidth_gbps * 1e9)
    return 1e6 * max(compute_s, memory_s)


def mlp_us(gpu: GpuSpec, batch: int, dims: tuple[int, ...]) -> float:
    return sum(
        gemm_roofline_us(gpu, batch, fi, fo)
        for fi, fo in zip(dims, dims[1:])
    )


def interaction_us(gpu: GpuSpec, model: DLRMConfig, batch: int) -> float:
    """Pairwise-dot interaction: batched (n x d) @ (d x n) plus the
    concat read/write traffic."""
    n = model.num_tables + 1
    dim = model.table.dim
    flops = 2.0 * batch * n * n * dim
    out_dim = interaction_output_dim(model.num_tables, dim)
    bytes_moved = _FP32 * batch * (n * dim + out_dim + out_dim)
    compute_s = flops / (gpu.fp32_tflops * 1e12)
    memory_s = bytes_moved / (gpu.hbm_bandwidth_gbps * 1e9)
    return 1e6 * max(compute_s, memory_s)


def input_transfer_us(gpu: GpuSpec, model: DLRMConfig, batch: int) -> float:
    """PCIe time to ship one batch's inputs to the device: int64
    indices + offsets for every table, plus the dense features."""
    idx_bytes = 8 * batch * model.pooling_factor * model.num_tables
    off_bytes = 8 * (batch + 1) * model.num_tables
    dense_bytes = _FP32 * batch * model.dense_features
    return 1e6 * (idx_bytes + off_bytes + dense_bytes) / (gpu.pcie_gbps * 1e9)


@dataclass(frozen=True)
class NonEmbeddingTiming:
    """Per-stage latency of everything except the embedding stage (us)."""

    input_transfer_us: float
    bottom_mlp_us: float
    interaction_us: float
    top_mlp_us: float
    launch_us: float

    @property
    def total_us(self) -> float:
        return (
            self.input_transfer_us
            + self.bottom_mlp_us
            + self.interaction_us
            + self.top_mlp_us
            + self.launch_us
        )


def non_embedding_time(
    gpu: GpuSpec, model: DLRMConfig, *, batch_size: int | None = None
) -> NonEmbeddingTiming:
    """Latency of the three dense stages + host costs, full-chip model."""
    batch = batch_size or model.batch_size
    bottom_dims = model.bottom_mlp_dims
    top_in = interaction_output_dim(model.num_tables, model.table.dim)
    top_dims = (top_in, *model.top_mlp_dims)
    n_kernels = (len(bottom_dims) - 1) + 1 + (len(top_dims) - 1)
    return NonEmbeddingTiming(
        input_transfer_us=input_transfer_us(gpu, model, batch),
        bottom_mlp_us=mlp_us(gpu, batch, bottom_dims),
        interaction_us=interaction_us(gpu, model, batch),
        top_mlp_us=mlp_us(gpu, batch, top_dims),
        launch_us=KERNEL_LAUNCH_US * n_kernels,
    )
