"""Functional (numpy) embedding-bag operator.

The numerical reference for what the simulated CUDA kernel computes:
per sample, gather the rows listed in ``indices[offsets[i]:offsets[i+1]]``
and reduce them (sum or mean) — PyTorch's ``EmbeddingBag`` semantics.
"""

from __future__ import annotations

import numpy as np


def embedding_bag(
    table: np.ndarray,
    indices: np.ndarray,
    offsets: np.ndarray,
    mode: str = "sum",
) -> np.ndarray:
    """Gather-reduce one table for a batch.

    ``table`` is ``[rows, dim]``; returns ``[batch, dim]`` where batch is
    ``len(offsets) - 1``.  Empty bags reduce to zeros.
    """
    if mode not in ("sum", "mean"):
        raise ValueError(f"mode must be 'sum' or 'mean', got {mode!r}")
    if table.ndim != 2:
        raise ValueError("table must be 2-D [rows, dim]")
    offsets = np.asarray(offsets)
    indices = np.asarray(indices)
    if offsets[0] != 0 or offsets[-1] != len(indices):
        raise ValueError("offsets must start at 0 and end at len(indices)")
    if np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be non-decreasing")

    batch = len(offsets) - 1
    out = np.zeros((batch, table.shape[1]), dtype=table.dtype)
    if len(indices) == 0:
        return out

    gathered = table[indices]
    counts = np.diff(offsets)
    nonempty = counts > 0
    # reduceat mishandles empty segments; reduce only non-empty bags.
    starts = offsets[:-1][nonempty]
    if len(starts):
        out[nonempty] = np.add.reduceat(gathered, starts, axis=0)
    if mode == "mean":
        safe = np.maximum(counts, 1)[:, None]
        out = out / safe
    return out


def embedding_bag_reference(
    table: np.ndarray,
    indices: np.ndarray,
    offsets: np.ndarray,
    mode: str = "sum",
) -> np.ndarray:
    """Slow loop implementation used to cross-check the vectorized op."""
    batch = len(offsets) - 1
    out = np.zeros((batch, table.shape[1]), dtype=table.dtype)
    for i in range(batch):
        rows = indices[offsets[i]:offsets[i + 1]]
        if len(rows) == 0:
            continue
        acc = table[rows].sum(axis=0)
        if mode == "mean":
            acc = acc / len(rows)
        out[i] = acc
    return out
