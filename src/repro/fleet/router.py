"""SLA-aware query routing over a heterogeneous replica fleet.

One Poisson query stream hits a router that assigns each query to a
replica at arrival time; every replica runs its own size-or-timeout
batcher (:class:`~repro.core.serving.BatchingPolicy`) and executes
batches back to back on its GPU, whose batch latency comes from a
per-replica calibrated model.  This composes the single-GPU serving
simulation in :mod:`repro.core.serving` into the cluster-scale setting
the paper's SLA framing targets (DeepRecSys-style serving studies).

Routing policies are pluggable.  ``round-robin`` is the oblivious
baseline; ``jsq`` (join-shortest-queue) and ``power-of-two`` use queue
state; ``least-latency`` additionally weighs each replica's speed, which
is what makes heterogeneous fleets (A100 next to H100) behave: an
oblivious router feeds the slow replicas the same load as the fast ones
and their tail blows up first.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.fleet.report import (
    FleetReport,
    fold_fleet_report,
)
from repro.fleet.topology import FleetSpec, ReplicaSpec
from repro.telemetry.events import ArrivalBlock, BatchBlock, FleetRun
from repro.telemetry.sinks import Sink, emit_run

#: A batch-latency curve: batch size -> milliseconds.
LatencyModel = Callable[[int], float]


class _ReplicaState:
    """Mutable simulation state of one replica (queue + GPU timeline)."""

    __slots__ = (
        "spec", "latency_ms", "queue", "gpu_free",
        "batch_starts", "batch_exec", "batch_sizes",
        "member_times", "member_phases",
    )

    def __init__(self, spec: ReplicaSpec, latency_ms: LatencyModel) -> None:
        self.spec = spec
        self.latency_ms = latency_ms
        self.queue: deque[tuple[float, int]] = deque()
        self.gpu_free = 0.0
        # per-batch columns in dispatch order, plus the batched queries'
        # arrival times/phases flattened in queue-pop order — everything
        # the report fold (and the telemetry BatchBlock) needs
        self.batch_starts: list[float] = []
        self.batch_exec: list[float] = []
        self.batch_sizes: list[int] = []
        self.member_times: list[float] = []
        self.member_phases: list[int] = []

    # -- event mechanics ------------------------------------------------
    def _next_dispatch_at(self) -> float:
        """When the oldest waiting batch will dispatch (queue non-empty)."""
        policy = self.spec.batching
        if len(self.queue) >= policy.max_batch:
            # full batch: goes as soon as it filled and the GPU is free
            return max(self.queue[policy.max_batch - 1][0], self.gpu_free)
        return max(self.queue[0][0] + policy.timeout_ms / 1e3, self.gpu_free)

    def advance(self, now: float) -> None:
        """Dispatch every batch whose dispatch time is <= ``now``."""
        while self.queue:
            at = self._next_dispatch_at()
            if at > now:
                break
            size = min(len(self.queue), self.spec.batching.max_batch)
            batch = [self.queue.popleft() for _ in range(size)]
            exec_s = self.latency_ms(size) / 1e3
            self.gpu_free = at + exec_s
            self.batch_starts.append(float(at))
            self.batch_exec.append(exec_s)
            self.batch_sizes.append(size)
            self.member_times.extend(a for a, _ in batch)
            self.member_phases.extend(p for _, p in batch)

    def to_block(self, phases: tuple[str, ...] = ()) -> BatchBlock:
        """This replica's served batches as a telemetry column block."""
        return BatchBlock(
            starts=np.asarray(self.batch_starts, dtype=float),
            exec_s=np.asarray(self.batch_exec, dtype=float),
            sizes=np.asarray(self.batch_sizes, dtype=np.int64),
            replica=self.spec.name,
            member_times=np.asarray(self.member_times, dtype=float),
            member_phases=np.asarray(self.member_phases, dtype=np.int64),
            phases=phases,
        )

    def enqueue(self, arrival: float, phase: int = 0) -> None:
        self.queue.append((arrival, phase))

    # -- routing metrics ------------------------------------------------
    def queue_len(self) -> int:
        return len(self.queue)

    def backlog_s(self, now: float) -> float:
        """Seconds of already-committed GPU work still ahead of ``now``."""
        return max(self.gpu_free - now, 0.0)

    def estimated_completion_s(self, now: float) -> float:
        """Predicted time-in-system for a query routed here at ``now``.

        Counts every batch the queue implies, not just the next one —
        a deeply backed-up replica must not look cheap just because the
        latency curve saturates at one max-batch execution.
        """
        max_batch = self.spec.batching.max_batch
        pending = self.queue_len() + 1
        full_batches, remainder = divmod(pending, max_batch)
        work_ms = full_batches * self.latency_ms(max_batch)
        if remainder:
            work_ms += self.latency_ms(remainder)
        return self.backlog_s(now) + work_ms / 1e3


class RoutingPolicy:
    """Chooses a replica index for each arriving query."""

    name = "policy"

    def reset(self, n_replicas: int) -> None:  # pragma: no cover - default
        pass

    def select(
        self,
        replicas: Sequence[_ReplicaState],
        now: float,
        rng: np.random.Generator,
    ) -> int:
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Oblivious cycling; the baseline every load balancer starts from."""

    name = "round-robin"

    def reset(self, n_replicas: int) -> None:
        self._next = 0

    def select(self, replicas, now, rng):
        index = self._next % len(replicas)
        self._next += 1
        return index


class JoinShortestQueuePolicy(RoutingPolicy):
    """Route to the replica with the fewest waiting queries."""

    name = "jsq"

    def select(self, replicas, now, rng):
        return min(
            range(len(replicas)),
            key=lambda i: (
                replicas[i].queue_len(),
                replicas[i].backlog_s(now),
                i,
            ),
        )


class PowerOfTwoPolicy(RoutingPolicy):
    """Sample two random replicas, keep the shorter queue (Mitzenmacher)."""

    name = "power-of-two"

    def select(self, replicas, now, rng):
        if len(replicas) == 1:
            return 0
        a, b = rng.choice(len(replicas), size=2, replace=False)
        key = lambda i: (replicas[i].queue_len(), replicas[i].backlog_s(now))
        return int(a) if key(a) <= key(b) else int(b)


class LeastLatencyPolicy(RoutingPolicy):
    """Route to the lowest predicted completion time.

    Unlike JSQ this weighs queue depth by the replica's own speed, so an
    H100 with three waiting queries can still beat an idle A100.
    """

    name = "least-latency"

    def select(self, replicas, now, rng):
        return min(
            range(len(replicas)),
            key=lambda i: (replicas[i].estimated_completion_s(now), i),
        )


#: policy name -> zero-argument factory.
ROUTING_POLICIES: dict[str, Callable[[], RoutingPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    JoinShortestQueuePolicy.name: JoinShortestQueuePolicy,
    PowerOfTwoPolicy.name: PowerOfTwoPolicy,
    LeastLatencyPolicy.name: LeastLatencyPolicy,
}


def resolve_policy(policy: str | RoutingPolicy) -> RoutingPolicy:
    if isinstance(policy, RoutingPolicy):
        return policy
    try:
        return ROUTING_POLICIES[policy]()
    except KeyError:
        known = ", ".join(ROUTING_POLICIES)
        raise ValueError(
            f"unknown routing policy {policy!r}; known: {known}"
        ) from None


def resolve_latency_models(
    fleet: FleetSpec, latency_models: Mapping[str, LatencyModel]
) -> dict[str, LatencyModel]:
    """Map each replica to its curve, by replica name or by GPU name."""
    resolved = {}
    for replica in fleet.replicas:
        model = latency_models.get(replica.name) \
            or latency_models.get(replica.gpu.name)
        if model is None:
            raise KeyError(
                f"no latency model for replica {replica.name!r} "
                f"(gpu {replica.gpu.name!r})"
            )
        resolved[replica.name] = model
    return resolved


def _route_stream(
    fleet: FleetSpec,
    latency_models: Mapping[str, LatencyModel],
    times: np.ndarray,
    phase_ids: np.ndarray,
    *,
    policy: str | RoutingPolicy,
    seed: int,
) -> tuple[list[_ReplicaState], RoutingPolicy, float]:
    """Route a time-sorted arrival stream and drain every replica."""
    models = resolve_latency_models(fleet, latency_models)
    states = [
        _ReplicaState(replica, models[replica.name])
        for replica in fleet.replicas
    ]
    router = resolve_policy(policy)
    router.reset(len(states))
    # distinct stream from the arrival-generation rng: sampling policies
    # must not replay the bits that produced the inter-arrival gaps
    rng = np.random.default_rng([seed, 0x617])

    for arrival, phase in zip(times, phase_ids):
        now = float(arrival)
        for state in states:
            state.advance(now)
        states[router.select(states, now, rng)].enqueue(now, int(phase))
    for state in states:
        state.advance(float("inf"))
    horizon = max(
        float(times[-1]), max(s.gpu_free for s in states)
    )
    return states, router, horizon


def _simulate_fleet_run(
    fleet: FleetSpec,
    latency_models: Mapping[str, LatencyModel],
    *,
    qps: float,
    duration_s: float = 10.0,
    policy: str | RoutingPolicy = "jsq",
    seed: int = 0,
) -> tuple[FleetReport, FleetRun]:
    """Route the Poisson stream; package (report, run record)."""
    if qps <= 0:
        raise ValueError("qps must be positive")
    rng = np.random.default_rng(seed)
    n = max(1, int(qps * duration_s))
    arrivals = np.cumsum(rng.exponential(1.0 / qps, size=n))
    phase_ids = np.zeros(n, dtype=np.int64)
    states, router, _horizon = _route_stream(
        fleet, latency_models, arrivals, phase_ids,
        policy=policy, seed=seed,
    )
    run = FleetRun(
        meta={
            "kind": "fleet",
            "fleet": fleet.name,
            "policy": router.name,
            "qps": qps,
            "seed": seed,
            "cost_units": float(fleet.cost_units),
        },
        arrivals=ArrivalBlock(
            times=arrivals, phase_ids=phase_ids, phases=("all",)
        ),
        replicas=[s.to_block(("all",)) for s in states],
    )
    return fold_fleet_report(run), run


def simulate_fleet(
    fleet: FleetSpec,
    latency_models: Mapping[str, LatencyModel],
    *,
    qps: float,
    duration_s: float = 10.0,
    policy: str | RoutingPolicy = "jsq",
    seed: int = 0,
    sink: Sink | None = None,
) -> FleetReport:
    """Discrete-event simulation of a routed fleet serving Poisson load.

    ``latency_models`` maps replica names — or, as a convenient fallback,
    GPU names — to batch-latency curves (ms as a function of batch size).
    Query latency = routing (instant) + batching wait + queueing + batch
    execution on the assigned replica.  The run's telemetry (arrival
    block + one batch block per replica) goes to ``sink``, falling back
    to the ambient default.
    """
    report, run = _simulate_fleet_run(
        fleet, latency_models, qps=qps, duration_s=duration_s,
        policy=policy, seed=seed,
    )
    emit_run(sink, run)
    return report


def _simulate_fleet_stream_run(
    fleet: FleetSpec,
    latency_models: Mapping[str, LatencyModel],
    stream,
    *,
    policy: str | RoutingPolicy = "jsq",
    sla_ms: float | None = None,
    seed: int = 0,
    phase_hit_rates: Sequence[float] | None = None,
    tenant: str | None = None,
) -> tuple[FleetReport, FleetRun]:
    """Route one scenario stream; package (report, run record)."""
    times = np.asarray(stream.times, dtype=float)
    if len(times) == 0:
        raise ValueError(f"arrival stream {stream.name!r} is empty")
    phase_ids = np.asarray(stream.phase_ids)
    states, router, _horizon = _route_stream(
        fleet, latency_models, times, phase_ids, policy=policy, seed=seed,
    )
    phases = tuple(stream.phases)
    meta = {
        "kind": "fleet_stream",
        "fleet": fleet.name,
        "scenario": stream.name,
        "policy": router.name,
        "sla_ms": sla_ms,
        "duration_s": stream.duration_s,
        "cost_units": float(fleet.cost_units),
        "phases": list(phases),
        "phase_durations": [float(d) for d in stream.phase_durations],
        "phase_hit_rates": (
            None if phase_hit_rates is None
            else [float(r) for r in phase_hit_rates]
        ),
    }
    if tenant is not None:
        meta["tenant"] = tenant
    run = FleetRun(
        meta=meta,
        arrivals=ArrivalBlock(
            times=times,
            phase_ids=np.asarray(phase_ids, dtype=np.int64),
            phases=phases,
        ),
        replicas=[s.to_block(phases) for s in states],
    )
    return fold_fleet_report(run), run


def simulate_fleet_stream(
    fleet: FleetSpec,
    latency_models: Mapping[str, LatencyModel],
    stream,
    *,
    policy: str | RoutingPolicy = "jsq",
    sla_ms: float | None = None,
    seed: int = 0,
    phase_hit_rates: Sequence[float] | None = None,
    sink: Sink | None = None,
) -> FleetReport:
    """A routed fleet serving one scenario stream, with per-phase tails.

    ``stream`` is any object with the
    :class:`repro.traffic.ScenarioTrace` shape (``times``, ``phase_ids``,
    ``phases``, ``phase_durations``, ``duration_s``, ``name``) — this is
    how routing policies get evaluated *inside* a burst or a drift
    window instead of on the run average.  ``seed`` only drives the
    router's sampling policies (the stream is already materialized).
    ``phase_hit_rates`` (one memstore HBM hit rate per phase) is
    threaded into the per-phase breakdown.  The run's telemetry goes to
    ``sink`` (or the ambient default).
    """
    report, run = _simulate_fleet_stream_run(
        fleet, latency_models, stream, policy=policy, sla_ms=sla_ms,
        seed=seed, phase_hit_rates=phase_hit_rates,
    )
    emit_run(sink, run)
    return report


def subfleet(fleet: FleetSpec, replicas: Sequence[str]) -> FleetSpec:
    """The sub-fleet holding exactly ``replicas`` (order preserved).

    Returns ``fleet`` itself when the subset is the whole fleet, so a
    degenerate selection changes nothing — not even the fleet name.
    """
    wanted = set(replicas)
    unknown = sorted(wanted - {r.name for r in fleet.replicas})
    if unknown:
        known = ", ".join(r.name for r in fleet.replicas)
        raise KeyError(f"unknown replicas {unknown}; known: {known}")
    if wanted == {r.name for r in fleet.replicas}:
        return fleet
    subset = tuple(r for r in fleet.replicas if r.name in wanted)
    return FleetSpec(
        name=f"{fleet.name}/{'+'.join(r.name for r in subset)}",
        replicas=subset,
    )


def _simulate_fleet_tenant_stream_runs(
    fleet: FleetSpec,
    latency_models: Mapping[str, Mapping[str, LatencyModel]],
    streams: Mapping[str, object],
    *,
    assignments: Mapping[str, Sequence[str]] | None = None,
    policy: str | RoutingPolicy = "jsq",
    sla_ms: Mapping[str, float | None] | float | None = None,
    seed: int = 0,
) -> tuple[dict[str, FleetReport], dict[str, FleetRun]]:
    """Per-tenant routed serves returning (reports, runs) by tenant."""
    missing = sorted(set(streams) - set(latency_models))
    if missing:
        raise KeyError(f"no latency models for tenants {missing}")
    reports: dict[str, FleetReport] = {}
    runs: dict[str, FleetRun] = {}
    for name in streams:
        replicas = (
            assignments.get(name) if assignments is not None else None
        )
        sub = (
            fleet if replicas is None else subfleet(fleet, replicas)
        )
        sla = (
            sla_ms.get(name) if isinstance(sla_ms, Mapping) else sla_ms
        )
        reports[name], runs[name] = _simulate_fleet_stream_run(
            sub, latency_models[name], streams[name],
            policy=policy, sla_ms=sla, seed=seed, tenant=name,
        )
    return reports, runs


def simulate_fleet_tenant_streams(
    fleet: FleetSpec,
    latency_models: Mapping[str, Mapping[str, LatencyModel]],
    streams: Mapping[str, object],
    *,
    assignments: Mapping[str, Sequence[str]] | None = None,
    policy: str | RoutingPolicy = "jsq",
    sla_ms: Mapping[str, float | None] | float | None = None,
    seed: int = 0,
    sink: Sink | None = None,
) -> dict[str, FleetReport]:
    """Route several tenants' streams over the fleet, one report each.

    Multi-tenant serving in the MPS-style concurrency model: each
    tenant's queries are routed over its assigned replicas on the
    tenant's own timeline (contention between co-resident tenants is
    carried by the latency curves — :mod:`repro.tenancy.share` prices
    it), so per-tenant tails and SLA attainment stay attributable.
    ``latency_models[tenant]`` maps replica or GPU names to that
    tenant's curves; ``assignments[tenant]`` names the replicas it may
    use (omitted: all of them).  A single tenant assigned the whole
    fleet is served by :func:`simulate_fleet_stream` verbatim —
    field-identical to calling it directly.  Each tenant's run record
    is emitted to ``sink`` (or the ambient default) with
    ``meta["tenant"]`` set.
    """
    reports, runs = _simulate_fleet_tenant_stream_runs(
        fleet, latency_models, streams, assignments=assignments,
        policy=policy, sla_ms=sla_ms, seed=seed,
    )
    for run in runs.values():
        emit_run(sink, run)
    return reports
