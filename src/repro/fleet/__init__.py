"""Cluster-scale serving: heterogeneous fleets, routing, placement.

Composes the single-GPU pieces (kernel simulator, batching, serving)
into a discrete-event cluster simulator: a :class:`FleetSpec` of mixed
A100/H100 replicas, a router with pluggable load-balancing policies,
fleet-level table placement over unequal GPUs, and capacity planning
(max QPS at SLA, replicas-needed, autoscaler sweeps).
"""

from repro.fleet.capacity import (
    autoscaler_sweep,
    calibrated_latency_model,
    fleet_max_sustainable_qps,
    linear_latency_model,
    replicas_needed,
    tiered_fleet_models,
    tiered_latency_model,
)
from repro.fleet.placement import (
    HeteroPlacement,
    HeteroShard,
    TieredPlacement,
    TieredShard,
    ZooPlacement,
    ZooShard,
    hetero_lpt_shard,
    measure_table_times,
    place_tables,
    place_tables_tiered,
    place_zoo,
)
from repro.fleet.report import (
    FleetReport,
    build_fleet_report,
    phase_breakdown,
)
from repro.fleet.router import (
    ROUTING_POLICIES,
    JoinShortestQueuePolicy,
    LeastLatencyPolicy,
    PowerOfTwoPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    resolve_policy,
    simulate_fleet,
    simulate_fleet_stream,
    simulate_fleet_tenant_streams,
    subfleet,
)
from repro.fleet.topology import (
    GPU_COST_UNITS,
    FleetSpec,
    ReplicaSpec,
)

__all__ = [
    "GPU_COST_UNITS",
    "ROUTING_POLICIES",
    "FleetReport",
    "FleetSpec",
    "HeteroPlacement",
    "HeteroShard",
    "JoinShortestQueuePolicy",
    "LeastLatencyPolicy",
    "PowerOfTwoPolicy",
    "ReplicaSpec",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "TieredPlacement",
    "TieredShard",
    "ZooPlacement",
    "ZooShard",
    "autoscaler_sweep",
    "build_fleet_report",
    "calibrated_latency_model",
    "fleet_max_sustainable_qps",
    "hetero_lpt_shard",
    "linear_latency_model",
    "measure_table_times",
    "phase_breakdown",
    "place_tables",
    "place_tables_tiered",
    "place_zoo",
    "replicas_needed",
    "resolve_policy",
    "simulate_fleet",
    "simulate_fleet_stream",
    "simulate_fleet_tenant_streams",
    "subfleet",
    "tiered_fleet_models",
    "tiered_latency_model",
]
