"""Fleet-wide capacity planning: sustainable QPS, replicas-needed, autoscaling.

Three planner questions, answered on the routed fleet simulator:

1. *How much can this fleet take?* — :func:`fleet_max_sustainable_qps`
   scans a QPS grid and bisects the feasibility boundary for the
   largest load whose fleet-wide tail latency meets the SLA.
2. *How many replicas do I need for X QPS?* — :func:`replicas_needed`
   grows a fleet one replica at a time until the SLA holds.
3. *What does the scaling curve look like?* — :func:`autoscaler_sweep`
   runs (2) over a load grid, the table a horizontal autoscaler is
   configured from.

Calibration helpers turn the kernel-level simulator into the per-replica
batch-latency curves the router consumes: one expensive sweep per
(GPU, scheme), reused across every load point.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Mapping, Sequence

from repro.config.gpu import GpuSpec
from repro.config.model import PAPER_MODEL, DLRMConfig
from repro.config.scale import SimScale
from repro.core.pipeline import run_inference
from repro.core.schemes import Scheme
from repro.core.serving import interpolated_latency_model
from repro.dlrm.timing import non_embedding_time
from repro.gpusim.memo import KernelMemo
from repro.fleet.report import FleetReport
from repro.fleet.router import LatencyModel, RoutingPolicy, simulate_fleet
from repro.fleet.topology import FleetSpec

#: Per-replica QPS grid, scaled by fleet size for the default fleet grid.
_PER_REPLICA_GRID = (500, 1000, 2000, 4000, 8000, 16000, 32000, 64000)


def _simulate_capped(
    fleet: FleetSpec,
    latency_models: Mapping[str, LatencyModel],
    *,
    qps: float,
    duration_s: float,
    policy: str | RoutingPolicy,
    seed: int,
    max_queries: int,
) -> FleetReport:
    """One load point, with the simulated horizon capped in queries.

    Planner sweeps visit very different load magnitudes; capping the
    query count keeps per-point cost flat while leaving enough tail
    samples (p99 of 60k queries = 600 tail events) for a stable verdict.
    """
    duration = min(duration_s, max_queries / qps)
    return simulate_fleet(
        fleet, latency_models, qps=qps, duration_s=duration,
        policy=policy, seed=seed,
    )


# ----------------------------------------------------------------------
# calibration: kernel simulator -> batch-latency curves
# ----------------------------------------------------------------------
def calibrated_latency_model(
    gpu: GpuSpec,
    scheme: Scheme,
    *,
    dataset: str = "med_hot",
    batch_sizes: Sequence[int] = (512, 1024, 2048),
    model: DLRMConfig = PAPER_MODEL,
    num_sms: int = 2,
    seed: int = 0,
    memo: KernelMemo | None = None,
) -> LatencyModel:
    """Batch-latency curve from full pipeline simulations.

    Runs the end-to-end inference simulation at each calibration batch
    size and interpolates between the points — one sweep per
    (GPU, scheme) serves every routing/load experiment.  The underlying
    kernel simulations flow through the kernel memo (the process
    default, or ``memo``), so repeated calibrations — across planner
    sweeps, autoscaler steps, or whole runs when the disk store is
    enabled — cost almost nothing.
    """
    points = []
    for batch in batch_sizes:
        batch_model = replace(model, batch_size=batch)
        scale = SimScale(name=f"fleet{num_sms}", num_sms=num_sms)
        result = run_inference(
            dataset, scheme, gpu=gpu, model=batch_model, scale=scale,
            seed=seed, memo=memo,
        )
        points.append(result.batch_latency_ms)
    return interpolated_latency_model(batch_sizes, points)


def tiered_latency_model(
    base_model: LatencyModel,
    *,
    host_us_per_query: float,
) -> LatencyModel:
    """Wrap a batch-latency curve with the host-tier fetch cost.

    ``host_us_per_query`` comes from a memstore calibration — e.g. a
    :class:`~repro.fleet.placement.TieredShard`'s per-query host time,
    or a :class:`~repro.memstore.store.TierStats` divided by its batch.
    HBM-miss traffic is bandwidth-bound and per-batch link latency is
    second-order, so the penalty scales linearly in batch size — the
    same shape assumption :func:`linear_latency_model` makes for the
    embedding stage itself.  A fully-resident plan has
    ``host_us_per_query == 0`` and returns the base curve unchanged.
    """
    if host_us_per_query < 0:
        raise ValueError("host_us_per_query must be >= 0")
    if host_us_per_query == 0:
        return base_model

    def latency_ms(batch: int) -> float:
        return base_model(batch) + host_us_per_query * batch / 1e3

    return latency_ms


def tiered_fleet_models(
    latency_models: Mapping[str, LatencyModel],
    placement,
) -> dict[str, LatencyModel]:
    """Apply a :class:`~repro.fleet.placement.TieredPlacement`'s host
    penalties to per-GPU batch-latency curves.

    Each GPU name's curve is wrapped with the worst per-query host time
    of the shards it hosts (conservative when one GPU type holds
    several shards); GPUs without shards pass through unchanged, and a
    shard whose GPU has no curve raises — the host penalty must never
    silently drop out of an over-HBM simulation.  The result feeds any
    planner or router entry point unchanged — this is how an over-HBM
    model still yields end-to-end p99/goodput numbers.
    """
    worst: dict[str, float] = {}
    for shard in placement.shards:
        worst[shard.gpu_name] = max(
            worst.get(shard.gpu_name, 0.0), shard.host_us_per_query
        )
    missing = sorted(set(worst) - set(latency_models))
    if missing:
        raise KeyError(
            f"no latency model for placed GPUs {missing}; "
            f"known: {sorted(latency_models)}"
        )
    out = dict(latency_models)
    for name, host in worst.items():
        out[name] = tiered_latency_model(out[name], host_us_per_query=host)
    return out


def linear_latency_model(
    gpu: GpuSpec,
    *,
    emb_us: float,
    emb_batch: int,
    model: DLRMConfig = PAPER_MODEL,
) -> LatencyModel:
    """Batch-latency curve from a single calibrated embedding point.

    The embedding stage is bandwidth-bound and scales ~linearly in batch
    size; the dense stages come from the roofline at the requested batch.
    Cheaper than :func:`calibrated_latency_model` when a harness context
    already holds the embedding-stage time at one batch size.
    """
    if emb_batch < 1:
        raise ValueError("emb_batch must be >= 1")

    def latency_ms(batch: int) -> float:
        emb = emb_us * batch / emb_batch
        non_emb = non_embedding_time(gpu, model, batch_size=batch).total_us
        return (emb + non_emb) / 1e3

    return latency_ms


# ----------------------------------------------------------------------
# planner queries
# ----------------------------------------------------------------------
def fleet_max_sustainable_qps(
    fleet: FleetSpec,
    latency_models: Mapping[str, LatencyModel],
    *,
    sla_ms: float,
    percentile: str = "p99",
    qps_grid: Sequence[float] | None = None,
    policy: str | RoutingPolicy = "jsq",
    duration_s: float = 3.0,
    refine_iters: int = 4,
    max_queries: int = 60_000,
    seed: int = 0,
) -> tuple[float, list[FleetReport]]:
    """Largest sustained QPS whose fleet tail latency meets the SLA.

    Scans ``qps_grid`` (default: the per-replica grid scaled by fleet
    size), then bisects between the best passing and first failing grid
    points ``refine_iters`` times to sharpen the boundary.
    """
    if qps_grid is None:
        qps_grid = [q * fleet.n_replicas for q in _PER_REPLICA_GRID]
    reports = []
    best = 0.0
    worst_fail = float("inf")
    for qps in qps_grid:
        report = _simulate_capped(
            fleet, latency_models, qps=qps, duration_s=duration_s,
            policy=policy, seed=seed, max_queries=max_queries,
        )
        reports.append(report)
        if report.meets_sla(sla_ms, percentile):
            best = max(best, qps)
        else:
            worst_fail = min(worst_fail, qps)
    for _ in range(refine_iters):
        if not best or worst_fail <= best:
            break
        mid = (best + min(worst_fail, 2 * best)) / 2
        report = _simulate_capped(
            fleet, latency_models, qps=mid, duration_s=duration_s,
            policy=policy, seed=seed, max_queries=max_queries,
        )
        reports.append(report)
        if report.meets_sla(sla_ms, percentile):
            best = mid
        else:
            worst_fail = mid
    return best, reports


def replicas_needed(
    make_fleet: Callable[[int], FleetSpec],
    latency_models: Mapping[str, LatencyModel],
    *,
    qps: float,
    sla_ms: float,
    percentile: str = "p99",
    policy: str | RoutingPolicy = "jsq",
    duration_s: float = 3.0,
    max_replicas: int = 16,
    max_queries: int = 60_000,
    seed: int = 0,
) -> int | None:
    """Smallest replica count meeting the SLA at ``qps`` (None if > max).

    ``make_fleet(n)`` builds the candidate fleet at size ``n`` — e.g.
    ``lambda n: FleetSpec.homogeneous(A100_SXM4_80GB, n, scheme=...)``.
    """
    for n in range(1, max_replicas + 1):
        report = _simulate_capped(
            make_fleet(n), latency_models, qps=qps,
            duration_s=duration_s, policy=policy, seed=seed,
            max_queries=max_queries,
        )
        if report.meets_sla(sla_ms, percentile):
            return n
    return None


def autoscaler_sweep(
    make_fleet: Callable[[int], FleetSpec],
    latency_models: Mapping[str, LatencyModel],
    *,
    qps_grid: Sequence[float],
    sla_ms: float,
    percentile: str = "p99",
    policy: str | RoutingPolicy = "jsq",
    duration_s: float = 3.0,
    max_replicas: int = 16,
    max_queries: int = 60_000,
    seed: int = 0,
) -> list[tuple[float, int | None]]:
    """Replicas needed at each load point — the autoscaler's lookup table.

    Monotone in load, so the search at each grid point starts from the
    previous answer rather than from one replica.
    """
    table: list[tuple[float, int | None]] = []
    floor = 1
    for qps in sorted(qps_grid):
        found = None
        for n in range(floor, max_replicas + 1):
            report = _simulate_capped(
                make_fleet(n), latency_models, qps=qps,
                duration_s=duration_s, policy=policy, seed=seed,
                max_queries=max_queries,
            )
            if report.meets_sla(sla_ms, percentile):
                found = n
                break
        table.append((qps, found))
        floor = found if found is not None else max_replicas
    return table
