"""Fleet topology: heterogeneous replica groups behind one router.

Production recommendation inference is not one GPU but a *fleet*: a
router fans a shared query stream out to replicas that may differ in
GPU generation (A100 next to H100), in the optimization scheme their
kernels were built with, and in their batching policy.  A
:class:`ReplicaSpec` captures one replica's configuration and a
:class:`FleetSpec` the whole cluster, including the relative cost of
each accelerator so capacity numbers can be normalized to spend
(QPS per cost unit), not just to GPU count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.gpu import A100_SXM4_80GB, H100_NVL, GpuSpec
from repro.core.schemes import BASE, Scheme
from repro.core.serving import BatchingPolicy

#: Relative accelerator cost, normalized to the A100 (approximate public
#: cloud on-demand price ratio).  Unknown GPUs default to 1.0.
GPU_COST_UNITS: dict[str, float] = {
    A100_SXM4_80GB.name: 1.0,
    H100_NVL.name: 1.9,
}


@dataclass(frozen=True)
class ReplicaSpec:
    """One serving replica: a GPU, a kernel scheme, and a batcher."""

    name: str
    gpu: GpuSpec
    scheme: Scheme = BASE
    batching: BatchingPolicy = field(default_factory=BatchingPolicy)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("replica name must be non-empty")

    @property
    def cost_units(self) -> float:
        return GPU_COST_UNITS.get(self.gpu.name, 1.0)


@dataclass(frozen=True)
class FleetSpec:
    """A named collection of (possibly heterogeneous) replicas."""

    name: str
    replicas: tuple[ReplicaSpec, ...]

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("fleet must have at least one replica")
        names = [r.name for r in self.replicas]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate replica names in fleet: {names}")

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def gpu_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for replica in self.replicas:
            counts[replica.gpu.name] = counts.get(replica.gpu.name, 0) + 1
        return counts

    @property
    def cost_units(self) -> float:
        """Total fleet cost in A100-equivalents."""
        return sum(r.cost_units for r in self.replicas)

    @property
    def is_heterogeneous(self) -> bool:
        return len({r.gpu.name for r in self.replicas}) > 1

    def describe(self) -> str:
        gpus = " + ".join(
            f"{count}x{name}" for name, count in sorted(self.gpu_counts.items())
        )
        return f"{self.name} ({gpus}, {self.cost_units:.1f} cost units)"

    @classmethod
    def homogeneous(
        cls,
        gpu: GpuSpec,
        n_replicas: int,
        *,
        name: str | None = None,
        scheme: Scheme = BASE,
        batching: BatchingPolicy | None = None,
    ) -> "FleetSpec":
        """``n_replicas`` identical replicas of one GPU type."""
        return cls.mixed(
            [(gpu, n_replicas)], name=name, scheme=scheme,
            batching=batching,
        )

    @classmethod
    def mixed(
        cls,
        counts: dict[GpuSpec, int] | list[tuple[GpuSpec, int]],
        *,
        name: str | None = None,
        scheme: Scheme = BASE,
        batching: BatchingPolicy | None = None,
    ) -> "FleetSpec":
        """A heterogeneous fleet, e.g. ``{A100: 2, H100: 2}``."""
        pairs = list(counts.items()) if isinstance(counts, dict) else counts
        batching = batching or BatchingPolicy()
        replicas = []
        for gpu, count in pairs:
            if count < 1:
                raise ValueError(f"replica count for {gpu.name} must be >= 1")
            replicas.extend(
                ReplicaSpec(
                    name=f"{gpu.name}/{i}",
                    gpu=gpu,
                    scheme=scheme,
                    batching=batching,
                )
                for i in range(count)
            )
        auto_name = "+".join(f"{c}x{g.name}" for g, c in pairs)
        return cls(name=name or auto_name, replicas=tuple(replicas))
