"""Fleet-level serving reports: tails, balance, cost-normalized throughput.

A :class:`FleetReport` aggregates the per-replica
:class:`~repro.core.serving.ServingReport`s of one routed simulation
into the numbers a capacity planner reads: fleet-wide p50/p95/p99 over
*all* queries (not a mean of per-replica tails — tail latency does not
average), utilization balance across replicas, and throughput
normalized by GPU count and by cost.  Scenario runs additionally carry
a per-phase breakdown (p50/p99/goodput per scenario phase) so routing
policies can be judged inside the burst, not just on the run average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.serving import (
    PhaseStats,
    ReportSlaMixin,
    ServingReport,
    find_phase,
    phase_breakdown,
)
from repro.telemetry.events import BatchBlock, FleetRun

__all__ = [
    "FleetReport",
    "build_fleet_report",
    "fold_fleet_report",
    "phase_breakdown",  # re-export: shared with core.serving
]


@dataclass(frozen=True)
class FleetReport(ReportSlaMixin):
    """One fleet simulation: global latency tails + per-replica detail."""

    fleet_name: str
    policy: str
    qps: float
    n_queries: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    replica_reports: tuple[ServingReport, ...]
    cost_units: float
    sla_ms: float | None = None
    goodput_qps: float = 0.0
    sla_hit_pct: float = 100.0
    phases: tuple[PhaseStats, ...] = ()

    def phase(self, name: str) -> PhaseStats:
        return find_phase(self.phases, name)

    @property
    def n_replicas(self) -> int:
        return len(self.replica_reports)

    @property
    def qps_per_gpu(self) -> float:
        """Offered load divided by replica count."""
        return self.qps / self.n_replicas

    @property
    def qps_per_cost_unit(self) -> float:
        """Cost-normalized throughput (A100-equivalents in the divisor)."""
        return self.qps / self.cost_units if self.cost_units else 0.0

    @property
    def mean_utilization(self) -> float:
        return float(
            np.mean([r.gpu_utilization for r in self.replica_reports])
        )

    @property
    def utilization_balance(self) -> float:
        """max / mean replica utilization (1.0 = perfectly balanced)."""
        utils = [r.gpu_utilization for r in self.replica_reports]
        mean = float(np.mean(utils))
        return float(max(utils) / mean) if mean > 0 else 1.0

    @property
    def routed_fractions(self) -> dict[str, float]:
        """Share of the query stream each replica served."""
        total = sum(r.n_queries for r in self.replica_reports)
        if total == 0:
            return {r.scheme_name: 0.0 for r in self.replica_reports}
        return {
            r.scheme_name: r.n_queries / total for r in self.replica_reports
        }


def build_fleet_report(
    fleet_name: str,
    policy: str,
    qps: float,
    latencies_ms: np.ndarray,
    replica_reports: tuple[ServingReport, ...],
    cost_units: float,
    *,
    sla_ms: float | None = None,
    duration_s: float | None = None,
    phases: tuple[PhaseStats, ...] = (),
) -> FleetReport:
    """Assemble a :class:`FleetReport` from routed per-query latencies."""
    if len(latencies_ms) == 0:
        raise ValueError("fleet simulation produced no queries")
    n = int(len(latencies_ms))
    within = (
        int(np.count_nonzero(latencies_ms <= sla_ms))
        if sla_ms is not None else n
    )
    return FleetReport(
        fleet_name=fleet_name,
        policy=policy,
        qps=qps,
        n_queries=n,
        p50_ms=float(np.percentile(latencies_ms, 50)),
        p95_ms=float(np.percentile(latencies_ms, 95)),
        p99_ms=float(np.percentile(latencies_ms, 99)),
        replica_reports=replica_reports,
        cost_units=cost_units,
        sla_ms=sla_ms,
        goodput_qps=within / duration_s if duration_s else 0.0,
        sla_hit_pct=100.0 * within / n,
        phases=phases,
    )


def _fold_replica_report(
    block: BatchBlock, horizon: float
) -> ServingReport:
    """One replica's :class:`ServingReport` folded from its batch block.

    ``ServingReport.scheme_name`` carries the *replica* name here: fleet
    consumers (routed_fractions, per-replica tables) identify rows by
    replica, and the kernel scheme lives on ``ReplicaSpec.scheme``.
    """
    member_times, _ = block.members()
    done_at = np.repeat(block.done, block.sizes)
    lat_ms = 1e3 * (done_at - member_times)
    served = len(lat_ms)
    busy = float(sum(block.exec_s.tolist()))
    pct = (
        (lambda q: float(np.percentile(lat_ms, q))) if served
        else (lambda q: 0.0)
    )
    return ServingReport(
        scheme_name=block.replica or "replica",
        qps=served / horizon if horizon > 0 else 0.0,
        n_queries=served,
        p50_ms=pct(50),
        p95_ms=pct(95),
        p99_ms=pct(99),
        mean_batch_size=(
            float(np.mean(block.sizes)) if len(block) else 0.0
        ),
        gpu_utilization=busy / horizon if horizon > 0 else 0.0,
    )


def fold_fleet_report(run: FleetRun) -> FleetReport:
    """Pure fold: a recorded :class:`FleetRun` into its report.

    Shared by the live routed simulators and the replay decoder —
    the latencies concatenate per replica in the run's replica order,
    each replica's batches in dispatch order, members in queue-pop
    order, exactly as the live simulation accumulated them, so the
    fleet-wide percentiles match bit for bit.
    """
    meta = run.meta
    times = run.arrivals.times
    blocks = run.replicas
    horizon = max(
        float(times[-1]),
        max(
            (float(b.done[-1]) if len(b) else 0.0) for b in blocks
        ),
    )
    replica_reports = tuple(
        _fold_replica_report(b, horizon) for b in blocks
    )
    lat_parts = []
    phase_parts = []
    for b in blocks:
        member_times, member_phases = b.members()
        done_at = np.repeat(b.done, b.sizes)
        lat_parts.append(done_at - member_times)
        phase_parts.append(np.asarray(member_phases, dtype=np.int64))
    all_latencies_ms = 1e3 * np.concatenate(lat_parts)
    if meta["kind"] == "fleet_stream":
        duration_s = meta["duration_s"]
        sla_ms = meta["sla_ms"]
        return build_fleet_report(
            fleet_name=meta["fleet"],
            policy=meta["policy"],
            qps=len(times) / duration_s if duration_s else 0.0,
            latencies_ms=all_latencies_ms,
            replica_reports=replica_reports,
            cost_units=meta["cost_units"],
            sla_ms=sla_ms,
            duration_s=duration_s,
            phases=phase_breakdown(
                all_latencies_ms, np.concatenate(phase_parts),
                tuple(meta["phases"]), tuple(meta["phase_durations"]),
                sla_ms, phase_hit_rates=meta.get("phase_hit_rates"),
            ),
        )
    return build_fleet_report(
        fleet_name=meta["fleet"],
        policy=meta["policy"],
        qps=meta["qps"],
        latencies_ms=all_latencies_ms,
        replica_reports=replica_reports,
        cost_units=meta["cost_units"],
    )
