"""Fleet-level serving reports: tails, balance, cost-normalized throughput.

A :class:`FleetReport` aggregates the per-replica
:class:`~repro.core.serving.ServingReport`s of one routed simulation
into the numbers a capacity planner reads: fleet-wide p50/p95/p99 over
*all* queries (not a mean of per-replica tails — tail latency does not
average), utilization balance across replicas, and throughput
normalized by GPU count and by cost.  Scenario runs additionally carry
a per-phase breakdown (p50/p99/goodput per scenario phase) so routing
policies can be judged inside the burst, not just on the run average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.serving import (
    PhaseStats,
    ServingReport,
    find_phase,
    phase_breakdown,
    resolve_percentile_field,
)

__all__ = [
    "FleetReport",
    "build_fleet_report",
    "phase_breakdown",  # re-export: shared with core.serving
]


@dataclass(frozen=True)
class FleetReport:
    """One fleet simulation: global latency tails + per-replica detail."""

    fleet_name: str
    policy: str
    qps: float
    n_queries: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    replica_reports: tuple[ServingReport, ...]
    cost_units: float
    sla_ms: float | None = None
    goodput_qps: float = 0.0
    sla_hit_pct: float = 100.0
    phases: tuple[PhaseStats, ...] = ()

    def meets_sla(self, sla_ms: float, percentile: str = "p99") -> bool:
        return getattr(self, resolve_percentile_field(percentile)) <= sla_ms

    def phase(self, name: str) -> PhaseStats:
        return find_phase(self.phases, name)

    @property
    def n_replicas(self) -> int:
        return len(self.replica_reports)

    @property
    def qps_per_gpu(self) -> float:
        """Offered load divided by replica count."""
        return self.qps / self.n_replicas

    @property
    def qps_per_cost_unit(self) -> float:
        """Cost-normalized throughput (A100-equivalents in the divisor)."""
        return self.qps / self.cost_units if self.cost_units else 0.0

    @property
    def mean_utilization(self) -> float:
        return float(
            np.mean([r.gpu_utilization for r in self.replica_reports])
        )

    @property
    def utilization_balance(self) -> float:
        """max / mean replica utilization (1.0 = perfectly balanced)."""
        utils = [r.gpu_utilization for r in self.replica_reports]
        mean = float(np.mean(utils))
        return float(max(utils) / mean) if mean > 0 else 1.0

    @property
    def routed_fractions(self) -> dict[str, float]:
        """Share of the query stream each replica served."""
        total = sum(r.n_queries for r in self.replica_reports)
        if total == 0:
            return {r.scheme_name: 0.0 for r in self.replica_reports}
        return {
            r.scheme_name: r.n_queries / total for r in self.replica_reports
        }


def build_fleet_report(
    fleet_name: str,
    policy: str,
    qps: float,
    latencies_ms: np.ndarray,
    replica_reports: tuple[ServingReport, ...],
    cost_units: float,
    *,
    sla_ms: float | None = None,
    duration_s: float | None = None,
    phases: tuple[PhaseStats, ...] = (),
) -> FleetReport:
    """Assemble a :class:`FleetReport` from routed per-query latencies."""
    if len(latencies_ms) == 0:
        raise ValueError("fleet simulation produced no queries")
    n = int(len(latencies_ms))
    within = (
        int(np.count_nonzero(latencies_ms <= sla_ms))
        if sla_ms is not None else n
    )
    return FleetReport(
        fleet_name=fleet_name,
        policy=policy,
        qps=qps,
        n_queries=n,
        p50_ms=float(np.percentile(latencies_ms, 50)),
        p95_ms=float(np.percentile(latencies_ms, 95)),
        p99_ms=float(np.percentile(latencies_ms, 99)),
        replica_reports=replica_reports,
        cost_units=cost_units,
        sla_ms=sla_ms,
        goodput_qps=within / duration_s if duration_s else 0.0,
        sla_hit_pct=100.0 * within / n,
        phases=phases,
    )
