"""Embedding-table placement across *unequal* GPUs.

:func:`repro.core.distributed.lpt_shard` balances tables over identical
GPUs by measured kernel time.  A heterogeneous fleet breaks its core
assumption: the same table costs a different time on an A100 than on an
H100, so balance must be sought in *per-GPU completion time*, not table
count or single-GPU cost.  This module generalizes LPT to the unrelated-
machines setting (greedy minimum-completion-time, the classic 2-approx
heuristic production placers use): each table instance — longest first
by its average cost — goes to the GPU that would finish it earliest
given that GPU's own measured per-table kernel times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.config.gpu import GpuSpec
from repro.config.model import PAPER_MODEL, DLRMConfig
from repro.config.scale import SimScale
from repro.core.embedding import kernel_workload, run_table_kernel
from repro.core.schemes import Scheme
from repro.datasets.spec import HOTNESS_PRESETS
from repro.dlrm.timing import KERNEL_LAUNCH_US

#: gpu name -> table (dataset) name -> measured kernel time in us.
TableTimes = Mapping[str, Mapping[str, float]]


@dataclass(frozen=True)
class HeteroShard:
    """One GPU's table assignment, timed with that GPU's own kernels."""

    gpu_name: str
    tables: tuple[str, ...]
    compute_us: float


@dataclass(frozen=True)
class HeteroPlacement:
    """A fleet-level table placement over unequal GPUs."""

    shards: tuple[HeteroShard, ...]

    @property
    def n_gpus(self) -> int:
        return len(self.shards)

    @property
    def critical_path_us(self) -> float:
        """GPUs run their tables in parallel: the slowest one gates."""
        return max(s.compute_us for s in self.shards)

    @property
    def imbalance(self) -> float:
        """max / mean per-GPU compute time (1.0 = perfectly balanced)."""
        times = [s.compute_us for s in self.shards]
        mean = sum(times) / len(times)
        return max(times) / mean if mean else 1.0

    def tables_on(self, gpu_name: str) -> int:
        return sum(
            len(s.tables) for s in self.shards if s.gpu_name == gpu_name
        )


def hetero_lpt_shard(
    table_times: TableTimes,
    mix: Mapping[str, int],
    gpu_names: Sequence[str],
) -> list[list[str]]:
    """Greedy min-completion-time placement onto unequal GPUs.

    ``gpu_names`` lists one entry per GPU *instance* (repeats allowed);
    shard ``i`` of the result belongs to ``gpu_names[i]``.  With
    identical GPUs this degenerates to classic LPT.
    """
    if not gpu_names:
        raise ValueError("need at least one GPU")
    if not mix:
        raise ValueError("table mix is empty")
    for gpu in set(gpu_names):
        missing = set(mix) - set(table_times.get(gpu, {}))
        if missing:
            raise KeyError(
                f"no measured times on {gpu!r} for tables {sorted(missing)}"
            )
    instances = [name for name, count in mix.items() for _ in range(count)]
    # longest-first by average cost across the GPU types present
    instances.sort(
        key=lambda t: sum(table_times[g][t] for g in set(gpu_names))
        / len(set(gpu_names)),
        reverse=True,
    )
    loads = [0.0] * len(gpu_names)
    placement: list[list[str]] = [[] for _ in gpu_names]
    for table in instances:
        best = min(
            range(len(gpu_names)),
            key=lambda i: (loads[i] + table_times[gpu_names[i]][table], i),
        )
        placement[best].append(table)
        loads[best] += table_times[gpu_names[best]][table]
    return placement


def measure_table_times(
    mix: Mapping[str, int],
    scheme: Scheme,
    gpus: Sequence[GpuSpec],
    *,
    model: DLRMConfig = PAPER_MODEL,
    num_sms: int = 2,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Per-GPU measured kernel time (+ launch) for every table in the mix."""
    times: dict[str, dict[str, float]] = {}
    scale = SimScale(name=f"placement{num_sms}", num_sms=num_sms)
    for gpu in gpus:
        if gpu.name in times:
            continue
        workload = kernel_workload(gpu, model, scale)
        times[gpu.name] = {
            name: run_table_kernel(
                workload, HOTNESS_PRESETS[name], scheme, seed=seed
            ).profile.kernel_time_us + KERNEL_LAUNCH_US
            for name in mix
        }
    return times


def place_tables(
    mix: Mapping[str, int],
    scheme: Scheme,
    gpus: Sequence[GpuSpec],
    *,
    model: DLRMConfig = PAPER_MODEL,
    num_sms: int = 2,
    seed: int = 0,
    table_times: TableTimes | None = None,
) -> HeteroPlacement:
    """Measure per-GPU kernel times and place the mix across ``gpus``.

    Pass ``table_times`` to reuse measurements across sweeps.
    """
    if table_times is None:
        table_times = measure_table_times(
            mix, scheme, gpus, model=model, num_sms=num_sms, seed=seed
        )
    gpu_names = [gpu.name for gpu in gpus]
    placement = hetero_lpt_shard(table_times, mix, gpu_names)
    return HeteroPlacement(
        shards=tuple(
            HeteroShard(
                gpu_name=gpu_names[i],
                tables=tuple(tables),
                compute_us=sum(
                    table_times[gpu_names[i]][t] for t in tables
                ),
            )
            for i, tables in enumerate(placement)
        )
    )
