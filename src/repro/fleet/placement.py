"""Embedding-table placement across *unequal* GPUs.

:func:`repro.core.distributed.lpt_shard` balances tables over identical
GPUs by measured kernel time.  A heterogeneous fleet breaks its core
assumption: the same table costs a different time on an A100 than on an
H100, so balance must be sought in *per-GPU completion time*, not table
count or single-GPU cost.  This module generalizes LPT to the unrelated-
machines setting (greedy minimum-completion-time, the classic 2-approx
heuristic production placers use): each table instance — longest first
by its average cost — goes to the GPU that would finish it earliest
given that GPU's own measured per-table kernel times.

With the memstore tier (:func:`place_tables_tiered`), "does it fit?"
stops being a constraint and becomes a cost: each assigned table splits
into an HBM-resident fraction (set by the GPU's capacity budget) and a
host-DRAM remainder whose misses are fetched over the GPU's PCIe link,
and LPT balances on *effective* per-GPU time — kernel time plus the
host-fetch time that GPU's cache fraction implies.  Models bigger than
aggregate HBM place instead of failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.config.gpu import GpuSpec
from repro.config.model import PAPER_MODEL, DLRMConfig
from repro.config.scale import SimScale
from repro.core.embedding import (
    KernelWorkload,
    kernel_workload,
    run_table_kernel,
)
from repro.core.schemes import Scheme
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.dlrm.timing import KERNEL_LAUNCH_US
from repro.memstore.store import HostLink, store_for_spec

#: gpu name -> table (dataset) name -> measured kernel time in us.
TableTimes = Mapping[str, Mapping[str, float]]


@dataclass(frozen=True)
class HeteroShard:
    """One GPU's table assignment, timed with that GPU's own kernels."""

    gpu_name: str
    tables: tuple[str, ...]
    compute_us: float


@dataclass(frozen=True)
class HeteroPlacement:
    """A fleet-level table placement over unequal GPUs."""

    shards: tuple[HeteroShard, ...]

    @property
    def n_gpus(self) -> int:
        return len(self.shards)

    @property
    def critical_path_us(self) -> float:
        """GPUs run their tables in parallel: the slowest one gates."""
        return max(s.compute_us for s in self.shards)

    @property
    def imbalance(self) -> float:
        """max / mean per-GPU compute time (1.0 = perfectly balanced)."""
        times = [s.compute_us for s in self.shards]
        mean = sum(times) / len(times)
        return max(times) / mean if mean else 1.0

    def tables_on(self, gpu_name: str) -> int:
        return sum(
            len(s.tables) for s in self.shards if s.gpu_name == gpu_name
        )


def hetero_lpt_shard(
    table_times: TableTimes,
    mix: Mapping[str, int],
    gpu_names: Sequence[str],
) -> list[list[str]]:
    """Greedy min-completion-time placement onto unequal GPUs.

    ``gpu_names`` lists one entry per GPU *instance* (repeats allowed);
    shard ``i`` of the result belongs to ``gpu_names[i]``.  With
    identical GPUs this degenerates to classic LPT.
    """
    if not gpu_names:
        raise ValueError("need at least one GPU")
    if not mix:
        raise ValueError("table mix is empty")
    for gpu in set(gpu_names):
        missing = set(mix) - set(table_times.get(gpu, {}))
        if missing:
            raise KeyError(
                f"no measured times on {gpu!r} for tables {sorted(missing)}"
            )
    instances = [name for name, count in mix.items() for _ in range(count)]
    # longest-first by average cost across the GPU types present
    instances.sort(
        key=lambda t: sum(table_times[g][t] for g in set(gpu_names))
        / len(set(gpu_names)),
        reverse=True,
    )
    loads = [0.0] * len(gpu_names)
    placement: list[list[str]] = [[] for _ in gpu_names]
    for table in instances:
        best = min(
            range(len(gpu_names)),
            key=lambda i: (loads[i] + table_times[gpu_names[i]][table], i),
        )
        placement[best].append(table)
        loads[best] += table_times[gpu_names[best]][table]
    return placement


def measure_table_times(
    mix: Mapping[str, int],
    scheme: Scheme,
    gpus: Sequence[GpuSpec],
    *,
    model: DLRMConfig = PAPER_MODEL,
    num_sms: int = 2,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Per-GPU measured kernel time (+ launch) for every table in the mix."""
    times: dict[str, dict[str, float]] = {}
    scale = SimScale(name=f"placement{num_sms}", num_sms=num_sms)
    for gpu in gpus:
        if gpu.name in times:
            continue
        workload = kernel_workload(gpu, model, scale)
        times[gpu.name] = {
            name: run_table_kernel(
                workload, HOTNESS_PRESETS[name], scheme, seed=seed
            ).profile.kernel_time_us + KERNEL_LAUNCH_US
            for name in mix
        }
    return times


def place_tables(
    mix: Mapping[str, int],
    scheme: Scheme,
    gpus: Sequence[GpuSpec],
    *,
    model: DLRMConfig = PAPER_MODEL,
    num_sms: int = 2,
    seed: int = 0,
    table_times: TableTimes | None = None,
) -> HeteroPlacement:
    """Measure per-GPU kernel times and place the mix across ``gpus``.

    Pass ``table_times`` to reuse measurements across sweeps.
    """
    if table_times is None:
        table_times = measure_table_times(
            mix, scheme, gpus, model=model, num_sms=num_sms, seed=seed
        )
    gpu_names = [gpu.name for gpu in gpus]
    placement = hetero_lpt_shard(table_times, mix, gpu_names)
    return HeteroPlacement(
        shards=tuple(
            HeteroShard(
                gpu_name=gpu_names[i],
                tables=tuple(tables),
                compute_us=sum(
                    table_times[gpu_names[i]][t] for t in tables
                ),
            )
            for i, tables in enumerate(placement)
        )
    )


# ----------------------------------------------------------------------
# zoo placement: whole tenants onto GPU instances
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ZooShard:
    """One GPU instance's co-resident tenants."""

    replica_name: str
    gpu_name: str
    tenants: tuple[str, ...]
    effective_us: float


@dataclass(frozen=True)
class ZooPlacement:
    """A model zoo packed onto (possibly unequal) GPU instances."""

    shards: tuple[ZooShard, ...]

    @property
    def n_gpus(self) -> int:
        return len(self.shards)

    @property
    def critical_path_us(self) -> float:
        return max(s.effective_us for s in self.shards)

    @property
    def max_coresidency(self) -> int:
        """Most tenants sharing one GPU (the interference hot spot)."""
        return max(len(s.tenants) for s in self.shards)

    @property
    def assignments(self) -> dict[str, tuple[str, ...]]:
        """tenant -> replica names, the shape the zoo router consumes."""
        out: dict[str, tuple[str, ...]] = {}
        for shard in self.shards:
            for tenant in shard.tenants:
                out[tenant] = out.get(tenant, ()) + (shard.replica_name,)
        return out


def place_zoo(
    tenant_times: TableTimes,
    tenants: Sequence[str],
    instances: Sequence[tuple[str, str]],
) -> ZooPlacement:
    """Pack whole tenants onto GPU instances by tiered effective time.

    The multi-tenant sibling of :func:`place_tables`: the unit of
    placement is a *tenant* (its whole model; per-table sharding stays
    within :func:`place_tables_tiered`), and the cost of a tenant on a
    GPU is its tiered effective batch time there — kernel time plus
    the host-fetch penalty its HBM share implies, e.g. from
    :func:`repro.tenancy.share.zoo_effective_times`.  ``tenant_times``
    maps GPU *type* names to per-tenant effective times; ``instances``
    lists ``(replica_name, gpu_type)`` per GPU instance.  Greedy
    min-completion-time over unequal machines, exactly like table
    placement — heaviest tenant first, each to the instance that would
    finish it earliest.
    """
    if not tenants:
        raise ValueError("zoo placement needs at least one tenant")
    if not instances:
        raise ValueError("zoo placement needs at least one GPU instance")
    names = [name for name, _ in instances]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate instance names: {names}")
    gpu_types = [gpu for _, gpu in instances]
    assignment = hetero_lpt_shard(
        tenant_times, {tenant: 1 for tenant in tenants}, gpu_types
    )
    shards = []
    for i, placed in enumerate(assignment):
        replica_name, gpu_type = instances[i]
        shards.append(ZooShard(
            replica_name=replica_name,
            gpu_name=gpu_type,
            tenants=tuple(placed),
            effective_us=sum(
                tenant_times[gpu_type][t] for t in placed
            ),
        ))
    return ZooPlacement(shards=tuple(shards))


# ----------------------------------------------------------------------
# tiered placement: resident fraction + host remainder per table
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TieredShard:
    """One GPU's tables, split between its HBM budget and host DRAM."""

    gpu_name: str
    tables: tuple[str, ...]
    compute_us: float
    host_us: float
    host_us_per_query: float
    hbm_fraction: float
    resident_bytes: int
    host_bytes: int

    @property
    def effective_us(self) -> float:
        """Per-batch time including host fetches — what LPT balances."""
        return self.compute_us + self.host_us


@dataclass(frozen=True)
class TieredPlacement:
    """A fleet-level tiered placement: every table placed, split or not."""

    shards: tuple[TieredShard, ...]
    fits_in_hbm: bool
    hbm_utilization: float

    @property
    def n_gpus(self) -> int:
        return len(self.shards)

    @property
    def critical_path_us(self) -> float:
        return max(s.effective_us for s in self.shards)

    @property
    def imbalance(self) -> float:
        """max / mean per-GPU *effective* time (1.0 = balanced)."""
        times = [s.effective_us for s in self.shards]
        mean = sum(times) / len(times)
        return max(times) / mean if mean else 1.0

    @property
    def total_host_bytes(self) -> int:
        """Embedding bytes spilled to host DRAM across the fleet."""
        return sum(s.host_bytes for s in self.shards)

    def tables_on(self, gpu_name: str) -> int:
        return sum(
            len(s.tables) for s in self.shards if s.gpu_name == gpu_name
        )


class _HostCostModel:
    """Memoized host-fetch-time estimator per (GPU, dataset, fraction).

    Prices one table's HBM misses at a given resident fraction: a store
    is warmed from the dataset's popularity profile and an evaluation
    trace is replayed against it, all at the placement's simulation
    scale (the PCIe link bandwidth scales with the chip slice, exactly
    like HBM does in :meth:`GpuSpec.scaled_slice`).
    """

    def __init__(
        self,
        workloads: Mapping[str, KernelWorkload],
        policy: str,
        seed: int,
    ) -> None:
        self._workloads = workloads
        self._policy = policy
        self._seed = seed
        self._traces: dict[tuple[str, str], object] = {}
        self._cache: dict[tuple[str, str, int], float] = {}

    def _trace(self, gpu_name: str, dataset: str):
        key = (gpu_name, dataset)
        if key not in self._traces:
            w = self._workloads[gpu_name]
            self._traces[key] = generate_trace(
                HOTNESS_PRESETS[dataset],
                batch_size=w.batch_size,
                pooling_factor=w.pooling_factor,
                table_rows=w.table_rows,
                seed=self._seed,
            )
        return self._traces[key]

    def host_us(self, gpu_name: str, dataset: str, fraction: float) -> float:
        w = self._workloads[gpu_name]
        resident = int(round(fraction * w.table_rows))
        key = (gpu_name, dataset, resident)
        if key not in self._cache:
            store = store_for_spec(
                HOTNESS_PRESETS[dataset],
                batch_size=w.batch_size,
                pooling_factor=w.pooling_factor,
                table_rows=w.table_rows,
                row_bytes=w.row_bytes,
                hbm_fraction=min(1.0, max(0.0, fraction)),
                link=HostLink.pcie(w.full_gpu).scaled(w.factor),
                policy=self._policy,
                seed=self._seed,
            )
            self._cache[key] = store.lookup(
                self._trace(gpu_name, dataset)
            ).host_fetch_us
        return self._cache[key]


def place_tables_tiered(
    mix: Mapping[str, int],
    scheme: Scheme,
    gpus: Sequence[GpuSpec],
    *,
    model: DLRMConfig = PAPER_MODEL,
    hbm_utilization: float = 0.9,
    policy: str = "static_hot",
    num_sms: int = 2,
    seed: int = 0,
    table_times: TableTimes | None = None,
) -> TieredPlacement:
    """Place a mix whose total bytes may exceed aggregate HBM.

    Two passes: tables are LPT-placed on *effective* per-table times
    (kernel time plus host-fetch time at the fleet-wide average cache
    fraction), then each GPU's actual resident fraction is settled from
    its own HBM budget (``hbm_bytes * hbm_utilization``) against the
    bytes it was assigned, and shard times are re-priced at that
    fraction.  A fleet with enough HBM degenerates to fully-resident
    shards with zero host time (and ``fits_in_hbm=True``).
    """
    if not 0.0 < hbm_utilization <= 1.0:
        raise ValueError("hbm_utilization must be in (0, 1]")
    if not gpus:
        raise ValueError("need at least one GPU")
    if not any(count > 0 for count in mix.values()):
        raise ValueError("table mix is empty")
    if table_times is None:
        table_times = measure_table_times(
            mix, scheme, gpus, model=model, num_sms=num_sms, seed=seed
        )
    scale = SimScale(name=f"placement{num_sms}", num_sms=num_sms)
    workloads = {
        gpu.name: kernel_workload(gpu, model, scale)
        for gpu in {g.name: g for g in gpus}.values()
    }
    costs = _HostCostModel(workloads, policy, seed)

    table_bytes = model.table.table_bytes
    total_bytes = sum(mix.values()) * table_bytes
    budgets = [gpu.hbm_bytes * hbm_utilization for gpu in gpus]
    f0 = min(1.0, sum(budgets) / total_bytes)

    gpu_names = [gpu.name for gpu in gpus]
    effective = {
        name: {
            dataset: table_times[name][dataset]
            + costs.host_us(name, dataset, f0)
            for dataset in mix
        }
        for name in set(gpu_names)
    }
    assignment = hetero_lpt_shard(effective, mix, gpu_names)

    shards = []
    fits = True
    for i, tables in enumerate(assignment):
        gpu = gpus[i]
        assigned_bytes = len(tables) * table_bytes
        fraction = (
            1.0 if assigned_bytes == 0
            else min(1.0, budgets[i] / assigned_bytes)
        )
        if fraction < 1.0:
            fits = False
        host = sum(costs.host_us(gpu.name, t, fraction) for t in tables)
        resident = int(round(fraction * assigned_bytes))
        shards.append(TieredShard(
            gpu_name=gpu.name,
            tables=tuple(tables),
            compute_us=sum(table_times[gpu.name][t] for t in tables),
            host_us=host,
            # proportional slicing keeps per-batch time invariant (host
            # bytes and link bandwidth both scale with the slice), so
            # the slice's per-batch host time corresponds to the FULL
            # model batch — divide by that, not the sliced batch
            host_us_per_query=host / model.batch_size,
            hbm_fraction=fraction,
            resident_bytes=resident,
            host_bytes=assigned_bytes - resident,
        ))
    return TieredPlacement(
        shards=tuple(shards),
        fits_in_hbm=fits,
        hbm_utilization=hbm_utilization,
    )
