"""Experiment dispatch for the CLI and the pytest benchmarks."""

from __future__ import annotations

from repro.harness.context import ExperimentContext, default_context
from repro.harness.experiments import EXPERIMENTS
from repro.harness.results import ExperimentTable


def list_experiments() -> list[tuple[str, str]]:
    return [(exp_id, desc) for exp_id, (_, desc) in EXPERIMENTS.items()]


def run_experiment(
    exp_id: str,
    ctx: ExperimentContext | None = None,
    *,
    profile: str | None = None,
) -> ExperimentTable:
    """Run one experiment by id (``fig12``, ``tab4``, ...).

    ``profile`` selects the traffic shape of the ``scenario``
    experiment (its builder's default otherwise) and is rejected for
    experiments that take no profile.
    """
    try:
        builder, _ = EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") \
            from None
    ctx = ctx or default_context()
    if profile is not None:
        if exp_id != "scenario":
            raise ValueError(
                f"--profile only applies to the scenario experiment, "
                f"not {exp_id!r}"
            )
        return builder(ctx, profile=profile)
    return builder(ctx)


def run_all(ctx: ExperimentContext | None = None) -> dict[str, ExperimentTable]:
    ctx = ctx or default_context()
    return {exp_id: run_experiment(exp_id, ctx) for exp_id in EXPERIMENTS}
