"""Experiment dispatch for the CLI and the pytest benchmarks."""

from __future__ import annotations

from repro.harness.context import ExperimentContext, default_context
from repro.harness.experiments import EXPERIMENTS
from repro.harness.results import ExperimentTable


def list_experiments() -> list[tuple[str, str]]:
    return [(exp_id, desc) for exp_id, (_, desc) in EXPERIMENTS.items()]


def run_experiment(
    exp_id: str, ctx: ExperimentContext | None = None
) -> ExperimentTable:
    """Run one experiment by id (``fig12``, ``tab4``, ...)."""
    try:
        builder, _ = EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") \
            from None
    return builder(ctx or default_context())


def run_all(ctx: ExperimentContext | None = None) -> dict[str, ExperimentTable]:
    ctx = ctx or default_context()
    return {exp_id: run_experiment(exp_id, ctx) for exp_id in EXPERIMENTS}
