"""Shared, cached experiment execution context.

Most figures reuse the same (dataset, scheme) kernel runs — Fig. 12, 13,
14 and Table VIII all need ``RPF+OptMT`` on four datasets, for example —
so the harness funnels every simulation through one memoizing context.
Results are deterministic (seeded traces, deterministic engine), which
makes the cache sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.gpu import GPUS, A100_SXM4_80GB, GpuSpec
from repro.config.model import PAPER_MODEL, DLRMConfig
from repro.config.scale import SimScale
from repro.core.embedding import (
    KernelWorkload,
    TableKernelResult,
    kernel_workload,
    run_table_kernel,
)
from repro.core.schemes import Scheme
from repro.datasets.spec import HOTNESS_PRESETS
from repro.dlrm.timing import KERNEL_LAUNCH_US, non_embedding_time
from repro.gpusim.memo import KernelMemo, default_memo


@dataclass(frozen=True)
class HarnessConfig:
    """What one harness invocation simulates."""

    num_sms: int = 6
    seed: int = 0
    model: DLRMConfig = field(default_factory=lambda: PAPER_MODEL)

    @property
    def scale(self) -> SimScale:
        return SimScale(name=f"harness{self.num_sms}", num_sms=self.num_sms)


class ExperimentContext:
    """Memoized access to kernel simulations and derived pipeline numbers.

    Two cache tiers: ``_kernels`` holds full
    :class:`~repro.core.embedding.TableKernelResult` objects by harness
    configuration (cheap, exact, this-process only), while ``memo`` —
    the content-addressed kernel memo, disk-backed when configured —
    deduplicates the underlying engine runs across configurations,
    contexts and harness invocations.
    """

    def __init__(self, config: HarnessConfig | None = None,
                 memo: KernelMemo | None = None) -> None:
        self.config = config or HarnessConfig()
        self.memo = memo if memo is not None else default_memo()
        self._kernels: dict[tuple, TableKernelResult] = {}
        self._workloads: dict[tuple, KernelWorkload] = {}

    # ------------------------------------------------------------------
    def workload(
        self,
        gpu: GpuSpec = A100_SXM4_80GB,
        *,
        pooling_factor: int | None = None,
        num_sms: int | None = None,
    ) -> KernelWorkload:
        key = (gpu.name, pooling_factor, num_sms)
        if key not in self._workloads:
            scale = (
                self.config.scale if num_sms is None
                else SimScale(name=f"harness{num_sms}", num_sms=num_sms)
            )
            self._workloads[key] = kernel_workload(
                gpu, self.config.model, scale,
                pooling_factor=pooling_factor,
            )
        return self._workloads[key]

    def kernel(
        self,
        dataset: str,
        scheme: Scheme,
        *,
        gpu_name: str = A100_SXM4_80GB.name,
        pooling_factor: int | None = None,
    ) -> TableKernelResult:
        """One table kernel, memoized on its full configuration."""
        key = (gpu_name, dataset, scheme, pooling_factor)
        if key not in self._kernels:
            workload = self.workload(
                GPUS[gpu_name], pooling_factor=pooling_factor
            )
            self._kernels[key] = run_table_kernel(
                workload,
                HOTNESS_PRESETS[dataset],
                scheme,
                seed=self.config.seed,
                memo=self.memo,
            )
        return self._kernels[key]

    # ------------------------------------------------------------------
    def embedding_stage_us(
        self,
        mix: dict[str, int],
        scheme: Scheme,
        *,
        gpu_name: str = A100_SXM4_80GB.name,
    ) -> float:
        """Serial multi-table embedding-stage latency from cached kernels."""
        total = 0.0
        for dataset, count in mix.items():
            result = self.kernel(dataset, scheme, gpu_name=gpu_name)
            total += count * (result.kernel_time_us + KERNEL_LAUNCH_US)
        return total

    def batch_latency_ms(
        self,
        mix: dict[str, int],
        scheme: Scheme,
        *,
        gpu_name: str = A100_SXM4_80GB.name,
    ) -> float:
        """End-to-end batch latency (Figure 1/13 metric)."""
        emb = self.embedding_stage_us(mix, scheme, gpu_name=gpu_name)
        non_emb = non_embedding_time(GPUS[gpu_name], self.config.model)
        return (emb + non_emb.total_us) / 1e3

    def embedding_share_pct(
        self,
        mix: dict[str, int],
        scheme: Scheme,
        *,
        gpu_name: str = A100_SXM4_80GB.name,
    ) -> float:
        """Embedding stage share of end-to-end latency (Figure 14)."""
        emb = self.embedding_stage_us(mix, scheme, gpu_name=gpu_name)
        non_emb = non_embedding_time(GPUS[gpu_name], self.config.model)
        return 100.0 * emb / (emb + non_emb.total_us)

    def homogeneous_mix(self, dataset: str) -> dict[str, int]:
        return {dataset: self.config.model.num_tables}


#: Process-wide default context so pytest-benchmark files share the cache.
_DEFAULT_CONTEXT: ExperimentContext | None = None


def default_context() -> ExperimentContext:
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        import os

        num_sms = int(os.environ.get("REPRO_HARNESS_SMS", "6"))
        _DEFAULT_CONTEXT = ExperimentContext(HarnessConfig(num_sms=num_sms))
    return _DEFAULT_CONTEXT
