"""Experiment harness: regenerate every table and figure in the paper."""

from repro.harness.context import (
    ExperimentContext,
    HarnessConfig,
    default_context,
)
from repro.harness.experiments import EXPERIMENTS
from repro.harness.results import ExperimentTable
from repro.harness.runner import list_experiments, run_all, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentContext",
    "ExperimentTable",
    "HarnessConfig",
    "default_context",
    "list_experiments",
    "run_all",
    "run_experiment",
]
