"""The experiment registry: one entry per paper table/figure.

Every experiment takes an :class:`ExperimentContext` and returns an
:class:`ExperimentTable` whose rows mirror what the paper reports,
alongside the paper's own numbers where available.  ``EXPERIMENTS`` maps
experiment ids (``fig12``, ``tab4``, ...) to their builders; the CLI and
the pytest benchmarks both dispatch through it.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.config.gpu import A100_SXM4_80GB, H100_NVL
from repro.core.schemes import (
    BASE,
    L1DPF,
    L1DPF_OPTMT,
    L2P,
    L2P_OPTMT,
    LMPF,
    LMPF_OPTMT,
    OPTMT,
    RPF,
    RPF_L2P_OPTMT,
    RPF_OPTMT,
    SMPF,
    SMPF_L2P,
    SMPF_OPTMT,
    Scheme,
)
from repro.core.serving import (
    BatchingPolicy,
    ContinuousBatching,
    serve_stream,
)
from repro.datasets.analysis import coverage_curve
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS, TABLE_MIXES
from repro.fleet import (
    FleetSpec,
    fleet_max_sustainable_qps,
    simulate_fleet,
)
from repro.fleet.capacity import linear_latency_model, tiered_latency_model
from repro.gpusim.occupancy import max_regs_for_warps
from repro.harness import paper_data as paper
from repro.harness.context import ExperimentContext
from repro.harness.results import ExperimentTable
from repro.memstore import HostLink, store_for_spec
from repro.tenancy import (
    ZooSpec,
    arbitrate,
    calibrate_tenant,
    example_zoo,
    rearbitrate_on_drift,
    simulate_zoo_serving,
    zoo_hit_curves,
)
from repro.traffic.scenario import (
    DriftSpec,
    StationarySpec,
    generate_arrivals,
    scenario_profile,
)
from repro.traffic.serve import (
    drift_phase_factors,
    memstore_drift_profile,
    scaled_latency_models,
)

ExperimentFn = Callable[[ExperimentContext], ExperimentTable]

_WLP_TARGETS = (24, 32, 40, 48, 64)
_FIG12_SCHEMES = (OPTMT, RPF_OPTMT, L2P_OPTMT, RPF_L2P_OPTMT)
_FIG15_SCHEMES = (RPF_OPTMT, LMPF_OPTMT, SMPF_OPTMT, L1DPF_OPTMT)
_FIG16A_SCHEMES = (RPF, LMPF, SMPF, L1DPF)
_FIG16B_SCHEMES = (SMPF, L2P, SMPF_L2P)


def _speedup(ctx: ExperimentContext, dataset: str, scheme: Scheme,
             gpu_name: str = A100_SXM4_80GB.name) -> float:
    base = ctx.kernel(dataset, BASE, gpu_name=gpu_name)
    opt = ctx.kernel(dataset, scheme, gpu_name=gpu_name)
    return base.kernel_time_us / opt.kernel_time_us


# ----------------------------------------------------------------------
# dataset characterization
# ----------------------------------------------------------------------
def tab3_unique_access(ctx: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        "tab3", "Unique access % per dataset (Table III)",
        ["dataset", "measured_pct", "paper_pct"],
    )
    workload = ctx.workload()
    for name, spec in HOTNESS_PRESETS.items():
        trace = generate_trace(
            spec,
            batch_size=workload.batch_size,
            pooling_factor=workload.pooling_factor,
            table_rows=workload.table_rows,
            seed=ctx.config.seed,
        )
        table.add_row(
            dataset=name,
            measured_pct=trace.unique_access_pct,
            paper_pct=paper.TAB3_UNIQUE_ACCESS_PCT[name],
        )
    return table


def fig5_coverage(ctx: ExperimentContext) -> ExperimentTable:
    points = 10
    cols = ["dataset"] + [f"top{10 * (i + 1)}pct" for i in range(points)]
    table = ExperimentTable(
        "fig5", "Coverage study: % accesses by top-x% unique rows (Fig. 5)",
        cols,
    )
    workload = ctx.workload()
    for name, spec in HOTNESS_PRESETS.items():
        trace = generate_trace(
            spec,
            batch_size=workload.batch_size,
            pooling_factor=workload.pooling_factor,
            table_rows=workload.table_rows,
            seed=ctx.config.seed,
        )
        _, pct_accesses = coverage_curve(trace, points)
        table.add_row(dataset=name, **{
            f"top{10 * (i + 1)}pct": float(pct_accesses[i])
            for i in range(points)
        })
    table.notes.append(
        "paper anchor: high_hot top-10% covers "
        f"{paper.FIG5_HIGH_HOT_TOP10_COVERAGE_PCT}% of accesses"
    )
    return table


# ----------------------------------------------------------------------
# NCU characterization tables
# ----------------------------------------------------------------------
def _ncu_table(
    ctx: ExperimentContext,
    exp_id: str,
    title: str,
    scheme: Scheme,
    datasets: tuple[str, ...],
    paper_rows: dict[str, tuple],
) -> ExperimentTable:
    table = ExperimentTable(
        exp_id, title, ["metric", "source", *datasets]
    )
    profiles = {
        name: ctx.kernel(name, scheme).profile for name in datasets
    }
    metric_map = {
        "kernel_time_us": "kernel_time_us",
        "load_insts_m": "load_insts_m",
        "sm_throughput_pct": "sm_throughput_pct",
        "warp_cycles_per_inst": "warp_cycles_per_inst",
        "long_scoreboard_stall": "long_scoreboard_stall",
        "issued_per_scheduler": "issued_per_scheduler",
        "issued_slot_util_pct": "sm_throughput_pct",
        "l1_hit_pct": "l1_hit_pct",
        "l2_hit_pct": "l2_hit_pct",
        "dram_read_mb": "dram_read_mb",
        "avg_hbm_bw_gbps": "avg_hbm_bw_gbps",
        "hbm_bw_util_pct": "hbm_bw_util_pct",
    }
    for metric, values in paper_rows.items():
        attr = metric_map[metric]
        table.add_row(metric=metric, source="measured", **{
            name: float(getattr(profiles[name], attr))
            for name in datasets
        })
        table.add_row(metric=metric, source="paper", **{
            name: values[i] for i, name in enumerate(datasets)
        })
    return table


def tab4_base_ncu(ctx: ExperimentContext) -> ExperimentTable:
    return _ncu_table(
        ctx, "tab4", "NCU characterization, base PyTorch (Table IV)",
        BASE, paper.DATASETS5, paper.TAB4_BASE,
    )


def tab5_optmt_ncu(ctx: ExperimentContext) -> ExperimentTable:
    return _ncu_table(
        ctx, "tab5", "NCU characterization, OptMT (Table V)",
        OPTMT, paper.DATASETS5, paper.TAB5_OPTMT,
    )


def tab8_rpf_optmt_ncu(ctx: ExperimentContext) -> ExperimentTable:
    return _ncu_table(
        ctx, "tab8", "NCU details, RPF+OptMT (Table VIII)",
        RPF_OPTMT, paper.DATASETS4, paper.TAB8_RPF_OPTMT,
    )


def tab9_combined_ncu(ctx: ExperimentContext) -> ExperimentTable:
    return _ncu_table(
        ctx, "tab9", "NCU details, RPF+L2P+OptMT (Table IX)",
        RPF_L2P_OPTMT, paper.DATASETS4, paper.TAB9_COMBINED,
    )


# ----------------------------------------------------------------------
# WLP sweeps (Figures 6 and 18)
# ----------------------------------------------------------------------
def _wlp_sweep(ctx: ExperimentContext, exp_id: str, gpu_name: str,
               paper_note: str) -> ExperimentTable:
    gpu = ctx.workload(
        A100_SXM4_80GB if gpu_name == A100_SXM4_80GB.name else H100_NVL
    ).gpu
    cols = ["dataset"] + [f"w{t}" for t in _WLP_TARGETS] + ["best_warps"]
    table = ExperimentTable(
        exp_id,
        f"WLP sweep on {gpu_name}: speedup over base vs resident warps",
        cols,
    )
    local_loads: dict[int, float] = {}
    for dataset in paper.DATASETS4:
        row: dict[str, float | str] = {"dataset": dataset}
        best_t, best_speed = _WLP_TARGETS[0], 0.0
        for target in _WLP_TARGETS:
            scheme = BASE if target == 24 else Scheme(
                maxrregcount=max_regs_for_warps(gpu, target)
            )
            result = ctx.kernel(dataset, scheme, gpu_name=gpu_name)
            speed = _speedup(ctx, dataset, scheme, gpu_name)
            row[f"w{target}"] = speed
            local_loads[target] = result.profile.local_loads_m
            if speed > best_speed:
                best_t, best_speed = target, speed
        row["best_warps"] = best_t
        table.add_row(**row)
    table.add_row(dataset="local_loads_M", best_warps="-", **{
        f"w{t}": local_loads[t] for t in _WLP_TARGETS
    })
    table.notes.append(paper_note)
    return table


def fig6_wlp_sweep(ctx: ExperimentContext) -> ExperimentTable:
    return _wlp_sweep(
        ctx, "fig6", A100_SXM4_80GB.name,
        "paper (Fig. 6): peak at 40 warps on A100; local loads rise to "
        f"~{paper.FIG6_LOCAL_LOADS_M[-1]}M at 64 warps",
    )


def fig18_h100_wlp(ctx: ExperimentContext) -> ExperimentTable:
    return _wlp_sweep(
        ctx, "fig18", H100_NVL.name,
        f"paper (Fig. 18): peak at {paper.H100_OPTMT_WARPS} warps on H100",
    )


# ----------------------------------------------------------------------
# prefetch sweeps (Figures 9, 15, 16)
# ----------------------------------------------------------------------
def fig9_pf_distance(ctx: ExperimentContext) -> ExperimentTable:
    distances = (1, 3, 5, 6, 7, 9, 10, 11, 13, 15)
    cols = ["dataset"] + [f"d{d}" for d in distances] + ["best_d"]
    table = ExperimentTable(
        "fig9", "SMPF prefetch-distance sweep, no OptMT (Fig. 9)", cols,
    )
    for dataset in paper.DATASETS4:
        row: dict[str, float | str] = {"dataset": dataset}
        best_d, best_speed = distances[0], 0.0
        for d in distances:
            scheme = Scheme(prefetch="shared", prefetch_distance=d)
            speed = _speedup(ctx, dataset, scheme)
            row[f"d{d}"] = speed
            if speed > best_speed:
                best_d, best_speed = d, speed
        row["best_d"] = best_d
        table.add_row(**row)
    table.notes.append(
        f"paper: optimal distance {paper.FIG9_OPTIMAL_DISTANCE}, "
        "distance 1 is the worst point for every dataset"
    )
    return table


def fig15_pf_schemes_optmt(ctx: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        "fig15", "Prefetch schemes + OptMT, speedup over base (Fig. 15)",
        ["scheme", *paper.DATASETS4, "paper"],
    )
    for scheme in _FIG15_SCHEMES:
        table.add_row(
            scheme=scheme.name,
            **{d: _speedup(ctx, d, scheme) for d in paper.DATASETS4},
            paper=str(paper.FIG15_SPEEDUP[scheme.name]),
        )
    table.notes.append("paper: RPF wins on top of OptMT, L1DPF gains least")
    return table


def fig16_no_optmt(ctx: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        "fig16",
        "Schemes without OptMT at per-scheme optimal distance (Fig. 16)",
        ["scheme", "part", *paper.DATASETS4, "paper"],
    )
    for scheme in _FIG16A_SCHEMES:
        table.add_row(
            scheme=scheme.name, part="a",
            **{d: _speedup(ctx, d, scheme) for d in paper.DATASETS4},
            paper=str(paper.FIG16A_SPEEDUP[scheme.name]),
        )
    for scheme in _FIG16B_SCHEMES:
        ref = paper.FIG16B_SPEEDUP.get(scheme.name)
        table.add_row(
            scheme=scheme.name, part="b",
            **{d: _speedup(ctx, d, scheme) for d in paper.DATASETS4},
            paper=str(ref) if ref else None,
        )
    table.notes.append(
        "paper: SMPF is the winning standalone prefetcher (32 warps/SM); "
        "RPF collapses to 16 warps for d >= 5"
    )
    return table


# ----------------------------------------------------------------------
# L2 pinning detail (Figure 11)
# ----------------------------------------------------------------------
def fig11_l2p_pooling(ctx: ExperimentContext) -> ExperimentTable:
    poolings = (10, 30, 50, 70, 90, 110, 130, 150)
    cols = ["dataset"] + [f"pool{p}" for p in poolings]
    table = ExperimentTable(
        "fig11", "L2P speedup over base vs pooling factor (Fig. 11)", cols,
    )
    for dataset in ("high_hot", "med_hot"):
        row: dict[str, float | str] = {"dataset": dataset}
        for pooling in poolings:
            base = ctx.kernel(dataset, BASE, pooling_factor=pooling)
            pinned = ctx.kernel(dataset, L2P, pooling_factor=pooling)
            row[f"pool{pooling}"] = (
                base.kernel_time_us / pinned.kernel_time_us
            )
        table.add_row(**row)
    table.notes.append(
        "paper: L2P yields more at smaller pooling factors (less natural "
        f"reuse); speedups within ~{paper.FIG11_RANGE}"
    )
    return table


# ----------------------------------------------------------------------
# headline results (Figures 1, 12, 13, 14, 17)
# ----------------------------------------------------------------------
def fig1_motivation(ctx: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        "fig1",
        "Batch latency, base vs OptMT, embedding/non-embedding (Fig. 1)",
        ["dataset", "scheme", "emb_ms", "non_emb_ms", "total_ms",
         "emb_share_pct", "paper_total_ms"],
    )
    for i, dataset in enumerate(paper.DATASETS5):
        mix = ctx.homogeneous_mix(dataset)
        for scheme, label in ((BASE, "base"), (OPTMT, "OptMT")):
            emb_us = ctx.embedding_stage_us(mix, scheme)
            total_ms = ctx.batch_latency_ms(mix, scheme)
            table.add_row(
                dataset=dataset,
                scheme=label,
                emb_ms=emb_us / 1e3,
                non_emb_ms=total_ms - emb_us / 1e3,
                total_ms=total_ms,
                emb_share_pct=ctx.embedding_share_pct(mix, scheme),
                paper_total_ms=paper.FIG1_TOTAL_MS[label][i],
            )
    table.notes.append(
        "absolute totals differ from the paper by construction: we derive "
        "them from Table IV-calibrated kernels x 250 tables, and the "
        "paper's own Fig. 1 totals are below 250 x its Table IV times "
        "(see DESIGN.md, Known deviations)"
    )
    return table


def fig12_embedding_speedup(ctx: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        "fig12", "Embedding-only speedup over base PyTorch (Fig. 12)",
        ["scheme", *paper.DATASETS4, "paper"],
    )
    for scheme in _FIG12_SCHEMES:
        table.add_row(
            scheme=scheme.name,
            **{d: _speedup(ctx, d, scheme) for d in paper.DATASETS4},
            paper=str(paper.FIG12_SPEEDUP[scheme.name]),
        )
    table.notes.append(
        "paper: combined reaches 2.03x (random); L2P helps hot datasets, "
        "prefetch helps cold ones; combined is best everywhere"
    )
    return table


def fig13_e2e_speedup(ctx: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        "fig13", "End-to-end inference speedup over base (Fig. 13)",
        ["scheme", *paper.DATASETS4, "paper"],
    )
    for scheme in _FIG12_SCHEMES:
        row = {}
        for dataset in paper.DATASETS4:
            mix = ctx.homogeneous_mix(dataset)
            row[dataset] = (
                ctx.batch_latency_ms(mix, BASE)
                / ctx.batch_latency_ms(mix, scheme)
            )
        table.add_row(
            scheme=scheme.name, **row,
            paper=str(paper.FIG13_SPEEDUP[scheme.name]),
        )
    table.notes.append("paper: up to 1.77x end-to-end (random, combined)")
    return table


def fig14_emb_share(ctx: ExperimentContext) -> ExperimentTable:
    schemes = (BASE, OPTMT, RPF_OPTMT, L2P_OPTMT, RPF_L2P_OPTMT)
    table = ExperimentTable(
        "fig14", "Embedding-stage share of end-to-end latency (Fig. 14)",
        ["scheme", *paper.DATASETS4],
    )
    for scheme in schemes:
        table.add_row(scheme=scheme.name, **{
            d: ctx.embedding_share_pct(ctx.homogeneous_mix(d), scheme)
            for d in paper.DATASETS4
        })
    table.notes.append(
        f"paper: base share ~{paper.FIG14_BASE_SHARE_PCT}%, combined "
        f"lowers it by up to {paper.FIG14_COMBINED_DROP_PCT} points"
    )
    return table


def fig17_hetero_mix(ctx: ExperimentContext) -> ExperimentTable:
    schemes = (OPTMT, RPF_OPTMT, L2P_OPTMT, RPF_L2P_OPTMT)
    table = ExperimentTable(
        "fig17",
        "Heterogeneous table mixes: embedding speedup over base (Fig. 17)",
        ["mix", *[s.name for s in schemes], "paper_combined"],
    )
    for mix_name, mix in TABLE_MIXES.items():
        base_us = ctx.embedding_stage_us(mix, BASE)
        table.add_row(
            mix=mix_name,
            **{
                s.name: base_us / ctx.embedding_stage_us(mix, s)
                for s in schemes
            },
            paper_combined=paper.FIG17_COMBINED_SPEEDUP[mix_name],
        )
    table.notes.append(
        "paper: higher mixes (more cold tables) gain more; the combined "
        "scheme is best within every mix"
    )
    return table


def fig19_h100_vs_a100(ctx: ExperimentContext) -> ExperimentTable:
    table = ExperimentTable(
        "fig19",
        "OptMT and combined speedups, H100 NVL vs A100 (Fig. 19)",
        ["gpu", "scheme", *paper.DATASETS4],
    )
    for gpu_name in (H100_NVL.name, A100_SXM4_80GB.name):
        for scheme in (OPTMT, RPF_L2P_OPTMT):
            table.add_row(
                gpu=gpu_name, scheme=scheme.name,
                **{
                    d: _speedup(ctx, d, scheme, gpu_name)
                    for d in paper.DATASETS4
                },
            )
    h100_base = [
        ctx.kernel(d, BASE, gpu_name=H100_NVL.name).kernel_time_us
        for d in paper.DATASETS4
    ]
    a100_base = [
        ctx.kernel(d, BASE).kernel_time_us for d in paper.DATASETS4
    ]
    a100_opt = [
        ctx.kernel(d, RPF_L2P_OPTMT).kernel_time_us
        for d in paper.DATASETS4
    ]
    uplift = 100.0 * (
        sum(a / h for a, h in zip(a100_base, h100_base)) / len(h100_base)
        - 1.0
    )
    a100_vs_h100 = 100.0 * (
        sum(h / a for a, h in zip(a100_opt, h100_base)) / len(h100_base)
        - 1.0
    )
    table.notes.append(
        f"measured: H100 base uplift over A100 base = {uplift:.0f}% "
        f"(paper ~{paper.H100_AVG_UPLIFT_OVER_A100_PCT:.0f}%); optimized "
        f"A100 vs base H100 = {a100_vs_h100:.0f}% "
        f"(paper ~{paper.A100_OPT_VS_H100_BASE_PCT:.0f}%)"
    )
    table.notes.append(
        "paper: H100 sees slightly lower speedups than A100 but still up "
        f"to {paper.FIG19_H100_COMBINED_MAX_SPEEDUP}x"
    )
    return table


# ----------------------------------------------------------------------
# fleet serving (beyond the paper: cluster-scale extension)
# ----------------------------------------------------------------------
_FLEET_SLA_MS = 100.0
_FLEET_DATASET = "med_hot"


def _fleet_latency_models(ctx: ExperimentContext, scheme: Scheme):
    """Per-GPU batch-latency curves from the context's memoized kernels.

    The scaled simulation preserves per-SM work, so the embedding-stage
    time it reports corresponds to the model's full-chip batch size;
    one calibrated point per GPU anchors a linear curve.
    """
    models = {}
    for gpu in (A100_SXM4_80GB, H100_NVL):
        emb_us = ctx.embedding_stage_us(
            ctx.homogeneous_mix(_FLEET_DATASET), scheme, gpu_name=gpu.name
        )
        models[gpu.name] = linear_latency_model(
            gpu,
            emb_us=emb_us,
            emb_batch=ctx.config.model.batch_size,
            model=ctx.config.model,
        )
    return models


def fleet_serving(ctx: ExperimentContext) -> ExperimentTable:
    """Heterogeneous fleet capacity and routing-policy comparison.

    Two four-GPU fleets — homogeneous A100 and mixed A100+H100 — serve
    one Poisson stream under round-robin and join-shortest-queue
    routing.  Reports QPS at the p99 SLA, cost-normalized throughput,
    and the p99 at a common high load (85% of the best fleet's
    capacity), where queue-aware routing shields the slower replicas.
    """
    scheme = RPF_L2P_OPTMT
    models = _fleet_latency_models(ctx, scheme)
    batching = BatchingPolicy(max_batch=2048, timeout_ms=5.0)
    fleets = {
        "4xA100": FleetSpec.homogeneous(
            A100_SXM4_80GB, 4, name="4xA100", scheme=scheme,
            batching=batching,
        ),
        "2xA100+2xH100": FleetSpec.mixed(
            {A100_SXM4_80GB: 2, H100_NVL: 2}, name="2xA100+2xH100",
            scheme=scheme, batching=batching,
        ),
    }
    table = ExperimentTable(
        "fleet",
        "Fleet serving: capacity and routing at p99 SLA "
        f"{_FLEET_SLA_MS:.0f} ms ({_FLEET_DATASET}, {scheme.name})",
        ["fleet", "policy", "max_qps_at_sla", "qps_per_gpu",
         "qps_per_cost_unit", "p99_at_load_ms", "util_balance"],
    )
    capacities = {
        (fleet_name, policy): fleet_max_sustainable_qps(
            fleet, models, sla_ms=_FLEET_SLA_MS, policy=policy,
            seed=ctx.config.seed,
        )[0]
        for fleet_name, fleet in fleets.items()
        for policy in ("round-robin", "jsq")
    }
    # probe tails at 85% of the best fleet's capacity; if nothing meets
    # the SLA anywhere, fall back to the lowest grid point so the table
    # still reports (overloaded) tails instead of crashing
    probe_qps = 0.85 * max(capacities.values()) \
        or 500.0 * max(f.n_replicas for f in fleets.values())
    for (fleet_name, policy), capacity in capacities.items():
        fleet = fleets[fleet_name]
        at_load = simulate_fleet(
            fleet, models, qps=probe_qps, duration_s=1.0,
            policy=policy, seed=ctx.config.seed,
        )
        table.add_row(
            fleet=fleet_name,
            policy=policy,
            max_qps_at_sla=capacity,
            qps_per_gpu=capacity / fleet.n_replicas,
            qps_per_cost_unit=capacity / fleet.cost_units,
            p99_at_load_ms=at_load.p99_ms,
            util_balance=at_load.utilization_balance,
        )
    table.notes.append(
        "mixed A100+H100 sustains more QPS at the SLA than the same "
        "GPU-count all-A100 fleet; JSQ >= round-robin, and at high load "
        "JSQ's p99 is far lower because it shields the slower replicas"
    )
    return table


# ----------------------------------------------------------------------
# non-stationary traffic scenarios (beyond the paper)
# ----------------------------------------------------------------------
_SCENARIO_DATASET = "med_hot"
_SCENARIO_DURATION_S = 8.0

#: offered base load as a fraction of the GPU's saturation throughput,
#: chosen so each profile's *peak* lands just below saturation — the
#: regime where batch-formation policy decides the tail, not raw
#: capacity (an overloaded GPU fails every policy alike).
_SCENARIO_LOAD_FRACTION = {
    "poisson": 0.50,
    "diurnal": 0.55,
    "flash": 0.95 / 8.0,   # magnitude-8 spike peaks at 0.95 x capacity
    "mmpp": 0.90 / 5.0,    # burst regime runs at 0.90 x capacity
    "drift": 0.50,
}


def scenario_serving(
    ctx: ExperimentContext, profile: str = "flash"
) -> ExperimentTable:
    """One GPU under a non-stationary scenario: fixed vs continuous
    batching, with per-phase p50/p99/goodput.

    The scenario is scaled off the calibrated latency curve itself:
    base load is a fixed fraction of the GPU's saturation throughput
    and the SLA is set to 80% of the fixed batcher's predicted spike
    latency (formation wait + execution of a spike-sized batch), so the
    comparison stays meaningful if the kernel calibration shifts.
    """
    scheme = RPF_L2P_OPTMT
    emb_us = ctx.embedding_stage_us(
        ctx.homogeneous_mix(_SCENARIO_DATASET), scheme
    )
    base_model = linear_latency_model(
        A100_SXM4_80GB,
        emb_us=emb_us,
        emb_batch=ctx.config.model.batch_size,
        model=ctx.config.model,
    )
    fixed = BatchingPolicy()
    capacity_qps = fixed.max_batch / (base_model(fixed.max_batch) / 1e3)
    try:
        base_qps = _SCENARIO_LOAD_FRACTION[profile] * capacity_qps
    except KeyError:
        known = ", ".join(_SCENARIO_LOAD_FRACTION)
        raise ValueError(
            f"unknown scenario profile {profile!r}; known: {known}"
        ) from None
    spec = scenario_profile(
        profile, base_qps=base_qps, duration_s=_SCENARIO_DURATION_S
    )
    # the fixed batcher's latency at the scenario peak: one formation
    # timeout plus executing the batch that forms during it
    spike_batch = max(1, int(spec.peak_rate() * fixed.timeout_ms / 1e3))
    sla_ms = round(
        0.8 * (fixed.timeout_ms + base_model(spike_batch)), 2
    )

    if isinstance(spec, DriftSpec):
        factors = drift_phase_factors(spec, seed=ctx.config.seed)
        latency_models = scaled_latency_models(base_model, factors)
    else:
        latency_models = base_model

    trace = generate_arrivals(spec, seed=ctx.config.seed)
    table = ExperimentTable(
        "scenario",
        f"Scenario serving: {spec.name} on A100/{scheme.name}, "
        f"SLA {sla_ms:g} ms p99 (capacity ~{capacity_qps:.0f} QPS)",
        ["profile", "batcher", "phase", "n_queries", "p50_ms", "p99_ms",
         "goodput_qps", "sla_hit_pct", "mean_batch"],
    )
    for label, policy in (
        ("fixed", fixed),
        ("continuous", ContinuousBatching(
            max_batch=fixed.max_batch, sla_ms=sla_ms,
        )),
    ):
        report = serve_stream(
            latency_models, trace, policy=policy, sla_ms=sla_ms,
            scheme_name=scheme.name,
        )
        for stats in report.phases:
            table.add_row(
                profile=profile, batcher=label, phase=stats.phase,
                n_queries=stats.n_queries, p50_ms=stats.p50_ms,
                p99_ms=stats.p99_ms, goodput_qps=stats.goodput_qps,
                sla_hit_pct=stats.sla_hit_pct, mean_batch=None,
            )
        table.add_row(
            profile=profile, batcher=label, phase="all",
            n_queries=report.n_queries, p50_ms=report.p50_ms,
            p99_ms=report.p99_ms, goodput_qps=report.goodput_qps,
            sla_hit_pct=report.sla_hit_pct,
            mean_batch=report.mean_batch_size,
        )
    table.notes.append(
        "continuous batching dispatches the moment the GPU frees "
        "instead of waiting out the formation timeout, and under SLA "
        "pressure sizes batches goodput-greedily; the fixed batcher "
        "pays the timeout on every dispatch below saturation"
    )
    return table


# ----------------------------------------------------------------------
# tiered embedding store (beyond the paper: serve past aggregate HBM)
# ----------------------------------------------------------------------
_MEMSTORE_DATASET = "med_hot"
_MEMSTORE_FRACTIONS = (0.01, 0.02, 0.05, 0.10, 0.15, 1.0)
_MEMSTORE_DURATION_S = 6.0


def memstore_sweep(ctx: ExperimentContext) -> ExperimentTable:
    """HBM-cache-fraction sweep on a tiered embedding store.

    Part ``hbm-sweep``: one GPU serves a Poisson stream while the
    model's embedding tables sit behind an HBM⇄host parameter server
    holding a growing fraction of rows resident.  Misses are gathered
    from host DRAM over PCIe, so small caches pay per-query fetch time
    and p99 improves monotonically as the resident fraction grows.

    Part ``drift``/``drift+refresh``: the tiered drift calibration
    (2-SM slice) — HBM hit rate decays as popularity drifts away from
    the warmed hot set, and a cache refresh every 2 phases recovers it.
    """
    scheme = OPTMT
    workload = ctx.workload()
    model = ctx.config.model
    emb_us = ctx.embedding_stage_us(
        ctx.homogeneous_mix(_MEMSTORE_DATASET), scheme
    )
    base_model = linear_latency_model(
        A100_SXM4_80GB,
        emb_us=emb_us,
        emb_batch=model.batch_size,
        model=model,
    )
    max_batch = model.batch_size
    capacity_qps = max_batch / (base_model(max_batch) / 1e3)
    qps = 0.5 * capacity_qps
    trace = generate_arrivals(
        StationarySpec(base_qps=qps, duration_s=_MEMSTORE_DURATION_S),
        seed=ctx.config.seed,
    )
    link = HostLink.pcie(workload.full_gpu)
    eval_trace = generate_trace(
        HOTNESS_PRESETS[_MEMSTORE_DATASET],
        batch_size=workload.batch_size,
        pooling_factor=workload.pooling_factor,
        table_rows=workload.table_rows,
        seed=ctx.config.seed,
    )

    def tiered_point(fraction: float):
        """(hit_rate, host_us_per_query, latency model) at a fraction."""
        store = store_for_spec(
            HOTNESS_PRESETS[_MEMSTORE_DATASET],
            batch_size=workload.batch_size,
            pooling_factor=workload.pooling_factor,
            table_rows=workload.table_rows,
            row_bytes=workload.row_bytes,
            hbm_fraction=fraction,
            link=link,
            seed=ctx.config.seed,
        )
        tier = store.lookup(eval_trace)
        # scale-free composition: miss bytes per access x (pooling x
        # tables) accesses per query, priced on the full-chip link
        bytes_per_query = (
            tier.host_bytes / tier.n_accesses
            * model.pooling_factor * model.num_tables
        ) if tier.n_accesses else 0.0
        host_us_per_query = 1e6 * bytes_per_query / (
            link.bandwidth_gbps * 1e9
        )
        return tier.hit_rate, host_us_per_query, tiered_latency_model(
            base_model, host_us_per_query=host_us_per_query
        )

    # SLA anchored on the fully-resident run so goodput is comparable
    # across fractions
    _, _, full_model = tiered_point(1.0)
    full_report = serve_stream(
        full_model, trace,
        policy=ContinuousBatching(max_batch=max_batch),
    )
    sla_ms = round(1.3 * full_report.p99_ms, 2)

    table = ExperimentTable(
        "memstore",
        f"Tiered embedding store: HBM-cache fraction sweep on "
        f"A100/{scheme.name} ({_MEMSTORE_DATASET}, "
        f"{qps:.0f} QPS, SLA {sla_ms:g} ms)",
        ["part", "x", "hit_rate", "host_us_per_query", "p50_ms",
         "p99_ms", "goodput_qps", "latency_factor", "refreshed"],
    )
    for fraction in _MEMSTORE_FRACTIONS:
        hit_rate, host_us_per_query, tiered = tiered_point(fraction)
        report = serve_stream(
            tiered, trace, sla_ms=sla_ms,
            policy=ContinuousBatching(max_batch=max_batch, sla_ms=sla_ms),
            phase_hit_rates=(hit_rate,),
        )
        table.add_row(
            part="hbm-sweep", x=fraction, hit_rate=hit_rate,
            host_us_per_query=host_us_per_query,
            p50_ms=report.p50_ms, p99_ms=report.p99_ms,
            goodput_qps=report.goodput_qps,
            latency_factor=None, refreshed=None,
        )

    drift_spec = DriftSpec(n_phases=4, drift_per_phase=0.3)
    for label, refresh in (("drift", None), ("drift+refresh", 2)):
        profile = memstore_drift_profile(
            drift_spec, dataset=_MEMSTORE_DATASET, hbm_fraction=0.05,
            refresh_every=refresh, num_sms=2, seed=ctx.config.seed,
        )
        for phase in range(drift_spec.n_phases):
            table.add_row(
                part=label, x=phase,
                hit_rate=profile.hit_rates[phase],
                host_us_per_query=None, p50_ms=None, p99_ms=None,
                goodput_qps=None,
                latency_factor=profile.factors[phase],
                refreshed=profile.refreshed[phase],
            )
    table.notes.append(
        "p99 falls monotonically as the HBM-resident fraction grows "
        "(host-DRAM fetches leave the critical path); under drift the "
        "hit rate decays phase by phase unless the cache is refreshed, "
        "and the refresh shows up as recovered hit rate and a lower "
        "latency factor"
    )
    return table


# ----------------------------------------------------------------------
# multi-tenant model zoo (beyond the paper: consolidation)
# ----------------------------------------------------------------------
#: each tenant offers this fraction of its own solo capacity, so the
#: sweep's only variable is how many tenants share the device.
_TENANCY_LOAD_FRACTION = 0.25
#: per-tenant SLA = this margin x the tenant's solo p99 at its load.
_TENANCY_SLA_MARGIN = 3.0
#: HBM budget = this fraction of the zoo's aggregate *useful* cache
#: demand (bytes to full hit coverage), so arbitration always has to
#: choose — the regime where waterfilling on marginal hit rate matters.
_TENANCY_CACHE_PRESSURE = 0.5
_TENANCY_DURATION_S = 6.0
_TENANCY_ZOO_SIZES = (1, 2, 3, 4)
_TENANCY_DRIFT_PER_PHASE = 0.3


def _useful_rows(curve) -> int:
    """Smallest capacity already achieving the curve's full coverage."""
    top = curve.hits_at(curve.table_rows)
    return int(np.searchsorted(curve.cum_hits, top))


def _pressured_budget(zoo_curves) -> int:
    """The sweep's HBM budget: a fixed fraction of the zoo's aggregate
    useful demand, but never below the contractual floors (a floor is
    a guarantee, so the budget must be able to honour it)."""
    useful = sum(
        _useful_rows(c) * c.bytes_per_row for c in zoo_curves.values()
    )
    floors = sum(c.floor_bytes for c in zoo_curves.values())
    return max(int(_TENANCY_CACHE_PRESSURE * useful), floors)


def tenancy_zoo(ctx: ExperimentContext) -> ExperimentTable:
    """Zoo-size sweep: consolidation goodput vs per-tenant p99 erosion.

    Up to four DLRM variants (distinct table sizes, pooling factors
    and hotness) consolidate onto one A100.  Each tenant offers a
    fixed fraction of its own solo capacity and carries an SLA
    anchored on its solo p99, so growing the zoo changes exactly one
    thing: who else is on the device.  Per zoo size the HBM arbiter
    waterfills a pressured budget across the tenants' embedding
    caches (hit rate and host penalty flow into each tenant's latency
    curve), the interference model prices contention from the
    co-runners' calibrated SM/HBM demands, and every tenant reports
    per-phase p99 / goodput / SLA attainment.  A drift part re-runs
    the 3-tenant arbitration after popularity drift: stale grants
    decay, re-arbitration recovers.
    """
    seed = ctx.config.seed
    gpu = A100_SXM4_80GB
    full = example_zoo(
        max(_TENANCY_ZOO_SIZES), duration_s=_TENANCY_DURATION_S
    )
    calibrations = {
        t.name: calibrate_tenant(
            t, gpu, num_sms=2, seed=seed, memo=ctx.memo
        )
        for t in full.tenants
    }
    curves = zoo_hit_curves(full, gpu, num_sms=2, seed=seed)
    link = HostLink.pcie(gpu)

    # per-tenant offered load + SLA, both anchored on the tenant SOLO
    # with the grant it would hold alone at the same cache pressure —
    # the zoo sweep must change exactly one thing (who else is there),
    # so the anchor has to pay the same host-tier penalty
    tenants, slas = [], {}
    for t in full.tenants:
        cal = calibrations[t.name]
        curve = curves[t.name]
        solo_grant = arbitrate(
            _pressured_budget({t.name: curve}), {t.name: curve}
        )
        solo_model = tiered_latency_model(
            cal.latency_ms,
            host_us_per_query=curve.host_us_per_query(
                solo_grant.grant(t.name).granted_rows, link
            ),
        )
        capacity = t.model.batch_size / (
            solo_model(t.model.batch_size) / 1e3
        )
        qps = _TENANCY_LOAD_FRACTION * capacity
        scenario = StationarySpec(
            base_qps=qps, duration_s=_TENANCY_DURATION_S
        )
        probe = dataclasses.replace(t, scenario=scenario)
        solo = serve_stream(
            solo_model, probe.stream(seed), sla_ms=None,
            scheme_name=t.scheme.name,
        )
        slas[t.name] = round(_TENANCY_SLA_MARGIN * solo.p99_ms, 2)
        tenants.append(dataclasses.replace(
            t, scenario=scenario, sla_ms=slas[t.name]
        ))

    table = ExperimentTable(
        "tenancy",
        "Multi-tenant model zoo on one A100: consolidation goodput vs "
        f"per-tenant p99 (load {_TENANCY_LOAD_FRACTION:.0%} of solo "
        f"capacity each, SLA {_TENANCY_SLA_MARGIN:g}x solo p99, cache "
        f"pressure {_TENANCY_CACHE_PRESSURE:g})",
        ["part", "zoo_size", "tenant", "phase", "offered_qps", "p99_ms",
         "goodput_qps", "sla_hit_pct", "factor", "hit_rate"],
    )
    for size in _TENANCY_ZOO_SIZES:
        zoo = ZooSpec(name=f"zoo{size}", tenants=tuple(tenants[:size]))
        zoo_curves = {name: curves[name] for name in zoo.tenant_names}
        grant = arbitrate(_pressured_budget(zoo_curves), zoo_curves)
        models = {
            name: tiered_latency_model(
                calibrations[name].latency_ms,
                host_us_per_query=zoo_curves[name].host_us_per_query(
                    grant.grant(name).granted_rows, link
                ),
            )
            for name in zoo.tenant_names
        }
        report = simulate_zoo_serving(
            zoo, models,
            demands={
                name: calibrations[name].demand
                for name in zoo.tenant_names
            },
            phase_hit_rates={
                name: (grant.grant(name).hit_rate,)
                for name in zoo.tenant_names
            },
            seed=seed,
        )
        for name, tenant_report in report.tenant_reports.items():
            for stats in tenant_report.phases:
                table.add_row(
                    part="sweep", zoo_size=size, tenant=name,
                    phase=stats.phase,
                    offered_qps=tenant_report.offered_qps,
                    p99_ms=stats.p99_ms,
                    goodput_qps=stats.goodput_qps,
                    sla_hit_pct=stats.sla_hit_pct,
                    factor=report.contention[name],
                    hit_rate=stats.hit_rate,
                )
        table.add_row(
            part="sweep", zoo_size=size, tenant="ALL", phase="all",
            offered_qps=report.aggregate_offered_qps,
            p99_ms=max(
                r.p99_ms for r in report.tenant_reports.values()
            ),
            goodput_qps=report.aggregate_goodput_qps,
            sla_hit_pct=report.sla_attainment_pct,
            factor=max(report.contention.values()),
            hit_rate=None,
        )

    # drift: the 3-tenant arbitration under popularity drift — stale
    # grants decay; re-arbitrating from the previous phase recovers
    zoo3 = ZooSpec(name="zoo3", tenants=tuple(tenants[:3]))
    zoo3_curves = {name: curves[name] for name in zoo3.tenant_names}
    budget3 = _pressured_budget(zoo3_curves)
    stale_grant = arbitrate(budget3, zoo3_curves)
    # phases start at 2: the online re-arbitration for phase 1 decides
    # on phase-0 traffic, i.e. it IS the initial arbitration
    for phase in (2, 3):
        drifted = zoo_hit_curves(
            zoo3, gpu, num_sms=2, seed=seed,
            drift_phase=phase, profile_phase=0,
            drift_per_phase=_TENANCY_DRIFT_PER_PHASE,
        )
        regrant = rearbitrate_on_drift(
            zoo3, budget3, drift_phase=phase,
            drift_per_phase=_TENANCY_DRIFT_PER_PHASE,
            gpu=gpu, num_sms=2, seed=seed,
        )
        for name in zoo3.tenant_names:
            table.add_row(
                part="drift", zoo_size=3, tenant=name,
                phase=f"drift{phase}/stale",
                offered_qps=None, p99_ms=None, goodput_qps=None,
                sla_hit_pct=None, factor=None,
                hit_rate=drifted[name].hit_rate_at(
                    stale_grant.grant(name).granted_rows
                ),
            )
            table.add_row(
                part="drift", zoo_size=3, tenant=name,
                phase=f"drift{phase}/rearb",
                offered_qps=None, p99_ms=None, goodput_qps=None,
                sla_hit_pct=None, factor=None,
                hit_rate=regrant.grant(name).hit_rate,
            )
    table.notes.append(
        "aggregate goodput rises as tenants consolidate onto the "
        "device (each tenant only offers a quarter of its solo "
        "capacity) while contention factors >1 erode every tenant's "
        "p99; under drift the stale grants' hit rates decay and "
        "re-arbitration from the previous phase recovers them"
    )
    return table


#: experiment id -> (builder, one-line description)
EXPERIMENTS: dict[str, tuple[ExperimentFn, str]] = {
    "tab3": (tab3_unique_access, "Unique access % per dataset"),
    "fig5": (fig5_coverage, "Coverage study of access patterns"),
    "tab4": (tab4_base_ncu, "NCU characterization of base PyTorch"),
    "tab5": (tab5_optmt_ncu, "NCU characterization of OptMT"),
    "fig6": (fig6_wlp_sweep, "A100 WLP sweep (maxrregcount)"),
    "fig9": (fig9_pf_distance, "SMPF prefetch-distance sweep"),
    "fig11": (fig11_l2p_pooling, "L2P speedup vs pooling factor"),
    "fig1": (fig1_motivation, "Motivation: base vs OptMT end-to-end"),
    "fig12": (fig12_embedding_speedup, "Embedding-only speedups"),
    "fig13": (fig13_e2e_speedup, "End-to-end speedups"),
    "fig14": (fig14_emb_share, "Embedding share of latency"),
    "tab8": (tab8_rpf_optmt_ncu, "NCU details of RPF+OptMT"),
    "tab9": (tab9_combined_ncu, "NCU details of RPF+L2P+OptMT"),
    "fig15": (fig15_pf_schemes_optmt, "Prefetch schemes with OptMT"),
    "fig16": (fig16_no_optmt, "Schemes without OptMT"),
    "fig17": (fig17_hetero_mix, "Heterogeneous table mixes"),
    "fig18": (fig18_h100_wlp, "H100 WLP sweep"),
    "fig19": (fig19_h100_vs_a100, "H100 vs A100 comparison"),
    "fleet": (fleet_serving, "Heterogeneous fleet serving at SLA"),
    "scenario": (scenario_serving,
                 "Non-stationary traffic: fixed vs continuous batching"),
    "memstore": (memstore_sweep,
                 "Tiered embedding store: HBM-cache fraction sweep"),
    "tenancy": (tenancy_zoo,
                "Multi-tenant model zoo: consolidation vs interference"),
}
