"""The paper's reported numbers, transcribed for side-by-side comparison.

Table values are exact transcriptions; figure values marked ``approx``
are digitized from the plots and text (the paper releases no CSVs).
Dataset order everywhere: ``one_item, high_hot, med_hot, low_hot,
random`` (five-dataset tables) or the four evaluation datasets.
"""

DATASETS5 = ("one_item", "high_hot", "med_hot", "low_hot", "random")
DATASETS4 = ("high_hot", "med_hot", "low_hot", "random")

#: Table III — unique access % per dataset.
TAB3_UNIQUE_ACCESS_PCT = {
    "one_item": 0.0002,
    "high_hot": 4.05,
    "med_hot": 20.50,
    "low_hot": 46.21,
    "random": 63.21,
}

#: Figure 5 — coverage anchor quoted in the text: the top 10% of unique
#: rows of ``high_hot`` cover 68% of all accesses.
FIG5_HIGH_HOT_TOP10_COVERAGE_PCT = 68.0

#: Table IV — NCU characterization of base PyTorch (24 warps/SM).
TAB4_BASE = {
    "kernel_time_us": (138, 237, 341, 428, 442),
    "load_insts_m": (2.47, 2.47, 2.47, 2.47, 2.47),
    "sm_throughput_pct": (71.45, 41.27, 26.65, 21.23, 20.42),
    "warp_cycles_per_inst": (7.06, 11.7, 17.56, 21.94, 22.86),
    "long_scoreboard_stall": (1.0, 7.2, 13.1, 17.7, 18.6),
    "issued_per_scheduler": (0.77, 0.47, 0.31, 0.25, 0.24),
    "l1_hit_pct": (98.7, 42.74, 30.11, 20.36, 19.0),
    "l2_hit_pct": (99.46, 93.96, 59.5, 18.71, 7.7),
    "dram_read_mb": (0.0, 4.87, 45.96, 122.0, 144.57),
    "avg_hbm_bw_gbps": (0.0, 20.8, 135.0, 286.5, 329.5),
    "hbm_bw_util_pct": (0.0, 1.04, 6.75, 14.33, 16.5),
}

#: Table V — OptMT (40 warps/SM, 42 allocated registers).
TAB5_OPTMT = {
    "kernel_time_us": (135, 189, 250, 282, 290),
    "load_insts_m": (3.54, 3.54, 3.54, 3.54, 3.54),
    "sm_throughput_pct": (71.89, 54.93, 39.3, 34.72, 33.84),
    "warp_cycles_per_inst": (10.61, 15.2, 20.93, 24.74, 25.44),
    "long_scoreboard_stall": (1.33, 8.6, 15.3, 19.6, 20.4),
    "issued_per_scheduler": (0.79, 0.59, 0.42, 0.36, 0.35),
    "l1_hit_pct": (98.7, 37.0, 27.2, 19.85, 19.0),
    "l2_hit_pct": (85.36, 92.3, 56.51, 16.48, 7.1),
    "dram_read_mb": (0.3, 7.5, 54.1, 131.9, 151.0),
    "avg_hbm_bw_gbps": (2.57, 43.0, 226.5, 485.4, 547.5),
    "hbm_bw_util_pct": (0.0, 2.2, 11.3, 24.3, 27.4),
}

#: Table VIII — RPF+OptMT (four evaluation datasets).
TAB8_RPF_OPTMT = {
    "kernel_time_us": (177, 205, 220, 224),
    "load_insts_m": (4.43, 4.43, 4.43, 4.43),
    "sm_throughput_pct": (59.3, 49.7, 44.4, 43.3),
    "issued_slot_util_pct": (59.17, 49.65, 44.32, 43.5),
    "dram_read_mb": (8.4, 53.0, 133.0, 151.8),
    "avg_hbm_bw_gbps": (51.4, 277.7, 629.1, 699.4),
    "hbm_bw_util_pct": (2.6, 13.9, 31.5, 35.0),
}

#: Table IX — RPF+L2P+OptMT.
TAB9_COMBINED = {
    "kernel_time_us": (167, 190, 216, 217),
    "load_insts_m": (4.43, 4.43, 4.43, 4.43),
    "sm_throughput_pct": (60.0, 49.9, 44.5, 43.3),
    "issued_slot_util_pct": (60.12, 50.21, 44.64, 43.61),
    "dram_read_mb": (4.9, 45.6, 128.0, 150.0),
    "avg_hbm_bw_gbps": (30.0, 240.6, 613.2, 698.0),
    "hbm_bw_util_pct": (1.5, 12.3, 30.7, 34.9),
}

#: Figure 1 — end-to-end batch latency (ms), base and OptMT (approx:
#: digitized; bar totals are printed above the bars in the paper).
FIG1_TOTAL_MS = {
    "base": (69.22, 79.36, 84.69, 87.41, 87.79),
    "OptMT": (69.19, 75.88, 80.62, 82.45, 82.88),
}

#: Figure 6 — WLP sweep speedups over base (approx) and local loads (M).
FIG6_SPEEDUP = {  # dataset -> speedup at (24, 32, 40, 48, 64) warps
    "high_hot": (1.0, 1.15, 1.25, 1.18, 0.95),
    "med_hot": (1.0, 1.2, 1.36, 1.3, 1.1),
    "low_hot": (1.0, 1.25, 1.52, 1.42, 1.22),
    "random": (1.0, 1.27, 1.53, 1.45, 1.25),
}
FIG6_LOCAL_LOADS_M = (0.0, 0.4, 1.1, 1.9, 3.4)  # approx, at the 5 points

#: Figure 9 — SMPF prefetch-distance sweep (no OptMT), approx optima.
FIG9_OPTIMAL_DISTANCE = 10
FIG9_RANDOM_SPEEDUP_AT_OPT = 2.0  # approx

#: Figure 11 — L2P speedup vs pooling factor (approx envelope).
FIG11_RANGE = (0.95, 1.2)

#: Figure 12 — embedding-only speedups over base (approx from plot; the
#: text quotes combined up to 2.03x for random and 13.5% over RPF+OptMT
#: at med_hot).
FIG12_SPEEDUP = {
    "OptMT": (1.25, 1.36, 1.52, 1.53),
    "RPF+OptMT": (1.34, 1.66, 1.94, 1.97),
    "L2P+OptMT": (1.42, 1.45, 1.57, 1.58),
    "RPF+L2P+OptMT": (1.42, 1.88, 2.00, 2.03),
}

#: Figure 13 — end-to-end speedups over base (approx; text: up to 1.77x).
FIG13_SPEEDUP = {
    "OptMT": (1.20, 1.28, 1.33, 1.35),
    "RPF+OptMT": (1.27, 1.52, 1.68, 1.73),
    "L2P+OptMT": (1.33, 1.38, 1.43, 1.45),
    "RPF+L2P+OptMT": (1.34, 1.65, 1.74, 1.77),
}

#: Figure 14 — embedding share of end-to-end latency (%), base (approx;
#: the y-axis spans 70-90% and the combined scheme drops it by up to 10
#: points for random).
FIG14_BASE_SHARE_PCT = (79.0, 84.0, 86.0, 87.0)
FIG14_COMBINED_DROP_PCT = 10.0

#: Figure 15 — all prefetch schemes + OptMT (approx; text quotes
#: prefetch speedups {34, 66, 94, 97}% for {high, med, low}, random and
#: a 15% L1DPF drop vs OptMT at high_hot).
FIG15_SPEEDUP = {
    "RPF+OptMT": (1.34, 1.66, 1.94, 1.97),
    "SMPF+OptMT": (1.30, 1.62, 1.90, 1.93),
    "LMPF+OptMT": (1.31, 1.63, 1.91, 1.94),
    "L1DPF+OptMT": (1.10, 1.45, 1.70, 1.75),
}

#: Figure 16 — schemes without OptMT (approx).  Optimal distances from
#: the text: RPF 4, SMPF 10, LMPF 10, L1DPF 5; SMPF wins.
FIG16_OPTIMAL_DISTANCE = {
    "register": 4, "shared": 10, "local": 10, "l1d": 5,
}
FIG16A_SPEEDUP = {
    "RPF": (1.10, 1.35, 1.50, 1.55),
    "LMPF": (1.28, 1.55, 1.88, 1.92),
    "SMPF": (1.32, 1.60, 1.94, 1.99),
    "L1DPF": (1.15, 1.45, 1.70, 1.75),
}
FIG16B_SPEEDUP = {
    "L2P": (1.045, 1.064, 1.01, 1.00),
    "SMPF+L2P": (1.38, 1.66, 1.96, 2.01),
}

#: Figure 17 — heterogeneous mixes (approx; combined best, Mix3 > Mix1).
FIG17_COMBINED_SPEEDUP = {"Mix1": 1.75, "Mix2": 1.85, "Mix3": 1.95}

#: Section VI-B4 / Figures 18-19 — H100 NVL.
H100_BASE_TIME_US = {  # measured base PyTorch latencies quoted in text
    "high_hot": 174, "med_hot": 228, "low_hot": 282, "random": 295,
}
H100_OPTMT_WARPS = 32
H100_AVG_UPLIFT_OVER_A100_PCT = 47.0
A100_OPT_VS_H100_BASE_PCT = 23.0
FIG19_H100_COMBINED_MAX_SPEEDUP = 1.84

#: Headline claims (abstract / conclusions).
HEADLINE = {
    "optmt_max_gain_pct": 53.0,
    "embedding_max_gain_pct": 103.0,
    "e2e_max_gain_pct": 77.0,
    "base_worst_gap": 3.2,
    "optmt_worst_gap": 2.1,
    "combined_worst_gap": 1.57,
}
