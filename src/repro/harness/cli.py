"""``repro-harness`` command-line interface.

Usage::

    repro-harness --version
    repro-harness list
    repro-harness run fig12 [--sms 6] [--seed 0] [--memo-dir PATH]
    repro-harness run scenario --profile diurnal|flash|mmpp|drift|poisson
    repro-harness run all [--out results.json] [--record run.jsonl]
    repro-harness replay run.jsonl [--report phases|tenants|timeline]

``run --record`` attaches a telemetry recorder (ambient sink) for the
duration of the run and writes schema-versioned JSONL; ``replay``
folds such a file back into the exact reports the live run produced —
no simulator involved.  Malformed recordings exit 2 with a one-line
explanation, not a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import __version__
from repro.gpusim.memo import KernelMemo, set_default_memo
from repro.harness.context import ExperimentContext, HarnessConfig
from repro.harness.experiments import EXPERIMENTS
from repro.harness.runner import list_experiments, run_experiment
from repro.traffic.scenario import SCENARIO_PROFILES

REPLAY_REPORTS = ("summary", "phases", "tenants", "timeline")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'Pushing the Performance "
            "Envelope of DNN-based Recommendation Systems Inference on "
            "GPUs' (MICRO 2024) on the bundled GPU simulator."
        ),
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. fig12, or all")
    run.add_argument(
        "--sms", type=int, default=6,
        help="simulated GPU slice size in SMs (default 6)",
    )
    run.add_argument("--seed", type=int, default=0, help="trace seed")
    run.add_argument(
        "--profile", default=None, choices=SCENARIO_PROFILES,
        help=(
            "traffic shape for the 'scenario' experiment "
            "(default: flash)"
        ),
    )
    run.add_argument(
        "--memo-dir", default=None, metavar="PATH",
        help=(
            "directory for the on-disk kernel memo; repeated runs with "
            "the same config replay cached kernel timings instead of "
            "re-simulating (delete the directory to invalidate)"
        ),
    )
    run.add_argument(
        "--out", default=None, metavar="PATH",
        help=(
            "also write the experiment tables as machine-readable JSON "
            "(one document: version, config, experiments)"
        ),
    )
    run.add_argument(
        "--record", default=None, metavar="PATH",
        help=(
            "record serving telemetry to schema-versioned JSONL; "
            "feed the file to 'repro-harness replay'"
        ),
    )
    replay = sub.add_parser(
        "replay", help="fold a recorded telemetry file back into reports"
    )
    replay.add_argument("recording", help="JSONL file from --record")
    replay.add_argument(
        "--report", default="summary", choices=REPLAY_REPORTS,
        help=(
            "view: run summaries (default), per-phase breakdowns, "
            "per-tenant interference attribution, or queue/in-flight "
            "timeline digests"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly.
        # Reopen stdout on devnull so the interpreter's shutdown flush
        # doesn't raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id, desc in list_experiments():
            print(f"{exp_id:8s} {desc}")
        return 0
    if args.command == "replay":
        return _cmd_replay(args)

    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(
            f"error: unknown experiment {args.experiment!r}; "
            f"choose from: {known}, all",
            file=sys.stderr,
        )
        return 2
    if args.profile is not None and args.experiment not in (
        "scenario", "all"
    ):
        print(
            "error: --profile only applies to the scenario experiment, "
            f"not {args.experiment!r}",
            file=sys.stderr,
        )
        return 2

    memo = KernelMemo(disk_dir=args.memo_dir) if args.memo_dir else None
    if memo is not None:
        # also make it the process default so library code that never
        # sees the context (fleet calibration, examples) shares the disk
        # tier within this invocation
        set_default_memo(memo)
    ctx = ExperimentContext(
        HarnessConfig(num_sms=args.sms, seed=args.seed), memo=memo
    )
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    tables = []
    recorder = None
    if args.record is not None:
        from repro.telemetry.sinks import RecorderSink, set_default_sink

        recorder = RecorderSink(args.record)
        set_default_sink(recorder)
    try:
        for exp_id in ids:
            start = time.perf_counter()
            # --profile was validated above: it can only reach 'scenario'
            profile = args.profile if exp_id == "scenario" else None
            table = run_experiment(exp_id, ctx, profile=profile)
            elapsed = time.perf_counter() - start
            tables.append(table)
            print(table.render())
            print(f"({exp_id} regenerated in {elapsed:.1f}s)")
            print()
    finally:
        if recorder is not None:
            from repro.telemetry.sinks import set_default_sink

            set_default_sink(None)
            recorder.close()
            print(
                f"(telemetry: {recorder.records} records -> {args.record})"
            )
    if args.out is not None:
        document = {
            "tool": "repro-harness",
            "version": __version__,
            "config": {"sms": args.sms, "seed": args.seed},
            "experiments": [table.to_dict() for table in tables],
        }
        with open(args.out, "w", encoding="utf-8") as file:
            json.dump(document, file, indent=2)
            file.write("\n")
        print(f"(results -> {args.out})")
    print(f"({ctx.memo.stats_line()})")
    return 0


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.telemetry.replay import ReplayError, load_runs, replay_report

    try:
        runs = load_runs(args.recording)
        reports = [replay_report(run) for run in runs]
    except ReplayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not runs:
        print(f"{args.recording}: no runs recorded")
        return 0
    if args.report == "timeline":
        _render_timeline(runs)
        return 0
    if args.report == "tenants":
        return _render_tenants(runs)
    for report in reports:
        _render_report(report, phases=args.report == "phases")
    return 0


def _render_report(report, *, phases: bool, indent: str = "") -> None:
    name = type(report).__name__
    if hasattr(report, "tenant_reports"):  # Zoo / ZooFleet
        print(
            f"{indent}{name} {report.zoo}: "
            f"{len(report.tenant_reports)} tenants, "
            f"aggregate goodput {report.aggregate_goodput_qps:.0f} qps, "
            f"SLA attainment {report.sla_attainment_pct:.1f}%"
        )
        for tenant, sub in report.tenant_reports.items():
            print(f"{indent}  [{tenant}]")
            _render_report(sub, phases=phases, indent=indent + "  ")
        return
    if hasattr(report, "scenario"):  # StreamReport
        print(
            f"{indent}{name} {report.scenario} via {report.scheme_name} "
            f"({report.batcher}): {report.n_queries} queries, "
            f"p99 {report.p99_ms:.2f} ms, "
            f"goodput {report.goodput_qps:.0f} qps, "
            f"SLA {report.sla_hit_pct:.1f}%"
        )
    elif hasattr(report, "fleet_name"):  # FleetReport
        print(
            f"{indent}{name} {report.fleet_name} [{report.policy}]: "
            f"{report.n_queries} queries on {report.n_replicas} replicas, "
            f"p99 {report.p99_ms:.2f} ms, SLA {report.sla_hit_pct:.1f}%"
        )
    else:  # ServingReport
        print(
            f"{indent}{name} {report.scheme_name} @ {report.qps:g} qps: "
            f"{report.n_queries} queries, p99 {report.p99_ms:.2f} ms, "
            f"util {report.gpu_utilization:.2f}"
        )
    if phases and getattr(report, "phases", ()):
        for ph in report.phases:
            hit = (
                f", hit rate {ph.hit_rate:.3f}"
                if ph.hit_rate is not None else ""
            )
            print(
                f"{indent}  phase {ph.phase}: {ph.n_queries} queries, "
                f"p50/p95/p99 {ph.p50_ms:.2f}/{ph.p95_ms:.2f}/"
                f"{ph.p99_ms:.2f} ms, goodput {ph.goodput_qps:.0f} qps, "
                f"SLA {ph.sla_hit_pct:.1f}%{hit}"
            )


def _render_timeline(runs) -> None:
    from repro.telemetry.derive import timeline_summary

    rows = timeline_summary(runs)
    for row in rows:
        tenant = f" tenant={row['tenant']}" if row["tenant"] else ""
        print(
            f"{row['kind']}:{row['name']}{tenant} — "
            f"{row['n_queries']} queries / {row['n_batches']} batches, "
            f"peak queue {row['max_queue_depth']}, "
            f"peak in-flight {row['max_in_flight']}"
        )


def _render_tenants(runs) -> int:
    from repro.telemetry.derive import interference_attribution
    from repro.telemetry.events import GroupRun

    groups = [run for run in runs if isinstance(run, GroupRun)]
    if not groups:
        print("no multi-tenant (zoo) runs in this recording")
        return 0
    for group in groups:
        print(f"zoo {group.meta.get('zoo', '?')}:")
        for tenant, attr in interference_attribution(group).items():
            extra = (
                f", own load {attr['load']:.2f}, "
                f"co-runner load {attr['co_runner_load']:.2f}"
                if "load" in attr else ""
            )
            print(
                f"  {tenant}: x{attr['factor']:.3f} contention "
                f"(+{attr['latency_penalty_pct']:.1f}% latency){extra}"
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
