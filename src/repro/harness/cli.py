"""``repro-harness`` command-line interface.

Usage::

    repro-harness list
    repro-harness run fig12 [--sms 6] [--seed 0] [--memo-dir PATH]
    repro-harness run scenario --profile diurnal|flash|mmpp|drift|poisson
    repro-harness run all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.gpusim.memo import KernelMemo, set_default_memo
from repro.harness.context import ExperimentContext, HarnessConfig
from repro.harness.experiments import EXPERIMENTS
from repro.harness.runner import list_experiments, run_experiment
from repro.traffic.scenario import SCENARIO_PROFILES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description=(
            "Regenerate the tables and figures of 'Pushing the Performance "
            "Envelope of DNN-based Recommendation Systems Inference on "
            "GPUs' (MICRO 2024) on the bundled GPU simulator."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id, e.g. fig12, or all")
    run.add_argument(
        "--sms", type=int, default=6,
        help="simulated GPU slice size in SMs (default 6)",
    )
    run.add_argument("--seed", type=int, default=0, help="trace seed")
    run.add_argument(
        "--profile", default=None, choices=SCENARIO_PROFILES,
        help=(
            "traffic shape for the 'scenario' experiment "
            "(default: flash)"
        ),
    )
    run.add_argument(
        "--memo-dir", default=None, metavar="PATH",
        help=(
            "directory for the on-disk kernel memo; repeated runs with "
            "the same config replay cached kernel timings instead of "
            "re-simulating (delete the directory to invalidate)"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for exp_id, desc in list_experiments():
            print(f"{exp_id:8s} {desc}")
        return 0

    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        print(
            f"error: unknown experiment {args.experiment!r}; "
            f"choose from: {known}, all",
            file=sys.stderr,
        )
        return 2
    if args.profile is not None and args.experiment not in (
        "scenario", "all"
    ):
        print(
            "error: --profile only applies to the scenario experiment, "
            f"not {args.experiment!r}",
            file=sys.stderr,
        )
        return 2

    memo = KernelMemo(disk_dir=args.memo_dir) if args.memo_dir else None
    if memo is not None:
        # also make it the process default so library code that never
        # sees the context (fleet calibration, examples) shares the disk
        # tier within this invocation
        set_default_memo(memo)
    ctx = ExperimentContext(
        HarnessConfig(num_sms=args.sms, seed=args.seed), memo=memo
    )
    ids = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in ids:
        start = time.perf_counter()
        # --profile was validated above: it can only reach 'scenario'
        profile = args.profile if exp_id == "scenario" else None
        table = run_experiment(exp_id, ctx, profile=profile)
        elapsed = time.perf_counter() - start
        print(table.render())
        print(f"({exp_id} regenerated in {elapsed:.1f}s)")
        print()
    print(f"({ctx.memo.stats_line()})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
