"""Result containers, rendering and export for the harness."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any

Row = dict[str, Any]


@dataclass
class ExperimentTable:
    """One reproduced table or figure: rows of named values plus notes."""

    exp_id: str
    title: str
    columns: list[str]
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"row has columns not in table: {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise KeyError(f"no column {name!r} in {self.exp_id}")
        return [row.get(name) for row in self.rows]

    def row_for(self, key_column: str, key: Any) -> Row:
        for row in self.rows:
            if row.get(key_column) == key:
                return row
        raise KeyError(f"{self.exp_id}: no row with {key_column}={key!r}")

    def render(self) -> str:
        """Render as an aligned plain-text table (the bench output)."""
        header = [*self.columns]
        body = [
            [_fmt(row.get(col)) for col in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


    def to_csv(self) -> str:
        """Comma-separated export (header = columns)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row.get(c, "") for c in self.columns})
        return buffer.getvalue()

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict export (what ``to_json`` serializes)."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
        }

    def to_json(self) -> str:
        """JSON export with experiment metadata."""
        return json.dumps(self.to_dict(), indent=2)


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
