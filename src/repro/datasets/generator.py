"""Synthetic embedding-trace generation with controlled hotness.

Given a :class:`~repro.datasets.spec.DatasetSpec`, a batch size, a pooling
factor and a table size, produce an :class:`EmbeddingTrace` whose unique
access percentage matches the spec (exactly, for zipf datasets) and whose
coverage curve matches the spec's top-10% anchor.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.datasets.spec import DatasetSpec
from repro.datasets.trace import EmbeddingTrace


def _layout_seed(spec: DatasetSpec, table_rows: int) -> int:
    """Seed for the *row layout* (which physical rows are hot).

    Item popularity is a property of the catalogue, not of one batch:
    two batches drawn from the same dataset hit the same hot rows.  The
    layout therefore depends only on the dataset and table, while the
    per-batch ``seed`` controls the access sequence.  This is what makes
    the paper's offline L2P profiling (Figure 10) meaningful.
    """
    return zlib.crc32(f"{spec.name}:{table_rows}".encode())


def fit_zipf_exponent(
    n_unique: int, top_fraction: float, target_coverage: float
) -> float:
    """Find the Zipf exponent whose top ``top_fraction`` of ``n_unique``
    ranked items covers ``target_coverage`` of the probability mass."""
    if n_unique < 2:
        return 0.0
    k = max(1, int(round(top_fraction * n_unique)))
    ranks = np.arange(1, n_unique + 1, dtype=np.float64)

    def coverage(s: float) -> float:
        weights = ranks ** -s
        return float(weights[:k].sum() / weights.sum())

    lo, hi = 0.0, 8.0
    if coverage(hi) < target_coverage:
        return hi
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if coverage(mid) < target_coverage:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _zipf_counts(n_unique: int, total: int, exponent: float) -> np.ndarray:
    """Integer access counts per ranked item: Zipf weights, largest-remainder
    rounding, and a floor of one access per item so uniqueness is exact."""
    if n_unique > total:
        raise ValueError("cannot have more unique items than accesses")
    ranks = np.arange(1, n_unique + 1, dtype=np.float64)
    weights = ranks ** -exponent
    weights /= weights.sum()
    ideal = weights * (total - n_unique)  # reserve 1 access per item
    counts = np.floor(ideal).astype(np.int64)
    remainder = int((total - n_unique) - counts.sum())
    if remainder > 0:
        # Give leftover accesses to the largest fractional parts.
        frac = ideal - counts
        top = np.argpartition(frac, -remainder)[-remainder:]
        counts[top] += 1
    return counts + 1


def generate_trace(
    spec: DatasetSpec,
    *,
    batch_size: int,
    pooling_factor: int,
    table_rows: int,
    seed: int = 0,
) -> EmbeddingTrace:
    """Generate one table's trace for the given dataset spec."""
    if batch_size <= 0 or pooling_factor <= 0 or table_rows <= 0:
        raise ValueError("batch_size, pooling_factor, table_rows must be > 0")
    total = batch_size * pooling_factor
    rng = np.random.default_rng(seed)
    layout_rng = np.random.default_rng(_layout_seed(spec, table_rows))

    if spec.kind == "one_item":
        row = int(layout_rng.integers(table_rows))
        indices = np.full(total, row, dtype=np.int64)
    elif spec.kind == "uniform":
        # Uniform over a pool equal to the access count reproduces the
        # paper's 63.21% unique accesses (1 - 1/e); see spec module docs.
        pool = min(table_rows, total)
        pool_rows = _distinct_rows(layout_rng, pool, table_rows)
        indices = pool_rows[rng.integers(0, pool, size=total)]
    else:  # zipf
        n_unique = max(1, min(total, int(round(
            spec.unique_access_pct / 100.0 * total))))
        n_unique = min(n_unique, table_rows)
        # _zipf_counts guarantees one access per unique row (so the
        # uniqueness target is exact); only the remaining mass follows
        # the Zipf law.  Compensate the fitted coverage target for that
        # uniform floor so the *realized* top-10% coverage matches.
        floor_fraction = n_unique / total
        zipf_fraction = max(1e-9, 1.0 - floor_fraction)
        adjusted = (spec.top10_coverage - 0.10 * floor_fraction) \
            / zipf_fraction
        adjusted = min(1.0, max(0.10, adjusted))
        exponent = fit_zipf_exponent(n_unique, 0.10, adjusted)
        counts = _zipf_counts(n_unique, total, exponent)
        rows = _distinct_rows(layout_rng, n_unique, table_rows)
        indices = np.repeat(rows, counts)
        rng.shuffle(indices)

    offsets = np.arange(batch_size + 1, dtype=np.int64) * pooling_factor
    return EmbeddingTrace(
        name=spec.name,
        indices=indices.astype(np.int64),
        offsets=offsets,
        table_rows=table_rows,
    )


def generate_tables(
    spec: DatasetSpec,
    *,
    num_tables: int,
    batch_size: int,
    pooling_factor: int,
    table_rows: int,
    seed: int = 0,
) -> list[EmbeddingTrace]:
    """Generate independent traces for ``num_tables`` homogeneous tables."""
    return [
        generate_trace(
            spec,
            batch_size=batch_size,
            pooling_factor=pooling_factor,
            table_rows=table_rows,
            seed=seed + 7919 * t,
        )
        for t in range(num_tables)
    ]


def _distinct_rows(
    rng: np.random.Generator, count: int, table_rows: int
) -> np.ndarray:
    """Sample ``count`` distinct row ids spread across the table."""
    if count > table_rows:
        raise ValueError("more distinct rows requested than the table holds")
    if count == table_rows:
        rows = np.arange(table_rows, dtype=np.int64)
    else:
        rows = rng.choice(table_rows, size=count, replace=False)
    return rows.astype(np.int64)
