"""Synthetic embedding access traces with controlled hotness."""

from repro.datasets.analysis import (
    access_counts,
    coverage_at,
    coverage_curve,
    top_hot_rows,
    unique_access_pct,
    working_set_bytes,
)
from repro.datasets.generator import (
    fit_zipf_exponent,
    generate_tables,
    generate_trace,
)
from repro.datasets.graph import barabasi_albert_trace, csr_trace
from repro.datasets.spec import (
    EVAL_PRESETS,
    HIGH_HOT,
    HOTNESS_PRESETS,
    LOW_HOT,
    MED_HOT,
    ONE_ITEM,
    RANDOM,
    TABLE_MIXES,
    DatasetSpec,
)
from repro.datasets.trace import EmbeddingTrace

__all__ = [
    "DatasetSpec",
    "EVAL_PRESETS",
    "EmbeddingTrace",
    "HIGH_HOT",
    "HOTNESS_PRESETS",
    "LOW_HOT",
    "MED_HOT",
    "ONE_ITEM",
    "RANDOM",
    "TABLE_MIXES",
    "access_counts",
    "barabasi_albert_trace",
    "coverage_at",
    "csr_trace",
    "coverage_curve",
    "fit_zipf_exponent",
    "generate_tables",
    "generate_trace",
    "top_hot_rows",
    "unique_access_pct",
    "working_set_bytes",
]
