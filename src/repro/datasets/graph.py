"""Graph neighbor-aggregation workloads (paper Section VII,
Generalizability).

The paper argues its schemes "can be generally applied to a wide range
of memory-bound kernels", naming graph neural networks.  A GNN layer's
neighbor aggregation *is* a gather-reduce: for each vertex, gather the
feature rows of its neighbors and reduce them — an embedding bag whose
offsets are the CSR row pointers and whose indices are the column ids,
with a *variable* pooling factor (the degree distribution).

This module converts scale-free graphs into :class:`EmbeddingTrace`
objects so the entire scheme stack (OptMT, prefetching, pinning, the
auto-tuner) applies unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.trace import EmbeddingTrace


def barabasi_albert_trace(
    *,
    num_vertices: int,
    attachment: int = 4,
    batch_vertices: int | None = None,
    seed: int = 0,
    name: str = "graph_ba",
) -> EmbeddingTrace:
    """Neighbor-gather trace of a Barabási–Albert scale-free graph.

    Each "sample" is a vertex whose bag contains its out-neighbors;
    hub vertices give the same power-law reuse that makes L2 pinning
    effective on DLRM traces.  ``batch_vertices`` limits the layer to
    the first vertices (a mini-batched GNN layer).
    """
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover
        raise RuntimeError("graph workloads need networkx") from exc
    if attachment < 1 or num_vertices <= attachment:
        raise ValueError("need num_vertices > attachment >= 1")
    graph = nx.barabasi_albert_graph(num_vertices, attachment, seed=seed)
    batch = batch_vertices or num_vertices
    batch = min(batch, num_vertices)
    offsets = [0]
    indices: list[int] = []
    for vertex in range(batch):
        neighbors = sorted(graph.adj[vertex])
        indices.extend(neighbors)
        offsets.append(len(indices))
    return EmbeddingTrace(
        name=name,
        indices=np.asarray(indices, dtype=np.int64),
        offsets=np.asarray(offsets, dtype=np.int64),
        table_rows=num_vertices,
    )


def csr_trace(
    indptr: np.ndarray,
    col_indices: np.ndarray,
    num_rows_in_table: int,
    *,
    name: str = "graph_csr",
) -> EmbeddingTrace:
    """Wrap any CSR adjacency (or sparse matrix) as a gather trace —
    the SpMV/graph-mining path the paper's discussion points at."""
    return EmbeddingTrace(
        name=name,
        indices=np.asarray(col_indices, dtype=np.int64),
        offsets=np.asarray(indptr, dtype=np.int64),
        table_rows=num_rows_in_table,
    )
