"""Embedding access trace container."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np


@dataclass(frozen=True)
class EmbeddingTrace:
    """One table's access trace in embedding-bag layout.

    ``offsets`` has ``batch_size + 1`` entries; sample ``i`` gathers rows
    ``indices[offsets[i]:offsets[i + 1]]`` and sum-reduces them — exactly
    the layout PyTorch's ``EmbeddingBag`` consumes.
    """

    name: str
    indices: np.ndarray
    offsets: np.ndarray
    table_rows: int

    def __post_init__(self) -> None:
        if self.offsets.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indices and offsets must be 1-D arrays")
        if len(self.offsets) < 2:
            raise ValueError("offsets must describe at least one sample")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.indices):
            raise ValueError("offsets must start at 0 and end at len(indices)")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.table_rows
        ):
            raise ValueError("indices out of table range")

    @property
    def batch_size(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_accesses(self) -> int:
        return len(self.indices)

    @property
    def n_unique(self) -> int:
        return len(np.unique(self.indices))

    @property
    def unique_access_pct(self) -> float:
        """Distinct rows touched as a percentage of total accesses."""
        if self.n_accesses == 0:
            return 0.0
        return 100.0 * self.n_unique / self.n_accesses

    def pooling_factors(self) -> np.ndarray:
        return np.diff(self.offsets)

    def sample_rows(self, sample: int) -> np.ndarray:
        return self.indices[self.offsets[sample]:self.offsets[sample + 1]]

    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            path,
            name=np.array(self.name),
            indices=self.indices,
            offsets=self.offsets,
            table_rows=np.array(self.table_rows),
        )

    @classmethod
    def load(cls, path: str | Path) -> "EmbeddingTrace":
        data = np.load(path, allow_pickle=False)
        return cls(
            name=str(data["name"]),
            indices=data["indices"],
            offsets=data["offsets"],
            table_rows=int(data["table_rows"]),
        )
