"""Trace statistics: the paper's two dataset metrics.

* ``unique_access_pct`` — Table III.
* ``coverage_curve`` — Figure 5: percentage of total accesses covered by
  the top x% most frequently accessed unique rows.
* ``top_hot_rows`` — the offline profiling step of L2 pinning (Fig. 10).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.trace import EmbeddingTrace


def unique_access_pct(trace: EmbeddingTrace) -> float:
    return trace.unique_access_pct


def access_counts(trace: EmbeddingTrace) -> tuple[np.ndarray, np.ndarray]:
    """Rows and their access counts, sorted by count descending."""
    rows, counts = np.unique(trace.indices, return_counts=True)
    order = np.argsort(counts)[::-1]
    return rows[order], counts[order]


def coverage_curve(
    trace: EmbeddingTrace, points: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Coverage study (Figure 5).

    Returns ``(pct_unique, pct_accesses)``: for each percentage of unique
    rows (10%, 20%, ... by default), the percentage of total accesses
    those most-popular rows account for.
    """
    _, counts = access_counts(trace)
    cumulative = np.cumsum(counts)
    total = cumulative[-1]
    pct_unique = np.linspace(100.0 / points, 100.0, points)
    take = np.maximum(
        1, np.round(pct_unique / 100.0 * len(counts)).astype(int)
    )
    pct_accesses = 100.0 * cumulative[take - 1] / total
    return pct_unique, pct_accesses


def coverage_at(trace: EmbeddingTrace, pct_unique: float) -> float:
    """Coverage (% of accesses) of the top ``pct_unique``% unique rows."""
    _, counts = access_counts(trace)
    k = max(1, int(round(pct_unique / 100.0 * len(counts))))
    return float(100.0 * counts[:k].sum() / counts.sum())


def top_hot_rows(trace: EmbeddingTrace, k: int) -> np.ndarray:
    """The ``k`` most frequently accessed rows (L2P profiling, Fig. 10)."""
    rows, _ = access_counts(trace)
    return rows[:k]


def working_set_bytes(trace: EmbeddingTrace, row_bytes: int) -> int:
    """Bytes of distinct embedding data the trace touches."""
    return trace.n_unique * row_bytes
