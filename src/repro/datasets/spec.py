"""Dataset (memory access pattern) specifications.

The paper characterizes its five datasets — extracted from Meta's
homogenized production traces — purely by two statistics:

* **unique access %** (Table III): distinct rows touched / total accesses,
* **coverage curve** (Figure 5): fraction of total accesses covered by the
  top x% most popular unique rows (e.g. for ``high_hot`` the top 10% of
  unique rows cover 68% of all accesses).

We synthesize traces to those statistics: ``one_item`` points every access
at one row, ``random`` draws uniformly from a pool equal to the access
count (which yields 1 - 1/e = 63.2% unique, matching Table III), and the
hot datasets draw from a Zipf-shaped popularity whose exponent is fitted
to the coverage anchor.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatasetSpec:
    """Statistical description of one access-pattern dataset."""

    name: str
    kind: str  # "one_item" | "uniform" | "zipf"
    unique_access_pct: float
    #: Fraction of total accesses covered by the top 10% unique rows
    #: (only meaningful for kind == "zipf").
    top10_coverage: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("one_item", "uniform", "zipf"):
            raise ValueError(f"unknown dataset kind {self.kind!r}")
        if self.kind == "zipf" and not 0.1 <= self.top10_coverage <= 1.0:
            raise ValueError("zipf datasets need a top10_coverage in (0.1, 1]")


ONE_ITEM = DatasetSpec("one_item", "one_item", unique_access_pct=0.0002)
HIGH_HOT = DatasetSpec("high_hot", "zipf", 4.05, top10_coverage=0.68)
MED_HOT = DatasetSpec("med_hot", "zipf", 20.50, top10_coverage=0.45)
LOW_HOT = DatasetSpec("low_hot", "zipf", 46.21, top10_coverage=0.22)
RANDOM = DatasetSpec("random", "uniform", unique_access_pct=63.21)

#: Order used throughout the paper's figures (hotness decreasing).
HOTNESS_PRESETS = {
    spec.name: spec for spec in (ONE_ITEM, HIGH_HOT, MED_HOT, LOW_HOT, RANDOM)
}

#: The four datasets evaluated in the speedup figures (Fig. 12 onwards).
EVAL_PRESETS = ("high_hot", "med_hot", "low_hot", "random")

#: Heterogeneous table mixtures (Table VII): dataset name -> table count.
TABLE_MIXES = {
    "Mix1": {"high_hot": 100, "med_hot": 75, "low_hot": 50, "random": 25},
    "Mix2": {"high_hot": 62, "med_hot": 63, "low_hot": 63, "random": 62},
    "Mix3": {"high_hot": 25, "med_hot": 50, "low_hot": 75, "random": 100},
}
