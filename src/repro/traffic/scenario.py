"""Non-stationary request scenarios: diurnal, bursty, flash, drifting.

Every workload the serving layer saw before this module was a
stationary Poisson stream — the regime where batching decisions are
easy.  Production recommendation traffic is not stationary: it swings
with the day (diurnal), switches between calm and bursty regimes,
spikes when an item goes viral, and drifts in embedding popularity
(Gupta et al., HPCA 2020; Hsia et al., IISWC 2020).  This module
describes those shapes declaratively and generates seeded,
bit-reproducible arrival streams from them.

A :class:`ScenarioSpec` subclass fixes the *intensity function*
``rate(t)`` and a phase labelling ``phase_at(t)`` (the per-phase
breakdown every report uses).  Generation is Lewis–Shedler thinning of
a dominating homogeneous Poisson process at ``peak_rate()``, which is
exact for any bounded intensity and deterministic for a fixed seed.
The MMPP scenario first samples its regime path (exponential holding
times), then fills each regime segment — also exact.

The output is a :class:`ScenarioTrace`: flat numpy arrays of arrival
times and phase ids plus phase wall-clock durations, the structural
contract :func:`repro.core.serving.serve_stream` and the fleet router
consume.  :func:`iter_arrivals` offers the same stream as a lazy
iterator of ``(time, phase)`` pairs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, NamedTuple

import numpy as np

#: Chunk size for vectorized thinning draws (generation detail; changing
#: it changes the draw order and therefore the streams of a given seed).
_CHUNK = 4096

#: Grid resolution for integrating phase wall-clock durations.
_PHASE_GRID = 4096


class Arrival(NamedTuple):
    """One request: arrival time (seconds) and its phase label."""

    t: float
    phase: str


@dataclass(frozen=True)
class ScenarioTrace:
    """A materialized arrival stream: the serving layer's input contract.

    ``times`` is sorted; ``phase_ids[i]`` indexes ``phases``;
    ``phase_durations[p]`` is the wall-clock time phase ``p`` was
    active (used for per-phase goodput).
    """

    name: str
    times: np.ndarray
    phase_ids: np.ndarray
    phases: tuple[str, ...]
    phase_durations: tuple[float, ...]
    duration_s: float

    def __post_init__(self) -> None:
        if len(self.times) != len(self.phase_ids):
            raise ValueError("times and phase_ids must align")
        if len(self.phases) != len(self.phase_durations):
            raise ValueError("phases and phase_durations must align")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    @property
    def n_arrivals(self) -> int:
        return len(self.times)

    @property
    def mean_qps(self) -> float:
        return self.n_arrivals / self.duration_s if self.duration_s else 0.0

    def fingerprint(self) -> str:
        """Content hash of the exact stream (reproducibility checks)."""
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self.times).tobytes())
        digest.update(
            np.ascontiguousarray(self.phase_ids, dtype=np.int64).tobytes()
        )
        digest.update("|".join(self.phases).encode())
        return digest.hexdigest()


@dataclass(frozen=True)
class ScenarioSpec:
    """Base class: a deterministic-intensity (NHPP) scenario.

    Subclasses define ``rate(t)`` (vectorized over numpy arrays),
    ``phase_at(t)`` (vectorized phase-index labelling), ``phases`` and
    ``peak_rate()``.  ``sample(seed)`` — thinning against the peak
    rate — is shared.
    """

    base_qps: float = 1000.0
    duration_s: float = 10.0

    def __post_init__(self) -> None:
        if self.base_qps <= 0:
            raise ValueError("base_qps must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    # -- shape contract -------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.kind}@{self.base_qps:g}qps"

    @property
    def kind(self) -> str:
        return "poisson"

    @property
    def phases(self) -> tuple[str, ...]:
        return ("steady",)

    def rate(self, t: np.ndarray) -> np.ndarray:
        """Instantaneous arrival intensity (QPS) at time ``t``."""
        return np.full_like(np.asarray(t, dtype=float), self.base_qps)

    def phase_at(self, t: np.ndarray) -> np.ndarray:
        """Phase index active at time ``t``."""
        return np.zeros(np.shape(t), dtype=np.int64)

    def peak_rate(self) -> float:
        """A bound on ``rate`` over the run (thinning envelope)."""
        return self.base_qps

    # -- generation -----------------------------------------------------
    def sample(self, seed: int = 0) -> ScenarioTrace:
        """Draw one seeded, bit-reproducible arrival stream."""
        rng = np.random.default_rng(seed)
        times = _thinned_arrivals(
            self.rate, self.peak_rate(), self.duration_s, rng
        )
        return ScenarioTrace(
            name=self.name,
            times=times,
            phase_ids=self.phase_at(times),
            phases=self.phases,
            phase_durations=self._phase_durations(),
            duration_s=self.duration_s,
        )

    def _phase_durations(self) -> tuple[float, ...]:
        grid = (np.arange(_PHASE_GRID) + 0.5) * (self.duration_s / _PHASE_GRID)
        ids = self.phase_at(grid)
        dt = self.duration_s / _PHASE_GRID
        return tuple(
            float(np.count_nonzero(ids == p) * dt)
            for p in range(len(self.phases))
        )


def _thinned_arrivals(
    rate_fn, peak: float, duration: float, rng: np.random.Generator
) -> np.ndarray:
    """Lewis–Shedler thinning of a dominating Poisson(peak) process."""
    out = []
    t = 0.0
    while t < duration:
        gaps = rng.exponential(1.0 / peak, size=_CHUNK)
        accept_u = rng.random(_CHUNK)
        candidates = t + np.cumsum(gaps)
        rates = np.asarray(rate_fn(candidates), dtype=float)
        if np.any(rates > peak * (1 + 1e-9)):
            raise ValueError("peak_rate() does not bound rate()")
        keep = (candidates < duration) & (accept_u * peak < rates)
        out.append(candidates[keep])
        t = float(candidates[-1])
    return np.concatenate(out) if out else np.empty(0)


@dataclass(frozen=True)
class StationarySpec(ScenarioSpec):
    """Stationary Poisson traffic — the baseline every scenario extends."""


@dataclass(frozen=True)
class DiurnalSpec(ScenarioSpec):
    """Day-shaped load: a sinusoid around the base rate.

    ``rate(t) = base * (1 + amplitude * sin(2*pi*(t/period) + phase0))``.
    Phases label the thirds of the swing: ``peak`` / ``shoulder`` /
    ``trough``.
    """

    amplitude: float = 0.6
    period_s: float | None = None  # None -> one full cycle over the run
    phase0: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.amplitude < 1.0:
            raise ValueError("amplitude must be in (0, 1)")
        if self.period_s is not None and self.period_s <= 0:
            raise ValueError("period_s must be positive")

    @property
    def kind(self) -> str:
        return "diurnal"

    @property
    def phases(self) -> tuple[str, ...]:
        return ("trough", "shoulder", "peak")

    def _period(self) -> float:
        return self.period_s if self.period_s is not None else self.duration_s

    def _swing(self, t: np.ndarray) -> np.ndarray:
        angle = 2.0 * np.pi * np.asarray(t, dtype=float) / self._period()
        return np.sin(angle + self.phase0)

    def rate(self, t: np.ndarray) -> np.ndarray:
        return self.base_qps * (1.0 + self.amplitude * self._swing(t))

    def phase_at(self, t: np.ndarray) -> np.ndarray:
        swing = self._swing(t)
        return np.where(
            swing > 1.0 / 3.0, 2, np.where(swing < -1.0 / 3.0, 0, 1)
        ).astype(np.int64)

    def peak_rate(self) -> float:
        return self.base_qps * (1.0 + self.amplitude)


@dataclass(frozen=True)
class FlashCrowdSpec(ScenarioSpec):
    """A flash crowd: baseline, a sharp ramp to ``magnitude`` x base,
    then exponential decay back toward baseline.

    Phases: ``pre`` (before the spike hits), ``spike`` (ramp plus one
    decay constant — the overload window), ``recovery`` (the tail).
    """

    spike_at_s: float = 4.0
    magnitude: float = 8.0
    ramp_s: float = 0.5
    decay_s: float = 1.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.spike_at_s < self.duration_s:
            raise ValueError("spike_at_s must fall inside the run")
        if self.magnitude <= 1.0:
            raise ValueError("magnitude must exceed 1 (it multiplies base)")
        if self.ramp_s <= 0 or self.decay_s <= 0:
            raise ValueError("ramp_s and decay_s must be positive")

    @property
    def kind(self) -> str:
        return "flash"

    @property
    def phases(self) -> tuple[str, ...]:
        return ("pre", "spike", "recovery")

    def rate(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        since = t - self.spike_at_s
        ramp = np.clip(since / self.ramp_s, 0.0, 1.0)
        decay = np.where(
            since > self.ramp_s,
            np.exp(-(since - self.ramp_s) / self.decay_s),
            1.0,
        )
        shape = np.where(since < 0.0, 0.0, ramp * decay)
        return self.base_qps * (1.0 + (self.magnitude - 1.0) * shape)

    def phase_at(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        spike_end = self.spike_at_s + self.ramp_s + self.decay_s
        return np.where(
            t < self.spike_at_s, 0, np.where(t < spike_end, 1, 2)
        ).astype(np.int64)

    def peak_rate(self) -> float:
        return self.base_qps * self.magnitude


@dataclass(frozen=True)
class MMPPSpec(ScenarioSpec):
    """Markov-modulated Poisson traffic: calm/burst regime switching.

    A two-state MMPP: exponential holding times in a ``calm`` regime at
    ``base_qps`` and a ``burst`` regime at ``burst_multiplier * base``.
    The regime path is part of the seeded sample, so two draws with one
    seed share bursts bit for bit.
    """

    burst_multiplier: float = 5.0
    mean_calm_s: float = 2.0
    mean_burst_s: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_multiplier <= 1.0:
            raise ValueError("burst_multiplier must exceed 1")
        if self.mean_calm_s <= 0 or self.mean_burst_s <= 0:
            raise ValueError("mean regime holding times must be positive")

    @property
    def kind(self) -> str:
        return "mmpp"

    @property
    def phases(self) -> tuple[str, ...]:
        return ("calm", "burst")

    def peak_rate(self) -> float:
        return self.base_qps * self.burst_multiplier

    def sample(self, seed: int = 0) -> ScenarioTrace:
        rng = np.random.default_rng(seed)
        rate_of = (self.base_qps, self.base_qps * self.burst_multiplier)
        mean_of = (self.mean_calm_s, self.mean_burst_s)
        segments = []  # (start, end, state)
        t, state = 0.0, 0  # runs start calm
        while t < self.duration_s:
            hold = float(rng.exponential(mean_of[state]))
            segments.append((t, min(t + hold, self.duration_s), state))
            t += hold
            state = 1 - state
        times, ids, spans = [], [], [0.0, 0.0]
        for start, end, state in segments:
            spans[state] += end - start
            seg = start + np.cumsum(rng.exponential(
                1.0 / rate_of[state],
                size=max(16, int(3 * rate_of[state] * (end - start)) + 16),
            ))
            while seg[-1] < end:  # rare: undershot the segment, extend
                seg = np.concatenate([seg, seg[-1] + np.cumsum(
                    rng.exponential(1.0 / rate_of[state], size=64)
                )])
            seg = seg[seg < end]
            times.append(seg)
            ids.append(np.full(len(seg), state, dtype=np.int64))
        return ScenarioTrace(
            name=self.name,
            times=np.concatenate(times) if times else np.empty(0),
            phase_ids=np.concatenate(ids) if ids else
            np.empty(0, dtype=np.int64),
            phases=self.phases,
            phase_durations=(spans[0], spans[1]),
            duration_s=self.duration_s,
        )


@dataclass(frozen=True)
class DriftSpec(ScenarioSpec):
    """Stationary arrivals over *drifting* embedding popularity.

    The arrival process stays Poisson at ``base_qps``; what changes is
    the workload underneath: the run is split into ``n_phases`` equal
    windows and the embedding access pattern drifts by
    ``drift_per_phase`` between consecutive windows (the
    :class:`repro.core.drift.DriftModel` popularity migration).  Serving
    consumers attach one batch-latency curve per phase — see
    :func:`repro.traffic.serve.drift_phase_factors` — so pinned-cache
    degradation shows up as per-phase tail growth.
    """

    n_phases: int = 4
    drift_per_phase: float = 0.15

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_phases < 1:
            raise ValueError("n_phases must be >= 1")
        if not 0.0 <= self.drift_per_phase <= 1.0:
            raise ValueError("drift_per_phase must be in [0, 1]")

    @property
    def kind(self) -> str:
        return "drift"

    @property
    def phases(self) -> tuple[str, ...]:
        return tuple(f"drift{k}" for k in range(self.n_phases))

    def phase_at(self, t: np.ndarray) -> np.ndarray:
        span = self.duration_s / self.n_phases
        ids = np.asarray(t, dtype=float) // span
        return np.clip(ids, 0, self.n_phases - 1).astype(np.int64)


# ----------------------------------------------------------------------
# the single seeded entry points
# ----------------------------------------------------------------------
def derive_seed(seed: int, label: str) -> int:
    """A stable sub-seed for ``label`` under a run-level ``seed``.

    Multi-stream consumers (one arrival stream per tenant in a model
    zoo, one per replica group, ...) need streams that are mutually
    independent yet bit-reproducible from one run seed.  Hashing the
    label keeps the derivation order-free: adding a tenant to a zoo
    never perturbs the streams of the tenants already there.
    """
    digest = hashlib.sha256(f"{seed}|{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def generate_arrivals(spec: ScenarioSpec, seed: int = 0) -> ScenarioTrace:
    """Materialize one seeded arrival stream for a scenario."""
    return spec.sample(seed)


def iter_arrivals(spec: ScenarioSpec, seed: int = 0) -> Iterator[Arrival]:
    """The same stream as a lazy iterator of ``(time, phase)`` pairs."""
    trace = generate_arrivals(spec, seed)
    for t, pid in zip(trace.times, trace.phase_ids):
        yield Arrival(float(t), trace.phases[int(pid)])


#: profile name -> spec factory with representative shape defaults.
SCENARIO_PROFILES = ("poisson", "diurnal", "flash", "mmpp", "drift")


def scenario_profile(
    profile: str, *, base_qps: float = 2000.0, duration_s: float = 20.0
) -> ScenarioSpec:
    """A named scenario with representative shape parameters.

    The shapes scale with ``duration_s`` (one diurnal cycle per run,
    flash crowd at 40% of the run, ...) so one profile name means the
    same *story* at any length.
    """
    if profile == "poisson":
        return StationarySpec(base_qps=base_qps, duration_s=duration_s)
    if profile == "diurnal":
        return DiurnalSpec(
            base_qps=base_qps, duration_s=duration_s, amplitude=0.7,
        )
    if profile == "flash":
        return FlashCrowdSpec(
            base_qps=base_qps,
            duration_s=duration_s,
            spike_at_s=0.4 * duration_s,
            magnitude=8.0,
            ramp_s=0.04 * duration_s,
            decay_s=0.1 * duration_s,
        )
    if profile == "mmpp":
        return MMPPSpec(
            base_qps=base_qps,
            duration_s=duration_s,
            burst_multiplier=5.0,
            mean_calm_s=duration_s / 8.0,
            mean_burst_s=duration_s / 16.0,
        )
    if profile == "drift":
        return DriftSpec(
            base_qps=base_qps, duration_s=duration_s,
            n_phases=4, drift_per_phase=0.15,
        )
    known = ", ".join(SCENARIO_PROFILES)
    raise ValueError(f"unknown scenario profile {profile!r}; known: {known}")
