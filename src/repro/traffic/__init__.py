"""Non-stationary traffic scenarios and their serving entry points.

Describe a traffic shape declaratively (:class:`DiurnalSpec`,
:class:`FlashCrowdSpec`, :class:`MMPPSpec`, :class:`DriftSpec`, or the
:func:`scenario_profile` presets), sample a seeded bit-reproducible
arrival stream from it, and play it against the continuous-batching
single-GPU server or the routed fleet simulator.
"""

from repro.traffic.scenario import (
    SCENARIO_PROFILES,
    Arrival,
    DiurnalSpec,
    DriftSpec,
    FlashCrowdSpec,
    MMPPSpec,
    ScenarioSpec,
    ScenarioTrace,
    StationarySpec,
    derive_seed,
    generate_arrivals,
    iter_arrivals,
    scenario_profile,
)
from repro.traffic.serve import (
    MemstoreDriftProfile,
    drift_phase_factors,
    memstore_drift_profile,
    scaled_latency_models,
    simulate_fleet_scenario,
    simulate_scenario_serving,
)

__all__ = [
    "SCENARIO_PROFILES",
    "Arrival",
    "DiurnalSpec",
    "DriftSpec",
    "FlashCrowdSpec",
    "MMPPSpec",
    "MemstoreDriftProfile",
    "ScenarioSpec",
    "ScenarioTrace",
    "StationarySpec",
    "derive_seed",
    "drift_phase_factors",
    "generate_arrivals",
    "iter_arrivals",
    "memstore_drift_profile",
    "scaled_latency_models",
    "scenario_profile",
    "simulate_fleet_scenario",
    "simulate_scenario_serving",
]
