"""Serve scenario streams: single GPU and routed fleet entry points.

This is the orchestration layer between :mod:`repro.traffic.scenario`
(what arrives when) and the serving engines (what happens to it): one
call generates a seeded stream and plays it against the
continuous-batching event loop in :mod:`repro.core.serving` or the
routed fleet simulator in :mod:`repro.fleet.router`.

It also owns the drift-scenario calibration: a :class:`DriftSpec`
changes the *workload* under the server, not the arrivals, so its
phases need one batch-latency curve each.  :func:`drift_phase_factors`
measures how much the kernel slows down as popularity drifts away from
the pinned working set (re-using :class:`repro.core.drift.DriftModel`
and the memoized kernel simulator), and :func:`scaled_latency_models`
turns a base curve plus those factors into the per-phase models the
serving layer accepts.  :func:`memstore_drift_profile` is the tiered
counterpart: the table sits behind an HBM⇄host embedding store, and
each phase yields both a latency factor (kernel + host-fetch time) and
the cache's hit rate — optionally under a periodic cache-refresh
policy, so reports show hit-rate decay and recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.config.gpu import A100_SXM4_80GB, GpuSpec
from repro.config.model import PAPER_MODEL, DLRMConfig
from repro.config.scale import SimScale
from repro.core.drift import DriftModel
from repro.core.embedding import kernel_workload, run_table_kernel
from repro.core.schemes import L2P_OPTMT, Scheme
from repro.core.serving import (
    BatchingPolicy,
    ContinuousBatching,
    LatencyModel,
    StreamReport,
    serve_stream,
)
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.fleet.report import FleetReport
from repro.fleet.router import RoutingPolicy, simulate_fleet_stream
from repro.fleet.topology import FleetSpec
from repro.kernels.pinning import pinnable_rows
from repro.memstore.policy import popular_rows
from repro.memstore.store import EmbeddingStore, HostLink, TierPlan
from repro.traffic.scenario import (
    DriftSpec,
    ScenarioSpec,
    ScenarioTrace,
    generate_arrivals,
)


def simulate_scenario_serving(
    spec: ScenarioSpec | ScenarioTrace,
    latency_ms: LatencyModel | Sequence[LatencyModel]
                | Mapping[str, LatencyModel],
    *,
    policy: BatchingPolicy | ContinuousBatching | None = None,
    sla_ms: float | None = None,
    scheme_name: str = "scheme",
    seed: int = 0,
    phase_hit_rates: Sequence[float] | None = None,
) -> StreamReport:
    """One GPU serving one scenario; per-phase p50/p99/goodput.

    ``spec`` may be a scenario (sampled here with ``seed``) or an
    already-generated :class:`ScenarioTrace` when several policies
    should face the *identical* stream.  ``phase_hit_rates`` (e.g. from
    :func:`memstore_drift_profile`) lands in the per-phase stats.
    """
    trace = (
        spec if isinstance(spec, ScenarioTrace)
        else generate_arrivals(spec, seed)
    )
    return serve_stream(
        latency_ms, trace, policy=policy, sla_ms=sla_ms,
        scheme_name=scheme_name, phase_hit_rates=phase_hit_rates,
    )


def simulate_fleet_scenario(
    fleet: FleetSpec,
    latency_models: Mapping[str, LatencyModel],
    spec: ScenarioSpec | ScenarioTrace,
    *,
    policy: str | RoutingPolicy = "jsq",
    sla_ms: float | None = None,
    seed: int = 0,
    phase_hit_rates: Sequence[float] | None = None,
) -> FleetReport:
    """A routed fleet serving one scenario; per-phase fleet breakdown.

    The routing ``seed`` also seeds the arrival stream when ``spec`` is
    a scenario, so a (fleet, policy, seed) triple is fully reproducible.
    """
    trace = (
        spec if isinstance(spec, ScenarioTrace)
        else generate_arrivals(spec, seed)
    )
    return simulate_fleet_stream(
        fleet, latency_models, trace, policy=policy, sla_ms=sla_ms,
        seed=seed, phase_hit_rates=phase_hit_rates,
    )


def drift_phase_factors(
    spec: DriftSpec,
    *,
    dataset: str = "med_hot",
    scheme: Scheme = L2P_OPTMT,
    gpu: GpuSpec = A100_SXM4_80GB,
    model: DLRMConfig = PAPER_MODEL,
    num_sms: int = 2,
    seed: int = 0,
) -> tuple[float, ...]:
    """Kernel-time degradation per drift phase, relative to phase 0.

    Mirrors the paper's Section IV-C concern: rows are pinned once
    against the phase-0 popularity profile, then the access pattern
    drifts away from the pinned set phase by phase and the kernel slows
    down.  Factors are measured on the (memoized) kernel simulator, so
    repeated calibrations are nearly free.
    """
    workload = kernel_workload(
        gpu, model, SimScale(name=f"drift{num_sms}", num_sms=num_sms)
    )
    dataset_spec = HOTNESS_PRESETS[dataset]
    base_trace = generate_trace(
        dataset_spec,
        batch_size=workload.batch_size,
        pooling_factor=workload.pooling_factor,
        table_rows=workload.table_rows,
        seed=seed,
    )
    hot_rows = popular_rows(base_trace, pinnable_rows(
        workload.gpu.l2_set_aside_bytes, workload.row_bytes
    )) if scheme.l2_pinning else None
    drift = DriftModel(drift_per_batch=spec.drift_per_phase, seed=seed)
    times = []
    for phase in range(spec.n_phases):
        result = run_table_kernel(
            workload, dataset_spec, scheme,
            trace=drift.apply(base_trace, phase),
            hot_rows=hot_rows, seed=seed,
        )
        times.append(result.kernel_time_us)
    return tuple(t / times[0] for t in times)


def scaled_latency_models(
    base_model: LatencyModel, factors: Sequence[float]
) -> list[LatencyModel]:
    """One latency curve per phase: the base curve scaled per factor."""

    def scaled(factor: float) -> LatencyModel:
        return lambda batch: base_model(batch) * factor

    return [scaled(float(f)) for f in factors]


@dataclass(frozen=True)
class MemstoreDriftProfile:
    """Per-phase tiered-serving calibration under popularity drift.

    ``factors`` multiply the phase-0 batch latency (kernel time *plus*
    host-fetch time, so misses show up in the tail); ``hit_rates`` are
    the HBM-cache hit rates the serving reports thread through
    per-phase; ``refreshed`` marks phases where the cache-refresh
    policy re-warmed the hot set.
    """

    factors: tuple[float, ...]
    hit_rates: tuple[float, ...]
    refreshed: tuple[bool, ...]


def memstore_drift_profile(
    spec: DriftSpec,
    *,
    dataset: str = "med_hot",
    scheme: Scheme = L2P_OPTMT,
    gpu: GpuSpec = A100_SXM4_80GB,
    model: DLRMConfig = PAPER_MODEL,
    hbm_fraction: float = 0.1,
    cache_policy: str = "static_hot",
    refresh_every: int | None = None,
    num_sms: int = 2,
    seed: int = 0,
) -> MemstoreDriftProfile:
    """Tiered drift calibration: latency factors + hit rates per phase.

    The table sits behind an HBM⇄host :class:`EmbeddingStore` holding
    ``hbm_fraction`` of its rows, warmed (and L2-pinned, if the scheme
    pins) against the phase-0 popularity profile.  As the access
    pattern drifts phase by phase, hits decay and host fetches grow.
    ``refresh_every=k`` re-warms the cache — and re-profiles the pinned
    rows — every ``k`` phases from the *previous* phase's pattern (the
    online view), which is what makes hit rate recover.
    """
    workload = kernel_workload(
        gpu, model, SimScale(name=f"memdrift{num_sms}", num_sms=num_sms)
    )
    dataset_spec = HOTNESS_PRESETS[dataset]
    base_trace = generate_trace(
        dataset_spec,
        batch_size=workload.batch_size,
        pooling_factor=workload.pooling_factor,
        table_rows=workload.table_rows,
        seed=seed,
    )
    k_pin = pinnable_rows(
        workload.gpu.l2_set_aside_bytes, workload.row_bytes
    ) if scheme.l2_pinning else 0
    pin_rows = popular_rows(base_trace, k_pin) if k_pin else None
    plan = TierPlan.from_fraction(
        workload.table_rows, workload.row_bytes, hbm_fraction,
        policy=cache_policy,
    )
    link = HostLink.pcie(workload.full_gpu).scaled(workload.factor)
    store = EmbeddingStore(
        plan, link, hot_rows=popular_rows(base_trace, plan.resident_rows)
    )
    drift = DriftModel(drift_per_batch=spec.drift_per_phase, seed=seed)

    times, rates, refreshed = [], [], []
    for phase in range(spec.n_phases):
        trace = drift.apply(base_trace, phase)
        did_refresh = (
            refresh_every is not None
            and phase > 0 and phase % refresh_every == 0
        )
        if did_refresh:
            # refresh from the *previous* phase's pattern (online view)
            previous = drift.apply(base_trace, phase - 1)
            store.reset()
            store.warm(popular_rows(previous, plan.resident_rows))
            if pin_rows is not None:
                pin_rows = popular_rows(previous, k_pin)
        result = run_table_kernel(
            workload, dataset_spec, scheme,
            trace=trace, hot_rows=pin_rows, seed=seed, store=store,
        )
        times.append(result.total_time_us)
        rates.append(result.tier_stats.hit_rate)
        refreshed.append(did_refresh)
    return MemstoreDriftProfile(
        factors=tuple(t / times[0] for t in times),
        hit_rates=tuple(rates),
        refreshed=tuple(refreshed),
    )
