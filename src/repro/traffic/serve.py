"""Serve scenario streams: single GPU and routed fleet entry points.

This is the orchestration layer between :mod:`repro.traffic.scenario`
(what arrives when) and the serving engines (what happens to it): one
call generates a seeded stream and plays it against the
continuous-batching event loop in :mod:`repro.core.serving` or the
routed fleet simulator in :mod:`repro.fleet.router`.

It also owns the drift-scenario calibration: a :class:`DriftSpec`
changes the *workload* under the server, not the arrivals, so its
phases need one batch-latency curve each.  :func:`drift_phase_factors`
measures how much the kernel slows down as popularity drifts away from
the pinned working set (re-using :class:`repro.core.drift.DriftModel`
and the memoized kernel simulator), and :func:`scaled_latency_models`
turns a base curve plus those factors into the per-phase models the
serving layer accepts.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.config.gpu import A100_SXM4_80GB, GpuSpec
from repro.config.model import PAPER_MODEL, DLRMConfig
from repro.config.scale import SimScale
from repro.core.drift import DriftModel
from repro.core.embedding import kernel_workload, run_table_kernel
from repro.core.schemes import L2P_OPTMT, Scheme
from repro.core.serving import (
    BatchingPolicy,
    ContinuousBatching,
    LatencyModel,
    StreamReport,
    serve_stream,
)
from repro.datasets.analysis import top_hot_rows
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.fleet.report import FleetReport
from repro.fleet.router import RoutingPolicy, simulate_fleet_stream
from repro.fleet.topology import FleetSpec
from repro.kernels.pinning import pinnable_rows
from repro.traffic.scenario import (
    DriftSpec,
    ScenarioSpec,
    ScenarioTrace,
    generate_arrivals,
)


def simulate_scenario_serving(
    spec: ScenarioSpec | ScenarioTrace,
    latency_ms: LatencyModel | Sequence[LatencyModel]
                | Mapping[str, LatencyModel],
    *,
    policy: BatchingPolicy | ContinuousBatching | None = None,
    sla_ms: float | None = None,
    scheme_name: str = "scheme",
    seed: int = 0,
) -> StreamReport:
    """One GPU serving one scenario; per-phase p50/p99/goodput.

    ``spec`` may be a scenario (sampled here with ``seed``) or an
    already-generated :class:`ScenarioTrace` when several policies
    should face the *identical* stream.
    """
    trace = (
        spec if isinstance(spec, ScenarioTrace)
        else generate_arrivals(spec, seed)
    )
    return serve_stream(
        latency_ms, trace, policy=policy, sla_ms=sla_ms,
        scheme_name=scheme_name,
    )


def simulate_fleet_scenario(
    fleet: FleetSpec,
    latency_models: Mapping[str, LatencyModel],
    spec: ScenarioSpec | ScenarioTrace,
    *,
    policy: str | RoutingPolicy = "jsq",
    sla_ms: float | None = None,
    seed: int = 0,
) -> FleetReport:
    """A routed fleet serving one scenario; per-phase fleet breakdown.

    The routing ``seed`` also seeds the arrival stream when ``spec`` is
    a scenario, so a (fleet, policy, seed) triple is fully reproducible.
    """
    trace = (
        spec if isinstance(spec, ScenarioTrace)
        else generate_arrivals(spec, seed)
    )
    return simulate_fleet_stream(
        fleet, latency_models, trace, policy=policy, sla_ms=sla_ms,
        seed=seed,
    )


def drift_phase_factors(
    spec: DriftSpec,
    *,
    dataset: str = "med_hot",
    scheme: Scheme = L2P_OPTMT,
    gpu: GpuSpec = A100_SXM4_80GB,
    model: DLRMConfig = PAPER_MODEL,
    num_sms: int = 2,
    seed: int = 0,
) -> tuple[float, ...]:
    """Kernel-time degradation per drift phase, relative to phase 0.

    Mirrors the paper's Section IV-C concern: rows are pinned once
    against the phase-0 popularity profile, then the access pattern
    drifts away from the pinned set phase by phase and the kernel slows
    down.  Factors are measured on the (memoized) kernel simulator, so
    repeated calibrations are nearly free.
    """
    workload = kernel_workload(
        gpu, model, SimScale(name=f"drift{num_sms}", num_sms=num_sms)
    )
    dataset_spec = HOTNESS_PRESETS[dataset]
    base_trace = generate_trace(
        dataset_spec,
        batch_size=workload.batch_size,
        pooling_factor=workload.pooling_factor,
        table_rows=workload.table_rows,
        seed=seed,
    )
    hot_rows = top_hot_rows(base_trace, pinnable_rows(
        workload.gpu.l2_set_aside_bytes, workload.row_bytes
    )) if scheme.l2_pinning else None
    drift = DriftModel(drift_per_batch=spec.drift_per_phase, seed=seed)
    times = []
    for phase in range(spec.n_phases):
        result = run_table_kernel(
            workload, dataset_spec, scheme,
            trace=drift.apply(base_trace, phase),
            hot_rows=hot_rows, seed=seed,
        )
        times.append(result.kernel_time_us)
    return tuple(t / times[0] for t in times)


def scaled_latency_models(
    base_model: LatencyModel, factors: Sequence[float]
) -> list[LatencyModel]:
    """One latency curve per phase: the base curve scaled per factor."""

    def scaled(factor: float) -> LatencyModel:
        return lambda batch: base_model(batch) * factor

    return [scaled(float(f)) for f in factors]
