"""Inference serving model: arrivals, batching, tail latency.

The paper's motivation is SLA-bound inference serving ("arriving
queries create batches, where each batch is expected to meet the SLA
target", Section III-A).  This module closes that loop with a single
discrete-event serving engine that consumes *arrival streams* — a
stationary Poisson process, or any non-stationary scenario produced by
:mod:`repro.traffic` (diurnal load, flash crowds, MMPP bursts,
popularity drift) — and batches them onto one GPU whose batch latency
comes from the simulated pipeline.

Two batch-formation disciplines are supported:

* :class:`BatchingPolicy` — the classic size-or-timeout batcher: a
  batch closes when ``max_batch`` queries wait or the oldest has waited
  ``timeout_ms``.  Easy to reason about under stationary load, but it
  taxes light traffic with the full timeout and keeps serving oversized
  batches deep into an overload.
* :class:`ContinuousBatching` — continuous (in-flight) batch formation:
  a new batch forms at dispatch time out of everything that has arrived
  by then, so the GPU never idles while work waits and light load
  degenerates to single-query batches with zero batching delay.  With
  ``sla_ms`` set, the batch size additionally adapts to SLA pressure
  (see the class docstring).

The executor's batch-latency function is pluggable; by default it
interpolates between measured batch sizes so one expensive simulation
sweep serves many load points.  Per-phase latency models (one curve per
scenario phase, e.g. under popularity drift) are accepted wherever a
single curve is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.telemetry.events import ArrivalBlock, BatchBlock, StreamRun
from repro.telemetry.sinks import Sink, emit_run

#: A batch-latency curve: batch size -> milliseconds.
LatencyModel = Callable[[int], float]

_PERCENTILE_FIELDS = {"p50": "p50_ms", "p95": "p95_ms", "p99": "p99_ms"}


def resolve_percentile_field(percentile: str) -> str:
    """Map a percentile name (``"p99"``) to its report field name.

    Raises ``ValueError`` for anything but the percentiles the reports
    actually carry — an unknown name must not silently pass an SLA
    check (or die with an obscure ``AttributeError``).
    """
    try:
        key = percentile.lower()
    except AttributeError:
        key = None
    field = _PERCENTILE_FIELDS.get(key)
    if field is None:
        known = ", ".join(_PERCENTILE_FIELDS)
        raise ValueError(
            f"unknown percentile {percentile!r}; known: {known}"
        )
    return field


@dataclass(frozen=True)
class BatchingPolicy:
    """Collect up to ``max_batch`` queries or wait at most ``timeout_ms``."""

    max_batch: int = 2048
    timeout_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.timeout_ms < 0:
            raise ValueError("timeout_ms must be >= 0")

    @property
    def label(self) -> str:
        return f"fixed(max={self.max_batch},timeout={self.timeout_ms:g}ms)"


@dataclass(frozen=True)
class ContinuousBatching:
    """Continuous (in-flight) batch formation with SLA-adaptive sizing.

    The batcher dispatches whenever the GPU is free and at least one
    query waits; the batch is whatever has arrived by dispatch time
    (capped at ``max_batch``), so queries join the forming batch right
    up to launch instead of waiting out a timeout.

    With ``sla_ms`` set, the batch size adapts to SLA pressure: the
    batcher picks the largest batch whose execution still lands the
    *oldest* queued query inside the SLA (larger batches amortize
    better but add execution time every rider pays).  Once the oldest
    query is past saving the batcher stops protecting it and drains at
    full width, maximizing goodput of the queries behind it.
    """

    max_batch: int = 2048
    sla_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.sla_ms is not None and self.sla_ms <= 0:
            raise ValueError("sla_ms must be positive when given")

    @property
    def label(self) -> str:
        sla = f",sla={self.sla_ms:g}ms" if self.sla_ms is not None else ""
        return f"continuous(max={self.max_batch}{sla})"


class ReportSlaMixin:
    """Shared SLA check over a report's ``p50_ms``/``p95_ms``/``p99_ms``.

    One implementation for every report class (serving, stream, fleet)
    so the percentile-name validation can never drift between them.
    """

    def meets_sla(self, sla_ms: float, percentile: str = "p99") -> bool:
        return getattr(self, resolve_percentile_field(percentile)) <= sla_ms


@dataclass(frozen=True)
class ServingReport(ReportSlaMixin):
    """Latency distribution of one simulated serving run."""

    scheme_name: str
    qps: float
    n_queries: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_batch_size: float
    gpu_utilization: float


@dataclass(frozen=True)
class PhaseStats:
    """Latency/goodput breakdown of one scenario phase.

    ``goodput_qps`` counts queries that completed within the SLA per
    second of phase wall time; with no SLA given every completion
    counts.  ``hit_rate`` is the phase's HBM-cache hit rate when the
    workload is served from a tiered embedding store (None otherwise) —
    this is how popularity-drift scenarios surface cache decay and
    refresh recovery per phase.
    """

    phase: str
    n_queries: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    goodput_qps: float
    sla_hit_pct: float
    hit_rate: float | None = None


def phase_breakdown(
    latencies_ms: np.ndarray,
    phase_ids: np.ndarray,
    phase_names: Sequence[str],
    phase_durations: Sequence[float],
    sla_ms: float | None,
    *,
    phase_hit_rates: Sequence[float] | None = None,
) -> tuple[PhaseStats, ...]:
    """Per-phase tails and goodput over per-query latencies.

    Shared by the single-GPU stream server and the routed fleet so the
    two per-phase reports can never drift apart.  Phases with no
    queries are omitted.  ``phase_hit_rates`` (indexed like
    ``phase_names``) attaches memstore HBM hit rates to the phases.
    """
    if phase_hit_rates is not None and \
            len(phase_hit_rates) != len(phase_names):
        raise ValueError(
            f"{len(phase_hit_rates)} hit rates for "
            f"{len(phase_names)} phases"
        )
    within = (
        latencies_ms <= sla_ms if sla_ms is not None
        else np.ones(len(latencies_ms), dtype=bool)
    )
    stats = []
    for pid, (name, span) in enumerate(zip(phase_names, phase_durations)):
        mask = phase_ids == pid
        count = int(mask.sum())
        if count == 0:
            continue
        lat = latencies_ms[mask]
        good = int(within[mask].sum())
        stats.append(PhaseStats(
            phase=name,
            n_queries=count,
            p50_ms=float(np.percentile(lat, 50)),
            p95_ms=float(np.percentile(lat, 95)),
            p99_ms=float(np.percentile(lat, 99)),
            goodput_qps=good / span if span > 0 else 0.0,
            sla_hit_pct=100.0 * good / count,
            hit_rate=(
                float(phase_hit_rates[pid])
                if phase_hit_rates is not None else None
            ),
        ))
    return tuple(stats)


def find_phase(
    phases: Sequence[PhaseStats], name: str
) -> PhaseStats:
    """Look up one phase's stats by name (shared report helper)."""
    for stats in phases:
        if stats.phase == name:
            return stats
    known = ", ".join(p.phase for p in phases)
    raise KeyError(f"no phase {name!r}; known: {known}")


@dataclass(frozen=True)
class StreamReport(ReportSlaMixin):
    """One serving run over an arrival stream, with per-phase detail.

    ``hit_rate`` is the query-weighted HBM-cache hit rate across phases
    when the run was served from a tiered embedding store.
    """

    scenario: str
    scheme_name: str
    batcher: str
    sla_ms: float | None
    n_queries: int
    duration_s: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    goodput_qps: float
    sla_hit_pct: float
    mean_batch_size: float
    gpu_utilization: float
    phases: tuple[PhaseStats, ...]
    hit_rate: float | None = None

    @property
    def offered_qps(self) -> float:
        return self.n_queries / self.duration_s if self.duration_s else 0.0

    def phase(self, name: str) -> PhaseStats:
        return find_phase(self.phases, name)


def interpolated_latency_model(
    batch_sizes: Sequence[int], latencies_ms: Sequence[float]
) -> Callable[[int], float]:
    """Piecewise-linear batch-latency model from measured points."""
    sizes = np.asarray(batch_sizes, dtype=float)
    lats = np.asarray(latencies_ms, dtype=float)
    if len(sizes) != len(lats) or len(sizes) < 1:
        raise ValueError("need matching, non-empty calibration points")
    order = np.argsort(sizes)
    sizes, lats = sizes[order], lats[order]

    def model(batch: int) -> float:
        return float(np.interp(batch, sizes, lats))

    return model


# ----------------------------------------------------------------------
# the event loop
# ----------------------------------------------------------------------
def _fits_within(exec_ms: LatencyModel, size: int, budget_ms: float) -> int:
    """Largest batch in [1, size] with ``exec_ms(batch) <= budget_ms``
    (0 if none).  Assumes ``exec_ms`` is non-decreasing, true of every
    calibrated curve."""
    if exec_ms(size) <= budget_ms:
        return size
    if exec_ms(1) > budget_ms:
        return 0
    lo, hi = 1, size  # invariant: exec(lo) fits, exec(hi) does not
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if exec_ms(mid) <= budget_ms:
            lo = mid
        else:
            hi = mid
    return lo


def _adaptive_batch(
    exec_ms: LatencyModel,
    queue_times: np.ndarray,
    start: float,
    max_batch: int,
    sla_ms: float,
) -> int:
    """Goodput-greedy batch sizing under SLA pressure.

    Among candidate batch sizes, pick the one completing the most
    queries *within the SLA* per second of GPU time; ties go to the
    larger batch (throughput).  The candidate ladder is geometric plus
    the two SLA-shaped sweet spots — the largest batch whose execution
    alone fits the SLA, and the largest whose execution fits the oldest
    query's remaining slack.  Under light pressure this degenerates to
    "take everything"; once the whole queue is past saving every
    candidate scores zero and the tie-break drains at full width, which
    maximizes goodput of the queries arriving behind the backlog.
    """
    waiting = min(len(queue_times), max_batch)
    if waiting <= 1:
        return waiting
    candidates = set()
    size = waiting
    while size >= 1:
        candidates.add(size)
        size //= 2
    slack_ms = sla_ms - (start - float(queue_times[0])) * 1e3
    for budget in (sla_ms, slack_ms):
        fit = _fits_within(exec_ms, waiting, budget)
        if fit:
            candidates.add(fit)
    best_size, best_key = waiting, (-1.0, -1.0)
    for size in sorted(candidates):
        exec_batch_ms = exec_ms(size)
        cutoff = start + (exec_batch_ms - sla_ms) / 1e3
        hits = size - int(
            np.searchsorted(queue_times[:size], cutoff, side="left")
        )
        # primary: in-SLA completions per GPU-millisecond; secondary:
        # raw throughput, which is what matters once nothing can be
        # saved and the backlog just needs to drain fastest
        key = (hits / exec_batch_ms, size / exec_batch_ms)
        if key > best_key:
            best_key, best_size = key, size
    return best_size


def _serve_arrays(
    times: np.ndarray,
    phase_ids: np.ndarray,
    exec_ms: Sequence[LatencyModel],
    policy: BatchingPolicy | ContinuousBatching,
) -> tuple[list[float], list[float], list[int]]:
    """Serve time-sorted arrivals on one GPU; the shared event loop.

    Returns the per-batch columns in dispatch order — start times
    (seconds), execution seconds, and sizes.  Everything the reports
    carry (per-query latencies, busy time, utilization) derives from
    these columns via the pure folds below, which is what lets a
    recorded run replay field-identical without re-running this loop.
    A batch's execution time comes from the latency model of its oldest
    query's phase (phases are long relative to batches, so mixed
    batches are rare and the approximation is second-order).
    """
    n = len(times)
    batch_starts: list[float] = []
    batch_exec: list[float] = []
    batch_sizes: list[int] = []
    continuous = isinstance(policy, ContinuousBatching)
    gpu_free = 0.0
    head = 0
    while head < n:
        first_t = times[head]
        if continuous:
            start = max(gpu_free, first_t)
            waiting = int(
                np.searchsorted(times[head:], start, side="right")
            )
            waiting = max(waiting, 1)
            if policy.sla_ms is not None:
                size = _adaptive_batch(
                    exec_ms[phase_ids[head]],
                    times[head:head + waiting], start,
                    policy.max_batch, policy.sla_ms,
                )
            else:
                size = min(waiting, policy.max_batch)
        else:
            # size-or-timeout: the batch closes when full, or at
            # max(oldest + timeout, gpu_free) — arrivals during the GPU's
            # busy period keep joining, exactly as a host-side queue would
            threshold = max(first_t + policy.timeout_ms / 1e3, gpu_free)
            waiting = int(
                np.searchsorted(times[head:], threshold, side="right")
            )
            waiting = max(waiting, 1)
            if waiting >= policy.max_batch:
                size = policy.max_batch
                start = max(times[head + size - 1], gpu_free)
            else:
                size = waiting
                start = threshold
        exec_s = exec_ms[phase_ids[head]](size) / 1e3
        gpu_free = start + exec_s
        batch_starts.append(float(start))
        batch_exec.append(exec_s)
        batch_sizes.append(size)
        head += size
    return batch_starts, batch_exec, batch_sizes


def _batch_latencies_ms(
    arrivals: ArrivalBlock, batches: BatchBlock
) -> tuple[np.ndarray, float, float]:
    """Shared fold core: (per-query latencies ms, busy s, gpu-idle-at s).

    ``done_at`` assigns each query its batch's completion time by
    repeating ``starts + exec_s`` per batch size — the identical IEEE
    operations the live loop performed, so the bits match.  ``busy`` is
    a sequential left-fold to mirror the loop's ``busy += exec_s``
    accumulation order (numpy's pairwise sum would differ in the last
    ulps).
    """
    done = batches.starts + batches.exec_s
    done_at = np.repeat(done, batches.sizes)
    latencies_ms = (done_at - arrivals.times) * 1e3
    busy = float(sum(batches.exec_s.tolist()))
    gpu_free = float(done[-1]) if len(done) else 0.0
    return latencies_ms, busy, gpu_free


def _resolve_phase_models(
    latency_ms: LatencyModel | Sequence[LatencyModel]
                | Mapping[str, LatencyModel],
    phases: Sequence[str],
) -> list[LatencyModel]:
    """One latency curve per phase, from a single curve, a sequence
    (indexed like ``phases``), or a mapping by phase name."""
    if callable(latency_ms):
        return [latency_ms] * len(phases)
    if isinstance(latency_ms, Mapping):
        missing = [p for p in phases if p not in latency_ms]
        if missing:
            raise KeyError(f"no latency model for phases {missing}")
        return [latency_ms[p] for p in phases]
    models = list(latency_ms)
    if len(models) != len(phases):
        raise ValueError(
            f"{len(models)} latency models for {len(phases)} phases"
        )
    return models


def fold_stream_report(run: StreamRun) -> StreamReport:
    """Pure fold: a recorded :class:`StreamRun` into its report.

    The live :func:`serve_stream` and the replay decoder both derive
    their reports through this one function, so a recorded run replays
    field-identical by construction — no simulator in sight.
    """
    meta = run.meta
    times = run.arrivals.times
    phase_ids = np.asarray(run.arrivals.phase_ids)
    phases = tuple(meta["phases"])
    sla_ms = meta["sla_ms"]
    duration_s = meta["duration_s"]
    hit_rates = meta.get("phase_hit_rates")
    latencies_ms, busy, gpu_free = _batch_latencies_ms(
        run.arrivals, run.batches
    )
    within = (
        latencies_ms <= sla_ms if sla_ms is not None
        else np.ones(len(times), dtype=bool)
    )
    phase_stats = phase_breakdown(
        latencies_ms, phase_ids, phases,
        tuple(meta["phase_durations"]), sla_ms,
        phase_hit_rates=hit_rates,
    )
    hit_rate = None
    if hit_rates is not None:
        # the stream is non-empty (serve_stream checked), counts >= 1
        counts = np.bincount(phase_ids, minlength=len(phases))
        rates = np.asarray(hit_rates, dtype=float)
        hit_rate = float((rates * counts).sum() / counts.sum())
    horizon = max(gpu_free, float(times[-1]), duration_s)
    return StreamReport(
        scenario=meta["scenario"],
        scheme_name=meta["scheme_name"],
        batcher=meta["batcher"],
        sla_ms=sla_ms,
        n_queries=len(times),
        duration_s=duration_s,
        p50_ms=float(np.percentile(latencies_ms, 50)),
        p95_ms=float(np.percentile(latencies_ms, 95)),
        p99_ms=float(np.percentile(latencies_ms, 99)),
        goodput_qps=float(within.sum()) / duration_s,
        sla_hit_pct=100.0 * float(within.sum()) / len(times),
        mean_batch_size=float(np.mean(run.batches.sizes)),
        gpu_utilization=float(busy / horizon) if horizon > 0 else 0.0,
        phases=phase_stats,
        hit_rate=hit_rate,
    )


def fold_serving_report(run: StreamRun) -> ServingReport:
    """Pure fold: a recorded Poisson run (``kind="serving"``) into its
    :class:`ServingReport`; shared by live simulation and replay."""
    meta = run.meta
    times = run.arrivals.times
    latencies_ms, busy, gpu_free = _batch_latencies_ms(
        run.arrivals, run.batches
    )
    horizon = max(gpu_free, float(times[-1]))
    return ServingReport(
        scheme_name=meta["scheme_name"],
        qps=meta["qps"],
        n_queries=len(times),
        p50_ms=float(np.percentile(latencies_ms, 50)),
        p95_ms=float(np.percentile(latencies_ms, 95)),
        p99_ms=float(np.percentile(latencies_ms, 99)),
        mean_batch_size=float(np.mean(run.batches.sizes)),
        gpu_utilization=float(busy / horizon) if horizon > 0 else 0.0,
    )


def _serve_stream_run(
    latency_ms: LatencyModel | Sequence[LatencyModel]
                | Mapping[str, LatencyModel],
    stream,
    *,
    policy: BatchingPolicy | ContinuousBatching | None = None,
    sla_ms: float | None = None,
    scheme_name: str = "scheme",
    phase_hit_rates: Sequence[float] | None = None,
    tenant: str | None = None,
) -> tuple[StreamReport, StreamRun]:
    """Run the event loop and package (report, run record)."""
    if len(stream.times) == 0:
        raise ValueError(f"arrival stream {stream.name!r} is empty")
    if stream.duration_s <= 0:
        raise ValueError(
            f"arrival stream {stream.name!r} needs a positive duration_s"
        )
    if policy is None:
        policy = ContinuousBatching(sla_ms=sla_ms)
    models = _resolve_phase_models(latency_ms, stream.phases)
    times = np.asarray(stream.times, dtype=float)
    phase_ids = np.asarray(stream.phase_ids)
    starts, exec_s, sizes = _serve_arrays(times, phase_ids, models, policy)
    phases = tuple(stream.phases)
    meta = {
        "kind": "stream",
        "scenario": stream.name,
        "scheme_name": scheme_name,
        "batcher": policy.label,
        "sla_ms": sla_ms,
        "duration_s": stream.duration_s,
        "phases": list(phases),
        "phase_durations": [float(d) for d in stream.phase_durations],
        "phase_hit_rates": (
            None if phase_hit_rates is None
            else [float(r) for r in phase_hit_rates]
        ),
    }
    if tenant is not None:
        meta["tenant"] = tenant
    run = StreamRun(
        meta=meta,
        arrivals=ArrivalBlock(
            times=times,
            phase_ids=np.asarray(phase_ids, dtype=np.int64),
            phases=phases,
        ),
        batches=BatchBlock(
            starts=np.asarray(starts, dtype=float),
            exec_s=np.asarray(exec_s, dtype=float),
            sizes=np.asarray(sizes, dtype=np.int64),
            phases=phases,
        ),
    )
    return fold_stream_report(run), run


def serve_stream(
    latency_ms: LatencyModel | Sequence[LatencyModel]
                | Mapping[str, LatencyModel],
    stream,
    *,
    policy: BatchingPolicy | ContinuousBatching | None = None,
    sla_ms: float | None = None,
    scheme_name: str = "scheme",
    phase_hit_rates: Sequence[float] | None = None,
    sink: Sink | None = None,
) -> StreamReport:
    """Serve one arrival stream on one GPU and report per-phase tails.

    ``stream`` is any object with the :class:`repro.traffic.ScenarioTrace`
    shape: ``name``, time-sorted ``times`` (seconds), ``phase_ids``,
    ``phases`` (names), ``phase_durations`` and ``duration_s``.  The
    default policy is :class:`ContinuousBatching` with its batch sizing
    adapted to ``sla_ms``.  ``phase_hit_rates`` (one HBM-cache hit rate
    per phase, from a tiered memstore calibration) is threaded into the
    per-phase stats and aggregated query-weighted into the report.

    The run's telemetry (arrival/batch blocks bracketed by
    ``run_start``/``run_end``) goes to ``sink``, falling back to the
    ambient default (:func:`repro.telemetry.sinks.use_sink`); with no
    sink installed nothing is emitted.
    """
    report, run = _serve_stream_run(
        latency_ms, stream, policy=policy, sla_ms=sla_ms,
        scheme_name=scheme_name, phase_hit_rates=phase_hit_rates,
    )
    emit_run(sink, run)
    return report


def _serve_tenant_stream_runs(
    latency_models: Mapping[str, LatencyModel | Sequence[LatencyModel]
                            | Mapping[str, LatencyModel]],
    streams: Mapping[str, object],
    *,
    policies: Mapping[str, BatchingPolicy | ContinuousBatching]
              | None = None,
    sla_ms: Mapping[str, float | None] | float | None = None,
    scheme_names: Mapping[str, str] | None = None,
    phase_hit_rates: Mapping[str, Sequence[float]] | None = None,
) -> tuple[dict[str, StreamReport], dict[str, StreamRun]]:
    """Per-tenant serves returning (reports, run records) by tenant."""
    missing = sorted(set(streams) - set(latency_models))
    if missing:
        raise KeyError(f"no latency model for tenants {missing}")
    reports: dict[str, StreamReport] = {}
    runs: dict[str, StreamRun] = {}
    for name in streams:
        sla = (
            sla_ms.get(name) if isinstance(sla_ms, Mapping) else sla_ms
        )
        reports[name], runs[name] = _serve_stream_run(
            latency_models[name],
            streams[name],
            policy=policies.get(name) if policies else None,
            sla_ms=sla,
            scheme_name=(
                scheme_names.get(name, name) if scheme_names else name
            ),
            phase_hit_rates=(
                phase_hit_rates.get(name) if phase_hit_rates else None
            ),
            tenant=name,
        )
    return reports, runs


def serve_tenant_streams(
    latency_models: Mapping[str, LatencyModel | Sequence[LatencyModel]
                            | Mapping[str, LatencyModel]],
    streams: Mapping[str, object],
    *,
    policies: Mapping[str, BatchingPolicy | ContinuousBatching]
              | None = None,
    sla_ms: Mapping[str, float | None] | float | None = None,
    scheme_names: Mapping[str, str] | None = None,
    phase_hit_rates: Mapping[str, Sequence[float]] | None = None,
    sink: Sink | None = None,
) -> dict[str, StreamReport]:
    """Serve several tenants' arrival streams, one report per tenant.

    Each tenant runs on its own (virtual) GPU timeline — the MPS-style
    concurrency model, where co-resident kernels execute simultaneously
    and contention arrives through the latency curves themselves (see
    :mod:`repro.tenancy.share`), not through queueing behind each
    other.  Every per-tenant argument is keyed by tenant name;
    ``sla_ms`` may also be a single number shared by all tenants.
    Each tenant's serve is *exactly* :func:`serve_stream` — a
    one-tenant call is field-identical to calling it directly.  Each
    tenant's run record is emitted to ``sink`` (or the ambient default)
    with ``meta["tenant"]`` set.
    """
    reports, runs = _serve_tenant_stream_runs(
        latency_models, streams, policies=policies, sla_ms=sla_ms,
        scheme_names=scheme_names, phase_hit_rates=phase_hit_rates,
    )
    for run in runs.values():
        emit_run(sink, run)
    return reports


def simulate_serving(
    batch_latency_ms: Callable[[int], float],
    *,
    qps: float,
    duration_s: float = 10.0,
    policy: BatchingPolicy | ContinuousBatching | None = None,
    scheme_name: str = "scheme",
    seed: int = 0,
    sink: Sink | None = None,
) -> ServingReport:
    """Discrete-event simulation of one GPU serving a Poisson stream.

    Queries arrive at ``qps`` and are batched by ``policy`` — the
    size-or-timeout :class:`BatchingPolicy` by default, or
    :class:`ContinuousBatching` — onto a GPU that serves batches back to
    back.  Query latency = queueing + batching wait + batch execution.
    Non-stationary arrival processes go through :func:`serve_stream`
    with a :mod:`repro.traffic` scenario instead.  The run's telemetry
    goes to ``sink`` (or the ambient default).
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    policy = policy or BatchingPolicy()
    rng = np.random.default_rng(seed)
    n = max(1, int(qps * duration_s))
    arrivals = np.cumsum(rng.exponential(1.0 / qps, size=n))

    phase_ids = np.zeros(n, dtype=np.int64)
    starts, exec_s, sizes = _serve_arrays(
        arrivals, phase_ids, [batch_latency_ms], policy
    )
    run = StreamRun(
        meta={
            "kind": "serving",
            "scheme_name": scheme_name,
            "qps": qps,
            "seed": seed,
            "batcher": policy.label,
        },
        arrivals=ArrivalBlock(
            times=arrivals, phase_ids=phase_ids, phases=("all",)
        ),
        batches=BatchBlock(
            starts=np.asarray(starts, dtype=float),
            exec_s=np.asarray(exec_s, dtype=float),
            sizes=np.asarray(sizes, dtype=np.int64),
            phases=("all",),
        ),
    )
    report = fold_serving_report(run)
    emit_run(sink, run)
    return report


def max_sustainable_qps(
    batch_latency_ms: Callable[[int], float],
    *,
    sla_ms: float,
    percentile: str = "p99",
    qps_grid: Sequence[float] = (500, 1000, 2000, 4000, 8000, 16000,
                                 32000, 64000),
    policy: BatchingPolicy | ContinuousBatching | None = None,
    scheme_name: str = "scheme",
    seed: int = 0,
) -> tuple[float, list[ServingReport]]:
    """Largest grid point whose tail latency meets the SLA."""
    best = 0.0
    reports = []
    for qps in qps_grid:
        report = simulate_serving(
            batch_latency_ms, qps=qps, policy=policy,
            scheme_name=scheme_name, seed=seed,
        )
        reports.append(report)
        if report.meets_sla(sla_ms, percentile):
            best = max(best, qps)
    return best, reports
