"""Inference serving model: arrivals, batching, tail latency.

The paper's motivation is SLA-bound inference serving ("arriving
queries create batches, where each batch is expected to meet the SLA
target", Section III-A).  This module closes that loop: a Poisson
arrival process, a size-or-timeout batching policy, and a single-GPU
executor whose batch latency comes from the simulated pipeline —
yielding the p50/p95/p99 query latencies and the maximum sustainable
load that serving papers (DeepRecSys et al., cited by the paper)
evaluate.

The executor's batch-latency function is pluggable; by default it
interpolates between measured batch sizes so one expensive simulation
sweep serves many load points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class BatchingPolicy:
    """Collect up to ``max_batch`` queries or wait at most ``timeout_ms``."""

    max_batch: int = 2048
    timeout_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.timeout_ms < 0:
            raise ValueError("timeout_ms must be >= 0")


@dataclass(frozen=True)
class ServingReport:
    """Latency distribution of one simulated serving run."""

    scheme_name: str
    qps: float
    n_queries: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_batch_size: float
    gpu_utilization: float

    def meets_sla(self, sla_ms: float, percentile: str = "p99") -> bool:
        return getattr(self, f"{percentile.lower()}_ms") <= sla_ms


def interpolated_latency_model(
    batch_sizes: Sequence[int], latencies_ms: Sequence[float]
) -> Callable[[int], float]:
    """Piecewise-linear batch-latency model from measured points."""
    sizes = np.asarray(batch_sizes, dtype=float)
    lats = np.asarray(latencies_ms, dtype=float)
    if len(sizes) != len(lats) or len(sizes) < 1:
        raise ValueError("need matching, non-empty calibration points")
    order = np.argsort(sizes)
    sizes, lats = sizes[order], lats[order]

    def model(batch: int) -> float:
        return float(np.interp(batch, sizes, lats))

    return model


def simulate_serving(
    batch_latency_ms: Callable[[int], float],
    *,
    qps: float,
    duration_s: float = 10.0,
    policy: BatchingPolicy | None = None,
    scheme_name: str = "scheme",
    seed: int = 0,
) -> ServingReport:
    """Discrete-event simulation of one GPU serving a Poisson stream.

    Queries arrive at ``qps``; the batcher dispatches when ``max_batch``
    queries are waiting or the oldest has waited ``timeout_ms``; the GPU
    serves batches back to back.  Query latency = queueing + batching
    wait + batch execution.
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    policy = policy or BatchingPolicy()
    rng = np.random.default_rng(seed)
    n = max(1, int(qps * duration_s))
    arrivals = np.cumsum(rng.exponential(1.0 / qps, size=n))

    latencies = np.empty(n)
    gpu_free = 0.0
    busy = 0.0
    batch_sizes = []
    i = 0
    while i < n:
        first_arrival = arrivals[i]
        # the batch closes when full or when the first query times out
        close_by = first_arrival + policy.timeout_ms / 1e3
        j = i
        while (
            j + 1 < n
            and j + 1 - i < policy.max_batch
            and arrivals[j + 1] <= max(close_by, gpu_free)
        ):
            j += 1
        batch = j - i + 1
        if batch == policy.max_batch:
            # a full batch dispatches as soon as it fills and the GPU
            # frees up — it does not wait out the timeout
            start = max(arrivals[j], gpu_free)
        else:
            start = max(close_by, gpu_free)
        exec_s = batch_latency_ms(batch) / 1e3
        done = start + exec_s
        latencies[i:j + 1] = done - arrivals[i:j + 1]
        busy += exec_s
        gpu_free = done
        batch_sizes.append(batch)
        i = j + 1

    latencies_ms = latencies * 1e3
    horizon = max(gpu_free, arrivals[-1])
    return ServingReport(
        scheme_name=scheme_name,
        qps=qps,
        n_queries=n,
        p50_ms=float(np.percentile(latencies_ms, 50)),
        p95_ms=float(np.percentile(latencies_ms, 95)),
        p99_ms=float(np.percentile(latencies_ms, 99)),
        mean_batch_size=float(np.mean(batch_sizes)),
        gpu_utilization=float(busy / horizon) if horizon > 0 else 0.0,
    )


def max_sustainable_qps(
    batch_latency_ms: Callable[[int], float],
    *,
    sla_ms: float,
    percentile: str = "p99",
    qps_grid: Sequence[float] = (500, 1000, 2000, 4000, 8000, 16000,
                                 32000, 64000),
    policy: BatchingPolicy | None = None,
    scheme_name: str = "scheme",
    seed: int = 0,
) -> tuple[float, list[ServingReport]]:
    """Largest grid point whose tail latency meets the SLA."""
    best = 0.0
    reports = []
    for qps in qps_grid:
        report = simulate_serving(
            batch_latency_ms, qps=qps, policy=policy,
            scheme_name=scheme_name, seed=seed,
        )
        reports.append(report)
        if report.meets_sla(sla_ms, percentile):
            best = max(best, qps)
    return best, reports
