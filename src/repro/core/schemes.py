"""The paper's optimization schemes and their '+'-combinations.

A :class:`Scheme` is the user-facing knob set: OptMT (compiler-forced
occupancy), one software-prefetching variant, and L2 pinning, freely
combined exactly like the paper's nomenclature (Section V):
``RPF+L2P+OptMT`` is register prefetching plus pinning on an OptMT
build.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config.gpu import GpuSpec
from repro.kernels import calibration as cal
from repro.kernels.compiler import (
    PREFETCH_KINDS,
    KernelBuild,
    compile_kernel,
    optmt_maxrreg,
)

_PREFETCH_TOKENS = {
    "RPF": "register",
    "SMPF": "shared",
    "LMPF": "local",
    "L1DPF": "l1d",
}
_TOKEN_FOR_KIND = {kind: token for token, kind in _PREFETCH_TOKENS.items()}


@dataclass(frozen=True)
class Scheme:
    """A combination of the paper's three optimization families."""

    prefetch: str | None = None
    prefetch_distance: int | None = None  # None -> paper's best distance
    l2_pinning: bool = False
    optmt: bool = False
    maxrregcount: int | None = None  # explicit override (WLP sweeps)

    def __post_init__(self) -> None:
        if self.prefetch is not None and self.prefetch not in PREFETCH_KINDS:
            raise ValueError(
                f"prefetch must be one of {PREFETCH_KINDS}, "
                f"got {self.prefetch!r}"
            )
        if self.prefetch_distance is not None and self.prefetch_distance < 1:
            raise ValueError("prefetch_distance must be >= 1")
        if self.maxrregcount is not None and self.optmt:
            raise ValueError("give either optmt or an explicit maxrregcount")

    @property
    def name(self) -> str:
        parts = []
        if self.prefetch:
            parts.append(_TOKEN_FOR_KIND[self.prefetch])
        if self.l2_pinning:
            parts.append("L2P")
        if self.optmt:
            parts.append("OptMT")
        if self.maxrregcount is not None:
            parts.append(f"maxrreg{self.maxrregcount}")
        return "+".join(parts) if parts else "base"

    @classmethod
    def parse(cls, name: str) -> "Scheme":
        """Parse the paper's '+' nomenclature, e.g. ``"RPF+L2P+OptMT"``."""
        if name.strip().lower() in ("", "base"):
            return cls()
        prefetch = None
        pinning = False
        optmt = False
        for token in name.split("+"):
            token = token.strip()
            if token in _PREFETCH_TOKENS:
                if prefetch is not None:
                    raise ValueError(f"{name!r}: two prefetch schemes")
                prefetch = _PREFETCH_TOKENS[token]
            elif token == "L2P":
                pinning = True
            elif token == "OptMT":
                optmt = True
            else:
                raise ValueError(f"unknown scheme token {token!r} in {name!r}")
        return cls(prefetch=prefetch, l2_pinning=pinning, optmt=optmt)

    def with_distance(self, distance: int) -> "Scheme":
        return replace(self, prefetch_distance=distance)

    def resolved_distance(self) -> int:
        """The prefetch distance to use (paper defaults when unset)."""
        if self.prefetch is None:
            return 0
        if self.prefetch_distance is not None:
            return self.prefetch_distance
        table = (
            cal.PF_BEST_DISTANCE_WITH_OPTMT
            if (self.optmt or self.maxrregcount is not None)
            else cal.PF_BEST_DISTANCE_NO_OPTMT
        )
        return table[self.prefetch]

    def resolved_maxrreg(self, gpu: GpuSpec) -> int | None:
        if self.maxrregcount is not None:
            return self.maxrregcount
        if self.optmt:
            return optmt_maxrreg(gpu)
        return None

    def compile(self, gpu: GpuSpec) -> KernelBuild:
        """Compile this scheme's embedding-bag kernel for a GPU."""
        return compile_kernel(
            gpu,
            prefetch=self.prefetch,
            prefetch_distance=self.resolved_distance(),
            maxrregcount=self.resolved_maxrreg(gpu),
        )


# The named schemes evaluated in the paper's figures.
BASE = Scheme()
OPTMT = Scheme(optmt=True)
RPF_OPTMT = Scheme(prefetch="register", optmt=True)
SMPF_OPTMT = Scheme(prefetch="shared", optmt=True)
LMPF_OPTMT = Scheme(prefetch="local", optmt=True)
L1DPF_OPTMT = Scheme(prefetch="l1d", optmt=True)
L2P_OPTMT = Scheme(l2_pinning=True, optmt=True)
RPF_L2P_OPTMT = Scheme(prefetch="register", l2_pinning=True, optmt=True)
RPF = Scheme(prefetch="register")
SMPF = Scheme(prefetch="shared")
LMPF = Scheme(prefetch="local")
L1DPF = Scheme(prefetch="l1d")
L2P = Scheme(l2_pinning=True)
SMPF_L2P = Scheme(prefetch="shared", l2_pinning=True)

#: Figure 12/13/14 scheme lineup.
FIG12_SCHEMES = (OPTMT, RPF_OPTMT, L2P_OPTMT, RPF_L2P_OPTMT)
