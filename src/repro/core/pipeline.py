"""End-to-end DLRM inference latency (the paper's Figures 1, 13, 14).

Combines the simulated embedding stage with the roofline-timed
non-embedding stages into one batch latency, and reports the embedding
stage's share of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.gpu import GpuSpec, A100_SXM4_80GB
from repro.config.model import DLRMConfig, PAPER_MODEL
from repro.config.scale import BENCH_SCALE, SimScale
from repro.core.embedding import (
    EmbeddingStageResult,
    KernelWorkload,
    kernel_workload,
    run_embedding_stage,
)
from repro.core.schemes import Scheme
from repro.dlrm.timing import NonEmbeddingTiming, non_embedding_time
from repro.gpusim.memo import KernelMemo


@dataclass(frozen=True)
class InferenceResult:
    """One batch's end-to-end latency under one scheme."""

    scheme: Scheme
    mix: dict[str, int]
    embedding: EmbeddingStageResult
    non_embedding: NonEmbeddingTiming

    @property
    def embedding_us(self) -> float:
        return self.embedding.total_time_us

    @property
    def non_embedding_us(self) -> float:
        return self.non_embedding.total_us

    @property
    def batch_latency_ms(self) -> float:
        return (self.embedding_us + self.non_embedding_us) / 1e3

    @property
    def embedding_share_pct(self) -> float:
        """The paper's Figure 14 metric."""
        total = self.embedding_us + self.non_embedding_us
        return 100.0 * self.embedding_us / total if total else 0.0


def run_inference(
    datasets: str | dict[str, int],
    scheme: Scheme,
    *,
    gpu: GpuSpec = A100_SXM4_80GB,
    model: DLRMConfig = PAPER_MODEL,
    scale: SimScale = BENCH_SCALE,
    seed: int = 0,
    workload: KernelWorkload | None = None,
    memo: KernelMemo | None = None,
) -> InferenceResult:
    """End-to-end DLRM inference for one batch.

    ``datasets`` is either a hotness preset name (all tables homogeneous,
    the paper's default) or a heterogeneous mix ``{name: table_count}``.
    """
    if isinstance(datasets, str):
        mix = {datasets: model.num_tables}
    else:
        mix = dict(datasets)
        total = sum(mix.values())
        if total != model.num_tables:
            raise ValueError(
                f"mix covers {total} tables, model has {model.num_tables}"
            )
    if workload is None:
        workload = kernel_workload(gpu, model, scale)
    embedding = run_embedding_stage(workload, mix, scheme, seed=seed,
                                    memo=memo)
    non_emb = non_embedding_time(gpu, model)
    return InferenceResult(
        scheme=scheme,
        mix=mix,
        embedding=embedding,
        non_embedding=non_emb,
    )


def speedup(baseline: InferenceResult, candidate: InferenceResult) -> float:
    """End-to-end speedup of ``candidate`` over ``baseline``."""
    return baseline.batch_latency_ms / candidate.batch_latency_ms
