"""Multi-GPU model-parallel embedding inference (paper Sections II-A, VII).

Large DLRMs shard their embedding tables across GPUs; each GPU runs its
tables serially (the regime the paper's per-table optimizations target)
and the per-sample vectors are gathered over NVLink before interaction.
The paper argues its schemes apply unchanged per table — this module
makes that concrete: shard a (possibly heterogeneous) table mix across
GPUs, apply any scheme per table, and report the stage-level balance.

Sharding uses LPT (longest-processing-time-first) on *measured* per-
table kernel times, which is what production placement systems
approximate with cost models.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.embedding import KernelWorkload, run_table_kernel
from repro.core.schemes import Scheme
from repro.datasets.spec import HOTNESS_PRESETS
from repro.dlrm.timing import KERNEL_LAUNCH_US

#: NVLink all-gather effective bandwidth per GPU (A100 NVLink3).
NVLINK_GBPS = 300.0


@dataclass(frozen=True)
class Shard:
    """One GPU's table assignment."""

    gpu_index: int
    tables: tuple[str, ...]  # dataset name per table, in placement order
    compute_us: float


@dataclass(frozen=True)
class DistributedStageResult:
    """A sharded embedding stage execution."""

    scheme: Scheme
    shards: tuple[Shard, ...]
    allgather_us: float

    @property
    def n_gpus(self) -> int:
        return len(self.shards)

    @property
    def critical_path_us(self) -> float:
        """GPUs run in parallel: the slowest shard plus the gather."""
        return max(s.compute_us for s in self.shards) + self.allgather_us

    @property
    def imbalance(self) -> float:
        """max / mean shard compute (1.0 = perfectly balanced)."""
        times = [s.compute_us for s in self.shards]
        mean = sum(times) / len(times)
        return max(times) / mean if mean else 1.0

    def speedup_over(self, other: "DistributedStageResult") -> float:
        return other.critical_path_us / self.critical_path_us


def lpt_shard(
    table_times: dict[str, float], mix: dict[str, int], n_gpus: int
) -> list[list[str]]:
    """Longest-processing-time-first placement of tables onto GPUs."""
    if n_gpus <= 0:
        raise ValueError("need at least one GPU")
    tables = [
        name for name, count in mix.items() for _ in range(count)
    ]
    tables.sort(key=lambda name: table_times[name], reverse=True)
    heap = [(0.0, gpu) for gpu in range(n_gpus)]
    heapq.heapify(heap)
    placement: list[list[str]] = [[] for _ in range(n_gpus)]
    for name in tables:
        load, gpu = heapq.heappop(heap)
        placement[gpu].append(name)
        heapq.heappush(heap, (load + table_times[name], gpu))
    return placement


def allgather_us(
    workload: KernelWorkload, total_tables: int, n_gpus: int
) -> float:
    """All-gather of per-table pooled outputs before interaction.

    Every sample contributes one ``row_bytes`` vector per remote table;
    each GPU must receive the vectors of all tables it does not own.
    """
    if n_gpus == 1:
        return 0.0
    batch = workload.batch_size / workload.factor  # full-chip batch
    remote_tables = total_tables * (n_gpus - 1) / n_gpus
    bytes_in = batch * remote_tables * workload.row_bytes
    return 1e6 * bytes_in / (NVLINK_GBPS * 1e9)


def run_distributed_stage(
    workload: KernelWorkload,
    mix: dict[str, int],
    scheme: Scheme,
    *,
    n_gpus: int = 4,
    seed: int = 0,
) -> DistributedStageResult:
    """Shard the embedding stage over ``n_gpus`` identical GPUs."""
    if not mix:
        raise ValueError("table mix is empty")
    table_times = {
        name: run_table_kernel(
            workload, HOTNESS_PRESETS[name], scheme, seed=seed
        ).profile.kernel_time_us + KERNEL_LAUNCH_US
        for name in mix
    }
    placement = lpt_shard(table_times, mix, n_gpus)
    shards = tuple(
        Shard(
            gpu_index=gpu,
            tables=tuple(tables),
            compute_us=sum(table_times[t] for t in tables),
        )
        for gpu, tables in enumerate(placement)
    )
    return DistributedStageResult(
        scheme=scheme,
        shards=shards,
        allgather_us=allgather_us(workload, sum(mix.values()), n_gpus),
    )
