"""Access-pattern drift and periodic re-pinning (paper Section IV-C).

The paper notes that "embedding access patterns can change over time,
potentially reducing the effectiveness of L2 pinning" and proposes
updating the pinned data periodically.  This module implements that
extension: a drift model that migrates popularity mass to new rows
between batches, and a serving loop that compares re-pinning policies.

Drift model: between consecutive batches a fraction ``drift_per_batch``
of the popularity *ranks* is reassigned to previously-cold rows (new
items trending).  Rank-to-row assignment is deterministic per step, so
experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.embedding import KernelWorkload, run_table_kernel
from repro.core.schemes import Scheme
from repro.datasets.generator import generate_trace
from repro.datasets.spec import DatasetSpec
from repro.datasets.trace import EmbeddingTrace
from repro.kernels.pinning import pinnable_rows
from repro.memstore.policy import popular_rows


@dataclass(frozen=True)
class DriftModel:
    """Migrates a fraction of hot-row identities between batches."""

    drift_per_batch: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drift_per_batch <= 1.0:
            raise ValueError("drift_per_batch must be in [0, 1]")

    def apply(
        self, trace: EmbeddingTrace, step: int
    ) -> EmbeddingTrace:
        """Return ``trace`` with popularity drifted ``step`` times.

        Each step remaps ``drift_per_batch`` of the distinct rows to
        fresh rows outside the current working set (cumulative across
        steps), preserving the trace's frequency *shape* exactly.
        """
        if step <= 0 or self.drift_per_batch == 0.0:
            return trace
        rng = np.random.default_rng(self.seed + 7_000_003)
        unique_rows = np.unique(trace.indices)
        mapping = {}
        available = np.setdiff1d(
            np.arange(trace.table_rows, dtype=np.int64), unique_rows,
            assume_unique=False,
        )
        rng.shuffle(available)
        cursor = 0
        for s in range(step):
            step_rng = np.random.default_rng(self.seed + 31 * (s + 1))
            n_moved = int(round(self.drift_per_batch * len(unique_rows)))
            if n_moved == 0 or cursor + n_moved > len(available):
                break
            moved = step_rng.choice(unique_rows, n_moved, replace=False)
            for row in moved:
                mapping[int(row)] = int(available[cursor])
                cursor += 1
        if not mapping:
            return trace
        indices = trace.indices.copy()
        keys = np.array(list(mapping), dtype=np.int64)
        values = np.array([mapping[int(k)] for k in keys], dtype=np.int64)
        order = np.argsort(keys)
        keys, values = keys[order], values[order]
        pos = np.searchsorted(keys, indices)
        pos = np.clip(pos, 0, len(keys) - 1)
        hit = keys[pos] == indices
        indices[hit] = values[pos[hit]]
        return EmbeddingTrace(
            name=f"{trace.name}+drift{step}",
            indices=indices,
            offsets=trace.offsets,
            table_rows=trace.table_rows,
        )


@dataclass
class DriftStep:
    """One served batch in the drift experiment."""

    step: int
    kernel_time_us: float
    pin_coverage: float
    repinned: bool


@dataclass
class DriftReport:
    """Outcome of serving a drifting workload under one re-pin policy."""

    policy: str
    steps: list[DriftStep] = field(default_factory=list)

    @property
    def mean_time_us(self) -> float:
        return float(np.mean([s.kernel_time_us for s in self.steps]))

    @property
    def final_coverage(self) -> float:
        return self.steps[-1].pin_coverage if self.steps else 0.0

    @property
    def repin_count(self) -> int:
        return sum(1 for s in self.steps if s.repinned)


def serve_with_drift(
    workload: KernelWorkload,
    spec: DatasetSpec,
    *,
    n_batches: int = 10,
    drift: DriftModel | None = None,
    repin_every: int | None = None,
    scheme: Scheme | None = None,
    seed: int = 0,
) -> DriftReport:
    """Serve ``n_batches`` drifting batches under an L2P re-pin policy.

    ``repin_every=None`` pins once at startup and never refreshes
    (the paper's baseline concern); ``repin_every=k`` re-profiles and
    re-pins every ``k`` batches (the paper's proposed mitigation).
    """
    if scheme is None:
        scheme = Scheme(l2_pinning=True, optmt=True)
    if not scheme.l2_pinning:
        raise ValueError("drift experiment requires an L2P scheme")
    drift = drift or DriftModel()
    policy = (
        "pin-once" if repin_every is None else f"repin-every-{repin_every}"
    )
    report = DriftReport(policy=policy)

    base_trace = generate_trace(
        spec,
        batch_size=workload.batch_size,
        pooling_factor=workload.pooling_factor,
        table_rows=workload.table_rows,
        seed=seed,
    )
    k = pinnable_rows(
        workload.gpu.l2_set_aside_bytes, workload.row_bytes
    )
    hot_rows = popular_rows(base_trace, k)

    for step in range(n_batches):
        trace = drift.apply(base_trace, step)
        repinned = False
        if repin_every is not None and step > 0 and step % repin_every == 0:
            # re-profile on the *previous* batch's pattern (online view)
            hot_rows = popular_rows(drift.apply(base_trace, step - 1), k)
            repinned = True
        result = run_table_kernel(
            workload, spec, scheme,
            trace=trace, hot_rows=hot_rows, seed=seed,
        )
        report.steps.append(DriftStep(
            step=step,
            kernel_time_us=result.profile.kernel_time_us,
            pin_coverage=result.pin_coverage,
            repinned=repinned,
        ))
    return report
