"""Embedding-stage execution: one table kernel, or the full 250-table stage.

This is the main entry point of the library: pick a GPU, a model, a
simulation scale, a dataset and a :class:`~repro.core.schemes.Scheme`,
and get back the paper's metrics for that configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.config.gpu import CACHE_LINE_BYTES, GpuSpec, A100_SXM4_80GB
from repro.config.model import DLRMConfig, PAPER_MODEL
from repro.config.scale import BENCH_SCALE, SimScale
from repro.core.schemes import Scheme
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS, DatasetSpec
from repro.datasets.trace import EmbeddingTrace
from repro.dlrm.timing import KERNEL_LAUNCH_US
from repro.gpusim.engine import run_kernel
from repro.gpusim.hierarchy import MemoryHierarchy
from repro.gpusim.memo import KernelMemo, MemoizedKernelRun, default_memo, memo_key
from repro.gpusim.profiler import HierarchyStats, KernelProfile
from repro.kernels import calibration as cal
from repro.kernels.address_map import STREAMING_RANGE, AddressMap
from repro.kernels.compiler import KernelBuild
from repro.kernels.pinning import (
    pin_hot_rows,
    pinnable_rows,
    pinned_coverage,
    profile_hot_rows,
    simulate_pin_kernel,
)
from repro.kernels.registry import build_trace
from repro.memstore.store import EmbeddingStore, TierStats


@dataclass(frozen=True)
class KernelWorkload:
    """A sliced GPU plus the (correspondingly sliced) table workload."""

    gpu: GpuSpec
    full_gpu: GpuSpec
    factor: float
    batch_size: int
    pooling_factor: int
    table_rows: int
    row_bytes: int

    @property
    def accesses(self) -> int:
        return self.batch_size * self.pooling_factor


def kernel_workload(
    gpu: GpuSpec = A100_SXM4_80GB,
    model: DLRMConfig = PAPER_MODEL,
    scale: SimScale = BENCH_SCALE,
    *,
    batch_size: int | None = None,
    pooling_factor: int | None = None,
    table_rows: int | None = None,
) -> KernelWorkload:
    """Resolve GPU + model + scale (with optional sweep overrides)."""
    scaled = scale.apply(gpu, model)
    return KernelWorkload(
        gpu=scaled.gpu,
        full_gpu=gpu,
        factor=scaled.factor,
        batch_size=batch_size or scaled.batch_size,
        pooling_factor=pooling_factor or model.pooling_factor,
        table_rows=table_rows or scaled.table_rows,
        row_bytes=model.table.row_bytes,
    )


def _lowering_fingerprint() -> dict:
    """Everything outside the explicit key inputs that shapes the op
    stream: calibration constants and the virtual address layout.
    Hashed into memo keys so that tweaking a constant self-invalidates
    stale cached timings (structural code changes still require a
    ``MEMO_SCHEMA_VERSION`` bump)."""
    global _LOWERING_FP
    if _LOWERING_FP is None:
        probe = AddressMap(row_bytes=CACHE_LINE_BYTES)
        _LOWERING_FP = {
            "cal": {
                name: getattr(cal, name)
                for name in dir(cal) if name.isupper()
            },
            "layout": (
                probe.offsets_addr(1),
                probe.index_addr(1),
                probe.row_addr(1),
                probe.output_addr(1),
                AddressMap.local_line(1, 1),
                STREAMING_RANGE,
            ),
        }
    return _LOWERING_FP


_LOWERING_FP: dict | None = None


@dataclass(frozen=True)
class TableKernelResult:
    """One table's kernel execution under one scheme.

    When the table is served from a tiered
    :class:`~repro.memstore.store.EmbeddingStore`, ``tier_stats``
    carries the HBM hit/miss accounting and ``total_time_us`` adds the
    host-fetch time the misses cost ahead of the kernel.
    """

    scheme: Scheme
    dataset: str
    build: KernelBuild
    profile: KernelProfile
    pinned_lines: int
    pin_coverage: float
    pin_kernel_us: float
    tier_stats: TierStats | None = None

    @property
    def kernel_time_us(self) -> float:
        return self.profile.kernel_time_us

    @property
    def host_fetch_us(self) -> float:
        """Host-DRAM fetch time for HBM-cache misses (0 if fully resident)."""
        return self.tier_stats.host_fetch_us if self.tier_stats else 0.0

    @property
    def total_time_us(self) -> float:
        """Kernel time plus the host-tier gather serialized ahead of it."""
        return self.kernel_time_us + self.host_fetch_us


def run_table_kernel(
    workload: KernelWorkload,
    spec: DatasetSpec,
    scheme: Scheme,
    *,
    seed: int = 0,
    trace: EmbeddingTrace | None = None,
    hot_rows: np.ndarray | None = None,
    time_pin_kernel: bool = False,
    memo: KernelMemo | None = None,
    store: EmbeddingStore | None = None,
) -> TableKernelResult:
    """Simulate one embedding table's kernel under a scheme.

    ``trace``/``hot_rows`` can be supplied to reuse work across sweeps;
    by default they are generated from ``spec`` deterministically.

    ``store`` makes the table *tiered*: the trace's accesses are
    replayed against the store's HBM cache and the misses' host-fetch
    time lands in the result (``tier_stats`` / ``total_time_us``).  The
    kernel simulation itself is unchanged — fetched rows are staged
    into HBM before launch, so the fetch composes serially with the
    (memoized) kernel time and the memo stays tier-agnostic.

    The simulation itself is memoized: the engine is deterministic, so
    its raw result is a pure function of the launch content, and
    repeated identical launches are answered from ``memo`` (default:
    the process-wide :func:`~repro.gpusim.memo.default_memo`, which is
    also disk-backed when ``REPRO_KERNEL_MEMO_DIR`` is set) without
    building or running the kernel.
    """
    gpu = workload.gpu
    if trace is None:
        trace = generate_trace(
            spec,
            batch_size=workload.batch_size,
            pooling_factor=workload.pooling_factor,
            table_rows=workload.table_rows,
            seed=seed,
        )
    build = scheme.compile(gpu)
    amap = AddressMap(row_bytes=workload.row_bytes)
    set_aside = gpu.l2_set_aside_bytes if scheme.l2_pinning else 0

    if memo is None:
        memo = default_memo()
    key = None
    if memo.enabled:
        if hot_rows is not None:
            pin_part = hot_rows
        elif scheme.l2_pinning:
            # hot rows not profiled yet: key on their derivation inputs
            # so a memo hit skips the (expensive) offline profiling pass
            pin_part = (
                "derived-hot-rows", spec,
                workload.batch_size, workload.pooling_factor,
                workload.table_rows,
                pinnable_rows(set_aside, workload.row_bytes), seed,
            )
        else:
            pin_part = None
        # Everything the simulation depends on: workload content (the
        # compiled trace is a pure function of trace + build + amap),
        # GPU timing model, scheme knobs, pinned rows, and the lowering
        # constants that shape the op stream.
        key = memo_key(
            "table-kernel",
            f"{scheme.name}/{spec.name}",
            gpu,
            workload.full_gpu.l1_bytes,
            workload.row_bytes,
            trace.indices,
            trace.offsets,
            trace.table_rows,
            build,
            set_aside,
            pin_part,
            time_pin_kernel,
            _lowering_fingerprint(),
        )
        cached = memo.get(key)
        if cached is not None:
            profile = KernelProfile.from_stats(
                gpu,
                cached.stats,
                cached.hierarchy,
                chip_factor=workload.factor,
                full_hbm_gbps=workload.full_gpu.hbm_bandwidth_gbps,
            )
            return TableKernelResult(
                scheme=scheme,
                dataset=spec.name,
                build=build,
                profile=profile,
                pinned_lines=cached.pinned_lines,
                pin_coverage=cached.pin_coverage,
                pin_kernel_us=cached.pin_kernel_us,
                tier_stats=store.lookup(trace) if store else None,
            )

    if scheme.l2_pinning and hot_rows is None:
        hot_rows = profile_hot_rows(
            spec,
            batch_size=workload.batch_size,
            pooling_factor=workload.pooling_factor,
            table_rows=workload.table_rows,
            k=pinnable_rows(set_aside, workload.row_bytes),
            seed=seed,
        )

    hierarchy = MemoryHierarchy(
        gpu, l2_set_aside_bytes=set_aside, streaming_range=STREAMING_RANGE
    )
    local_lines = build.spilled_regs + (
        build.prefetch_distance if build.prefetch == "local" else 0
    )
    hierarchy.configure_local_memory(
        local_lines * 128 * build.warps_per_sm,
        int(workload.full_gpu.l1_bytes * cal.LOCAL_L1_BUDGET_FRACTION),
    )

    pinned_lines = 0
    pin_cov = 0.0
    pin_us = 0.0
    if scheme.l2_pinning:
        if time_pin_kernel:
            scratch = MemoryHierarchy(
                gpu,
                l2_set_aside_bytes=set_aside,
                streaming_range=STREAMING_RANGE,
            )
            pin_stats = simulate_pin_kernel(gpu, scratch, hot_rows, amap)
            pin_us = gpu.cycles_to_us(pin_stats.makespan_cycles)
        pinned_lines = pin_hot_rows(hierarchy, hot_rows, amap)
        pin_cov = pinned_coverage(trace, hot_rows)

    compiled = build_trace(trace, build, amap)
    stats = run_kernel(
        gpu,
        hierarchy,
        compiled,
        warps_per_sm=build.warps_per_sm,
        warps_per_block=build.warps_per_block,
        name=f"{scheme.name}/{spec.name}",
    )
    profile = KernelProfile.from_run(
        gpu,
        stats,
        hierarchy,
        chip_factor=workload.factor,
        full_hbm_gbps=workload.full_gpu.hbm_bandwidth_gbps,
    )
    if key is not None:
        memo.put(key, MemoizedKernelRun(
            stats,
            HierarchyStats.capture(hierarchy),
            pinned_lines=pinned_lines,
            pin_coverage=pin_cov,
            pin_kernel_us=pin_us,
        ))
    return TableKernelResult(
        scheme=scheme,
        dataset=spec.name,
        build=build,
        profile=profile,
        pinned_lines=pinned_lines,
        pin_coverage=pin_cov,
        pin_kernel_us=pin_us,
        tier_stats=store.lookup(trace) if store else None,
    )


@dataclass(frozen=True)
class EmbeddingStageResult:
    """The full multi-table embedding stage under one scheme."""

    scheme: Scheme
    mix: dict[str, int]
    per_table: dict[str, TableKernelResult]
    launch_overhead_us: float

    @property
    def num_tables(self) -> int:
        return sum(self.mix.values())

    @property
    def total_time_us(self) -> float:
        """Tables run serially on the GPU (paper Section II-A); tiered
        tables additionally pay their host-fetch time per launch."""
        total = 0.0
        for name, count in self.mix.items():
            total += count * (
                self.per_table[name].total_time_us + self.launch_overhead_us
            )
        return total

    @property
    def host_fetch_us(self) -> float:
        """Host-DRAM fetch time across the stage (0 if nothing is tiered)."""
        return sum(
            count * self.per_table[name].host_fetch_us
            for name, count in self.mix.items()
        )

    @property
    def hit_rate(self) -> float | None:
        """Access-weighted HBM hit rate over tiered tables (None if none)."""
        tiered = [
            (count, self.per_table[name].tier_stats)
            for name, count in self.mix.items()
            if self.per_table[name].tier_stats is not None
        ]
        if not tiered:
            return None
        accesses = sum(c * s.n_accesses for c, s in tiered)
        if accesses == 0:
            return 1.0
        return sum(c * s.hits for c, s in tiered) / accesses


def run_embedding_stage(
    workload: KernelWorkload,
    mix: dict[str, int],
    scheme: Scheme,
    *,
    seed: int = 0,
    memo: KernelMemo | None = None,
    stores: Mapping[str, EmbeddingStore] | None = None,
) -> EmbeddingStageResult:
    """Simulate the embedding stage for a (possibly heterogeneous) mix
    of tables, e.g. ``{"high_hot": 100, "med_hot": 75, ...}`` (Table VII).

    Tables of the same hotness are statistically identical, so one
    representative kernel per dataset is simulated and weighted by count.

    ``stores`` maps dataset names to tiered
    :class:`~repro.memstore.store.EmbeddingStore` instances; tables
    with a store pay their HBM-miss host-fetch time in the stage total.
    """
    if not mix:
        raise ValueError("table mix is empty")
    per_table: dict[str, TableKernelResult] = {}
    for name, count in mix.items():
        if count <= 0:
            raise ValueError(f"table count for {name!r} must be positive")
        spec = HOTNESS_PRESETS[name]
        per_table[name] = run_table_kernel(
            workload, spec, scheme, seed=seed, memo=memo,
            store=stores.get(name) if stores else None,
        )
    return EmbeddingStageResult(
        scheme=scheme,
        mix=dict(mix),
        per_table=per_table,
        launch_overhead_us=KERNEL_LAUNCH_US,
    )
