"""The paper's Static Profiling Framework (Section VII, Discussion).

A design-space exploration that reproduces the seven-step recipe the
authors propose for adopting their optimizations on any memory-bound
kernel:

  (i)    check whether the kernel is memory-latency bound,
  (ii)   check whether occupancy is at the hardware maximum,
  (iii)  if register-limited, sweep ``-maxrregcount`` to find OptMT,
  (iv)   re-check the latency-bound diagnosis on the OptMT build,
  (v)    check for pinning opportunity (reuse + footprint vs. L2),
  (vi)   if bandwidth headroom remains, sweep prefetch buffers and
         distances,
  (vii)  combine pinning and prefetching.

Every step records its evidence so the report doubles as the paper's
"microarchitectural justification" tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.embedding import (
    KernelWorkload,
    TableKernelResult,
    kernel_workload,
    run_table_kernel,
)
from repro.core.schemes import Scheme
from repro.datasets.analysis import coverage_at
from repro.datasets.generator import generate_trace
from repro.datasets.spec import DatasetSpec
from repro.gpusim.occupancy import max_regs_for_warps
from repro.kernels.compiler import PREFETCH_KINDS
from repro.kernels.pinning import pinnable_rows

#: Bandwidth utilization above which prefetching is ruled out (step vi).
BW_SATURATION_PCT = 80.0

#: Long-scoreboard stalls per instruction above which the kernel is
#: called latency-bound (step i).
LATENCY_BOUND_STALL_THRESHOLD = 2.0

#: Minimum access coverage by the pinnable row set for L2P to pay off.
PIN_COVERAGE_THRESHOLD = 0.05


@dataclass(frozen=True)
class TuningStep:
    step: str
    decision: str
    evidence: dict[str, float | int | str | bool]


@dataclass
class TuningReport:
    """The framework's decision trail plus the chosen scheme."""

    dataset: str
    steps: list[TuningStep] = field(default_factory=list)
    baseline: TableKernelResult | None = None
    final: TableKernelResult | None = None
    scheme: Scheme = Scheme()

    @property
    def speedup(self) -> float:
        if not self.baseline or not self.final:
            return 1.0
        return (
            self.baseline.profile.kernel_time_us
            / self.final.profile.kernel_time_us
        )

    def describe(self) -> str:
        lines = [f"Static profiling framework: dataset={self.dataset}"]
        for s in self.steps:
            lines.append(f"  [{s.step}] {s.decision}")
            for key, value in s.evidence.items():
                if isinstance(value, float):
                    lines.append(f"      {key} = {value:.3f}")
                else:
                    lines.append(f"      {key} = {value}")
        lines.append(
            f"  => scheme: {self.scheme.name}  "
            f"(speedup {self.speedup:.2f}x over base)"
        )
        return "\n".join(lines)


def _is_latency_bound(result: TableKernelResult) -> tuple[bool, dict]:
    profile = result.profile
    evidence = {
        "long_scoreboard_stall_per_inst": profile.long_scoreboard_stall,
        "hbm_bw_util_pct": profile.hbm_bw_util_pct,
        "l1_hit_pct": profile.l1_hit_pct,
        "l2_hit_pct": profile.l2_hit_pct,
    }
    bound = (
        profile.long_scoreboard_stall > LATENCY_BOUND_STALL_THRESHOLD
        and profile.hbm_bw_util_pct < BW_SATURATION_PCT
    )
    return bound, evidence


def autotune(
    spec: DatasetSpec,
    *,
    workload: KernelWorkload | None = None,
    seed: int = 0,
    warp_targets: tuple[int, ...] = (24, 32, 40, 48, 64),
    distances: tuple[int, ...] = (1, 2, 4, 6, 10),
    buffers: tuple[str, ...] = PREFETCH_KINDS,
) -> TuningReport:
    """Run the seven-step framework for one dataset; returns the report."""
    if workload is None:
        workload = kernel_workload()
    report = TuningReport(dataset=spec.name)
    gpu = workload.gpu
    trace = generate_trace(
        spec,
        batch_size=workload.batch_size,
        pooling_factor=workload.pooling_factor,
        table_rows=workload.table_rows,
        seed=seed,
    )

    def run(scheme: Scheme) -> TableKernelResult:
        return run_table_kernel(
            workload, spec, scheme, seed=seed, trace=trace
        )

    # (i) is the stock kernel memory-latency bound?
    base = run(Scheme())
    report.baseline = base
    bound, evidence = _is_latency_bound(base)
    report.steps.append(TuningStep(
        "i: latency-bound check",
        "memory-latency bound" if bound else "not latency bound",
        evidence,
    ))
    if not bound:
        report.final = base
        return report

    # (ii) occupancy at hardware maximum?
    occupancy = base.build.warps_per_sm
    at_max = occupancy >= gpu.max_warps_per_sm
    report.steps.append(TuningStep(
        "ii: occupancy check",
        "occupancy already maximal" if at_max
        else f"register-limited at {occupancy}/{gpu.max_warps_per_sm} warps",
        {"warps_per_sm": occupancy,
         "regs_per_thread": base.build.allocated_regs},
    ))

    # (iii) sweep -maxrregcount for the OptMT point.
    best = base
    best_scheme = Scheme()
    if not at_max:
        sweep_evidence: dict[str, float | int | str | bool] = {}
        for target in warp_targets:
            if target <= occupancy or target > gpu.max_warps_per_sm:
                continue
            cap = max_regs_for_warps(gpu, target)
            candidate_scheme = Scheme(maxrregcount=cap)
            candidate = run(candidate_scheme)
            sweep_evidence[f"time_us@{target}w"] = round(
                candidate.profile.kernel_time_us, 1
            )
            if candidate.profile.kernel_time_us \
                    < best.profile.kernel_time_us:
                best = candidate
                best_scheme = candidate_scheme
        report.steps.append(TuningStep(
            "iii: maxrregcount sweep",
            f"OptMT at {best.build.warps_per_sm} warps "
            f"(maxrreg={best_scheme.maxrregcount})"
            if best is not base else "no WLP gain; keeping stock registers",
            sweep_evidence,
        ))

    # (iv) still latency bound after OptMT?
    bound, evidence = _is_latency_bound(best)
    report.steps.append(TuningStep(
        "iv: post-OptMT latency check",
        "still latency bound" if bound else "latency hidden by WLP",
        evidence,
    ))
    if not bound:
        report.final = best
        report.scheme = best_scheme
        return report

    # (v) pinning opportunity: reuse concentrated enough to pin?
    set_aside = gpu.l2_set_aside_bytes
    k = pinnable_rows(set_aside, workload.row_bytes)
    pin_pct = 100.0 * min(1.0, k / max(1, trace.n_unique))
    cov = coverage_at(trace, min(100.0, pin_pct)) / 100.0
    use_pinning = cov > PIN_COVERAGE_THRESHOLD
    report.steps.append(TuningStep(
        "v: L2 pinning check",
        "pinning applicable" if use_pinning else "insufficient reuse",
        {"pinnable_rows": k, "unique_rows": trace.n_unique,
         "pinnable_coverage": cov},
    ))

    # (vi) bandwidth headroom -> prefetch sweep.
    use_prefetch = best.profile.hbm_bw_util_pct < BW_SATURATION_PCT
    pf_kind: str | None = None
    pf_distance = 0
    if use_prefetch:
        sweep_evidence = {}
        best_pf_time = best.profile.kernel_time_us
        for kind in buffers:
            for distance in distances:
                scheme = Scheme(
                    prefetch=kind,
                    prefetch_distance=distance,
                    maxrregcount=best_scheme.maxrregcount,
                )
                try:
                    candidate = run(scheme)
                except ValueError:  # occupancy collapsed to zero
                    continue
                key = f"{kind}@d{distance}"
                sweep_evidence[key] = round(
                    candidate.profile.kernel_time_us, 1
                )
                if candidate.profile.kernel_time_us < best_pf_time:
                    best_pf_time = candidate.profile.kernel_time_us
                    pf_kind, pf_distance = kind, distance
        report.steps.append(TuningStep(
            "vi: prefetch sweep",
            f"prefetch {pf_kind} at distance {pf_distance}"
            if pf_kind else "no prefetch variant improved",
            sweep_evidence,
        ))

    # (vii) combine everything that helped.
    final_scheme = Scheme(
        prefetch=pf_kind,
        prefetch_distance=pf_distance if pf_kind else None,
        l2_pinning=use_pinning,
        maxrregcount=best_scheme.maxrregcount,
    )
    final = run(final_scheme)
    if final.profile.kernel_time_us > best.profile.kernel_time_us:
        final, final_scheme = best, best_scheme
    report.steps.append(TuningStep(
        "vii: combined scheme",
        final_scheme.name,
        {"final_time_us": round(final.profile.kernel_time_us, 1),
         "base_time_us": round(base.profile.kernel_time_us, 1)},
    ))
    report.final = final
    report.scheme = final_scheme
    return report
