"""repro — reproduction of "Pushing the Performance Envelope of DNN-based
Recommendation Systems Inference on GPUs" (MICRO 2024).

The public API in one import::

    from repro import (
        A100_SXM4_80GB, H100_NVL, PAPER_MODEL,
        Scheme, kernel_workload, run_table_kernel, run_inference,
        HOTNESS_PRESETS, autotune,
    )

See README.md for a quickstart and DESIGN.md for the architecture.
"""

from repro.config import (
    A100_SXM4_80GB,
    BENCH_SCALE,
    FULL_SCALE,
    H100_NVL,
    PAPER_MODEL,
    TEST_SCALE,
    DLRMConfig,
    EmbeddingTableConfig,
    GpuSpec,
    SimScale,
)
from repro.core import (
    BASE,
    FIG12_SCHEMES,
    OPTMT,
    RPF_L2P_OPTMT,
    RPF_OPTMT,
    InferenceResult,
    KernelWorkload,
    Scheme,
    TableKernelResult,
    autotune,
    kernel_workload,
    run_embedding_stage,
    run_inference,
    run_table_kernel,
    speedup,
)
from repro.datasets import (
    EVAL_PRESETS,
    HOTNESS_PRESETS,
    TABLE_MIXES,
    DatasetSpec,
    EmbeddingTrace,
    generate_trace,
)
from repro.dlrm import DLRM, Batch, embedding_bag, make_batch
from repro.gpusim import KernelMemo, default_memo, set_default_memo
from repro.fleet import (
    ROUTING_POLICIES,
    FleetReport,
    FleetSpec,
    HeteroPlacement,
    ReplicaSpec,
    calibrated_latency_model,
    fleet_max_sustainable_qps,
    hetero_lpt_shard,
    place_tables,
    replicas_needed,
    simulate_fleet,
)

__version__ = "1.0.0"

__all__ = [
    "A100_SXM4_80GB",
    "BASE",
    "BENCH_SCALE",
    "Batch",
    "DLRM",
    "DLRMConfig",
    "DatasetSpec",
    "EVAL_PRESETS",
    "EmbeddingTableConfig",
    "EmbeddingTrace",
    "FIG12_SCHEMES",
    "FULL_SCALE",
    "FleetReport",
    "FleetSpec",
    "GpuSpec",
    "H100_NVL",
    "HOTNESS_PRESETS",
    "HeteroPlacement",
    "InferenceResult",
    "KernelMemo",
    "KernelWorkload",
    "OPTMT",
    "PAPER_MODEL",
    "ROUTING_POLICIES",
    "RPF_L2P_OPTMT",
    "RPF_OPTMT",
    "ReplicaSpec",
    "Scheme",
    "SimScale",
    "TABLE_MIXES",
    "TEST_SCALE",
    "TableKernelResult",
    "autotune",
    "calibrated_latency_model",
    "default_memo",
    "embedding_bag",
    "fleet_max_sustainable_qps",
    "generate_trace",
    "hetero_lpt_shard",
    "kernel_workload",
    "make_batch",
    "place_tables",
    "replicas_needed",
    "run_embedding_stage",
    "run_inference",
    "run_table_kernel",
    "set_default_memo",
    "simulate_fleet",
    "speedup",
    "__version__",
]
