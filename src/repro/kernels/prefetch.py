"""Software-prefetching variants of the embedding-bag kernel (Sec. IV-B).

All four schemes batch the indirect gather loads ``d`` iterations ahead
(Figure 8), differing only in the buffer station:

* **RPF** — buffer registers; consumption is free but register demand
  grows with ``d`` (occupancy collapse without OptMT).
* **SMPF** — shared memory; a store burst parks the data, consumption
  pays the 29-cycle shared latency.
* **LMPF** — local memory; same shape as SMPF but the buffer round-trips
  through L1 and counts as local traffic.
* **L1DPF** — ``prefetch.global.L1``; no buffer registers, but the
  demand loop still executes in full, making it the highest-overhead,
  lowest-gain variant.

The prefetch burst issues the ``d`` row loads back-to-back, so their
latencies overlap; the group then pays roughly one memory latency
instead of ``d`` — which is exactly the scoreboard-driven hiding the
paper engineers.
"""

from __future__ import annotations

from typing import Iterator

from repro.datasets.trace import EmbeddingTrace
from repro.gpusim.isa import (
    OP_ALU,
    OP_LD_GLOBAL,
    OP_LD_LOCAL,
    OP_LD_SHARED,
    OP_PREFETCH_L1,
    OP_ST_GLOBAL,
    OP_ST_LOCAL,
    OP_ST_SHARED,
)
from repro.kernels import calibration as cal
from repro.kernels.address_map import AddressMap
from repro.kernels.compiler import KernelBuild
from repro.kernels.embedding_bag import (
    LMPF_SLOT_BASE,
    TAG_IDX,
    TAG_LOCAL_PF,
    TAG_OFF,
    TAG_PF_BASE,
    TAG_SMEM,
    TAG_SPILL,
    WarpProgram,
    iter_warp_work,
    spill_state,
)


def _spill_ops(
    warp_uid: int, spill_slot: int, spill_lines: int
) -> tuple[tuple, tuple, tuple]:
    addr = AddressMap.local_line(warp_uid, spill_slot % spill_lines)
    return (
        (OP_ST_LOCAL, addr, 4, None, None),
        (OP_LD_LOCAL, addr, 4, TAG_SPILL, None),
        (OP_ALU, cal.SPILL_CONSUME_ALU, 0, None, TAG_SPILL),
    )


def _make_prefetch_program(
    kind: str,
    amap: AddressMap,
    sample: int,
    col_off: int,
    flat_begin: int,
    rows: list[int],
    warp_uid: int,
    distance: int,
    spill_pairs: float,
    spill_lines: int,
) -> WarpProgram:
    addr_alu = cal.ADDR_CALC_ALU
    consume_alu = cal.ACCUM_ALU + cal.PF_CONSUME_EXTRA_ALU[kind]
    trigger_alu = cal.PF_TRIGGER_ALU
    idx_base = amap.index_addr(flat_begin)
    local_line = AddressMap.local_line

    def gen() -> Iterator[tuple]:
        yield (OP_LD_GLOBAL, amap.offsets_addr(sample), 1, TAG_OFF, None)
        yield (OP_ALU, cal.PROLOGUE_ALU, 0, None, TAG_OFF)
        n = len(rows)
        spill_acc = 0.0
        spill_slot = 0
        i = 0
        while i < n:
            batch = distance if i + distance <= n else n - i
            yield (OP_ALU, trigger_alu, 0, None, None)
            # --- prefetch burst: gather loads issued back-to-back ------
            if kind == "l1d":
                for j in range(batch):
                    yield (OP_LD_GLOBAL, idx_base + 8 * (i + j), 1,
                           TAG_IDX, None)
                    yield (OP_ALU, cal.L1DPF_BURST_ALU, 0, None, TAG_IDX)
                    yield (OP_PREFETCH_L1,
                           amap.row_addr(rows[i + j], col_off), 4,
                           None, None)
            else:
                for j in range(batch):
                    yield (OP_LD_GLOBAL, idx_base + 8 * (i + j), 1,
                           TAG_IDX, None)
                    yield (OP_ALU, addr_alu, 0, None, TAG_IDX)
                    yield (OP_LD_GLOBAL,
                           amap.row_addr(rows[i + j], col_off), 4,
                           TAG_PF_BASE + j, None)
            # --- park the burst in the buffer station -------------------
            if kind == "shared":
                for j in range(batch):
                    yield (OP_ST_SHARED, 0, 0, None, TAG_PF_BASE + j)
            elif kind == "local":
                for j in range(batch):
                    yield (OP_ST_LOCAL,
                           local_line(warp_uid, LMPF_SLOT_BASE + j), 4,
                           None, TAG_PF_BASE + j)
            # --- consume one iteration at a time ------------------------
            for j in range(batch):
                if kind == "register":
                    yield (OP_ALU, consume_alu, 0, None, TAG_PF_BASE + j)
                elif kind == "shared":
                    yield (OP_LD_SHARED, 0, 0, TAG_SMEM, None)
                    yield (OP_ALU, consume_alu, 0, None, TAG_SMEM)
                elif kind == "local":
                    yield (OP_LD_LOCAL,
                           local_line(warp_uid, LMPF_SLOT_BASE + j), 4,
                           TAG_LOCAL_PF, None)
                    yield (OP_ALU, consume_alu, 0, None, TAG_LOCAL_PF)
                else:  # l1d: the demand loop runs in full, hitting L1
                    yield (OP_LD_GLOBAL, idx_base + 8 * (i + j), 1,
                           TAG_IDX, None)
                    yield (OP_ALU, addr_alu, 0, None, TAG_IDX)
                    yield (OP_LD_GLOBAL,
                           amap.row_addr(rows[i + j], col_off), 4,
                           TAG_PF_BASE, None)
                    yield (OP_ALU, consume_alu, 0, None, TAG_PF_BASE)
                spill_acc += spill_pairs
                while spill_acc >= 1.0:
                    spill_acc -= 1.0
                    for op in _spill_ops(warp_uid, spill_slot, spill_lines):
                        yield op
                    spill_slot += 1
            i += batch
        yield (OP_ALU, cal.EPILOGUE_ALU, 0, None, None)
        yield (OP_ST_GLOBAL, amap.output_addr(sample, col_off), 4,
               None, None)

    return gen


def build_prefetch_programs(
    trace: EmbeddingTrace,
    build: KernelBuild,
    amap: AddressMap,
    *,
    warp_uid_base: int = 0,
) -> list[WarpProgram]:
    """Programs for every warp of a prefetching kernel launch."""
    if build.prefetch is None:
        raise ValueError("kernel build has no prefetch scheme")
    spill_pairs, spill_lines = spill_state(build)
    programs: list[WarpProgram] = []
    uid = warp_uid_base
    for sample, col_off, begin, rows in iter_warp_work(
            trace, amap.row_bytes):
        programs.append(
            _make_prefetch_program(
                build.prefetch, amap, sample, col_off, begin, rows,
                uid, build.prefetch_distance, spill_pairs, spill_lines,
            )
        )
        uid += 1
    return programs
