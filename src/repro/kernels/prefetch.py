"""Software-prefetching variants of the embedding-bag kernel (Sec. IV-B).

All four schemes batch the indirect gather loads ``d`` iterations ahead
(Figure 8), differing only in the buffer station:

* **RPF** — buffer registers; consumption is free but register demand
  grows with ``d`` (occupancy collapse without OptMT).
* **SMPF** — shared memory; a store burst parks the data, consumption
  pays the 29-cycle shared latency.
* **LMPF** — local memory; same shape as SMPF but the buffer round-trips
  through L1 and counts as local traffic.
* **L1DPF** — ``prefetch.global.L1``; no buffer registers, but the
  demand loop still executes in full, making it the highest-overhead,
  lowest-gain variant.

The prefetch burst issues the ``d`` row loads back-to-back, so their
latencies overlap; the group then pays roughly one memory latency
instead of ``d`` — which is exactly the scoreboard-driven hiding the
paper engineers.
"""

from __future__ import annotations

from typing import Iterator

from repro.datasets.trace import EmbeddingTrace
from repro.gpusim.isa import (
    OP_ALU,
    OP_LD_GLOBAL,
    OP_LD_LOCAL,
    OP_LD_SHARED,
    OP_PREFETCH_L1,
    OP_ST_GLOBAL,
    OP_ST_LOCAL,
    OP_ST_SHARED,
)
from repro.gpusim.trace import CompiledTrace, TraceBuilder
from repro.kernels import calibration as cal
from repro.kernels.address_map import AddressMap
from repro.kernels.compiler import KernelBuild
from repro.kernels.embedding_bag import (
    LMPF_SLOT_BASE,
    TAG_IDX,
    TAG_LOCAL_PF,
    TAG_OFF,
    TAG_PF_BASE,
    TAG_SMEM,
    TAG_SPILL,
    WarpProgram,
    _SPILL_B,
    _SPILL_DEP,
    _SPILL_KINDS,
    _SPILL_TAG,
    iter_warp_work,
    spill_state,
)


def _spill_ops(
    warp_uid: int, spill_slot: int, spill_lines: int
) -> tuple[tuple, tuple, tuple]:
    addr = AddressMap.local_line(warp_uid, spill_slot % spill_lines)
    return (
        (OP_ST_LOCAL, addr, 4, None, None),
        (OP_LD_LOCAL, addr, 4, TAG_SPILL, None),
        (OP_ALU, cal.SPILL_CONSUME_ALU, 0, None, TAG_SPILL),
    )


def _make_prefetch_program(
    kind: str,
    amap: AddressMap,
    sample: int,
    col_off: int,
    flat_begin: int,
    rows: list[int],
    warp_uid: int,
    distance: int,
    spill_pairs: float,
    spill_lines: int,
) -> WarpProgram:
    addr_alu = cal.ADDR_CALC_ALU
    consume_alu = cal.ACCUM_ALU + cal.PF_CONSUME_EXTRA_ALU[kind]
    trigger_alu = cal.PF_TRIGGER_ALU
    idx_base = amap.index_addr(flat_begin)
    local_line = AddressMap.local_line

    def gen() -> Iterator[tuple]:
        yield (OP_LD_GLOBAL, amap.offsets_addr(sample), 1, TAG_OFF, None)
        yield (OP_ALU, cal.PROLOGUE_ALU, 0, None, TAG_OFF)
        n = len(rows)
        spill_acc = 0.0
        spill_slot = 0
        i = 0
        while i < n:
            batch = distance if i + distance <= n else n - i
            yield (OP_ALU, trigger_alu, 0, None, None)
            # --- prefetch burst: gather loads issued back-to-back ------
            if kind == "l1d":
                for j in range(batch):
                    yield (OP_LD_GLOBAL, idx_base + 8 * (i + j), 1,
                           TAG_IDX, None)
                    yield (OP_ALU, cal.L1DPF_BURST_ALU, 0, None, TAG_IDX)
                    yield (OP_PREFETCH_L1,
                           amap.row_addr(rows[i + j], col_off), 4,
                           None, None)
            else:
                for j in range(batch):
                    yield (OP_LD_GLOBAL, idx_base + 8 * (i + j), 1,
                           TAG_IDX, None)
                    yield (OP_ALU, addr_alu, 0, None, TAG_IDX)
                    yield (OP_LD_GLOBAL,
                           amap.row_addr(rows[i + j], col_off), 4,
                           TAG_PF_BASE + j, None)
            # --- park the burst in the buffer station -------------------
            if kind == "shared":
                for j in range(batch):
                    yield (OP_ST_SHARED, 0, 0, None, TAG_PF_BASE + j)
            elif kind == "local":
                for j in range(batch):
                    yield (OP_ST_LOCAL,
                           local_line(warp_uid, LMPF_SLOT_BASE + j), 4,
                           None, TAG_PF_BASE + j)
            # --- consume one iteration at a time ------------------------
            for j in range(batch):
                if kind == "register":
                    yield (OP_ALU, consume_alu, 0, None, TAG_PF_BASE + j)
                elif kind == "shared":
                    yield (OP_LD_SHARED, 0, 0, TAG_SMEM, None)
                    yield (OP_ALU, consume_alu, 0, None, TAG_SMEM)
                elif kind == "local":
                    yield (OP_LD_LOCAL,
                           local_line(warp_uid, LMPF_SLOT_BASE + j), 4,
                           TAG_LOCAL_PF, None)
                    yield (OP_ALU, consume_alu, 0, None, TAG_LOCAL_PF)
                else:  # l1d: the demand loop runs in full, hitting L1
                    yield (OP_LD_GLOBAL, idx_base + 8 * (i + j), 1,
                           TAG_IDX, None)
                    yield (OP_ALU, addr_alu, 0, None, TAG_IDX)
                    yield (OP_LD_GLOBAL,
                           amap.row_addr(rows[i + j], col_off), 4,
                           TAG_PF_BASE, None)
                    yield (OP_ALU, consume_alu, 0, None, TAG_PF_BASE)
                spill_acc += spill_pairs
                while spill_acc >= 1.0:
                    spill_acc -= 1.0
                    for op in _spill_ops(warp_uid, spill_slot, spill_lines):
                        yield op
                    spill_slot += 1
            i += batch
        yield (OP_ALU, cal.EPILOGUE_ALU, 0, None, None)
        yield (OP_ST_GLOBAL, amap.output_addr(sample, col_off), 4,
               None, None)

    return gen


def _emit_prefetch_warp(
    builder: TraceBuilder,
    kind: str,
    amap: AddressMap,
    sample: int,
    col_off: int,
    flat_begin: int,
    rows: list[int],
    warp_uid: int,
    distance: int,
    spill_pairs: float,
    spill_lines: int,
) -> None:
    """Lower one prefetching warp straight into the trace builder.

    Op-for-op the stream of :func:`_make_prefetch_program`; the builder
    fuses the dependency-free trigger/epilogue ALU ops into the
    preceding consume burst as they are appended.
    """
    addr_alu = cal.ADDR_CALC_ALU
    consume_alu = cal.ACCUM_ALU + cal.PF_CONSUME_EXTRA_ALU[kind]
    trigger_alu = cal.PF_TRIGGER_ALU
    idx_base = amap.index_addr(flat_begin)
    row_base = amap.row_addr(0) + col_off
    row_bytes = amap.row_bytes
    local_line = AddressMap.local_line

    # Direct column appends (the emit-per-op path is too slow for the
    # hot builders); the only fusion opportunities in this stream are
    # the dependency-free trigger and epilogue ALU ops, which always
    # follow an ALU burst and are folded in by hand below.
    kind_col = builder.kind
    a_col = builder.a
    b_col = builder.b
    tag_col = builder.tag
    dep_col = builder.dep

    def alu(cycles: int, dep: int) -> None:
        kind_col.append(OP_ALU)
        a_col.append(cycles)
        b_col.append(0)
        tag_col.append(-1)
        dep_col.append(dep)

    kind_col.append(OP_LD_GLOBAL)
    a_col.append(amap.offsets_addr(sample))
    b_col.append(1)
    tag_col.append(TAG_OFF)
    dep_col.append(-1)
    alu(cal.PROLOGUE_ALU, TAG_OFF)
    n = len(rows)
    spill_acc = 0.0
    spill_slot = 0
    i = 0
    while i < n:
        batch = distance if i + distance <= n else n - i
        a_col[-1] += trigger_alu  # fused: previous op is always an ALU
        # --- prefetch burst: gather loads issued back-to-back ------
        if kind == "l1d":
            kind_col.extend(_L1D_BURST_KINDS * batch)
            a_col.extend(x for j in range(batch) for x in (
                idx_base + 8 * (i + j), cal.L1DPF_BURST_ALU,
                row_base + rows[i + j] * row_bytes,
            ))
            b_col.extend(_BURST_B * batch)
            tag_col.extend(_BURST_TAG_FIXED * batch)
            dep_col.extend(_BURST_DEP * batch)
        else:
            kind_col.extend(_BURST_KINDS * batch)
            a_col.extend(x for j in range(batch) for x in (
                idx_base + 8 * (i + j), addr_alu,
                row_base + rows[i + j] * row_bytes,
            ))
            b_col.extend(_BURST_B * batch)
            tag_col.extend(x for j in range(batch) for x in (
                TAG_IDX, -1, TAG_PF_BASE + j,
            ))
            dep_col.extend(_BURST_DEP * batch)
        # --- park the burst in the buffer station -------------------
        if kind == "shared":
            kind_col.extend((OP_ST_SHARED,) * batch)
            a_col.extend((0,) * batch)
            b_col.extend((0,) * batch)
            tag_col.extend((-1,) * batch)
            dep_col.extend(TAG_PF_BASE + j for j in range(batch))
        elif kind == "local":
            kind_col.extend((OP_ST_LOCAL,) * batch)
            a_col.extend(
                local_line(warp_uid, LMPF_SLOT_BASE + j)
                for j in range(batch)
            )
            b_col.extend((4,) * batch)
            tag_col.extend((-1,) * batch)
            dep_col.extend(TAG_PF_BASE + j for j in range(batch))
        # --- consume one iteration at a time ------------------------
        for j in range(batch):
            if kind == "register":
                alu(consume_alu, TAG_PF_BASE + j)
            elif kind == "shared":
                kind_col.append(OP_LD_SHARED)
                a_col.append(0)
                b_col.append(0)
                tag_col.append(TAG_SMEM)
                dep_col.append(-1)
                alu(consume_alu, TAG_SMEM)
            elif kind == "local":
                kind_col.append(OP_LD_LOCAL)
                a_col.append(local_line(warp_uid, LMPF_SLOT_BASE + j))
                b_col.append(4)
                tag_col.append(TAG_LOCAL_PF)
                dep_col.append(-1)
                alu(consume_alu, TAG_LOCAL_PF)
            else:  # l1d: the demand loop runs in full, hitting L1
                kind_col.extend(_BURST_KINDS)
                a_col.extend((
                    idx_base + 8 * (i + j), addr_alu,
                    row_base + rows[i + j] * row_bytes,
                ))
                b_col.extend(_BURST_B)
                tag_col.extend((TAG_IDX, -1, TAG_PF_BASE))
                dep_col.extend(_BURST_DEP)
                alu(consume_alu, TAG_PF_BASE)
            spill_acc += spill_pairs
            while spill_acc >= 1.0:
                spill_acc -= 1.0
                addr = local_line(warp_uid, spill_slot % spill_lines)
                spill_slot += 1
                kind_col.extend(_SPILL_KINDS)
                a_col.extend((addr, addr, cal.SPILL_CONSUME_ALU))
                b_col.extend(_SPILL_B)
                tag_col.extend(_SPILL_TAG)
                dep_col.extend(_SPILL_DEP)
        i += batch
    a_col[-1] += cal.EPILOGUE_ALU  # fused: previous op is always an ALU
    kind_col.append(OP_ST_GLOBAL)
    a_col.append(amap.output_addr(sample, col_off))
    b_col.append(4)
    tag_col.append(-1)
    dep_col.append(-1)


# Column patterns for the prefetch burst (index load -> address ALU ->
# row load / L1 prefetch), repeated ``batch`` times per trigger.
_BURST_KINDS = (OP_LD_GLOBAL, OP_ALU, OP_LD_GLOBAL)
_L1D_BURST_KINDS = (OP_LD_GLOBAL, OP_ALU, OP_PREFETCH_L1)
_BURST_B = (1, 0, 4)
_BURST_TAG_FIXED = (TAG_IDX, -1, -1)
_BURST_DEP = (-1, TAG_IDX, -1)


def build_prefetch_trace(
    trace: EmbeddingTrace,
    build: KernelBuild,
    amap: AddressMap,
    *,
    warp_uid_base: int = 0,
) -> CompiledTrace:
    """Compiled trace for every warp of a prefetching kernel launch."""
    if build.prefetch is None:
        raise ValueError("kernel build has no prefetch scheme")
    spill_pairs, spill_lines = spill_state(build)
    builder = TraceBuilder()
    uid = warp_uid_base
    for sample, col_off, begin, rows in iter_warp_work(
            trace, amap.row_bytes):
        _emit_prefetch_warp(
            builder, build.prefetch, amap, sample, col_off, begin, rows,
            uid, build.prefetch_distance, spill_pairs, spill_lines,
        )
        builder.end_warp()
        uid += 1
    return builder.build()


def build_prefetch_programs(
    trace: EmbeddingTrace,
    build: KernelBuild,
    amap: AddressMap,
    *,
    warp_uid_base: int = 0,
) -> list[WarpProgram]:
    """Programs for every warp of a prefetching kernel launch."""
    if build.prefetch is None:
        raise ValueError("kernel build has no prefetch scheme")
    spill_pairs, spill_lines = spill_state(build)
    programs: list[WarpProgram] = []
    uid = warp_uid_base
    for sample, col_off, begin, rows in iter_warp_work(
            trace, amap.row_bytes):
        programs.append(
            _make_prefetch_program(
                build.prefetch, amap, sample, col_off, begin, rows,
                uid, build.prefetch_distance, spill_pairs, spill_lines,
            )
        )
        uid += 1
    return programs
