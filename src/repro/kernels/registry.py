"""Dispatch from a compiled kernel build to its warp-program builder.

Every kernel variant has two equivalent emitters: generator programs
(:func:`build_programs`, the engine's reference path) and structured
compiled traces (:func:`build_trace`, the fast path).  Callers that
only want the simulation result should prefer :func:`build_trace`.
"""

from __future__ import annotations

from repro.datasets.trace import EmbeddingTrace
from repro.gpusim.trace import CompiledTrace
from repro.kernels.address_map import AddressMap
from repro.kernels.compiler import KernelBuild
from repro.kernels.embedding_bag import (
    WarpProgram,
    build_base_programs,
    build_base_trace,
)
from repro.kernels.prefetch import build_prefetch_programs, build_prefetch_trace


def build_programs(
    trace: EmbeddingTrace,
    build: KernelBuild,
    amap: AddressMap,
    *,
    warp_uid_base: int = 0,
) -> list[WarpProgram]:
    """Warp programs for one table's kernel launch under any variant."""
    if build.prefetch is None:
        return build_base_programs(
            trace, build, amap, warp_uid_base=warp_uid_base
        )
    return build_prefetch_programs(
        trace, build, amap, warp_uid_base=warp_uid_base
    )


def build_trace(
    trace: EmbeddingTrace,
    build: KernelBuild,
    amap: AddressMap,
    *,
    warp_uid_base: int = 0,
) -> CompiledTrace:
    """Compiled warp trace for one table's kernel launch (fast path)."""
    if build.prefetch is None:
        return build_base_trace(
            trace, build, amap, warp_uid_base=warp_uid_base
        )
    return build_prefetch_trace(
        trace, build, amap, warp_uid_base=warp_uid_base
    )
