"""Dispatch from a compiled kernel build to its warp-program builder."""

from __future__ import annotations

from repro.datasets.trace import EmbeddingTrace
from repro.kernels.address_map import AddressMap
from repro.kernels.compiler import KernelBuild
from repro.kernels.embedding_bag import WarpProgram, build_base_programs
from repro.kernels.prefetch import build_prefetch_programs


def build_programs(
    trace: EmbeddingTrace,
    build: KernelBuild,
    amap: AddressMap,
    *,
    warp_uid_base: int = 0,
) -> list[WarpProgram]:
    """Warp programs for one table's kernel launch under any variant."""
    if build.prefetch is None:
        return build_base_programs(
            trace, build, amap, warp_uid_base=warp_uid_base
        )
    return build_prefetch_programs(
        trace, build, amap, warp_uid_base=warp_uid_base
    )
