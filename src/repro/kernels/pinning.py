"""Application-aware L2 pinning (paper Section IV-C, Figure 10).

The four-step design:

1. *offline* identification of the hottest rows (we profile a separate
   calibration trace drawn from the same distribution — never the trace
   being timed, so the profiling is honest),
2. load those indices to the GPU,
3. run a small CUDA kernel issuing ``prefetch.global.L2::evict_last``
   for every line of every hot row, pinning them in the L2 set-aside,
4. launch the normal embedding-bag kernel.

The set-aside is capped at 75% of L2 (30 MB on A100), which holds
``30 MB / 512 B = 61440`` vectors — the paper's "top 60K" rows.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.config.gpu import CACHE_LINE_BYTES, GpuSpec
from repro.datasets.trace import EmbeddingTrace
from repro.gpusim.engine import RawKernelStats, run_kernel
from repro.gpusim.hierarchy import MemoryHierarchy
from repro.gpusim.isa import OP_ALU, OP_PREFETCH_L2
from repro.gpusim.trace import CompiledTrace, TraceBuilder
from repro.kernels.address_map import AddressMap
# The offline hot-row profiling (step 1 of Fig. 10) lives in the shared
# policy module now — memstore admission, drift re-pinning and L2P all
# rank popularity the same way.  Re-exported under its historic name.
from repro.memstore.policy import profile_hot_rows

__all__ = [
    "build_pin_kernel_programs",
    "build_pin_kernel_trace",
    "hot_row_lines",
    "pin_hot_rows",
    "pinnable_rows",
    "pinned_coverage",
    "profile_hot_rows",
    "simulate_pin_kernel",
]

_LINE_SHIFT = CACHE_LINE_BYTES.bit_length() - 1

#: ALU overhead per pinned line in the pin kernel (loop + address math).
_PIN_LOOP_ALU = 4


def pinnable_rows(set_aside_bytes: int, row_bytes: int) -> int:
    """How many embedding vectors fit in the L2 set-aside."""
    return set_aside_bytes // row_bytes


def hot_row_lines(rows: np.ndarray, amap: AddressMap) -> list[int]:
    """All cache lines backing the given rows, in pin order."""
    lines_per_row = amap.row_bytes // CACHE_LINE_BYTES
    lines: list[int] = []
    for row in rows:
        base = amap.row_addr(int(row))
        for chunk in range(lines_per_row):
            lines.append((base + chunk * CACHE_LINE_BYTES) >> _LINE_SHIFT)
    return lines


def pin_hot_rows(
    hierarchy: MemoryHierarchy, rows: np.ndarray, amap: AddressMap
) -> int:
    """Directly pin (and warm) the hot rows' lines in the L2 set-aside,
    modelling a pin kernel whose cost is hidden behind host-side work
    (the paper overlaps it with CPU pre-processing).  Returns the number
    of lines actually pinned."""
    pinned = 0
    for line in hot_row_lines(rows, amap):
        if hierarchy.l2.pin(line):
            pinned += 1
    return pinned


def build_pin_kernel_programs(
    rows: np.ndarray, amap: AddressMap, gpu: GpuSpec
):
    """Warp programs for the explicit pin kernel (step 3 of Fig. 10):
    hot-row lines are strided across one block of warps per SM, each warp
    issuing ``prefetch.global.L2::evict_last`` back to back."""
    lines = hot_row_lines(rows, amap)
    n_warps = max(1, gpu.num_sms * gpu.warps_per_block)

    def make_program(start: int):
        my_lines = lines[start::n_warps]

        def gen() -> Iterator[tuple]:
            for line in my_lines:
                yield (OP_PREFETCH_L2, line << _LINE_SHIFT, 4, None, None)
                yield (OP_ALU, _PIN_LOOP_ALU, 0, None, None)

        return gen

    return [make_program(w) for w in range(n_warps)]


def build_pin_kernel_trace(
    rows: np.ndarray, amap: AddressMap, gpu: GpuSpec
) -> CompiledTrace:
    """Compiled trace of the pin kernel (fast-path twin of
    :func:`build_pin_kernel_programs`)."""
    lines = hot_row_lines(rows, amap)
    n_warps = max(1, gpu.num_sms * gpu.warps_per_block)
    builder = TraceBuilder()
    emit = builder.append
    for start in range(n_warps):
        for line in lines[start::n_warps]:
            emit(OP_PREFETCH_L2, line << _LINE_SHIFT, 4)
            emit(OP_ALU, _PIN_LOOP_ALU)
        builder.end_warp()
    return builder.build()


def simulate_pin_kernel(
    gpu: GpuSpec,
    hierarchy: MemoryHierarchy,
    rows: np.ndarray,
    amap: AddressMap,
) -> RawKernelStats:
    """Run the pin kernel through the engine (for overhead reporting)."""
    programs = build_pin_kernel_trace(rows, amap, gpu)
    return run_kernel(
        gpu,
        hierarchy,
        programs,
        warps_per_sm=gpu.warps_per_block,
        warps_per_block=gpu.warps_per_block,
        name="l2_pin_kernel",
    )


def pinned_coverage(trace: EmbeddingTrace, rows: np.ndarray) -> float:
    """Fraction of a trace's accesses that hit the pinned row set."""
    if trace.n_accesses == 0:
        return 0.0
    pinned = np.isin(trace.indices, rows)
    return float(np.count_nonzero(pinned) / trace.n_accesses)
