"""Calibration constants for the embedding-bag kernel model.

These are the free parameters of the reproduction.  Each is pinned to a
specific observation in the paper (or in NCU traces of the real kernel)
and DESIGN.md explains the fitting approach; everything else in the
simulator is structural.

Instruction-cost model (warp-level instructions per gather-reduce
iteration of Algorithm 2):

* The real kernel issues ~50 instructions per pooled lookup (derived
  from Table IV: 2.47M load insts, 0.77 issue slots/scheduler/cycle and
  138 us for ``one_item`` imply ~7.9K instructions per warp for 150
  lookups — 64-bit index arithmetic, bounds checks, predication and
  loop control around the two loads).
* Of those, the address-generation burst depends on the just-loaded
  index (it sits on the serial chain between the index load and the row
  load); the accumulate tail depends on the row data.
"""

from __future__ import annotations

#: ALU burst between the index load and the row load (64-bit address
#: math, bounds checks, loop control).  Depends on the index value.
ADDR_CALC_ALU = 50

#: ALU tail after the row data arrives (FMA accumulate + loop branch).
ACCUM_ALU = 12

#: One-time per-warp prologue (offsets load consume, setup).
PROLOGUE_ALU = 20

#: One-time per-warp epilogue around the output store.
EPILOGUE_ALU = 4

#: Registers/thread the stock PyTorch EmbeddingBag kernel needs
#: (Table IV: 74 registers -> 24 resident warps on A100).
BASE_DEMAND_REGS = 74

#: Extra register demand of register-based prefetching: fixed overhead
#: plus per-slot buffer registers.  Fitted so that RPF without OptMT
#: keeps 24 resident warps at d=4 but collapses to 16 at d >= 5
#: (Section VI-B2), under the 256-register warp allocation unit.
RPF_FIXED_REGS = 2
RPF_REGS_PER_SLOT = 1

#: Register demand of the other prefetch variants (buffers live outside
#: the register file).  Fitted to Section VI-B2: nvcc compiles SMPF at
#: 32 warps/SM; LMPF and L1DPF stay at 24.
SMPF_DEMAND_REGS = 62
LMPF_DEMAND_REGS = 70
L1DPF_DEMAND_REGS = 76

#: Shared-memory buffer per block for SMPF: 256 threads x d x 4 B
#: (Figure 8b's ``prefetch_bfr[256][10]``).
SMPF_SMEM_PER_THREAD = 4

#: Extra ALU work per *consume* iteration for each prefetch variant
#: (buffer index arithmetic, modulo trigger).  Fitted to the paper's
#: "37.2% instruction overhead for SMPF" and to L1DPF having the
#: largest overhead / smallest gain (Section VI-B1).
PF_CONSUME_EXTRA_ALU = {
    "register": 8,
    "shared": 10,
    "local": 10,
    "l1d": 12,
}

#: Per-group trigger overhead (the ``pf_cnt % d`` check).
PF_TRIGGER_ALU = 3

#: Address regeneration inside the L1DPF prefetch burst.  Cheaper than
#: the demand-path burst because the compiler CSEs most of the 64-bit
#: math between the prefetch and the demand load of the same element.
L1DPF_BURST_ALU = 6

#: Register spilling: local-memory store+load round-trips per iteration,
#: quadratic in the number of spilled registers (the compiler spills
#: cold values first).  Fitted to two observations at once:
#:   * OptMT (24 spilled regs) adds ~1.07M local loads (Table V vs IV),
#:   * the 64-warp point (42 spilled) shows ~3.3M local loads (Fig. 6).
SPILL_PAIRS_PER_ITER_COEFF = 0.0013

#: ALU cycles consuming a spill reload (it sits on the serial chain).
SPILL_CONSUME_ALU = 2

#: OptMT register caps (Section III-C / VI-B4): the empirically best
#: occupancy is 40 warps on A100 and 32 on H100.  (The paper quotes "42
#: registers" for the A100 OptMT build; under the 256-register warp
#: allocation unit, 48 is the largest cap that still yields 40 warps —
#: see DESIGN.md, Known deviations.)
OPTMT_MAXRREG = {
    "A100-SXM4-80GB": 48,  # -> 40 resident warps
    "H100-NVL": 64,        # -> 32 resident warps
}

#: Fraction of the (full-chip) L1 a kernel's local-memory working set may
#: occupy before local accesses overflow to the L2 (the rest of the L1
#: serves the gather stream).
LOCAL_L1_BUDGET_FRACTION = 0.85

#: Default prefetch distances (Section VI-B1/B2): every scheme is best
#: at d=2 on top of OptMT; without OptMT the optima differ per buffer.
PF_BEST_DISTANCE_WITH_OPTMT = {
    "register": 2, "shared": 2, "local": 2, "l1d": 2,
}
PF_BEST_DISTANCE_NO_OPTMT = {
    "register": 4, "shared": 10, "local": 10, "l1d": 5,
}


def spill_pairs_per_iter(spilled_regs: int) -> float:
    """Local-memory round-trips per gather iteration for a spill count."""
    if spilled_regs <= 0:
        return 0.0
    return SPILL_PAIRS_PER_ITER_COEFF * spilled_regs * spilled_regs
