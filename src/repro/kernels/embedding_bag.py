"""Warp programs for the stock embedding-bag CUDA kernel (Algorithm 2).

Work partitioning follows the paper's Figure 4: each sample's output row
is split across ``row_bytes / 128`` warps (4 warps for a 128-dim fp32
table); every warp runs the full pooling loop for its 32-element chunk.
Per gather-reduce iteration a warp:

1. loads ``indices[idx]`` (one 32-B sector, broadcast),
2. burns the address-generation ALU burst (depends on the index),
3. loads its 128-B chunk of the embedding row (four sectors),
4. accumulates (depends on the row data),

plus register-spill round-trips to local memory when the compiler was
forced below the kernel's register demand.

Each kernel variant has two interchangeable emitters: the generator
*programs* (the readable reference the engine's slow path consumes) and
a structured *trace builder* that lowers the same op stream straight
into a :class:`~repro.gpusim.trace.CompiledTrace` for the engine's fast
path — no generators, no per-op tuples, consecutive ALU ops fused at
compile time.  ``tests/gpusim/test_trace_compile.py`` pins the two
emitters to each other.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.config.gpu import CACHE_LINE_BYTES
from repro.datasets.trace import EmbeddingTrace
from repro.gpusim.isa import (
    OP_ALU,
    OP_LD_GLOBAL,
    OP_LD_LOCAL,
    OP_ST_GLOBAL,
    OP_ST_LOCAL,
)
from repro.gpusim.trace import CompiledTrace, TraceBuilder
from repro.kernels import calibration as cal
from repro.kernels.address_map import AddressMap
from repro.kernels.compiler import KernelBuild

WarpProgram = Callable[[], Iterator[tuple]]

# Scoreboard tag assignments (per-warp namespace).
TAG_OFF = 0
TAG_IDX = 1
TAG_ROW = 2
TAG_SPILL = 3
TAG_SMEM = 4
TAG_LOCAL_PF = 5
TAG_PF_BASE = 16  # prefetch slots use TAG_PF_BASE + j

#: Local-memory slot where LMPF buffers start (spill slots come first).
LMPF_SLOT_BASE = 48


def warps_per_sample(row_bytes: int) -> int:
    if row_bytes % CACHE_LINE_BYTES:
        raise ValueError("row size must be a multiple of the 128-B line")
    return row_bytes // CACHE_LINE_BYTES


def iter_warp_work(
    trace: EmbeddingTrace, row_bytes: int
) -> Iterator[tuple[int, int, int, list[int]]]:
    """Yield ``(sample, col_byte_offset, flat_begin, rows)`` per warp, in
    launch order (all warps of sample 0, then sample 1, ...).

    The offsets array is converted to plain ints once and each sample's
    row list is materialized exactly once — the chunk loop re-yields the
    same list object for every warp of the sample.
    """
    col_offs = tuple(
        chunk * CACHE_LINE_BYTES
        for chunk in range(warps_per_sample(row_bytes))
    )
    bounds = trace.offsets.tolist()
    indices = trace.indices
    for sample in range(trace.batch_size):
        begin = bounds[sample]
        rows = indices[begin:bounds[sample + 1]].tolist()
        for col_off in col_offs:
            yield sample, col_off, begin, rows


def spill_state(build: KernelBuild) -> tuple[float, int]:
    """(spill round-trips per iteration, distinct spill lines per warp)."""
    return build.spill_pairs_per_iter, max(1, build.spilled_regs)


def make_base_warp_program(
    amap: AddressMap,
    sample: int,
    col_off: int,
    flat_begin: int,
    rows: list[int],
    warp_uid: int,
    spill_pairs: float,
    spill_lines: int,
) -> WarpProgram:
    """The off-the-shelf kernel body for one warp (plus spill traffic)."""
    row_bytes = amap.row_bytes
    addr_alu = cal.ADDR_CALC_ALU
    accum_alu = cal.ACCUM_ALU
    local_line = AddressMap.local_line

    def gen() -> Iterator[tuple]:
        yield (OP_LD_GLOBAL, amap.offsets_addr(sample), 1, TAG_OFF, None)
        yield (OP_ALU, cal.PROLOGUE_ALU, 0, None, TAG_OFF)
        idx_base = amap.index_addr(flat_begin)
        spill_acc = 0.0
        spill_slot = 0
        for i, row in enumerate(rows):
            yield (OP_LD_GLOBAL, idx_base + 8 * i, 1, TAG_IDX, None)
            yield (OP_ALU, addr_alu, 0, None, TAG_IDX)
            yield (OP_LD_GLOBAL, amap.row_addr(row, col_off), 4,
                   TAG_ROW, None)
            yield (OP_ALU, accum_alu, 0, None, TAG_ROW)
            spill_acc += spill_pairs
            while spill_acc >= 1.0:
                spill_acc -= 1.0
                addr = local_line(warp_uid, spill_slot % spill_lines)
                spill_slot += 1
                yield (OP_ST_LOCAL, addr, 4, None, None)
                yield (OP_LD_LOCAL, addr, 4, TAG_SPILL, None)
                yield (OP_ALU, cal.SPILL_CONSUME_ALU, 0, None, TAG_SPILL)
        yield (OP_ALU, cal.EPILOGUE_ALU, 0, None, None)
        yield (OP_ST_GLOBAL, amap.output_addr(sample, col_off), 4,
               None, None)

    return gen


def build_base_programs(
    trace: EmbeddingTrace,
    build: KernelBuild,
    amap: AddressMap,
    *,
    warp_uid_base: int = 0,
) -> list[WarpProgram]:
    """Programs for every warp of a baseline (or OptMT) kernel launch."""
    spill_pairs, spill_lines = spill_state(build)
    programs: list[WarpProgram] = []
    uid = warp_uid_base
    for sample, col_off, begin, rows in iter_warp_work(
            trace, amap.row_bytes):
        programs.append(
            make_base_warp_program(
                amap, sample, col_off, begin, rows,
                uid, spill_pairs, spill_lines,
            )
        )
        uid += 1
    return programs


# Per-gather-iteration column patterns for the structured trace builder
# (index load -> address ALU -> row load -> accumulate ALU).
_ROW_KINDS = (OP_LD_GLOBAL, OP_ALU, OP_LD_GLOBAL, OP_ALU)
_ROW_B = (1, 0, 4, 0)
_ROW_TAG = (TAG_IDX, -1, TAG_ROW, -1)
_ROW_DEP = (-1, TAG_IDX, -1, TAG_ROW)


def build_base_trace(
    trace: EmbeddingTrace,
    build: KernelBuild,
    amap: AddressMap,
    *,
    warp_uid_base: int = 0,
) -> CompiledTrace:
    """Compiled trace for a baseline (or OptMT) kernel launch.

    Emits exactly the op stream of :func:`build_base_programs`, lowered
    straight into flat columns: per gather iteration one 4-op pattern is
    extended onto the columns, and the epilogue ALU fuses into the
    trailing accumulate (or spill-consume) ALU burst.
    """
    spill_pairs, spill_lines = spill_state(build)
    row_bytes = amap.row_bytes
    addr_alu = cal.ADDR_CALC_ALU
    accum_alu = cal.ACCUM_ALU
    prologue_alu = cal.PROLOGUE_ALU
    epilogue_alu = cal.EPILOGUE_ALU
    spill_consume_alu = cal.SPILL_CONSUME_ALU
    local_line = AddressMap.local_line
    row_base = amap.row_addr(0)

    builder = TraceBuilder()
    kind_col = builder.kind
    a_col = builder.a
    b_col = builder.b
    tag_col = builder.tag
    dep_col = builder.dep
    end_warp = builder.end_warp

    uid = warp_uid_base
    for sample, col_off, begin, rows in iter_warp_work(trace, row_bytes):
        kind_col.append(OP_LD_GLOBAL)
        a_col.append(amap.offsets_addr(sample))
        b_col.append(1)
        tag_col.append(TAG_OFF)
        dep_col.append(-1)
        kind_col.append(OP_ALU)
        a_col.append(prologue_alu)
        b_col.append(0)
        tag_col.append(-1)
        dep_col.append(TAG_OFF)
        idx_addr = amap.index_addr(begin)
        chunk_base = row_base + col_off
        if spill_pairs == 0.0:
            for row in rows:
                kind_col.extend(_ROW_KINDS)
                a_col.extend((
                    idx_addr, addr_alu,
                    chunk_base + row * row_bytes, accum_alu,
                ))
                b_col.extend(_ROW_B)
                tag_col.extend(_ROW_TAG)
                dep_col.extend(_ROW_DEP)
                idx_addr += 8
        else:
            spill_acc = 0.0
            spill_slot = 0
            for row in rows:
                kind_col.extend(_ROW_KINDS)
                a_col.extend((
                    idx_addr, addr_alu,
                    chunk_base + row * row_bytes, accum_alu,
                ))
                b_col.extend(_ROW_B)
                tag_col.extend(_ROW_TAG)
                dep_col.extend(_ROW_DEP)
                idx_addr += 8
                spill_acc += spill_pairs
                while spill_acc >= 1.0:
                    spill_acc -= 1.0
                    addr = local_line(uid, spill_slot % spill_lines)
                    spill_slot += 1
                    kind_col.extend(_SPILL_KINDS)
                    a_col.extend((addr, addr, spill_consume_alu))
                    b_col.extend(_SPILL_B)
                    tag_col.extend(_SPILL_TAG)
                    dep_col.extend(_SPILL_DEP)
        # epilogue ALU is dependency-free and always follows an ALU
        # (prologue, accumulate, or spill-consume): fuse it
        a_col[-1] += epilogue_alu
        kind_col.append(OP_ST_GLOBAL)
        a_col.append(amap.output_addr(sample, col_off))
        b_col.append(4)
        tag_col.append(-1)
        dep_col.append(-1)
        end_warp()
        uid += 1
    return builder.build()


# spill round-trip column pattern: st.local -> ld.local -> consume ALU
_SPILL_KINDS = (OP_ST_LOCAL, OP_LD_LOCAL, OP_ALU)
_SPILL_B = (4, 4, 0)
_SPILL_TAG = (-1, TAG_SPILL, -1)
_SPILL_DEP = (-1, -1, TAG_SPILL)


def expected_global_loads(trace: EmbeddingTrace, row_bytes: int) -> int:
    """Analytic warp-level global load count for the baseline kernel:
    one offsets load per warp plus (index + row) per iteration."""
    n_warps = trace.batch_size * warps_per_sample(row_bytes)
    return n_warps + 2 * trace.n_accesses * warps_per_sample(row_bytes)


_SPILL_YIELDS = 3  # st.local + ld.local + consume ALU per round-trip


def spill_ops_estimate(build: KernelBuild, n_iters: int) -> int:
    """Rough micro-op count added by spill traffic (for sizing tests)."""
    return int(build.spill_pairs_per_iter * n_iters) * _SPILL_YIELDS
