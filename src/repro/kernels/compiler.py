"""The "nvcc" model: kernel variant -> registers, occupancy, spills.

Mirrors the compiler behaviour the paper exploits:

* each kernel variant has a register *demand* (stock kernel: 74),
* ``-maxrregcount`` caps the allocation; demand beyond the cap spills
  to local memory (quadratically growing per-iteration traffic, see
  :mod:`repro.kernels.calibration`),
* occupancy follows from the allocated registers and shared-memory
  usage via :mod:`repro.gpusim.occupancy`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.gpu import WARP_SIZE, GpuSpec
from repro.gpusim.occupancy import KernelResources, resident_warps
from repro.kernels import calibration as cal

PREFETCH_KINDS = ("register", "shared", "local", "l1d")


@dataclass(frozen=True)
class KernelBuild:
    """A compiled embedding-bag kernel variant."""

    gpu_name: str
    prefetch: str | None
    prefetch_distance: int
    maxrregcount: int | None
    demand_regs: int
    allocated_regs: int
    spilled_regs: int
    spill_pairs_per_iter: float
    smem_per_block: int
    warps_per_sm: int
    warps_per_block: int

    @property
    def label(self) -> str:
        parts = []
        if self.prefetch:
            parts.append(
                {"register": "RPF", "shared": "SMPF",
                 "local": "LMPF", "l1d": "L1DPF"}[self.prefetch]
                + f"(d={self.prefetch_distance})"
            )
        if self.maxrregcount is not None:
            parts.append(f"maxrreg={self.maxrregcount}")
        return "+".join(parts) if parts else "base"


def demand_registers(prefetch: str | None, prefetch_distance: int) -> int:
    """Register demand of a kernel variant, before any compiler cap."""
    if prefetch is None:
        return cal.BASE_DEMAND_REGS
    if prefetch == "register":
        return (
            cal.BASE_DEMAND_REGS
            + cal.RPF_FIXED_REGS
            + cal.RPF_REGS_PER_SLOT * prefetch_distance
        )
    if prefetch == "shared":
        return cal.SMPF_DEMAND_REGS
    if prefetch == "local":
        return cal.LMPF_DEMAND_REGS
    if prefetch == "l1d":
        return cal.L1DPF_DEMAND_REGS
    raise ValueError(f"unknown prefetch kind {prefetch!r}")


def compile_kernel(
    gpu: GpuSpec,
    *,
    prefetch: str | None = None,
    prefetch_distance: int = 0,
    maxrregcount: int | None = None,
    warps_per_block: int = 8,
) -> KernelBuild:
    """Resolve a kernel variant to its resources and occupancy."""
    if prefetch is not None:
        if prefetch not in PREFETCH_KINDS:
            raise ValueError(
                f"prefetch must be one of {PREFETCH_KINDS}, got {prefetch!r}"
            )
        if prefetch_distance < 1:
            raise ValueError("prefetching needs a distance >= 1")
    if maxrregcount is not None and not 16 <= maxrregcount <= 255:
        raise ValueError("maxrregcount must be in [16, 255]")

    demand = demand_registers(prefetch, prefetch_distance)
    allocated = demand if maxrregcount is None else min(demand, maxrregcount)
    spilled = demand - allocated
    smem = (
        cal.SMPF_SMEM_PER_THREAD * prefetch_distance
        * warps_per_block * WARP_SIZE
        if prefetch == "shared" else 0
    )
    resources = KernelResources(
        regs_per_thread=allocated,
        smem_per_block=smem,
        warps_per_block=warps_per_block,
    )
    return KernelBuild(
        gpu_name=gpu.name,
        prefetch=prefetch,
        prefetch_distance=prefetch_distance,
        maxrregcount=maxrregcount,
        demand_regs=demand,
        allocated_regs=allocated,
        spilled_regs=spilled,
        spill_pairs_per_iter=cal.spill_pairs_per_iter(spilled),
        smem_per_block=smem,
        warps_per_sm=resident_warps(gpu, resources),
        warps_per_block=warps_per_block,
    )


def optmt_maxrreg(gpu: GpuSpec) -> int:
    """The paper's OptMT register cap for a GPU (40 warps on A100,
    32 on H100).  Slice names resolve to their parent chip."""
    base = gpu.name.split("-slice")[0]
    try:
        return cal.OPTMT_MAXRREG[base]
    except KeyError:
        raise KeyError(f"no OptMT calibration for GPU {gpu.name!r}") from None
