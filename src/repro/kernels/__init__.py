"""Embedding-bag kernel variants and the compiler model."""

from repro.kernels.address_map import LOCAL_WINDOW_BYTES, AddressMap
from repro.kernels.compiler import (
    PREFETCH_KINDS,
    KernelBuild,
    compile_kernel,
    demand_registers,
    optmt_maxrreg,
)
from repro.kernels.embedding_bag import (
    build_base_programs,
    expected_global_loads,
    iter_warp_work,
    warps_per_sample,
)
from repro.kernels.pinning import (
    build_pin_kernel_programs,
    hot_row_lines,
    pin_hot_rows,
    pinnable_rows,
    pinned_coverage,
    profile_hot_rows,
    simulate_pin_kernel,
)
from repro.kernels.prefetch import build_prefetch_programs
from repro.kernels.registry import build_programs

__all__ = [
    "AddressMap",
    "KernelBuild",
    "LOCAL_WINDOW_BYTES",
    "PREFETCH_KINDS",
    "build_base_programs",
    "build_pin_kernel_programs",
    "build_prefetch_programs",
    "build_programs",
    "compile_kernel",
    "demand_registers",
    "expected_global_loads",
    "hot_row_lines",
    "iter_warp_work",
    "optmt_maxrreg",
    "pin_hot_rows",
    "pinnable_rows",
    "pinned_coverage",
    "profile_hot_rows",
    "simulate_pin_kernel",
    "warps_per_sample",
]
