"""Virtual address layout for the simulated embedding-bag kernel.

Gives every simulated object a real byte address so cache sets, 4 KB
pages and sectors behave like they would on hardware: the offsets and
indices arrays are contiguous and stream-friendly, embedding tables are
large row-major regions, and each warp gets a private local-memory
window for register spills and LMPF buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.gpu import CACHE_LINE_BYTES

_OFFSETS_BASE = 1 << 33
_INDICES_BASE = (1 << 33) + (1 << 28)
_OUTPUT_BASE = (1 << 33) + (1 << 30)
_TABLE_BASE = 1 << 35
_LOCAL_BASE = 1 << 40

#: Address range with *streaming* access semantics (offsets, indices,
#: output).  The memory hierarchy gives these full-chip L1 behaviour —
#: hit after first touch — so that proportional L1 scaling only affects
#: the irregular table gathers it is meant to model.
STREAMING_RANGE = (_OFFSETS_BASE, _TABLE_BASE)

#: Per-warp local-memory window (spill lines + LMPF buffer lines).
LOCAL_WINDOW_BYTES = 8 * 1024


@dataclass(frozen=True)
class AddressMap:
    """Address helpers for one table's kernel launch."""

    row_bytes: int
    table_id: int = 0
    table_stride: int = 1 << 30

    def offsets_addr(self, sample: int) -> int:
        return _OFFSETS_BASE + 8 * sample

    def index_addr(self, flat_index: int) -> int:
        """Address of ``indices[flat_index]`` (int64 elements)."""
        return _INDICES_BASE + 8 * flat_index

    def row_addr(self, row: int, col_byte_offset: int = 0) -> int:
        """Address of a row's ``col_byte_offset`` chunk in the table."""
        return (
            _TABLE_BASE
            + self.table_id * self.table_stride
            + row * self.row_bytes
            + col_byte_offset
        )

    def output_addr(self, sample: int, col_byte_offset: int = 0) -> int:
        return _OUTPUT_BASE + sample * self.row_bytes + col_byte_offset

    @staticmethod
    def local_window(warp_uid: int) -> int:
        """Base of a warp's private local-memory window."""
        return _LOCAL_BASE + warp_uid * LOCAL_WINDOW_BYTES

    @staticmethod
    def local_line(warp_uid: int, slot: int) -> int:
        """One 128-B local line inside a warp's window, by slot."""
        window_lines = LOCAL_WINDOW_BYTES // CACHE_LINE_BYTES
        return (
            AddressMap.local_window(warp_uid)
            + (slot % window_lines) * CACHE_LINE_BYTES
        )
