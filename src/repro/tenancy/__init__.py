"""Multi-tenant model-zoo serving: GPU sharing, HBM arbitration, SLAs.

The paper's envelope assumes one DLRM owning the whole GPU; production
fleets co-locate a *zoo* of recommendation models per device.  This
package models that regime end to end:

* :mod:`~repro.tenancy.zoo` — who shares the fleet: per-tenant model
  variant, traffic scenario, SLA, and HBM floor.
* :mod:`~repro.tenancy.share` — MPS-style concurrent execution: a
  calibrated interference function turns co-runners' SM/HBM demand
  into per-tenant effective latency (exactly 1.0 solo, monotone in
  co-runner load), plus the zoo serving orchestrators.
* :mod:`~repro.tenancy.arbiter` — one GPU's HBM budget waterfilled
  across tenants' embedding caches on marginal hit rate, with exact
  byte conservation, contractual floors, and drift re-arbitration.
"""

from repro.tenancy.arbiter import (
    TenantGrant,
    TenantHitCurve,
    ZooGrant,
    arbitrate,
    rearbitrate_on_drift,
    stores_for_grants,
    tenant_hit_curve,
    zoo_hit_curves,
)
from repro.tenancy.share import (
    ShareDemand,
    TenantCalibration,
    ZooFleetReport,
    ZooReport,
    calibrate_tenant,
    calibrate_zoo,
    contention_factor,
    shared_latency_model,
    simulate_zoo_fleet,
    simulate_zoo_serving,
    zoo_contention,
    zoo_effective_times,
)
from repro.tenancy.zoo import TenantSpec, ZooSpec, example_zoo

__all__ = [
    "ShareDemand",
    "TenantCalibration",
    "TenantGrant",
    "TenantHitCurve",
    "TenantSpec",
    "ZooFleetReport",
    "ZooGrant",
    "ZooReport",
    "ZooSpec",
    "arbitrate",
    "calibrate_tenant",
    "calibrate_zoo",
    "contention_factor",
    "example_zoo",
    "rearbitrate_on_drift",
    "shared_latency_model",
    "simulate_zoo_fleet",
    "simulate_zoo_serving",
    "stores_for_grants",
    "tenant_hit_curve",
    "zoo_contention",
    "zoo_effective_times",
    "zoo_hit_curves",
]
