"""Multi-tenant model zoo: who shares the fleet, and on what terms.

Production recommendation fleets do not dedicate a GPU per model: many
DLRM variants — ranking next to retrieval next to a lightweight
candidate filter — are co-resident on the same devices (the HugeCTR
GPU-embedding-cache inference parameter server is built around exactly
this regime, and Gupta et al.'s characterization shows how differently
such variants stress embedding vs. MLP).  A :class:`TenantSpec` binds
one variant's *model* (its own table sizes and pooling factor), its
*traffic* (a :class:`~repro.traffic.ScenarioSpec`), and its *contract*
(a latency SLA plus a floor on the HBM share the arbiter may never
take away).  A :class:`ZooSpec` is the co-resident collection.

Each tenant samples its own arrival stream from the run seed via
:func:`repro.traffic.scenario.derive_seed`, so streams are mutually
independent but bit-reproducible, and adding a tenant never perturbs
the streams of the tenants already in the zoo.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config.model import PAPER_MODEL, DLRMConfig
from repro.core.schemes import OPTMT, Scheme
from repro.datasets.spec import HOTNESS_PRESETS
from repro.traffic.scenario import (
    ScenarioSpec,
    ScenarioTrace,
    StationarySpec,
    derive_seed,
    generate_arrivals,
)


@dataclass(frozen=True)
class TenantSpec:
    """One co-resident model: variant + traffic + serving contract."""

    name: str
    model: DLRMConfig = field(default_factory=lambda: PAPER_MODEL)
    dataset: str = "med_hot"
    scheme: Scheme = OPTMT
    scenario: ScenarioSpec = field(default_factory=StationarySpec)
    sla_ms: float = 100.0
    #: fraction of this tenant's own table bytes the HBM arbiter must
    #: keep resident whatever the co-tenants demand (its guaranteed
    #: minimum share; 0 = best-effort).
    hbm_floor_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.dataset not in HOTNESS_PRESETS:
            known = ", ".join(HOTNESS_PRESETS)
            raise ValueError(
                f"unknown dataset {self.dataset!r}; known: {known}"
            )
        if self.sla_ms <= 0:
            raise ValueError("sla_ms must be positive")
        if not 0.0 <= self.hbm_floor_fraction <= 1.0:
            raise ValueError("hbm_floor_fraction must be in [0, 1]")

    @property
    def table_bytes(self) -> int:
        """Total embedding footprint of this tenant's model."""
        return self.model.model_bytes

    def stream(self, seed: int = 0) -> ScenarioTrace:
        """This tenant's seeded arrival stream under a run-level seed."""
        return generate_arrivals(
            self.scenario, derive_seed(seed, self.name)
        )


@dataclass(frozen=True)
class ZooSpec:
    """A named collection of tenants co-resident on one fleet."""

    name: str
    tenants: tuple[TenantSpec, ...]

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("zoo must have at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in zoo: {names}")

    @property
    def n_tenants(self) -> int:
        return len(self.tenants)

    @property
    def tenant_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tenants)

    @property
    def total_table_bytes(self) -> int:
        """Aggregate embedding footprint across the zoo."""
        return sum(t.table_bytes for t in self.tenants)

    def tenant(self, name: str) -> TenantSpec:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        known = ", ".join(self.tenant_names)
        raise KeyError(f"no tenant {name!r}; known: {known}")

    def streams(self, seed: int = 0) -> dict[str, ScenarioTrace]:
        """One independent seeded arrival stream per tenant."""
        return {t.name: t.stream(seed) for t in self.tenants}

    def describe(self) -> str:
        gb = self.total_table_bytes / 1024**3
        return (
            f"{self.name} ({self.n_tenants} tenants, "
            f"{gb:.1f} GiB embeddings)"
        )


#: The variant axes the example zoo cycles through: (dataset, table-rows
#: factor, pooling factor, table count) — a heavy ranking model, a
#: cooler mid-size model, a small hot candidate filter, a cold
#: long-tail retrieval model.  Distinct axes per Gupta et al.: what
#: makes co-location interference interesting is that the variants
#: stress HBM, SMs and cache capacity differently.
_EXAMPLE_VARIANTS = (
    ("med_hot", 1.0, 150, 250),
    ("high_hot", 0.5, 70, 120),
    ("low_hot", 0.75, 110, 180),
    ("random", 1.25, 40, 80),
)


def example_zoo(
    n_tenants: int,
    *,
    base_qps: float = 1000.0,
    duration_s: float = 8.0,
    sla_ms: float = 100.0,
    hbm_floor_fraction: float = 0.02,
    name: str | None = None,
) -> ZooSpec:
    """A representative ``n_tenants``-variant zoo for sweeps and tests.

    Tenants cycle through distinct (dataset, table size, pooling
    factor, table count) variants so no two stress the GPU the same
    way; every tenant offers stationary load at ``base_qps`` so
    consolidation sweeps change exactly one variable (the zoo size).
    """
    if n_tenants < 1:
        raise ValueError("n_tenants must be >= 1")
    tenants = []
    for i in range(n_tenants):
        dataset, rows_factor, pooling, tables = _EXAMPLE_VARIANTS[
            i % len(_EXAMPLE_VARIANTS)
        ]
        generation = i // len(_EXAMPLE_VARIANTS)
        model = replace(
            PAPER_MODEL,
            num_tables=tables,
            pooling_factor=pooling,
            table=PAPER_MODEL.table.scaled(rows_factor),
        )
        tenants.append(TenantSpec(
            name=f"{dataset}-v{generation}" if generation else dataset,
            model=model,
            dataset=dataset,
            scenario=StationarySpec(
                base_qps=base_qps, duration_s=duration_s
            ),
            sla_ms=sla_ms,
            hbm_floor_fraction=hbm_floor_fraction,
        ))
    return ZooSpec(
        name=name or f"zoo{n_tenants}", tenants=tuple(tenants)
    )
