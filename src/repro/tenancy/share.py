"""MPS-style concurrent GPU sharing: the interference model.

Co-resident tenants do not time-slice the GPU — under MPS/MIG-style
concurrency their kernels execute simultaneously and contend for the
two resources that gate a DLRM inference kernel: SM issue slots and
HBM bandwidth (the paper's whole characterization is that embedding
kernels live on the memory roofline).  This module models that
contention with a calibrated *interference function*:

    effective latency = solo latency x contention factor

where the factor for tenant *i* is the worst oversubscription across
the shared resources::

    factor_i = max(1, sm_i + sum_j sm_j * load_j,
                      hbm_i + sum_j hbm_j * load_j)   (j != i)

Each tenant's resource demand (:class:`ShareDemand`) comes from its
*solo* kernel profile on the memoized kernel simulator — SM throughput
and HBM-bandwidth utilization are exactly the NCU-style counters the
simulator already reports — and each co-runner's demand is weighted by
its duty cycle (``load``: the fraction of wall time it is actually
executing, measured from its solo serving run).  The shape gives the
three properties the property suite pins: the factor is always
``>= 1.0``, *exactly* ``1.0`` when solo (demands are fractions of the
device, so one tenant alone never oversubscribes), and monotone
non-decreasing in every co-runner's load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.config.gpu import A100_SXM4_80GB, GpuSpec
from repro.config.scale import SimScale
from repro.core.embedding import kernel_workload, run_table_kernel
from repro.core.serving import (
    BatchingPolicy,
    ContinuousBatching,
    LatencyModel,
    StreamReport,
    _serve_tenant_stream_runs,
    fold_stream_report,
)
from repro.datasets.spec import HOTNESS_PRESETS
from repro.dlrm.timing import KERNEL_LAUNCH_US
from repro.fleet.capacity import linear_latency_model
from repro.fleet.report import FleetReport, fold_fleet_report
from repro.fleet.router import _simulate_fleet_tenant_stream_runs
from repro.fleet.topology import FleetSpec
from repro.gpusim.memo import KernelMemo
from repro.memstore.store import HostLink
from repro.telemetry.events import GroupRun
from repro.telemetry.sinks import Sink, emit_run
from repro.tenancy.zoo import TenantSpec, ZooSpec
from repro.traffic.scenario import ScenarioTrace


@dataclass(frozen=True)
class ShareDemand:
    """One tenant's solo demand on the GPU's shared resources.

    Both demands are fractions of the whole device in ``[0, 1]`` —
    the normalization that makes "exactly 1.0 when solo" structural
    rather than calibrated.
    """

    sm_fraction: float
    hbm_fraction: float

    def __post_init__(self) -> None:
        for label, value in (
            ("sm_fraction", self.sm_fraction),
            ("hbm_fraction", self.hbm_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")


def contention_factor(
    own: ShareDemand,
    co_runners: Sequence[tuple[ShareDemand, float]],
) -> float:
    """Latency multiplier for one tenant given its co-runners.

    ``co_runners`` pairs each co-resident tenant's demand with its
    load (duty cycle in ``[0, 1]``).  The factor is the worst
    oversubscription across SM issue and HBM bandwidth: below device
    saturation concurrent kernels coexist for free (factor exactly
    1.0); past it, service rates scale down proportionally.
    """
    sm = own.sm_fraction
    hbm = own.hbm_fraction
    for demand, load in co_runners:
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"co-runner load must be in [0, 1], got {load}")
        sm += demand.sm_fraction * load
        hbm += demand.hbm_fraction * load
    return max(1.0, sm, hbm)


def zoo_contention(
    demands: Mapping[str, ShareDemand],
    loads: Mapping[str, float],
) -> dict[str, float]:
    """Per-tenant contention factors for one co-resident group."""
    missing = sorted(set(demands) - set(loads))
    if missing:
        raise KeyError(f"no load for tenants {missing}")
    return {
        name: contention_factor(
            demands[name],
            [(demands[other], loads[other])
             for other in demands if other != name],
        )
        for name in demands
    }


# ----------------------------------------------------------------------
# calibration off the memoized kernel simulator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantCalibration:
    """One tenant's solo numbers on one GPU: curve + demand + stage time."""

    tenant: str
    gpu_name: str
    demand: ShareDemand
    embedding_stage_us: float
    latency_ms: LatencyModel = field(repr=False, compare=False)


def calibrate_tenant(
    tenant: TenantSpec,
    gpu: GpuSpec = A100_SXM4_80GB,
    *,
    num_sms: int = 2,
    seed: int = 0,
    memo: KernelMemo | None = None,
) -> TenantCalibration:
    """Solo calibration: batch-latency curve and shared-resource demand.

    One memoized kernel run per (tenant model, dataset, scheme, GPU):
    the embedding-stage time anchors a linear batch-latency curve
    (embedding is bandwidth-bound, dense stages from the roofline) and
    the profile's NCU-style counters — SM throughput and average HBM
    bandwidth utilization — become the tenant's :class:`ShareDemand`.
    """
    scale = SimScale(name=f"tenancy{num_sms}", num_sms=num_sms)
    workload = kernel_workload(gpu, tenant.model, scale)
    result = run_table_kernel(
        workload, HOTNESS_PRESETS[tenant.dataset], tenant.scheme,
        seed=seed, memo=memo,
    )
    emb_us = tenant.model.num_tables * (
        result.kernel_time_us + KERNEL_LAUNCH_US
    )
    profile = result.profile
    demand = ShareDemand(
        sm_fraction=min(1.0, max(0.0, profile.sm_throughput_pct / 100.0)),
        hbm_fraction=min(1.0, max(0.0, profile.hbm_bw_util_pct / 100.0)),
    )
    return TenantCalibration(
        tenant=tenant.name,
        gpu_name=gpu.name,
        demand=demand,
        embedding_stage_us=emb_us,
        latency_ms=linear_latency_model(
            gpu,
            emb_us=emb_us,
            emb_batch=tenant.model.batch_size,
            model=tenant.model,
        ),
    )


def calibrate_zoo(
    zoo: ZooSpec,
    gpus: Sequence[GpuSpec] = (A100_SXM4_80GB,),
    *,
    num_sms: int = 2,
    seed: int = 0,
    memo: KernelMemo | None = None,
) -> dict[str, dict[str, TenantCalibration]]:
    """``calibrations[gpu_name][tenant]`` for every (GPU type, tenant)."""
    unique = {gpu.name: gpu for gpu in gpus}
    return {
        gpu_name: {
            tenant.name: calibrate_tenant(
                tenant, gpu, num_sms=num_sms, seed=seed, memo=memo,
            )
            for tenant in zoo.tenants
        }
        for gpu_name, gpu in unique.items()
    }


def zoo_effective_times(
    zoo: ZooSpec,
    gpus: Sequence[GpuSpec],
    *,
    hbm_utilization: float = 0.9,
    num_sms: int = 2,
    seed: int = 0,
    memo: KernelMemo | None = None,
) -> dict[str, dict[str, float]]:
    """Per-GPU-type tiered effective batch time for every tenant.

    The cost surface :func:`repro.fleet.placement.place_zoo` balances:
    each tenant's solo embedding-stage time on each GPU type, plus the
    host-fetch time its HBM share would cost there — priced at the
    fraction a whole zoo sharing that GPU's budget would leave it
    (the pre-placement estimate; the arbiter settles exact shares
    after placement, mirroring ``place_tables_tiered``'s two passes).
    """
    from repro.tenancy.arbiter import zoo_hit_curves

    if not 0.0 < hbm_utilization <= 1.0:
        raise ValueError("hbm_utilization must be in (0, 1]")
    times: dict[str, dict[str, float]] = {}
    for gpu in gpus:
        if gpu.name in times:
            continue
        calibrations = {
            tenant.name: calibrate_tenant(
                tenant, gpu, num_sms=num_sms, seed=seed, memo=memo,
            )
            for tenant in zoo.tenants
        }
        curves = zoo_hit_curves(zoo, gpu, num_sms=num_sms, seed=seed)
        budget = gpu.scaled_slice(num_sms).hbm_bytes * hbm_utilization
        total = sum(c.table_bytes for c in curves.values())
        fraction = min(1.0, budget / total) if total else 1.0
        # the sliced kernel preserves per-SM work, so the stage time
        # reads as the FULL-chip batch's — price host fetches to match:
        # per-query miss bytes (a scale-free ratio) x the full batch,
        # on the full-chip link
        link = HostLink.pcie(gpu)
        times[gpu.name] = {}
        for tenant in zoo.tenants:
            curve = curves[tenant.name]
            host_us = curve.host_us_per_query(
                int(fraction * curve.table_rows), link
            ) * tenant.model.batch_size
            times[gpu.name][tenant.name] = (
                calibrations[tenant.name].embedding_stage_us + host_us
            )
    return times


def shared_latency_model(
    solo: LatencyModel, factor: float
) -> LatencyModel:
    """The solo curve under contention.  A factor of exactly 1.0
    returns the solo callable itself, so a degenerate one-tenant zoo
    is served by *the same function object* — bit-identical results,
    not merely close ones."""
    if factor < 1.0:
        raise ValueError("contention factor must be >= 1.0")
    if factor == 1.0:
        return solo
    return lambda batch: solo(batch) * factor


def _scaled_models(latency_ms, factor: float):
    """Apply a contention factor to a curve, a per-phase sequence of
    curves, or a mapping of curves by phase name."""
    if callable(latency_ms):
        return shared_latency_model(latency_ms, factor)
    if isinstance(latency_ms, Mapping):
        return {
            name: shared_latency_model(model, factor)
            for name, model in latency_ms.items()
        }
    return [shared_latency_model(m, factor) for m in latency_ms]


# ----------------------------------------------------------------------
# zoo serving: one GPU, then the routed fleet
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ZooReport:
    """One zoo serving run: per-tenant reports + consolidation totals.

    ``aggregate_goodput_qps`` is the consolidation headline (queries
    served within each tenant's own SLA, per second, summed across
    tenants); ``contention`` and ``loads`` expose the interference
    calibration so erosion can be attributed.
    """

    zoo: str
    tenant_reports: dict[str, StreamReport]
    contention: dict[str, float]
    loads: dict[str, float]
    aggregate_goodput_qps: float
    aggregate_offered_qps: float
    sla_attainment_pct: float

    @property
    def n_tenants(self) -> int:
        return len(self.tenant_reports)

    def tenant(self, name: str) -> StreamReport:
        try:
            return self.tenant_reports[name]
        except KeyError:
            known = ", ".join(self.tenant_reports)
            raise KeyError(f"no tenant {name!r}; known: {known}") from None


def _aggregate(reports: Mapping[str, object]) -> tuple[float, float]:
    """(aggregate goodput, query-weighted SLA attainment %) over any
    per-tenant reports carrying goodput_qps / sla_hit_pct / n_queries."""
    goodput = sum(r.goodput_qps for r in reports.values())
    total = sum(r.n_queries for r in reports.values())
    within = sum(
        r.sla_hit_pct / 100.0 * r.n_queries for r in reports.values()
    )
    attainment = 100.0 * within / total if total else 100.0
    return goodput, attainment


def fold_zoo_report(run: GroupRun) -> ZooReport:
    """Pure fold: a recorded zoo group run into its :class:`ZooReport`.

    The children are the *final* serving pass (contended, or solo when
    every factor is 1.0); the interference calibration travels in the
    group's meta, so replay needs neither pass re-run.
    """
    meta = run.meta
    reports = {
        name: fold_stream_report(child)
        for name, child in run.children.items()
    }
    goodput, attainment = _aggregate(reports)
    return ZooReport(
        zoo=meta["zoo"],
        tenant_reports=reports,
        contention=dict(meta["contention"]),
        loads=dict(meta["loads"]),
        aggregate_goodput_qps=goodput,
        aggregate_offered_qps=sum(
            r.offered_qps for r in reports.values()
        ),
        sla_attainment_pct=attainment,
    )


def simulate_zoo_serving(
    zoo: ZooSpec,
    latency_models: Mapping[str, object],
    *,
    demands: Mapping[str, ShareDemand] | None = None,
    streams: Mapping[str, ScenarioTrace] | None = None,
    policies: Mapping[
        str, BatchingPolicy | ContinuousBatching
    ] | None = None,
    phase_hit_rates: Mapping[str, Sequence[float]] | None = None,
    seed: int = 0,
    sink: Sink | None = None,
) -> ZooReport:
    """All tenants of a zoo sharing ONE GPU under MPS-style concurrency.

    ``latency_models`` maps each tenant to its *solo* batch-latency
    curve (or per-phase curves).  Serving runs in two passes: a solo
    pass measures each tenant's duty cycle (its GPU utilization when
    alone), then the interference function prices every tenant's
    contention factor off its co-runners' demands and measured loads,
    and the contended pass produces the per-tenant reports.  With
    ``demands`` omitted every tenant is assumed fully demanding
    (``ShareDemand(1, 1)``) — the conservative worst case.

    A one-tenant zoo has no co-runners, its factor is exactly 1.0, and
    the contended pass reuses the solo curve object — field-identical
    to calling :func:`repro.core.serving.serve_stream` directly.

    Telemetry: one :class:`~repro.telemetry.events.GroupRun` (meta
    ``kind="zoo"`` carrying loads and contention factors, children =
    the final pass's per-tenant runs) goes to ``sink`` or the ambient
    default.
    """
    missing = sorted(set(zoo.tenant_names) - set(latency_models))
    if missing:
        raise KeyError(f"no latency model for tenants {missing}")
    if streams is None:
        streams = zoo.streams(seed)
    if demands is None:
        demands = {
            name: ShareDemand(1.0, 1.0) for name in zoo.tenant_names
        }
    slas = {t.name: t.sla_ms for t in zoo.tenants}
    scheme_names = {t.name: t.scheme.name for t in zoo.tenants}

    solo, solo_runs = _serve_tenant_stream_runs(
        latency_models, streams,
        policies=policies, sla_ms=slas,
        scheme_names=scheme_names,
        phase_hit_rates=phase_hit_rates,
    )
    loads = {
        name: min(1.0, report.gpu_utilization)
        for name, report in solo.items()
    }
    factors = zoo_contention(
        {name: demands[name] for name in zoo.tenant_names}, loads
    )
    if all(f == 1.0 for f in factors.values()):
        runs = solo_runs
    else:
        contended = {
            name: _scaled_models(latency_models[name], factors[name])
            for name in zoo.tenant_names
        }
        _, runs = _serve_tenant_stream_runs(
            contended, streams,
            policies=policies, sla_ms=slas,
            scheme_names=scheme_names,
            phase_hit_rates=phase_hit_rates,
        )
    group = GroupRun(
        meta={
            "kind": "zoo",
            "zoo": zoo.name,
            "contention": dict(factors),
            "loads": dict(loads),
        },
        children=dict(runs),
    )
    report = fold_zoo_report(group)
    emit_run(sink, group)
    return report


@dataclass(frozen=True)
class ZooFleetReport:
    """A zoo served on a routed fleet: per-tenant fleet reports."""

    zoo: str
    fleet: str
    tenant_reports: dict[str, FleetReport]
    contention: dict[str, dict[str, float]]  # replica -> tenant -> factor
    aggregate_goodput_qps: float
    sla_attainment_pct: float

    def tenant(self, name: str) -> FleetReport:
        try:
            return self.tenant_reports[name]
        except KeyError:
            known = ", ".join(self.tenant_reports)
            raise KeyError(f"no tenant {name!r}; known: {known}") from None


def fold_zoo_fleet_report(run: GroupRun) -> ZooFleetReport:
    """Pure fold: a recorded zoo-fleet group run into its report."""
    meta = run.meta
    reports = {
        name: fold_fleet_report(child)
        for name, child in run.children.items()
    }
    goodput, attainment = _aggregate(reports)
    return ZooFleetReport(
        zoo=meta["zoo"],
        fleet=meta["fleet"],
        tenant_reports=reports,
        contention={
            replica: dict(per)
            for replica, per in meta["contention"].items()
        },
        aggregate_goodput_qps=goodput,
        sla_attainment_pct=attainment,
    )


def simulate_zoo_fleet(
    zoo: ZooSpec,
    fleet: FleetSpec,
    latency_models: Mapping[str, Mapping[str, LatencyModel]],
    *,
    assignments: Mapping[str, Sequence[str]] | None = None,
    demands: Mapping[str, ShareDemand] | None = None,
    streams: Mapping[str, ScenarioTrace] | None = None,
    policy: str = "jsq",
    seed: int = 0,
    sink: Sink | None = None,
) -> ZooFleetReport:
    """A zoo co-resident on a routed fleet, with per-replica contention.

    ``latency_models[tenant]`` maps replica (or GPU) names to that
    tenant's solo curve; ``assignments`` restricts each tenant to a
    replica subset (e.g. from :func:`repro.fleet.placement.place_zoo`) —
    omitted, every tenant runs on every replica.  As in the single-GPU
    path, a solo routing pass measures per-replica duty cycles, the
    interference function prices a contention factor per (replica,
    tenant) from the co-residents *on that replica*, and the contended
    pass yields per-tenant :class:`~repro.fleet.report.FleetReport`s.

    A one-tenant zoo is field-identical to
    :func:`repro.fleet.router.simulate_fleet_stream` on the same
    stream: no co-residents means every factor is exactly 1.0 and the
    contended pass is skipped.
    """
    missing = sorted(set(zoo.tenant_names) - set(latency_models))
    if missing:
        raise KeyError(f"no latency models for tenants {missing}")
    if streams is None:
        streams = zoo.streams(seed)
    if demands is None:
        demands = {
            name: ShareDemand(1.0, 1.0) for name in zoo.tenant_names
        }
    slas = {t.name: t.sla_ms for t in zoo.tenants}

    solo, solo_runs = _simulate_fleet_tenant_stream_runs(
        fleet, latency_models, streams,
        assignments=assignments, policy=policy,
        sla_ms=slas, seed=seed,
    )
    # who shares each replica, and how hard they drive it when alone
    replica_tenants: dict[str, list[str]] = {}
    replica_loads: dict[str, dict[str, float]] = {}
    for name, report in solo.items():
        for replica in report.replica_reports:
            replica_tenants.setdefault(replica.scheme_name, []).append(name)
            replica_loads.setdefault(replica.scheme_name, {})[name] = min(
                1.0, replica.gpu_utilization
            )
    contention: dict[str, dict[str, float]] = {
        replica: zoo_contention(
            {name: demands[name] for name in tenants},
            replica_loads[replica],
        )
        for replica, tenants in replica_tenants.items()
    }
    # a tenant's factor on each replica it serves; solo replicas stay 1.0
    factors = {
        name: {
            replica: contention[replica][name]
            for replica in contention if name in contention[replica]
        }
        for name in zoo.tenant_names
    }
    if all(
        f == 1.0 for per in factors.values() for f in per.values()
    ):
        runs = solo_runs
    else:
        contended_models = {
            name: {
                replica: shared_latency_model(
                    _resolve_replica_model(latency_models[name], replica,
                                           fleet),
                    factors[name].get(replica, 1.0),
                )
                for replica in _tenant_replicas(fleet, assignments, name)
            }
            for name in zoo.tenant_names
        }
        _, runs = _simulate_fleet_tenant_stream_runs(
            fleet, contended_models, streams,
            assignments=assignments, policy=policy,
            sla_ms=slas, seed=seed,
        )
    group = GroupRun(
        meta={
            "kind": "zoo_fleet",
            "zoo": zoo.name,
            "fleet": fleet.name,
            "contention": {
                replica: dict(per)
                for replica, per in contention.items()
            },
        },
        children=dict(runs),
    )
    report = fold_zoo_fleet_report(group)
    emit_run(sink, group)
    return report


def _tenant_replicas(
    fleet: FleetSpec,
    assignments: Mapping[str, Sequence[str]] | None,
    tenant: str,
) -> tuple[str, ...]:
    if assignments is None or tenant not in assignments:
        return tuple(r.name for r in fleet.replicas)
    return tuple(assignments[tenant])


def _resolve_replica_model(
    models: Mapping[str, LatencyModel], replica: str, fleet: FleetSpec
) -> LatencyModel:
    """One tenant's curve for one replica (replica name, else GPU name)."""
    if replica in models:
        return models[replica]
    for spec in fleet.replicas:
        if spec.name == replica and spec.gpu.name in models:
            return models[spec.gpu.name]
    raise KeyError(f"no latency model for replica {replica!r}")
