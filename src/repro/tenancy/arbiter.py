"""HBM arbitration: waterfilling one GPU's budget across tenant caches.

Co-resident tenants all want their embedding hot set HBM-resident, and
one device's HBM cannot hold every zoo member's tables (that is the
memstore premise, multiplied by the zoo).  The arbiter splits a GPU's
HBM budget across the tenants' :class:`~repro.memstore.EmbeddingStore`
plans by *waterfilling on marginal hit rate*: bytes flow, chunk by
chunk, to whichever tenant's cache currently buys the largest hit-rate
gain per byte.

The price curves come from :func:`repro.memstore.policy.hit_curve` —
the stack (inclusion) property of the priority caches means the
resident set at capacity ``k`` is exactly the top ``k`` profiled rows,
so one pass prices every candidate capacity and each tenant's hit rate
is *provably* monotone non-decreasing in its granted share.  Grants
respect two contracts exactly: the per-tenant floor
(:attr:`TenantSpec.hbm_floor_fraction` of its own tables — never taken
away, however hungry the co-tenants) and byte conservation
(``granted + leftover == budget`` in exact integer arithmetic).

Drift re-arbitration: popularity drift moves the hit curves, so
:func:`rearbitrate_on_drift` rebuilds them at a drift phase — profiled
from the *previous* phase's pattern, the online view — and runs the
same waterfilling again.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.config.gpu import A100_SXM4_80GB, GpuSpec
from repro.config.scale import SimScale
from repro.core.drift import DriftModel
from repro.core.embedding import kernel_workload
from repro.datasets.generator import generate_trace
from repro.datasets.spec import HOTNESS_PRESETS
from repro.memstore.policy import (
    PROFILE_SEED_OFFSET,
    hit_curve,
    popular_rows,
)
from repro.memstore.store import EmbeddingStore, HostLink, TierPlan
from repro.telemetry.events import ReArbitrate
from repro.telemetry.sinks import emit_event
from repro.tenancy.zoo import TenantSpec, ZooSpec


@dataclass(frozen=True)
class TenantHitCurve:
    """One tenant's capacity-priced cache behaviour on one GPU slice.

    ``cum_hits[k]`` / ``cum_unique[k]`` index the representative
    table's capacity in rows (see
    :func:`repro.memstore.policy.hit_curve`); ``tables`` statistically
    identical tables share the grant, so one granted "row" costs
    ``row_bytes * tables`` bytes of HBM.
    """

    tenant: str
    table_rows: int
    row_bytes: int
    tables: int
    batch_size: int
    n_accesses: int
    n_distinct: int
    floor_rows: int
    profile: np.ndarray = field(repr=False, compare=False)
    cum_hits: np.ndarray = field(repr=False, compare=False)
    cum_unique: np.ndarray = field(repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.floor_rows <= self.table_rows:
            raise ValueError("floor_rows must be in [0, table_rows]")
        if len(self.cum_hits) != self.table_rows + 1:
            raise ValueError("cum_hits must have table_rows + 1 entries")

    @property
    def bytes_per_row(self) -> int:
        """HBM cost of keeping one row resident across all the tables."""
        return self.row_bytes * self.tables

    @property
    def table_bytes(self) -> int:
        return self.table_rows * self.bytes_per_row

    @property
    def floor_bytes(self) -> int:
        return self.floor_rows * self.bytes_per_row

    def hits_at(self, rows: int) -> int:
        return int(self.cum_hits[min(max(rows, 0), self.table_rows)])

    def hit_rate_at(self, rows: int) -> float:
        """HBM hit rate with ``rows`` resident (1.0 for an empty trace);
        monotone non-decreasing in ``rows`` by the stack property."""
        if self.n_accesses == 0:
            return 1.0
        return self.hits_at(rows) / self.n_accesses

    def unique_misses_at(self, rows: int) -> int:
        """Distinct rows gathered from host per batch (bulk-fetch dedup)."""
        k = min(max(rows, 0), self.table_rows)
        return self.n_distinct - int(self.cum_unique[k])

    def host_us_per_query(self, rows: int, link: HostLink) -> float:
        """Per-query host-gather time at ``rows`` resident.

        Bandwidth-priced (per-batch link latency is second-order for
        bulk gathers): the representative table's deduplicated miss
        bytes per query, times the ``tables`` statistically identical
        tables sharing the grant.
        """
        miss_bytes = (
            self.unique_misses_at(rows) * self.row_bytes * self.tables
        )
        per_query = miss_bytes / self.batch_size
        return 1e6 * per_query / (link.bandwidth_gbps * 1e9)


def tenant_hit_curve(
    tenant: TenantSpec,
    gpu: GpuSpec = A100_SXM4_80GB,
    *,
    num_sms: int = 2,
    seed: int = 0,
    drift_phase: int = 0,
    profile_phase: int = 0,
    drift_per_phase: float = 0.0,
) -> TenantHitCurve:
    """Price one tenant's cache-capacity curve at the simulation scale.

    The popularity profile (admission order) comes from an offline
    calibration trace at the honest seed offset — the same discipline
    L2 pinning and :func:`repro.memstore.store.store_for_spec` use —
    and the curve is evaluated on the tenant's serving trace.  Under
    drift, ``drift_phase`` moves the served pattern while
    ``profile_phase`` fixes what the arbiter *knew* when it profiled
    (re-arbitration passes the previous phase).
    """
    scale = SimScale(name=f"tenancy{num_sms}", num_sms=num_sms)
    workload = kernel_workload(gpu, tenant.model, scale)
    spec = HOTNESS_PRESETS[tenant.dataset]
    common = dict(
        batch_size=workload.batch_size,
        pooling_factor=workload.pooling_factor,
        table_rows=workload.table_rows,
    )
    calib = generate_trace(spec, seed=seed + PROFILE_SEED_OFFSET, **common)
    eval_trace = generate_trace(spec, seed=seed, **common)
    if drift_per_phase > 0.0:
        drift = DriftModel(drift_per_batch=drift_per_phase, seed=seed)
        calib = drift.apply(calib, profile_phase)
        eval_trace = drift.apply(eval_trace, drift_phase)
    profile = popular_rows(calib, workload.table_rows)
    cum_hits, cum_unique = hit_curve(
        profile, eval_trace.indices, workload.table_rows
    )
    return TenantHitCurve(
        tenant=tenant.name,
        table_rows=workload.table_rows,
        row_bytes=workload.row_bytes,
        tables=tenant.model.num_tables,
        batch_size=workload.batch_size,
        n_accesses=len(eval_trace.indices),
        n_distinct=len(np.unique(eval_trace.indices)),
        floor_rows=int(np.ceil(
            tenant.hbm_floor_fraction * workload.table_rows
        )),
        profile=profile,
        cum_hits=cum_hits,
        cum_unique=cum_unique,
    )


def zoo_hit_curves(
    zoo: ZooSpec,
    gpu: GpuSpec = A100_SXM4_80GB,
    *,
    num_sms: int = 2,
    seed: int = 0,
    drift_phase: int = 0,
    profile_phase: int = 0,
    drift_per_phase: float = 0.0,
) -> dict[str, TenantHitCurve]:
    """One capacity curve per tenant, keyed by tenant name."""
    return {
        tenant.name: tenant_hit_curve(
            tenant, gpu, num_sms=num_sms, seed=seed,
            drift_phase=drift_phase, profile_phase=profile_phase,
            drift_per_phase=drift_per_phase,
        )
        for tenant in zoo.tenants
    }


@dataclass(frozen=True)
class TenantGrant:
    """One tenant's share of the GPU's HBM budget."""

    tenant: str
    granted_rows: int
    granted_bytes: int
    floor_rows: int
    hit_rate: float

    @property
    def fully_resident(self) -> bool:
        return self.hit_rate >= 1.0


@dataclass(frozen=True)
class ZooGrant:
    """A full arbitration outcome: every byte of budget accounted for."""

    budget_bytes: int
    grants: dict[str, TenantGrant]
    leftover_bytes: int

    @property
    def total_granted_bytes(self) -> int:
        return sum(g.granted_bytes for g in self.grants.values())

    @property
    def hit_rates(self) -> dict[str, float]:
        return {name: g.hit_rate for name, g in self.grants.items()}

    def grant(self, tenant: str) -> TenantGrant:
        try:
            return self.grants[tenant]
        except KeyError:
            known = ", ".join(self.grants)
            raise KeyError(f"no tenant {tenant!r}; known: {known}") from None


def arbitrate(
    budget_bytes: int,
    curves: Mapping[str, TenantHitCurve],
    *,
    granularity: int = 256,
) -> ZooGrant:
    """Waterfill ``budget_bytes`` of HBM across the tenants' caches.

    Floors are granted first (a :exc:`ValueError` if the contracts are
    jointly infeasible — a floor must never be silently shaved), then
    chunks of ``table_rows / granularity`` rows flow to the tenant
    whose next chunk buys the largest hit-rate gain per byte (ties to
    the lexicographically first tenant, for determinism).  The loop
    stops only when no tenant can fit another chunk's first row or
    every tenant with hits left ahead is fully resident, so the
    leftover is exact change, not abandoned budget.
    """
    if budget_bytes < 0:
        raise ValueError("budget_bytes must be >= 0")
    if not curves:
        raise ValueError("need at least one tenant curve")
    floor_total = sum(c.floor_bytes for c in curves.values())
    if floor_total > budget_bytes:
        raise ValueError(
            f"tenant floors need {floor_total} bytes but the budget is "
            f"{budget_bytes}; shrink the floors or grow the budget"
        )
    granted = {name: c.floor_rows for name, c in curves.items()}
    leftover = budget_bytes - floor_total

    def chunk_rows(curve: TenantHitCurve) -> int:
        return max(1, curve.table_rows // granularity)

    def marginal(name: str) -> float:
        """Hit-rate gain per byte of the tenant's next chunk."""
        curve = curves[name]
        g = granted[name]
        step = min(chunk_rows(curve), curve.table_rows - g)
        if step <= 0:
            return -1.0
        gain = curve.hits_at(g + step) - curve.hits_at(g)
        rate = gain / curve.n_accesses if curve.n_accesses else 0.0
        return rate / (step * curve.bytes_per_row)

    # lazy max-heap of (-marginal, tenant); stale entries re-priced on pop
    heap = [
        (-marginal(name), name) for name in sorted(curves)
        if granted[name] < curves[name].table_rows
        and curves[name].hits_at(curves[name].table_rows)
        > curves[name].hits_at(granted[name])
    ]
    heapq.heapify(heap)
    # a tenant's marginal only moves when *it* is granted, and each
    # grant pushes a re-priced entry, so every heap entry is current
    while heap:
        _, name = heapq.heappop(heap)
        curve = curves[name]
        affordable = leftover // curve.bytes_per_row
        if affordable == 0:
            continue  # cannot fit one more row; retire this tenant
        step = min(
            chunk_rows(curve), curve.table_rows - granted[name],
            affordable,
        )
        granted[name] += step
        leftover -= step * curve.bytes_per_row
        if (
            granted[name] < curve.table_rows
            and curve.hits_at(curve.table_rows)
            > curve.hits_at(granted[name])
        ):
            heapq.heappush(heap, (-marginal(name), name))
    grants = {
        name: TenantGrant(
            tenant=name,
            granted_rows=granted[name],
            granted_bytes=granted[name] * curve.bytes_per_row,
            floor_rows=curve.floor_rows,
            hit_rate=curve.hit_rate_at(granted[name]),
        )
        for name, curve in curves.items()
    }
    return ZooGrant(
        budget_bytes=budget_bytes,
        grants=grants,
        leftover_bytes=budget_bytes - sum(
            g.granted_bytes for g in grants.values()
        ),
    )


def rearbitrate_on_drift(
    zoo: ZooSpec,
    budget_bytes: int,
    *,
    drift_phase: int,
    drift_per_phase: float,
    gpu: GpuSpec = A100_SXM4_80GB,
    num_sms: int = 2,
    seed: int = 0,
    granularity: int = 256,
) -> ZooGrant:
    """Re-run the arbitration after the zoo's popularity has drifted.

    Strictly online: the *decision* curves are built entirely from the
    previous phase's traffic (profile and marginal hit rates alike —
    the arbiter re-profiles from what it has already seen and never
    peeks at the pattern it is about to serve), and the returned
    grants carry the *realized* hit rates of those decisions against
    the drifted pattern actually served at ``drift_phase``.
    """
    if drift_phase < 1:
        raise ValueError("drift_phase must be >= 1 (phase 0 is the "
                         "initial arbitration)")
    decision = zoo_hit_curves(
        zoo, gpu, num_sms=num_sms, seed=seed,
        drift_phase=drift_phase - 1, profile_phase=drift_phase - 1,
        drift_per_phase=drift_per_phase,
    )
    grant = arbitrate(budget_bytes, decision, granularity=granularity)
    realized = zoo_hit_curves(
        zoo, gpu, num_sms=num_sms, seed=seed,
        drift_phase=drift_phase, profile_phase=drift_phase - 1,
        drift_per_phase=drift_per_phase,
    )
    grants = {
        name: TenantGrant(
            tenant=name,
            granted_rows=g.granted_rows,
            granted_bytes=g.granted_bytes,
            floor_rows=g.floor_rows,
            hit_rate=realized[name].hit_rate_at(g.granted_rows),
        )
        for name, g in grant.grants.items()
    }
    emit_event(None, ReArbitrate(
        phase=drift_phase,
        grants={
            name: {
                "granted_rows": float(g.granted_rows),
                "hit_rate": float(g.hit_rate),
            }
            for name, g in grants.items()
        },
    ))
    return ZooGrant(
        budget_bytes=grant.budget_bytes,
        grants=grants,
        leftover_bytes=grant.leftover_bytes,
    )


def stores_for_grants(
    grant: ZooGrant,
    curves: Mapping[str, TenantHitCurve],
    link: HostLink,
    *,
    policy: str = "static_hot",
) -> dict[str, EmbeddingStore]:
    """Materialize each tenant's granted share as a live
    :class:`~repro.memstore.EmbeddingStore`, warmed with the top of its
    profiled admission order — the same rows the curve priced."""
    stores = {}
    for name, tenant_grant in grant.grants.items():
        curve = curves[name]
        plan = TierPlan(
            table_rows=curve.table_rows,
            resident_rows=min(tenant_grant.granted_rows, curve.table_rows),
            row_bytes=curve.row_bytes,
            policy=policy,
        )
        stores[name] = EmbeddingStore(
            plan, link,
            hot_rows=curve.profile[:plan.resident_rows]
            if 0 < plan.resident_rows < plan.table_rows else None,
        )
    return stores
