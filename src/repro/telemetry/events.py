"""Typed telemetry events and the run records the serving stack emits.

Two granularities share one :class:`~repro.telemetry.sinks.Sink`
interface:

* **scalar events** — small frozen dataclasses (``cache_hit``,
  ``warm``, ``re_arbitrate``, ``run_start`` ...), one JSONL line each
  on the recorder.  They are cheap because they are rare.
* **column blocks** — the high-frequency per-query / per-batch streams
  (:class:`ArrivalBlock`, :class:`BatchBlock`) travel as whole numpy
  columns, serialized as base64-encoded little-endian arrays.  This is
  what keeps the recorder within the perf-smoke overhead budget: one
  ``serve_stream`` call emits two blocks, not tens of thousands of
  lines, and the bytes round-trip *exactly* — the foundation of the
  bit-identical replay contract.  ``Block.events()`` materializes the
  scalar view (``arrival``, ``batch_formed``, ``dispatch``,
  ``complete``, ``phase_start``/``phase_end``) so a naive sink that
  only implements ``emit`` still sees every typed event.

A **run record** (:class:`StreamRun`, :class:`FleetRun`,
:class:`ZooRun`, :class:`ZooFleetRun`) is the unit of replay: the
``meta`` dict plus the blocks hold everything the pure report folds
(:func:`repro.core.serving.fold_stream_report` and friends) need —
the live simulators assemble their reports through the *same* folds,
which is what makes a recorded run replay field-identical.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass, field, fields
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

#: Bump on any incompatible change to the JSONL record layout.
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# column codecs: exact-bit numpy <-> base64 round trips
# ----------------------------------------------------------------------
def encode_column(array: np.ndarray) -> dict[str, Any]:
    """One numpy column as a JSON-safe dict (little-endian, base64)."""
    arr = np.ascontiguousarray(array)
    return {
        "d": arr.dtype.newbyteorder("<").str.lstrip("<=|"),
        "n": int(arr.size),
        "b": base64.b64encode(
            arr.astype(arr.dtype.newbyteorder("<"), copy=False).tobytes()
        ).decode("ascii"),
    }


def decode_column(record: Mapping[str, Any]) -> np.ndarray:
    """Invert :func:`encode_column` (bit-exact)."""
    dtype = np.dtype("<" + record["d"])
    arr = np.frombuffer(
        base64.b64decode(record["b"]), dtype=dtype, count=record["n"]
    )
    return arr.astype(dtype.newbyteorder("="), copy=True)


def compact_ints(array: np.ndarray) -> np.ndarray:
    """Narrowest unsigned view of a non-negative int column.

    Index-like columns (phase ids, batch sizes) are int64 in memory
    but tiny in value; shrinking the wire dtype keeps the recorder
    inside its overhead budget.  Values are preserved exactly — the
    folds only count and select on these columns, so the narrower
    dtype replays identically.
    """
    arr = np.asarray(array)
    if arr.size == 0 or arr.min() < 0:
        return arr.astype(np.int64, copy=False)
    peak = int(arr.max())
    for dtype in (np.uint8, np.uint16, np.uint32):
        if peak <= np.iinfo(dtype).max:
            return arr.astype(dtype)
    return arr.astype(np.int64, copy=False)


# ----------------------------------------------------------------------
# scalar events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Event:
    """Base scalar event; ``kind`` tags the concrete type on the wire.

    The wire key ``"t"`` carries the type tag, so the ``t`` timestamp
    field travels as ``"at"``.
    """

    kind = "event"

    def to_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {"k": "e", "t": self.kind}
        for f in fields(self):
            key = "at" if f.name == "t" else f.name
            record[key] = getattr(self, f.name)
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Event":
        names = {f.name for f in fields(cls)}
        payload = {
            ("t" if k == "at" else k): v for k, v in record.items()
        }
        return cls(**{k: v for k, v in payload.items() if k in names})


@dataclass(frozen=True)
class RunStart(Event):
    """A simulator run begins; ``meta`` is the fold's full input."""

    kind = "run_start"
    meta: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class RunEnd(Event):
    """Closes the innermost open run."""

    kind = "run_end"


@dataclass(frozen=True)
class Arrival(Event):
    """One query arrived (materialized from an :class:`ArrivalBlock`)."""

    kind = "arrival"
    t: float = 0.0
    phase: str = ""


@dataclass(frozen=True)
class BatchFormed(Event):
    """A batch closed at ``t`` with ``size`` members."""

    kind = "batch_formed"
    t: float = 0.0
    size: int = 0
    phase: str = ""
    replica: str | None = None


@dataclass(frozen=True)
class Dispatch(Event):
    """A formed batch launched on the GPU for ``exec_ms``."""

    kind = "dispatch"
    t: float = 0.0
    size: int = 0
    exec_ms: float = 0.0
    phase: str = ""
    replica: str | None = None


@dataclass(frozen=True)
class Complete(Event):
    """One query completed with the given end-to-end latency."""

    kind = "complete"
    t: float = 0.0
    latency_ms: float = 0.0
    phase: str = ""
    replica: str | None = None


@dataclass(frozen=True)
class Drop(Event):
    """A query was shed (reserved for admission-control policies)."""

    kind = "drop"
    t: float = 0.0
    reason: str = ""
    phase: str = ""


@dataclass(frozen=True)
class PhaseStart(Event):
    """The arrival stream entered a scenario phase."""

    kind = "phase_start"
    t: float = 0.0
    phase: str = ""


@dataclass(frozen=True)
class PhaseEnd(Event):
    """The arrival stream left a scenario phase."""

    kind = "phase_end"
    t: float = 0.0
    phase: str = ""


@dataclass(frozen=True)
class CacheHit(Event):
    """``count`` HBM-cache hits in one store lookup."""

    kind = "cache_hit"
    count: int = 0
    label: str = "store"


@dataclass(frozen=True)
class CacheMiss(Event):
    """``count`` HBM-cache misses in one store lookup."""

    kind = "cache_miss"
    count: int = 0
    label: str = "store"


@dataclass(frozen=True)
class CacheEvict(Event):
    """``count`` rows evicted from HBM residency."""

    kind = "cache_evict"
    count: int = 0
    label: str = "store"


@dataclass(frozen=True)
class HostFetch(Event):
    """One bulk host-DRAM gather: rows, bytes, and modeled microseconds."""

    kind = "host_fetch"
    rows: int = 0
    bytes: int = 0
    us: float = 0.0
    label: str = "store"


@dataclass(frozen=True)
class Warm(Event):
    """A cache (re-)warm; ``resident`` rows are HBM-resident after."""

    kind = "warm"
    resident: int = 0
    label: str = "store"


@dataclass(frozen=True)
class ReArbitrate(Event):
    """The HBM arbiter re-ran after drift; per-tenant grant summary."""

    kind = "re_arbitrate"
    phase: int = 0
    grants: dict[str, dict[str, float]] = field(default_factory=dict)


#: wire tag -> event class, for the replay decoder.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        RunStart, RunEnd, Arrival, BatchFormed, Dispatch, Complete,
        Drop, PhaseStart, PhaseEnd, CacheHit, CacheMiss, CacheEvict,
        HostFetch, Warm, ReArbitrate,
    )
}


def event_from_record(record: Mapping[str, Any]) -> Event:
    """Decode one ``{"k": "e", ...}`` record into its typed event."""
    try:
        cls = EVENT_TYPES[record["t"]]
    except KeyError:
        known = ", ".join(EVENT_TYPES)
        raise ValueError(
            f"unknown event kind {record.get('t')!r}; known: {known}"
        ) from None
    payload = {k: v for k, v in record.items() if k not in ("k", "t")}
    return cls.from_record(payload)


# ----------------------------------------------------------------------
# column blocks
# ----------------------------------------------------------------------
def _phase_name(phases: Sequence[str], index: int) -> str:
    return phases[index] if 0 <= index < len(phases) else str(index)


@dataclass
class ArrivalBlock:
    """The arrival stream of one run: times (s) and phase indices."""

    kind = "arrivals"

    times: np.ndarray
    phase_ids: np.ndarray
    phases: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.times)

    def events(self) -> Iterator[Event]:
        """Scalar view: ``arrival`` per query plus ``phase_start`` /
        ``phase_end`` at every phase transition of the stream."""
        times = self.times
        ids = np.asarray(self.phase_ids)
        if not len(times):
            return
        previous = None
        for t, pid in zip(times.tolist(), ids.tolist()):
            name = _phase_name(self.phases, pid)
            if pid != previous:
                if previous is not None:
                    yield PhaseEnd(t=t, phase=_phase_name(
                        self.phases, previous
                    ))
                yield PhaseStart(t=t, phase=name)
                previous = pid
            yield Arrival(t=t, phase=name)
        yield PhaseEnd(
            t=float(times[-1]), phase=_phase_name(self.phases, previous)
        )

    def to_record(self) -> dict[str, Any]:
        return {
            "k": "b",
            "t": self.kind,
            "phases": list(self.phases),
            "times": encode_column(self.times),
            "phase_ids": encode_column(compact_ints(self.phase_ids)),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "ArrivalBlock":
        return cls(
            times=decode_column(record["times"]),
            phase_ids=decode_column(record["phase_ids"]),
            phases=tuple(record.get("phases", ())),
        )


@dataclass
class BatchBlock:
    """The batch stream of one GPU timeline.

    ``starts``/``exec_s``/``sizes`` are per batch, in dispatch order;
    ``member_times``/``member_phases`` are the batched queries'
    arrival times and phase indices flattened in dispatch order.  For
    single-GPU stream runs the members are exactly the arrival stream
    in order, so the member columns are omitted and resolved from the
    run's :class:`ArrivalBlock`; the routed fleet serves an arbitrary
    per-replica subset, so its blocks carry them explicitly.
    """

    kind = "batches"

    starts: np.ndarray
    exec_s: np.ndarray
    sizes: np.ndarray
    replica: str | None = None
    member_times: np.ndarray | None = None
    member_phases: np.ndarray | None = None
    phases: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.starts)

    @property
    def done(self) -> np.ndarray:
        """Per-batch completion times (``starts + exec_s``)."""
        return self.starts + self.exec_s

    def members(
        self, arrivals: ArrivalBlock | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(member arrival times, member phase ids) in dispatch order."""
        if self.member_times is not None:
            phases = (
                self.member_phases if self.member_phases is not None
                else np.zeros(len(self.member_times), dtype=np.int64)
            )
            return self.member_times, phases
        if arrivals is None:
            raise ValueError(
                "block has no member columns and no arrival block "
                "was given to resolve them"
            )
        return arrivals.times, np.asarray(arrivals.phase_ids)

    def events(
        self, arrivals: ArrivalBlock | None = None
    ) -> Iterator[Event]:
        """Scalar view: ``batch_formed`` + ``dispatch`` per batch and
        ``complete`` per member query."""
        try:
            member_times, member_phases = self.members(arrivals)
        except ValueError:
            member_times = member_phases = None
        done = self.done
        offset = 0
        for i, (start, exec_s, size) in enumerate(zip(
            self.starts.tolist(), self.exec_s.tolist(),
            self.sizes.tolist(),
        )):
            if member_phases is not None and len(member_phases):
                phase = _phase_name(
                    self.phases, int(member_phases[offset])
                )
            else:
                phase = ""
            yield BatchFormed(
                t=start, size=size, phase=phase, replica=self.replica
            )
            yield Dispatch(
                t=start, size=size, exec_ms=exec_s * 1e3, phase=phase,
                replica=self.replica,
            )
            if member_times is not None:
                batch_done = float(done[i])
                for j in range(offset, offset + size):
                    yield Complete(
                        t=batch_done,
                        latency_ms=(batch_done - float(member_times[j]))
                        * 1e3,
                        phase=_phase_name(
                            self.phases, int(member_phases[j])
                        ),
                        replica=self.replica,
                    )
            offset += size

    def to_record(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "k": "b",
            "t": self.kind,
            "replica": self.replica,
            "phases": list(self.phases),
            "starts": encode_column(self.starts),
            "exec_s": encode_column(self.exec_s),
            "sizes": encode_column(compact_ints(self.sizes)),
        }
        if self.member_times is not None:
            record["member_times"] = encode_column(self.member_times)
        if self.member_phases is not None:
            record["member_phases"] = encode_column(
                compact_ints(self.member_phases)
            )
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "BatchBlock":
        return cls(
            starts=decode_column(record["starts"]),
            exec_s=decode_column(record["exec_s"]),
            sizes=decode_column(record["sizes"]),
            replica=record.get("replica"),
            member_times=(
                decode_column(record["member_times"])
                if "member_times" in record else None
            ),
            member_phases=(
                decode_column(record["member_phases"])
                if "member_phases" in record else None
            ),
            phases=tuple(record.get("phases", ())),
        )


#: wire tag -> block class, for the replay decoder.
BLOCK_TYPES: dict[str, type] = {
    ArrivalBlock.kind: ArrivalBlock,
    BatchBlock.kind: BatchBlock,
}


def block_from_record(record: Mapping[str, Any]):
    """Decode one ``{"k": "b", ...}`` record into its typed block."""
    try:
        cls = BLOCK_TYPES[record["t"]]
    except KeyError:
        known = ", ".join(BLOCK_TYPES)
        raise ValueError(
            f"unknown block kind {record.get('t')!r}; known: {known}"
        ) from None
    return cls.from_record(record)


# ----------------------------------------------------------------------
# run records: the unit of replay
# ----------------------------------------------------------------------
@dataclass
class StreamRun:
    """One single-GPU serving run (``serve_stream``/``simulate_serving``).

    ``meta['kind']`` is ``"stream"`` or ``"serving"``; the remaining
    meta keys are exactly the report inputs that are not derivable from
    the blocks (scenario name, batcher label, SLA, phase names and
    durations, hit-rate calibration).
    """

    meta: dict[str, Any]
    arrivals: ArrivalBlock
    batches: BatchBlock

    def emit_to(self, sink) -> None:
        sink.emit(RunStart(meta=self.meta))
        sink.emit_block(self.arrivals)
        sink.emit_block(self.batches)
        sink.emit(RunEnd())


@dataclass
class FleetRun:
    """One routed-fleet run: the global stream plus per-replica batches.

    ``replicas`` is ordered like the fleet spec — the fold concatenates
    per-replica latencies in this order, which is what makes the
    fleet-wide percentiles bit-identical to the live simulator's.
    """

    meta: dict[str, Any]
    arrivals: ArrivalBlock
    replicas: list[BatchBlock]

    def emit_to(self, sink) -> None:
        sink.emit(RunStart(meta=self.meta))
        sink.emit_block(self.arrivals)
        for block in self.replicas:
            sink.emit_block(block)
        sink.emit(RunEnd())


@dataclass
class GroupRun:
    """A run grouping child runs (zoo serving): meta + ordered children.

    ``meta['kind']`` is ``"zoo"`` (stream children) or ``"zoo_fleet"``
    (fleet children).  Child order is the tenants' serving order — the
    aggregation folds sum in this order.
    """

    meta: dict[str, Any]
    children: dict[str, StreamRun | FleetRun]

    def emit_to(self, sink) -> None:
        sink.emit(RunStart(meta=self.meta))
        for child in self.children.values():
            child.emit_to(sink)
        sink.emit(RunEnd())


#: Anything ``load_runs`` can return.
RunRecord = StreamRun | FleetRun | GroupRun
