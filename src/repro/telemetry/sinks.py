"""Telemetry sinks: one interface, no-op by default.

Every simulator in the stack emits through a :class:`Sink`.  The
default is the shared :data:`NULL_SINK` (a :class:`NullSink`), so
telemetry costs nothing unless a caller attaches one — either
explicitly via the serving functions' ``sink=`` parameter or ambiently
with :func:`use_sink` / :func:`set_default_sink` (how the harness CLI
wires ``--record`` without threading a sink through every experiment
builder).

* :class:`Sink` — the interface.  ``emit`` receives scalar typed
  events; ``emit_block`` receives column blocks and by default
  *materializes* them into scalar events, so a custom sink only has to
  implement ``emit`` to see everything.
* :class:`NullSink` — drops everything, including whole blocks, with
  zero materialization cost.
* :class:`StatsSink` — in-memory aggregation (event counts, cache
  totals, per-run summaries) using vectorized block handling.
* :class:`ConsoleSink` — a human summary line per run on a stream.
* :class:`RecorderSink` — schema-versioned JSONL: a header line, one
  line per event/block, and a footer carrying the record count so a
  truncated file is detectable at replay.
* :class:`MultiSink` — fan-out to several sinks (recorder + stats).
"""

from __future__ import annotations

import json
import sys
from contextlib import contextmanager
from typing import Any, Iterator, TextIO

import numpy as np

from repro.telemetry.events import (
    SCHEMA_VERSION,
    ArrivalBlock,
    BatchBlock,
    Event,
    RunEnd,
    RunStart,
)


class Sink:
    """Receives telemetry.  Base behaviour: scalar events are dropped
    (``emit`` is a no-op hook) and blocks are materialized into scalar
    events — override ``emit`` to observe everything, or
    ``emit_block`` to handle columns natively."""

    #: emitters may skip record assembly entirely when False.
    enabled = True

    def __init__(self) -> None:
        self._arrivals: ArrivalBlock | None = None

    def emit(self, event: Event) -> None:
        """Receive one scalar typed event (no-op by default)."""

    def emit_block(self, block: ArrivalBlock | BatchBlock) -> None:
        """Receive one column block; default materializes its events.

        The last :class:`ArrivalBlock` seen is remembered so a
        member-less stream :class:`BatchBlock` can resolve completions
        against it (emission within a run is sequential: arrivals
        always precede batches).
        """
        if isinstance(block, ArrivalBlock):
            self._arrivals = block
            events: Iterator[Event] = block.events()
        else:
            events = block.events(self._arrivals)
        for event in events:
            self.emit(event)

    def close(self) -> None:
        """Flush/release resources (no-op by default)."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class NullSink(Sink):
    """Drops everything; the zero-overhead default."""

    enabled = False

    def emit_block(self, block: ArrivalBlock | BatchBlock) -> None:
        pass


class MultiSink(Sink):
    """Fan out every event and block to several sinks."""

    def __init__(self, *sinks: Sink) -> None:
        super().__init__()
        self.sinks = tuple(sinks)

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def emit_block(self, block: ArrivalBlock | BatchBlock) -> None:
        for sink in self.sinks:
            sink.emit_block(block)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class StatsSink(Sink):
    """In-memory aggregation: event counts, cache totals, run summaries.

    Blocks are folded with numpy instead of being materialized, so the
    counts match the scalar view at a fraction of the cost — the
    ``counts`` entries for ``arrival``/``dispatch``/``complete`` etc.
    are exactly what a per-event sink would have tallied.
    """

    def __init__(self) -> None:
        super().__init__()
        self.counts: dict[str, int] = {}
        self.cache = {
            "hits": 0, "misses": 0, "evictions": 0,
            "host_rows": 0, "host_bytes": 0, "host_us": 0.0,
        }
        self.runs: list[dict[str, Any]] = []
        self._stack: list[dict[str, Any]] = []

    def _count(self, kind: str, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n

    def emit(self, event: Event) -> None:
        kind = event.kind
        if kind == "run_start":
            self._count(kind)
            meta = event.meta
            name = (
                meta.get("tenant") or meta.get("scenario")
                or meta.get("zoo") or meta.get("fleet")
                or meta.get("scheme_name") or "?"
            )
            self._stack.append({
                "kind": meta.get("kind", "?"),
                "name": name,
                "n_queries": 0, "n_batches": 0,
                "busy_s": 0.0, "max_queue_depth": 0,
            })
            return
        if kind == "run_end":
            self._count(kind)
            if self._stack:
                self.runs.append(self._stack.pop())
            return
        self._count(kind)
        if kind == "cache_hit":
            self.cache["hits"] += event.count
        elif kind == "cache_miss":
            self.cache["misses"] += event.count
        elif kind == "cache_evict":
            self.cache["evictions"] += event.count
        elif kind == "host_fetch":
            self.cache["host_rows"] += event.rows
            self.cache["host_bytes"] += event.bytes
            self.cache["host_us"] += event.us

    def emit_block(self, block: ArrivalBlock | BatchBlock) -> None:
        current = self._stack[-1] if self._stack else None
        if isinstance(block, ArrivalBlock):
            self._arrivals = block
            n = len(block)
            self._count("arrival", n)
            if n:
                transitions = 1 + int(np.count_nonzero(
                    np.diff(np.asarray(block.phase_ids))
                ))
                self._count("phase_start", transitions)
                self._count("phase_end", transitions)
            if current is not None:
                current["n_queries"] += n
            return
        n_batches = len(block)
        served = int(np.sum(block.sizes)) if n_batches else 0
        self._count("batch_formed", n_batches)
        self._count("dispatch", n_batches)
        self._count("complete", served)
        if current is not None:
            current["n_batches"] += n_batches
            current["busy_s"] += float(np.sum(block.exec_s))
            depth = self._max_queue_depth(block)
            current["max_queue_depth"] = max(
                current["max_queue_depth"], depth
            )

    def _max_queue_depth(self, block: BatchBlock) -> int:
        """Peak number of queries waiting, sampled just before each
        dispatch — where a queue fed only by arrivals peaks."""
        if not len(block):
            return 0
        try:
            member_times, _ = block.members(self._arrivals)
        except ValueError:
            return 0
        if not len(member_times):
            return 0
        arrived = np.searchsorted(member_times, block.starts, side="right")
        dispatched = np.concatenate(
            ([0], np.cumsum(np.asarray(block.sizes))[:-1])
        )
        return int(np.max(arrived - dispatched))

    def summary(self) -> dict[str, Any]:
        return {
            "counts": dict(self.counts),
            "cache": dict(self.cache),
            "runs": list(self.runs),
        }

    def render(self) -> str:
        lines = ["telemetry:"]
        for kind in sorted(self.counts):
            lines.append(f"  {kind:14s} {self.counts[kind]}")
        if any(self.cache.values()):
            c = self.cache
            lines.append(
                f"  cache: {c['hits']} hits / {c['misses']} misses / "
                f"{c['evictions']} evictions; host "
                f"{c['host_rows']} rows, {c['host_bytes']} B, "
                f"{c['host_us']:.1f} us"
            )
        for run in self.runs:
            lines.append(
                f"  run {run['kind']}:{run['name']} — "
                f"{run['n_queries']} queries, {run['n_batches']} "
                f"batches, busy {run['busy_s']:.3f}s, peak queue "
                f"{run['max_queue_depth']}"
            )
        return "\n".join(lines)


class ConsoleSink(StatsSink):
    """Human-readable progress: one line per completed run, a cache /
    totals footer on ``close``."""

    def __init__(self, stream: TextIO | None = None) -> None:
        super().__init__()
        self._stream = stream if stream is not None else sys.stdout

    def emit(self, event: Event) -> None:
        super().emit(event)
        if event.kind == "run_end" and self.runs:
            run = self.runs[-1]
            print(
                f"[telemetry] {run['kind']}:{run['name']} — "
                f"{run['n_queries']} queries in {run['n_batches']} "
                f"batches, peak queue {run['max_queue_depth']}",
                file=self._stream,
            )
        elif event.kind == "re_arbitrate":
            print(
                f"[telemetry] re-arbitrate @ phase {event.phase}: "
                + ", ".join(
                    f"{t}={g.get('hit_rate', 0.0):.3f}"
                    for t, g in event.grants.items()
                ),
                file=self._stream,
            )

    def close(self) -> None:
        c = self.cache
        if any(c.values()):
            print(
                f"[telemetry] cache: {c['hits']} hits / "
                f"{c['misses']} misses / {c['evictions']} evictions, "
                f"host {c['host_us']:.1f} us",
                file=self._stream,
            )


class RecorderSink(Sink):
    """Schema-versioned JSONL recorder.

    Line 1 is the header (``{"k": "telemetry", "schema": N}``); every
    event and block is one line; ``close`` appends a footer with the
    record count, which is how replay detects truncation.  Column
    blocks are written as base64 numpy columns — exact bits, so a
    recorded run replays field-identical.
    """

    def __init__(self, path_or_file: str | TextIO) -> None:
        super().__init__()
        if hasattr(path_or_file, "write"):
            self._file: TextIO = path_or_file  # type: ignore[assignment]
            self._owns = False
        else:
            self._file = open(path_or_file, "w", encoding="utf-8")
            self._owns = True
        self.records = 0
        self._closed = False
        self._write({
            "k": "telemetry",
            "schema": SCHEMA_VERSION,
            "format": "repro-telemetry",
        }, count=False)

    def _write(self, record: dict[str, Any], *, count: bool = True) -> None:
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        if count:
            self.records += 1

    def emit(self, event: Event) -> None:
        self._write(event.to_record())

    def emit_block(self, block: ArrivalBlock | BatchBlock) -> None:
        record = block.to_record()
        text = self._encode_block(record)
        if text is None:
            self._write(record)
            return
        self._file.write(text)
        self._file.write("\n")
        self.records += 1

    @staticmethod
    def _encode_block(record: dict[str, Any]) -> str | None:
        """Serialize a block record, splicing large base64 payloads in
        raw instead of letting ``json.dumps`` escape-scan them — base64
        needs no escaping, and the columns dominate the line.  Returns
        ``None`` (caller falls back to plain ``json.dumps``) when the
        envelope unexpectedly collides with the splice markers."""
        payloads: list[str] = []
        shallow = dict(record)
        for key, value in record.items():
            if (
                isinstance(value, dict)
                and isinstance(value.get("b"), str)
                and len(value["b"]) > 512
            ):
                payloads.append(value["b"])
                shallow[key] = {**value, "b": f"\x01{len(payloads) - 1}"}
        if not payloads:
            return json.dumps(shallow, separators=(",", ":"))
        text = json.dumps(shallow, separators=(",", ":"))
        parts = text.split('"\\u0001')
        if len(parts) != len(payloads) + 1:
            return None
        out = [parts[0]]
        for part in parts[1:]:
            index, rest = part.split('"', 1)
            out.extend(('"', payloads[int(index)], '"', rest))
        return "".join(out)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._write({"k": "end", "records": self.records}, count=False)
        if self._owns:
            self._file.close()
        else:
            self._file.flush()


# ----------------------------------------------------------------------
# the ambient default sink
# ----------------------------------------------------------------------
#: The shared no-op sink; also the initial ambient default.
NULL_SINK = NullSink()

_DEFAULT_SINK: Sink = NULL_SINK


def default_sink() -> Sink:
    """The ambient sink emitters fall back to when ``sink=None``."""
    return _DEFAULT_SINK


def set_default_sink(sink: Sink | None) -> Sink:
    """Install the ambient sink (``None`` restores the no-op default);
    returns the previous one so callers can restore it."""
    global _DEFAULT_SINK
    previous = _DEFAULT_SINK
    _DEFAULT_SINK = sink if sink is not None else NULL_SINK
    return previous


@contextmanager
def use_sink(sink: Sink):
    """Ambient sink for the duration of a ``with`` block."""
    previous = set_default_sink(sink)
    try:
        yield sink
    finally:
        set_default_sink(previous)


def resolve_sink(sink: Sink | None) -> Sink:
    """An explicit sink, or the ambient default."""
    return sink if sink is not None else _DEFAULT_SINK


def emit_run(sink: Sink | None, run) -> None:
    """Emit a run record to ``sink`` (or the ambient default) unless
    the resolved sink is disabled — the emitters' one-liner."""
    resolved = resolve_sink(sink)
    if resolved.enabled:
        run.emit_to(resolved)


def emit_event(sink: Sink | None, event: Event) -> None:
    """Emit one scalar event, resolving the ambient default."""
    resolved = resolve_sink(sink)
    if resolved.enabled:
        resolved.emit(event)


__all__ = [
    "Sink",
    "NullSink",
    "MultiSink",
    "StatsSink",
    "ConsoleSink",
    "RecorderSink",
    "NULL_SINK",
    "default_sink",
    "set_default_sink",
    "use_sink",
    "resolve_sink",
    "emit_run",
    "emit_event",
    "RunStart",
    "RunEnd",
]
