"""Derived time-series metrics folded from recorded runs.

The fixed reports answer "how did the run end up"; these folds answer
"what happened *during* it" — the at-scale views the characterization
papers care about (queue growth inside a flash crowd, in-flight
concurrency, who pays for co-residency).  Everything here reads only
run records (:class:`~repro.telemetry.events.StreamRun` /
``FleetRun`` / ``GroupRun``), so the same code serves live sinks and
``repro-harness replay`` alike.

Like :mod:`repro.telemetry.replay`, this module sits above the serving
stack and is imported explicitly, not via ``repro.telemetry``.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.telemetry.events import (
    BatchBlock,
    FleetRun,
    GroupRun,
    RunRecord,
    StreamRun,
)


def _batch_blocks(run: StreamRun | FleetRun) -> list[BatchBlock]:
    if isinstance(run, StreamRun):
        return [run.batches]
    return list(run.replicas)


def _step_timeline(
    plus_t: np.ndarray,
    plus_n: np.ndarray,
    minus_t: np.ndarray,
    minus_n: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge +/- count deltas into a step function ``(times, depth)``.

    At equal timestamps the additions land first — matching the serving
    loop, where a query arriving exactly at dispatch time joins the
    departing batch (``searchsorted side="right"``).
    """
    times = np.concatenate([plus_t, minus_t])
    deltas = np.concatenate([plus_n, -minus_n])
    # stable sort on (time, order-class): additions carry class 0
    order_class = np.concatenate([
        np.zeros(len(plus_t), dtype=np.int8),
        np.ones(len(minus_t), dtype=np.int8),
    ])
    order = np.lexsort((order_class, times))
    return times[order], np.cumsum(deltas[order])


def queue_depth_timeline(
    run: StreamRun | FleetRun,
) -> tuple[np.ndarray, np.ndarray]:
    """Step timeline of queued queries (arrived, not yet dispatched).

    Returns ``(times, depth)``: ``depth[i]`` is the queue depth just
    after the event at ``times[i]`` (an arrival or a batch dispatch).
    For a fleet run the depth is summed across every replica's queue.
    """
    blocks = _batch_blocks(run)
    dispatch_t = np.concatenate(
        [np.asarray(b.starts, dtype=float) for b in blocks]
    ) if blocks else np.empty(0)
    dispatch_n = np.concatenate(
        [np.asarray(b.sizes, dtype=np.int64) for b in blocks]
    ) if blocks else np.empty(0, dtype=np.int64)
    arrivals = np.asarray(run.arrivals.times, dtype=float)
    return _step_timeline(
        arrivals, np.ones(len(arrivals), dtype=np.int64),
        dispatch_t, dispatch_n,
    )


def in_flight_timeline(
    run: StreamRun | FleetRun,
) -> tuple[np.ndarray, np.ndarray]:
    """Step timeline of in-flight queries (dispatched, not complete).

    For a single-GPU stream run this is the executing batch's size
    (batches run back to back); for a fleet it is the sum over
    replicas — the cluster's instantaneous concurrency.
    """
    blocks = _batch_blocks(run)
    starts = np.concatenate(
        [np.asarray(b.starts, dtype=float) for b in blocks]
    ) if blocks else np.empty(0)
    dones = np.concatenate(
        [np.asarray(b.done, dtype=float) for b in blocks]
    ) if blocks else np.empty(0)
    sizes = np.concatenate(
        [np.asarray(b.sizes, dtype=np.int64) for b in blocks]
    ) if blocks else np.empty(0, dtype=np.int64)
    return _step_timeline(starts, sizes, dones, sizes)


def max_queue_depth(run: StreamRun | FleetRun) -> int:
    """Peak queued-query count over the whole run (0 for no arrivals)."""
    _, depth = queue_depth_timeline(run)
    return int(depth.max()) if len(depth) else 0


def interference_attribution(run: GroupRun) -> dict[str, dict[str, Any]]:
    """Per-tenant interference attribution of one zoo run.

    For each tenant: its contention ``factor`` (the latency multiplier
    co-residents cost it), its own measured duty cycle ``load``, the
    summed ``co_runner_load`` it is exposed to, and the resulting
    ``latency_penalty_pct`` (``(factor - 1) x 100``).  Zoo-fleet runs
    attribute per replica and also report the worst factor.
    """
    meta = run.meta
    kind = meta.get("kind")
    if kind == "zoo":
        loads: dict[str, float] = meta["loads"]
        contention: dict[str, float] = meta["contention"]
        return {
            name: {
                "factor": factor,
                "load": loads.get(name, 0.0),
                "co_runner_load": sum(
                    load for other, load in loads.items()
                    if other != name
                ),
                "latency_penalty_pct": 100.0 * (factor - 1.0),
            }
            for name, factor in contention.items()
        }
    if kind == "zoo_fleet":
        per_replica: dict[str, dict[str, float]] = meta["contention"]
        tenants: dict[str, dict[str, Any]] = {}
        for replica, factors in per_replica.items():
            for name, factor in factors.items():
                entry = tenants.setdefault(name, {
                    "factor": 1.0, "replica_factors": {},
                })
                entry["replica_factors"][replica] = factor
                entry["factor"] = max(entry["factor"], factor)
        for entry in tenants.values():
            entry["latency_penalty_pct"] = 100.0 * (
                entry["factor"] - 1.0
            )
        return tenants
    raise ValueError(
        f"interference attribution needs a zoo run, got kind {kind!r}"
    )


def timeline_summary(runs: Iterable[RunRecord]) -> list[dict[str, Any]]:
    """Compact per-run timeline digest (the CLI's ``--report timeline``).

    One dict per run: name/kind, query and batch counts, peak queue
    depth, and peak in-flight concurrency.  Group runs digest their
    children.
    """
    rows: list[dict[str, Any]] = []
    for run in runs:
        if isinstance(run, GroupRun):
            rows.extend(timeline_summary(run.children.values()))
            continue
        _, depth = queue_depth_timeline(run)
        _, flight = in_flight_timeline(run)
        blocks = _batch_blocks(run)
        rows.append({
            "kind": run.meta.get("kind", "?"),
            "name": (
                run.meta.get("scenario") or run.meta.get("fleet")
                or run.meta.get("scheme_name") or "?"
            ),
            "tenant": run.meta.get("tenant"),
            "n_queries": int(len(run.arrivals.times)),
            "n_batches": int(sum(len(b) for b in blocks)),
            "max_queue_depth": int(depth.max()) if len(depth) else 0,
            "max_in_flight": int(flight.max()) if len(flight) else 0,
        })
    return rows


__all__ = [
    "queue_depth_timeline",
    "in_flight_timeline",
    "max_queue_depth",
    "interference_attribution",
    "timeline_summary",
]
