"""Deterministic replay: recorded JSONL telemetry back into reports.

A file written by :class:`~repro.telemetry.sinks.RecorderSink` holds
everything the report folds need — so a recorded run replays into the
*same* :class:`~repro.core.serving.StreamReport` /
:class:`~repro.fleet.report.FleetReport` / tenancy reports the live
simulation produced, field for field, without invoking any simulator.

This module sits *above* the serving stack (it imports the folds from
``core``/``fleet``/``tenancy``), which is why it is not re-exported
from ``repro.telemetry`` itself — import it explicitly::

    from repro.telemetry.replay import load_runs, replay_report

Malformed input (wrong header, schema mismatch, truncation, bad JSON)
raises :class:`ReplayError` with a human-readable message; the harness
CLI maps it to a friendly ``exit 2``.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, TextIO

from repro.telemetry.events import (
    SCHEMA_VERSION,
    ArrivalBlock,
    BatchBlock,
    FleetRun,
    GroupRun,
    RunRecord,
    StreamRun,
    block_from_record,
    event_from_record,
)


class ReplayError(Exception):
    """A recorded telemetry file cannot be replayed (and why)."""


def iter_records(path_or_file: str | TextIO) -> Iterator[dict[str, Any]]:
    """Validated record stream of one recorded JSONL file.

    Checks the header (format tag + schema version) before yielding
    anything, yields every event/block record, and verifies the footer
    count at the end — a truncated or concatenated file fails loudly
    instead of replaying half a run.
    """
    if hasattr(path_or_file, "read"):
        yield from _iter_lines(path_or_file, "<stream>")
    else:
        try:
            with open(path_or_file, "r", encoding="utf-8") as file:
                yield from _iter_lines(file, str(path_or_file))
        except OSError as exc:
            raise ReplayError(f"cannot read {path_or_file}: {exc}") from exc


def _iter_lines(file: TextIO, name: str) -> Iterator[dict[str, Any]]:
    lines = iter(enumerate(file, start=1))
    try:
        _, first = next(lines)
    except StopIteration:
        raise ReplayError(f"{name}: empty file (no telemetry header)") \
            from None
    header = _parse(first, name, 1)
    if header.get("k") != "telemetry":
        raise ReplayError(
            f"{name}: not a telemetry recording (header is "
            f"{header.get('k')!r}, expected 'telemetry')"
        )
    schema = header.get("schema")
    if schema != SCHEMA_VERSION:
        raise ReplayError(
            f"{name}: schema version {schema!r} is not supported "
            f"(this build reads schema {SCHEMA_VERSION}); re-record "
            f"with a matching version"
        )
    count = 0
    for lineno, line in lines:
        if not line.strip():
            continue
        record = _parse(line, name, lineno)
        if record.get("k") == "end":
            expected = record.get("records")
            if expected != count:
                raise ReplayError(
                    f"{name}: footer says {expected} records but "
                    f"{count} were read — file is corrupt"
                )
            return
        count += 1
        yield record
    raise ReplayError(
        f"{name}: missing end-of-recording footer after {count} "
        f"records — file is truncated"
    )


def _parse(line: str, name: str, lineno: int) -> dict[str, Any]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ReplayError(
            f"{name}:{lineno}: not valid JSON ({exc.msg}) — file is "
            f"truncated or corrupt"
        ) from None
    if not isinstance(record, dict):
        raise ReplayError(f"{name}:{lineno}: expected a JSON object")
    return record


class _Frame:
    """One open run while reassembling the record stream."""

    __slots__ = ("meta", "arrivals", "batches", "children")

    def __init__(self, meta: dict[str, Any]) -> None:
        self.meta = meta
        self.arrivals: ArrivalBlock | None = None
        self.batches: list[BatchBlock] = []
        self.children: dict[str, RunRecord] = {}


def _close_frame(frame: _Frame, source: str) -> RunRecord:
    kind = frame.meta.get("kind")
    if kind in ("zoo", "zoo_fleet"):
        return GroupRun(meta=frame.meta, children=frame.children)
    if frame.arrivals is None:
        raise ReplayError(
            f"{source}: run {kind!r} ended without an arrival block"
        )
    if kind in ("fleet", "fleet_stream"):
        return FleetRun(
            meta=frame.meta,
            arrivals=frame.arrivals,
            replicas=frame.batches,
        )
    if kind in ("stream", "serving"):
        if len(frame.batches) != 1:
            raise ReplayError(
                f"{source}: run {kind!r} carries "
                f"{len(frame.batches)} batch blocks, expected 1"
            )
        return StreamRun(
            meta=frame.meta,
            arrivals=frame.arrivals,
            batches=frame.batches[0],
        )
    raise ReplayError(f"{source}: unknown run kind {kind!r}")


def load_runs(path_or_file: str | TextIO) -> list[RunRecord]:
    """Reassemble every run record of one recorded file, in order.

    ``run_start``/``run_end`` events bracket runs (nesting once for
    zoo groups); blocks attach to the innermost open run.  Scalar
    events outside the run structure (cache counters, re-arbitrations)
    are skipped here — :func:`iter_records` exposes them raw.
    """
    source = (
        "<stream>" if hasattr(path_or_file, "read") else str(path_or_file)
    )
    runs: list[RunRecord] = []
    stack: list[_Frame] = []
    for record in iter_records(path_or_file):
        k = record.get("k")
        if k == "b":
            try:
                block = block_from_record(record)
            except (KeyError, ValueError) as exc:
                raise ReplayError(f"{source}: bad block record: {exc}") \
                    from None
            if not stack:
                raise ReplayError(
                    f"{source}: block outside any run"
                )
            frame = stack[-1]
            if isinstance(block, ArrivalBlock):
                frame.arrivals = block
            else:
                frame.batches.append(block)
            continue
        if k != "e":
            raise ReplayError(
                f"{source}: unknown record kind {k!r}"
            )
        try:
            event = event_from_record(record)
        except (KeyError, ValueError) as exc:
            raise ReplayError(f"{source}: bad event record: {exc}") \
                from None
        if event.kind == "run_start":
            stack.append(_Frame(dict(event.meta)))
        elif event.kind == "run_end":
            if not stack:
                raise ReplayError(f"{source}: run_end without run_start")
            run = _close_frame(stack.pop(), source)
            if stack:
                parent = stack[-1]
                key = run.meta.get("tenant") or run.meta.get(
                    "scenario", f"child{len(parent.children)}"
                )
                parent.children[key] = run
            else:
                runs.append(run)
        # other scalar events (cache counters, re-arbitrate, ...) are
        # not part of the run structure
    if stack:
        raise ReplayError(
            f"{source}: {len(stack)} run(s) never closed — file is "
            f"truncated"
        )
    return runs


def replay_report(run: RunRecord):
    """Fold one reassembled run into its report — the same pure folds
    the live simulators used, so the result is field-identical."""
    from repro.core.serving import fold_serving_report, fold_stream_report
    from repro.fleet.report import fold_fleet_report
    from repro.tenancy.share import fold_zoo_fleet_report, fold_zoo_report

    kind = run.meta.get("kind")
    folds = {
        "stream": fold_stream_report,
        "serving": fold_serving_report,
        "fleet": fold_fleet_report,
        "fleet_stream": fold_fleet_report,
        "zoo": fold_zoo_report,
        "zoo_fleet": fold_zoo_fleet_report,
    }
    try:
        fold = folds[kind]
    except KeyError:
        known = ", ".join(folds)
        raise ReplayError(
            f"cannot replay run kind {kind!r}; known: {known}"
        ) from None
    return fold(run)


def replay_reports(path_or_file: str | TextIO) -> list:
    """Load a recorded file and fold every run into its report."""
    return [replay_report(run) for run in load_runs(path_or_file)]


__all__ = [
    "ReplayError",
    "iter_records",
    "load_runs",
    "replay_report",
    "replay_reports",
]
