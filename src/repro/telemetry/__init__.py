"""Typed event telemetry for the serving stack.

Events and sinks only at package level — the serving simulators import
:mod:`repro.telemetry.events` / :mod:`repro.telemetry.sinks`, so these
two modules must stay import-light (numpy + stdlib).  The replay
decoder (:mod:`repro.telemetry.replay`) and the derived-metric helpers
(:mod:`repro.telemetry.derive`) sit *above* the simulators and are
imported explicitly by their consumers (CLI, tests, notebooks)::

    from repro.telemetry.replay import load_runs, replay_report
    from repro.telemetry.derive import queue_depth_timeline
"""

from repro.telemetry.events import (
    BLOCK_TYPES,
    EVENT_TYPES,
    SCHEMA_VERSION,
    Arrival,
    ArrivalBlock,
    BatchBlock,
    BatchFormed,
    CacheEvict,
    CacheHit,
    CacheMiss,
    Complete,
    Dispatch,
    Drop,
    Event,
    FleetRun,
    GroupRun,
    HostFetch,
    PhaseEnd,
    PhaseStart,
    ReArbitrate,
    RunEnd,
    RunRecord,
    RunStart,
    StreamRun,
    Warm,
    block_from_record,
    event_from_record,
)
from repro.telemetry.sinks import (
    NULL_SINK,
    ConsoleSink,
    MultiSink,
    NullSink,
    RecorderSink,
    Sink,
    StatsSink,
    default_sink,
    emit_event,
    emit_run,
    resolve_sink,
    set_default_sink,
    use_sink,
)

__all__ = [
    "BLOCK_TYPES",
    "EVENT_TYPES",
    "SCHEMA_VERSION",
    "Arrival",
    "ArrivalBlock",
    "BatchBlock",
    "BatchFormed",
    "CacheEvict",
    "CacheHit",
    "CacheMiss",
    "Complete",
    "ConsoleSink",
    "Dispatch",
    "Drop",
    "Event",
    "FleetRun",
    "GroupRun",
    "HostFetch",
    "MultiSink",
    "NULL_SINK",
    "NullSink",
    "PhaseEnd",
    "PhaseStart",
    "ReArbitrate",
    "RecorderSink",
    "RunEnd",
    "RunRecord",
    "RunStart",
    "Sink",
    "StatsSink",
    "StreamRun",
    "Warm",
    "block_from_record",
    "default_sink",
    "emit_event",
    "emit_run",
    "event_from_record",
    "resolve_sink",
    "set_default_sink",
    "use_sink",
]
